// Direct solvers for the small dense systems in the strength learner:
// LU with partial pivoting (general), Cholesky (SPD). The Newton step solves
// H * step = grad where H is |R| x |R| (|R| = number of link types, tiny).
#pragma once

#include "common/status.h"
#include "linalg/matrix.h"

namespace genclus {

/// LU factorization with partial pivoting of a square matrix.
/// Fails with NumericalError on (numerical) singularity.
class LuFactorization {
 public:
  /// Factorizes a (square). On success the factorization can solve
  /// multiple right-hand sides.
  static Result<LuFactorization> Compute(const Matrix& a);

  /// Solves A x = b for x.
  Result<Vector> Solve(const Vector& b) const;

  /// Determinant of A (product of pivots with sign of the permutation).
  double Determinant() const;

  size_t dim() const { return lu_.rows(); }

 private:
  LuFactorization(Matrix lu, std::vector<size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), perm_sign_(sign) {}

  Matrix lu_;                  // combined L (unit diagonal) and U
  std::vector<size_t> perm_;   // row permutation
  int perm_sign_;
};

/// Solves A x = b via LU with partial pivoting. One-shot convenience.
Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b);

/// Cholesky factorization A = L L^T of a symmetric positive-definite
/// matrix. Fails with NumericalError if A is not (numerically) SPD.
class CholeskyFactorization {
 public:
  static Result<CholeskyFactorization> Compute(const Matrix& a);

  /// Solves A x = b.
  Result<Vector> Solve(const Vector& b) const;

  /// Log-determinant of A.
  double LogDeterminant() const;

  const Matrix& lower() const { return l_; }

 private:
  explicit CholeskyFactorization(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// Inverse via LU; fails on singular input. Intended for small matrices.
Result<Matrix> Inverse(const Matrix& a);

}  // namespace genclus
