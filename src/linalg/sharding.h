// Column (node-range) sharding for the SpMM link term.
//
// A ShardPartition slices the dense operand's node dimension into
// `num_shards` contiguous ranges; a CsrColumnSplit precomputes, per CSR
// row, where each shard's column range begins inside the row's ascending
// non-zeros. SpmmAccumulateShard then runs the ordinary SpMM row kernels
// restricted to one shard's non-zeros, gathering from just that shard's
// block of Θ. Because the kernels chain each output row left-to-right and
// resume from the value already in `out` (see spmm_kernels.h), running the
// shards of a relation in ascending shard order replays exactly the full
// CSR's non-zero chain — the merged result is bitwise identical to one
// un-sharded SpmmAccumulate call for every shard count.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/spmm.h"

namespace genclus {

/// Uniform contiguous partition of a node range [0, num_cols) into
/// `num_shards` column shards of ceil(num_cols / num_shards) nodes each
/// (the last shard may be short or empty). Default-constructed: one shard
/// over zero columns.
class ShardPartition {
 public:
  ShardPartition() = default;
  ShardPartition(size_t num_cols, size_t num_shards)
      : num_cols_(num_cols), num_shards_(num_shards == 0 ? 1 : num_shards) {}

  /// Maps a user-facing shard-count knob to a concrete partition:
  /// `requested` 0 picks an automatic count from the node count (one
  /// shard per 256Ki nodes, capped at 8 — small models stay monolithic);
  /// any other value is clamped to [1, max(1, num_cols)].
  static ShardPartition Resolve(size_t requested, size_t num_cols);

  size_t num_cols() const { return num_cols_; }
  size_t num_shards() const { return num_shards_; }

  /// First node of `shard`; `begin(num_shards()) == num_cols()` so the
  /// ranges tile the node space.
  size_t begin(size_t shard) const {
    const size_t chunk = (num_cols_ + num_shards_ - 1) / num_shards_;
    const size_t b = shard * chunk;
    return b < num_cols_ ? b : num_cols_;
  }
  size_t end(size_t shard) const { return begin(shard + 1); }

 private:
  size_t num_cols_ = 0;
  size_t num_shards_ = 1;
};

/// Per-row cut points of a CSR's ascending columns at a ShardPartition's
/// boundaries: shard s of row v covers non-zero indices
/// [cuts[v * (S + 1) + s], cuts[v * (S + 1) + s + 1]). Stored flat so
/// shard s's extents are a strided view (`ShardExtents(s)` with
/// `stride()`), exactly the shape the shared SpMM kernels consume.
class CsrColumnSplit {
 public:
  CsrColumnSplit() = default;

  /// Builds the cut table for `a` under `partition`. Columns must ascend
  /// within each row (the typed-CSR builder guarantees this) and
  /// partition.num_cols() must cover every column id.
  void Build(const CsrMatrixView& a, const ShardPartition& partition);

  bool empty() const { return cuts_.empty(); }
  size_t num_shards() const { return num_shards_; }
  size_t stride() const { return num_shards_ + 1; }
  /// Strided extents array for `shard`: row v's range is
  /// [extents[v * stride()], extents[v * stride() + 1]).
  const size_t* ShardExtents(size_t shard) const {
    return cuts_.data() + shard;
  }

 private:
  std::vector<size_t> cuts_;
  size_t num_shards_ = 1;
};

/// out[v,:] += coeff * sum_{j in shard} values[j] *
///             shard_dense[cols[j] - partition.begin(shard),:]
/// for rows v in [row_begin, row_end) — one shard's slice of the link
/// term. `shard_dense` points at the shard's own Θ block (row 0 =
/// node partition.begin(shard)); `out` is the full row-major output.
/// Calling this for every shard in ascending order is bitwise identical
/// to one SpmmAccumulate over the whole CSR.
void SpmmAccumulateShard(const CsrMatrixView& a, const CsrColumnSplit& split,
                         const ShardPartition& partition, size_t shard,
                         double coeff, const double* shard_dense, size_t k,
                         size_t row_begin, size_t row_end, double* out);

}  // namespace genclus
