#include "linalg/sharding.h"

#include <algorithm>

#include "common/check.h"
#include "linalg/spmm_kernels.h"

namespace genclus {

ShardPartition ShardPartition::Resolve(size_t requested, size_t num_cols) {
  size_t shards = requested;
  if (shards == 0) {
    shards = std::min<size_t>(8, 1 + num_cols / (size_t{1} << 18));
  }
  shards = std::min(shards, std::max<size_t>(1, num_cols));
  shards = std::max<size_t>(1, shards);
  return ShardPartition(num_cols, shards);
}

void CsrColumnSplit::Build(const CsrMatrixView& a,
                           const ShardPartition& partition) {
  const size_t num_rows = a.rows();
  const size_t shards = partition.num_shards();
  num_shards_ = shards;
  cuts_.assign(num_rows * (shards + 1), 0);
  for (size_t v = 0; v < num_rows; ++v) {
    const size_t row_end = a.row_offsets[v + 1];
    size_t j = a.row_offsets[v];
    for (size_t s = 0; s <= shards; ++s) {
      const size_t col_begin = partition.begin(s);
      while (j < row_end && static_cast<size_t>(a.cols[j]) < col_begin) {
        GENCLUS_DCHECK(j + 1 >= row_end || a.cols[j] <= a.cols[j + 1]);
        ++j;
      }
      cuts_[v * (shards + 1) + s] = j;
    }
    GENCLUS_DCHECK(cuts_[v * (shards + 1) + shards] == row_end);
  }
}

void SpmmAccumulateShard(const CsrMatrixView& a, const CsrColumnSplit& split,
                         const ShardPartition& partition, size_t shard,
                         double coeff, const double* shard_dense, size_t k,
                         size_t row_begin, size_t row_end, double* out) {
  GENCLUS_DCHECK(shard < partition.num_shards());
  GENCLUS_DCHECK(split.num_shards() == partition.num_shards());
  GENCLUS_DCHECK(row_end <= a.rows());
  GENCLUS_DCHECK(row_begin <= row_end);
  if (coeff == 0.0 || k == 0) return;
  internal::SpmmRowsDispatch(split.ShardExtents(shard), split.stride(),
                             a.cols.data(), a.values.data(), coeff,
                             shard_dense, partition.begin(shard), k,
                             row_begin, row_end, out);
}

}  // namespace genclus
