// Internal row kernels shared by the full-CSR SpMM entry point (spmm.cc)
// and the shard-range entry point (sharding.cc). Not part of the public
// surface — include only from linalg .cc files.
//
// The kernels are parameterized by an *extents* pointer plus stride so one
// instantiation serves both callers: row v's non-zeros live at
// [extents[v * stride], extents[v * stride + 1]). The full CSR passes
// row_offsets.data() with stride 1; shard s of a CsrColumnSplit passes
// cuts.data() + s with stride num_shards + 1. `col_base` rebases column
// ids into the dense operand, so a shard can pass just its own Θ block.
//
// Every kernel accumulates each output row as one pure left-to-right
// chain over the non-zeros, resuming from the value already in `out`
// (load → accumulate → store). With ascending columns per row, splitting
// a row range by column into shards and running the shards in ascending
// order replays exactly the same chain — so the result is bitwise
// invariant to the shard count, not just to the row partition.
#pragma once

#include <cstddef>
#include <cstdint>

namespace genclus::internal {

// K-specialized row kernel: with the column count a compile-time constant
// the inner loop fully unrolls and keeps the output row in registers
// across the whole neighbor scan.
template <size_t K>
void SpmmRowsFixedK(const size_t* extents, size_t stride,
                    const uint32_t* cols, const double* values, double coeff,
                    const double* dense, size_t col_base, size_t row_begin,
                    size_t row_end, double* out) {
  for (size_t v = row_begin; v < row_end; ++v) {
    const size_t begin = extents[v * stride];
    const size_t end = extents[v * stride + 1];
    if (begin == end) continue;
    double* out_row = out + v * K;
    double acc[K];
    for (size_t kk = 0; kk < K; ++kk) acc[kk] = out_row[kk];
    for (size_t j = begin; j < end; ++j) {
      const double w = coeff * values[j];
      const double* in =
          dense + (static_cast<size_t>(cols[j]) - col_base) * K;
      for (size_t kk = 0; kk < K; ++kk) acc[kk] += w * in[kk];
    }
    for (size_t kk = 0; kk < K; ++kk) out_row[kk] = acc[kk];
  }
}

inline void SpmmRowsGenericK(const size_t* extents, size_t stride,
                             const uint32_t* cols, const double* values,
                             double coeff, const double* dense,
                             size_t col_base, size_t k, size_t row_begin,
                             size_t row_end, double* out) {
  for (size_t v = row_begin; v < row_end; ++v) {
    const size_t begin = extents[v * stride];
    const size_t end = extents[v * stride + 1];
    double* out_row = out + v * k;
    for (size_t j = begin; j < end; ++j) {
      const double w = coeff * values[j];
      const double* in = dense + (static_cast<size_t>(cols[j]) - col_base) * k;
      for (size_t kk = 0; kk < k; ++kk) out_row[kk] += w * in[kk];
    }
  }
}

// Shared K dispatcher: the K values the paper's experiments use get the
// register-resident kernel, everything else the generic loop.
inline void SpmmRowsDispatch(const size_t* extents, size_t stride,
                             const uint32_t* cols, const double* values,
                             double coeff, const double* dense,
                             size_t col_base, size_t k, size_t row_begin,
                             size_t row_end, double* out) {
  switch (k) {
    case 2:
      SpmmRowsFixedK<2>(extents, stride, cols, values, coeff, dense, col_base,
                        row_begin, row_end, out);
      break;
    case 3:
      SpmmRowsFixedK<3>(extents, stride, cols, values, coeff, dense, col_base,
                        row_begin, row_end, out);
      break;
    case 4:
      SpmmRowsFixedK<4>(extents, stride, cols, values, coeff, dense, col_base,
                        row_begin, row_end, out);
      break;
    case 8:
      SpmmRowsFixedK<8>(extents, stride, cols, values, coeff, dense, col_base,
                        row_begin, row_end, out);
      break;
    default:
      SpmmRowsGenericK(extents, stride, cols, values, coeff, dense, col_base,
                       k, row_begin, row_end, out);
      break;
  }
}

}  // namespace genclus::internal
