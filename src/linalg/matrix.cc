#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

namespace genclus {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    GENCLUS_CHECK_EQ(row.size(), cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::RowVector(size_t r) const {
  GENCLUS_CHECK_LT(r, rows_);
  return Vector(Row(r), Row(r) + cols_);
}

void Matrix::SetRow(size_t r, const Vector& v) {
  GENCLUS_CHECK_LT(r, rows_);
  GENCLUS_CHECK_EQ(v.size(), cols_);
  std::copy(v.begin(), v.end(), Row(r));
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  GENCLUS_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.Row(k);
      double* orow = out.Row(i);
      for (size_t j = 0; j < other.cols_; ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
  return out;
}

Vector Matrix::MultiplyVector(const Vector& v) const {
  GENCLUS_CHECK_EQ(cols_, v.size());
  Vector out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    out[i] = acc;
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

void Matrix::AddScaled(const Matrix& other, double alpha) {
  GENCLUS_CHECK_EQ(rows_, other.rows_);
  GENCLUS_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Scale(double s) {
  for (double& x : data_) x *= s;
}

double Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b) {
  GENCLUS_CHECK_EQ(a.rows(), b.rows());
  GENCLUS_CHECK_EQ(a.cols(), b.cols());
  double m = 0.0;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  }
  return m;
}

double Dot(const Vector& a, const Vector& b) {
  GENCLUS_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const Vector& v) { return std::sqrt(Dot(v, v)); }

Vector Subtract(const Vector& a, const Vector& b) {
  GENCLUS_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Add(const Vector& a, const Vector& b) {
  GENCLUS_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Scaled(const Vector& v, double s) {
  Vector out(v);
  for (double& x : out) x *= s;
  return out;
}

double MaxAbsDiff(const Vector& a, const Vector& b) {
  GENCLUS_CHECK_EQ(a.size(), b.size());
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

std::vector<uint32_t> RowArgMax(const Matrix& m) {
  std::vector<uint32_t> out(m.rows());
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.Row(r);
    size_t best = 0;
    for (size_t c = 1; c < m.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = static_cast<uint32_t>(best);
  }
  return out;
}

}  // namespace genclus
