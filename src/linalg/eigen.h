// Symmetric eigensolvers for the spectral-combine baseline:
//  * Jacobi rotation: full spectrum, robust, O(n^3) — small matrices / tests.
//  * Subspace (orthogonal) iteration: top-K eigenpairs of large symmetric
//    matrices, which is all the spectral embedding needs (K = #clusters).
#pragma once

#include <cstddef>

#include "common/random.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace genclus {

/// Full eigendecomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in descending order.
  Vector values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
};

/// Cyclic Jacobi eigensolver for symmetric matrices. `a` must be square and
/// (numerically) symmetric. Converges to off-diagonal Frobenius norm below
/// `tol` or fails with NotConverged after `max_sweeps`.
Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                double tol = 1e-12,
                                                size_t max_sweeps = 64);

/// Top-k eigenpairs (largest algebraic eigenvalues) of a symmetric matrix by
/// subspace iteration with modified Gram-Schmidt re-orthogonalization.
/// A diagonal shift makes the matrix PSD first so "largest magnitude" and
/// "largest algebraic" coincide.
Result<EigenDecomposition> TopKEigenSymmetric(const Matrix& a, size_t k,
                                              Rng* rng, double tol = 1e-9,
                                              size_t max_iters = 1000);

/// Orthonormalizes the columns of `m` in place (modified Gram-Schmidt).
/// Columns that collapse to (near) zero are replaced with random directions
/// drawn from `rng` and re-orthogonalized.
void OrthonormalizeColumns(Matrix* m, Rng* rng);

}  // namespace genclus
