#include "linalg/spmm.h"

#include "common/check.h"

namespace genclus {

namespace {

// K-specialized row kernels: with the column count a compile-time
// constant the inner loop fully unrolls and keeps the output row in
// registers across the whole neighbor scan.
template <size_t K>
void SpmmRowsFixedK(const CsrMatrixView& a, double coeff, const double* dense,
                    size_t row_begin, size_t row_end, double* out) {
  for (size_t v = row_begin; v < row_end; ++v) {
    const size_t begin = a.row_offsets[v];
    const size_t end = a.row_offsets[v + 1];
    if (begin == end) continue;
    double acc[K];
    for (size_t kk = 0; kk < K; ++kk) acc[kk] = 0.0;
    for (size_t j = begin; j < end; ++j) {
      const double w = coeff * a.values[j];
      const double* in = dense + static_cast<size_t>(a.cols[j]) * K;
      for (size_t kk = 0; kk < K; ++kk) acc[kk] += w * in[kk];
    }
    double* out_row = out + v * K;
    for (size_t kk = 0; kk < K; ++kk) out_row[kk] += acc[kk];
  }
}

void SpmmRowsGenericK(const CsrMatrixView& a, double coeff,
                      const double* dense, size_t k, size_t row_begin,
                      size_t row_end, double* out) {
  for (size_t v = row_begin; v < row_end; ++v) {
    const size_t begin = a.row_offsets[v];
    const size_t end = a.row_offsets[v + 1];
    double* out_row = out + v * k;
    for (size_t j = begin; j < end; ++j) {
      const double w = coeff * a.values[j];
      const double* in = dense + static_cast<size_t>(a.cols[j]) * k;
      for (size_t kk = 0; kk < k; ++kk) out_row[kk] += w * in[kk];
    }
  }
}

}  // namespace

void SpmmAccumulate(const CsrMatrixView& a, double coeff, const double* dense,
                    size_t k, size_t row_begin, size_t row_end, double* out) {
  GENCLUS_DCHECK(row_end <= a.rows());
  GENCLUS_DCHECK(row_begin <= row_end);
  GENCLUS_DCHECK(a.cols.size() == a.values.size());
  if (coeff == 0.0 || k == 0) return;
  switch (k) {
    case 2:
      SpmmRowsFixedK<2>(a, coeff, dense, row_begin, row_end, out);
      break;
    case 3:
      SpmmRowsFixedK<3>(a, coeff, dense, row_begin, row_end, out);
      break;
    case 4:
      SpmmRowsFixedK<4>(a, coeff, dense, row_begin, row_end, out);
      break;
    case 8:
      SpmmRowsFixedK<8>(a, coeff, dense, row_begin, row_end, out);
      break;
    default:
      SpmmRowsGenericK(a, coeff, dense, k, row_begin, row_end, out);
      break;
  }
}

}  // namespace genclus
