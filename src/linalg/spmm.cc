#include "linalg/spmm.h"

#include <limits>
#include <string>

#include "common/check.h"
#include "linalg/spmm_kernels.h"

namespace genclus {

void SpmmAccumulate(const CsrMatrixView& a, double coeff, const double* dense,
                    size_t k, size_t row_begin, size_t row_end, double* out) {
  GENCLUS_DCHECK(row_end <= a.rows());
  GENCLUS_DCHECK(row_begin <= row_end);
  GENCLUS_DCHECK(a.cols.size() == a.values.size());
  if (coeff == 0.0 || k == 0) return;
  internal::SpmmRowsDispatch(a.row_offsets.data(), /*stride=*/1,
                             a.cols.data(), a.values.data(), coeff, dense,
                             /*col_base=*/0, k, row_begin, row_end, out);
}

Status ValidateCsrColumnCount(size_t num_cols, const char* what) {
  // The hin layer reserves the all-ones id (kInvalidNode) as a sentinel,
  // so the largest addressable column count is UINT32_MAX, not
  // UINT32_MAX + 1.
  constexpr size_t kMaxCols =
      static_cast<size_t>(std::numeric_limits<uint32_t>::max());
  if (num_cols > kMaxCols) {
    return Status::InvalidArgument(
        std::string(what) + " " + std::to_string(num_cols) +
        " exceeds the 32-bit CSR column-id space (max " +
        std::to_string(kMaxCols) + ")");
  }
  return Status::OK();
}

}  // namespace genclus
