// Dense row-major matrix and vector types sized for this library's needs:
// the |R|x|R| Newton-Raphson systems of the strength learner, and the
// n x n similarity matrices of the spectral baseline (n up to a few
// thousand). Not a general-purpose BLAS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "common/check.h"

namespace genclus {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix, zero-initialized (or `fill`).
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    GENCLUS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    GENCLUS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r (contiguous, cols() doubles).
  double* Row(size_t r) {
    GENCLUS_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* Row(size_t r) const {
    GENCLUS_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  /// Copies row r into a Vector.
  Vector RowVector(size_t r) const;

  /// Sets row r from v (v.size() must equal cols()).
  void SetRow(size_t r, const Vector& v);

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Matrix Transpose() const;

  /// Matrix product this * other.
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product this * v.
  Vector MultiplyVector(const Vector& v) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// this += alpha * other (same shape).
  void AddScaled(const Matrix& other, double alpha);

  /// Every entry multiplied by s.
  void Scale(double s);

  /// Max |a_ij - b_ij| over all entries; shapes must match.
  static double MaxAbsDiff(const Matrix& a, const Matrix& b);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Dot product; sizes must match.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm2(const Vector& v);

/// a - b elementwise.
Vector Subtract(const Vector& a, const Vector& b);

/// a + b elementwise.
Vector Add(const Vector& a, const Vector& b);

/// v * s elementwise.
Vector Scaled(const Vector& v, double s);

/// Max |a_i - b_i|.
double MaxAbsDiff(const Vector& a, const Vector& b);

/// Index of the max entry per row (first wins on ties). The hard-label
/// readout shared by Model/GenClusResult::HardLabels and the benches.
std::vector<uint32_t> RowArgMax(const Matrix& m);

}  // namespace genclus
