// Sparse-matrix × dense-matrix (SpMM) kernel over typed-CSR views.
//
// The EM cluster-optimization E-step's link term (Eqs. 10-12) is a sum of
// γ_r-weighted products W_r Θ, one per relation r, where W_r is the
// relation's out-adjacency in CSR form. Expressing it this way replaces
// the per-link AoS gather (LinkEntry.type lookup into gamma inside the
// innermost loop) with contiguous neighbor-id/weight arrays and a tight
// K-wide inner loop the compiler can vectorize — each output entry
// out[v][k] is independent across k, so vectorizing never reorders a
// floating-point reduction and the result is identical to the scalar loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/status.h"

namespace genclus {

/// Read-only CSR matrix view with 32-bit column ids — the shape of
/// Network's per-relation adjacency views. Row v's non-zeros live at
/// [row_offsets[v], row_offsets[v + 1]) in `cols`/`values`.
struct CsrMatrixView {
  std::span<const size_t> row_offsets;  // num_rows + 1 (empty matrix: empty)
  std::span<const uint32_t> cols;
  std::span<const double> values;

  size_t rows() const {
    return row_offsets.empty() ? 0 : row_offsets.size() - 1;
  }
  size_t nnz() const { return cols.size(); }
};

/// out[v,:] += coeff * sum_j values[j] * dense[cols[j],:] for each row v in
/// [row_begin, row_end) — the γ-weighted W_r Θ product of the E-step's link
/// term, restricted to one block of rows so callers can tile the sweep.
/// `dense` and `out` are row-major with `k` columns; they must not alias.
/// Each output row is accumulated as one left-to-right chain over the CSR
/// non-zeros, resumed from the value already in `out`, so the result is
/// bitwise independent of how callers partition the row range AND of how a
/// row's non-zeros are split across consecutive calls (the column-sharded
/// path in sharding.h relies on the latter).
void SpmmAccumulate(const CsrMatrixView& a, double coeff, const double* dense,
                    size_t k, size_t row_begin, size_t row_end, double* out);

/// Rejects dense column counts that cannot be addressed by the view's
/// 32-bit column ids. CsrMatrixView stores `uint32_t` ids (with the
/// all-ones pattern reserved as the hin layer's invalid-node sentinel);
/// building a CSR over more columns than that would silently wrap ids
/// instead of failing. `what` names the dimension for the error message
/// (e.g. "node count").
Status ValidateCsrColumnCount(size_t num_cols, const char* what);

}  // namespace genclus
