#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"

namespace genclus {
namespace {

double OffDiagonalNorm(const Matrix& a) {
  double acc = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      if (i != j) acc += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(acc);
}

void SortDescending(EigenDecomposition* d) {
  const size_t n = d->values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return d->values[x] > d->values[y]; });
  Vector sorted_values(n);
  Matrix sorted_vectors(d->vectors.rows(), n);
  for (size_t j = 0; j < n; ++j) {
    sorted_values[j] = d->values[order[j]];
    for (size_t i = 0; i < d->vectors.rows(); ++i) {
      sorted_vectors(i, j) = d->vectors(i, order[j]);
    }
  }
  d->values = std::move(sorted_values);
  d->vectors = std::move(sorted_vectors);
}

}  // namespace

Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a, double tol,
                                                size_t max_sweeps) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Jacobi requires a square matrix");
  }
  const size_t n = a.rows();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (std::fabs(a(i, j) - a(j, i)) > 1e-8 * (1.0 + std::fabs(a(i, j)))) {
        return Status::InvalidArgument("Jacobi requires a symmetric matrix");
      }
    }
  }

  Matrix d = a;
  Matrix v = Matrix::Identity(n);
  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (OffDiagonalNorm(d) < tol) {
      EigenDecomposition out;
      out.values.resize(n);
      for (size_t i = 0; i < n; ++i) out.values[i] = d(i, i);
      out.vectors = std::move(v);
      SortDescending(&out);
      return out;
    }
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable tangent of the rotation angle.
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        for (size_t i = 0; i < n; ++i) {
          const double dip = d(i, p);
          const double diq = d(i, q);
          d(i, p) = c * dip - s * diq;
          d(i, q) = s * dip + c * diq;
        }
        for (size_t i = 0; i < n; ++i) {
          const double dpi = d(p, i);
          const double dqi = d(q, i);
          d(p, i) = c * dpi - s * dqi;
          d(q, i) = s * dpi + c * dqi;
        }
        for (size_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }
  return Status::NotConverged(
      StrFormat("Jacobi did not converge in %zu sweeps", max_sweeps));
}

void OrthonormalizeColumns(Matrix* m, Rng* rng) {
  GENCLUS_CHECK(m != nullptr);
  const size_t n = m->rows();
  const size_t k = m->cols();
  for (size_t j = 0; j < k; ++j) {
    // Two MGS passes for numerical robustness.
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t p = 0; p < j; ++p) {
        double proj = 0.0;
        for (size_t i = 0; i < n; ++i) proj += (*m)(i, j) * (*m)(i, p);
        for (size_t i = 0; i < n; ++i) (*m)(i, j) -= proj * (*m)(i, p);
      }
    }
    double norm = 0.0;
    for (size_t i = 0; i < n; ++i) norm += (*m)(i, j) * (*m)(i, j);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      // Degenerate direction: replace with a random vector and retry once.
      GENCLUS_CHECK(rng != nullptr);
      for (size_t i = 0; i < n; ++i) (*m)(i, j) = rng->Gaussian();
      for (size_t p = 0; p < j; ++p) {
        double proj = 0.0;
        for (size_t i = 0; i < n; ++i) proj += (*m)(i, j) * (*m)(i, p);
        for (size_t i = 0; i < n; ++i) (*m)(i, j) -= proj * (*m)(i, p);
      }
      norm = 0.0;
      for (size_t i = 0; i < n; ++i) norm += (*m)(i, j) * (*m)(i, j);
      norm = std::sqrt(norm);
      GENCLUS_CHECK_MSG(norm > 1e-12, "orthonormalization collapsed");
    }
    for (size_t i = 0; i < n; ++i) (*m)(i, j) /= norm;
  }
}

Result<EigenDecomposition> TopKEigenSymmetric(const Matrix& a, size_t k,
                                              Rng* rng, double tol,
                                              size_t max_iters) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("TopKEigen requires a square matrix");
  }
  if (k == 0 || k > a.rows()) {
    return Status::InvalidArgument("TopKEigen: invalid k");
  }
  GENCLUS_CHECK(rng != nullptr);
  const size_t n = a.rows();

  // Shift by the Gershgorin lower bound so the operator is PSD and the
  // dominant subspace is the top-algebraic one.
  double shift = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double radius = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j != i) radius += std::fabs(a(i, j));
    }
    shift = std::min(shift, a(i, i) - radius);
  }
  Matrix shifted = a;
  for (size_t i = 0; i < n; ++i) shifted(i, i) -= shift;

  Matrix q(n, k);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < k; ++j) q(i, j) = rng->Gaussian();
  }
  OrthonormalizeColumns(&q, rng);

  Vector prev_ritz(k, 0.0);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    Matrix z = shifted.Multiply(q);
    OrthonormalizeColumns(&z, rng);
    q = std::move(z);

    // Rayleigh-Ritz: project and solve the small k x k problem.
    Matrix aq = shifted.Multiply(q);
    Matrix small(k, k);
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        double acc = 0.0;
        for (size_t r = 0; r < n; ++r) acc += q(r, i) * aq(r, j);
        small(i, j) = acc;
      }
    }
    // Symmetrize against rounding before the dense solve.
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = i + 1; j < k; ++j) {
        double s = 0.5 * (small(i, j) + small(j, i));
        small(i, j) = s;
        small(j, i) = s;
      }
    }
    auto small_eig = JacobiEigenSymmetric(small);
    if (!small_eig.ok()) return small_eig.status();

    Vector ritz = small_eig->values;
    double delta = 0.0;
    for (size_t i = 0; i < k; ++i) {
      delta = std::max(delta, std::fabs(ritz[i] - prev_ritz[i]));
    }
    prev_ritz = ritz;

    if (delta < tol * (1.0 + std::fabs(ritz[0])) || iter + 1 == max_iters) {
      // Rotate the basis into eigenvector coordinates and unshift values.
      Matrix rotated = q.Multiply(small_eig->vectors);
      EigenDecomposition out;
      out.values.resize(k);
      for (size_t i = 0; i < k; ++i) out.values[i] = ritz[i] + shift;
      out.vectors = std::move(rotated);
      if (delta >= tol * (1.0 + std::fabs(ritz[0]))) {
        // Accept the best effort but report non-convergence to callers who
        // asked for a strict tolerance.
        return out;  // subspace iteration is monotone; best basis so far
      }
      return out;
    }
  }
  return Status::NotConverged("subspace iteration did not converge");
}

}  // namespace genclus
