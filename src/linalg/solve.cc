#include "linalg/solve.h"

#include <cmath>

#include "common/string_util.h"

namespace genclus {

Result<LuFactorization> LuFactorization::Compute(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("LU requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix lu = a;
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;

  for (size_t col = 0; col < n; ++col) {
    // Partial pivot: pick the largest magnitude entry in this column.
    size_t pivot = col;
    double best = std::fabs(lu(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double mag = std::fabs(lu(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-300) {
      return Status::NumericalError(
          StrFormat("LU pivot underflow at column %zu", col));
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(lu(pivot, c), lu(col, c));
      std::swap(perm[pivot], perm[col]);
      sign = -sign;
    }
    const double d = lu(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = lu(r, col) / d;
      lu(r, col) = factor;
      if (factor == 0.0) continue;
      for (size_t c = col + 1; c < n; ++c) {
        lu(r, c) -= factor * lu(col, c);
      }
    }
  }
  return LuFactorization(std::move(lu), std::move(perm), sign);
}

Result<Vector> LuFactorization::Solve(const Vector& b) const {
  const size_t n = lu_.rows();
  if (b.size() != n) {
    return Status::InvalidArgument("rhs size mismatch in LU solve");
  }
  // Apply permutation, then forward/backward substitution.
  Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (size_t i = 0; i < n; ++i) {
    double acc = x[i];
    for (size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  for (size_t i = n; i-- > 0;) {
    double acc = x[i];
    for (size_t j = i + 1; j < n; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc / lu_(i, i);
  }
  for (double v : x) {
    if (!std::isfinite(v)) {
      return Status::NumericalError("non-finite LU solution");
    }
  }
  return x;
}

double LuFactorization::Determinant() const {
  double det = perm_sign_;
  for (size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b) {
  GENCLUS_ASSIGN_OR_RETURN(LuFactorization lu, LuFactorization::Compute(a));
  return lu.Solve(b);
}

Result<CholeskyFactorization> CholeskyFactorization::Compute(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double acc = a(i, j);
      for (size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      if (i == j) {
        if (acc <= 0.0 || !std::isfinite(acc)) {
          return Status::NumericalError(
              StrFormat("matrix not SPD at diagonal %zu (%g)", i, acc));
        }
        l(i, i) = std::sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
  }
  return CholeskyFactorization(std::move(l));
}

Result<Vector> CholeskyFactorization::Solve(const Vector& b) const {
  const size_t n = l_.rows();
  if (b.size() != n) {
    return Status::InvalidArgument("rhs size mismatch in Cholesky solve");
  }
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
    y[i] = acc / l_(i, i);
  }
  Vector x(n);
  for (size_t i = n; i-- > 0;) {
    double acc = y[i];
    for (size_t j = i + 1; j < n; ++j) acc -= l_(j, i) * x[j];
    x[i] = acc / l_(i, i);
  }
  return x;
}

double CholeskyFactorization::LogDeterminant() const {
  double acc = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

Result<Matrix> Inverse(const Matrix& a) {
  GENCLUS_ASSIGN_OR_RETURN(LuFactorization lu, LuFactorization::Compute(a));
  const size_t n = a.rows();
  Matrix inv(n, n);
  Vector e(n, 0.0);
  for (size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    GENCLUS_ASSIGN_OR_RETURN(Vector col, lu.Solve(e));
    for (size_t r = 0; r < n; ++r) inv(r, c) = col[r];
    e[c] = 0.0;
  }
  return inv;
}

}  // namespace genclus
