#include "hin/attributes.h"

#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace genclus {

namespace {
const std::vector<TermCount> kEmptyTermCounts;
const std::vector<double> kEmptyValues;
}  // namespace

Attribute::Attribute(std::string name, AttributeKind kind, size_t vocab_size,
                     size_t num_nodes)
    : name_(std::move(name)),
      kind_(kind),
      vocab_size_(vocab_size),
      num_nodes_(num_nodes) {
  if (kind_ == AttributeKind::kCategorical) {
    term_counts_.resize(num_nodes_);
  } else {
    values_.resize(num_nodes_);
  }
}

Attribute Attribute::Categorical(std::string name, size_t vocab_size,
                                 size_t num_nodes) {
  GENCLUS_CHECK_GT(vocab_size, 0u);
  return Attribute(std::move(name), AttributeKind::kCategorical, vocab_size,
                   num_nodes);
}

Attribute Attribute::Numerical(std::string name, size_t num_nodes) {
  return Attribute(std::move(name), AttributeKind::kNumerical, 0, num_nodes);
}

size_t Attribute::vocab_size() const {
  GENCLUS_CHECK(kind_ == AttributeKind::kCategorical);
  return vocab_size_;
}

Status Attribute::AddTermCount(NodeId v, uint32_t term, double count) {
  if (kind_ != AttributeKind::kCategorical) {
    return Status::FailedPrecondition(
        StrFormat("attribute '%s' is not categorical", name_.c_str()));
  }
  if (v >= num_nodes_) {
    return Status::InvalidArgument("AddTermCount: node id out of range");
  }
  if (term >= vocab_size_) {
    return Status::InvalidArgument(
        StrFormat("term %u out of vocabulary (size %zu)", term, vocab_size_));
  }
  if (!(count > 0.0) || !std::isfinite(count)) {
    return Status::InvalidArgument("AddTermCount: count must be positive");
  }
  for (TermCount& tc : term_counts_[v]) {
    if (tc.term == term) {
      tc.count += count;
      return Status::OK();
    }
  }
  term_counts_[v].push_back({term, count});
  return Status::OK();
}

Status Attribute::AddValue(NodeId v, double value) {
  if (kind_ != AttributeKind::kNumerical) {
    return Status::FailedPrecondition(
        StrFormat("attribute '%s' is not numerical", name_.c_str()));
  }
  if (v >= num_nodes_) {
    return Status::InvalidArgument("AddValue: node id out of range");
  }
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("AddValue: value must be finite");
  }
  values_[v].push_back(value);
  return Status::OK();
}

bool Attribute::HasObservations(NodeId v) const {
  GENCLUS_CHECK_LT(v, num_nodes_);
  if (kind_ == AttributeKind::kCategorical) return !term_counts_[v].empty();
  return !values_[v].empty();
}

const std::vector<TermCount>& Attribute::TermCounts(NodeId v) const {
  GENCLUS_CHECK(kind_ == AttributeKind::kCategorical);
  GENCLUS_CHECK_LT(v, num_nodes_);
  return term_counts_[v].empty() ? kEmptyTermCounts : term_counts_[v];
}

const std::vector<double>& Attribute::Values(NodeId v) const {
  GENCLUS_CHECK(kind_ == AttributeKind::kNumerical);
  GENCLUS_CHECK_LT(v, num_nodes_);
  return values_[v].empty() ? kEmptyValues : values_[v];
}

double Attribute::TotalObservations() const {
  double total = 0.0;
  if (kind_ == AttributeKind::kCategorical) {
    for (const auto& bag : term_counts_) {
      for (const TermCount& tc : bag) total += tc.count;
    }
  } else {
    for (const auto& list : values_) total += static_cast<double>(list.size());
  }
  return total;
}

size_t Attribute::NumObservedNodes() const {
  size_t n = 0;
  for (NodeId v = 0; v < num_nodes_; ++v) {
    if (HasObservations(v)) ++n;
  }
  return n;
}

void Attribute::SetTermNames(std::vector<std::string> names) {
  GENCLUS_CHECK(kind_ == AttributeKind::kCategorical);
  GENCLUS_CHECK_EQ(names.size(), vocab_size_);
  term_names_ = std::move(names);
}

}  // namespace genclus
