#include "hin/delta.h"

#include <utility>

#include "common/string_util.h"

namespace genclus {

namespace {

// Rebuilds `attr` over `num_nodes` nodes, copying every observation of
// the first min(attr.num_nodes(), num_nodes) nodes.
Result<Attribute> ResizeAttribute(const Attribute& attr, size_t num_nodes) {
  const size_t copied = std::min(attr.num_nodes(), num_nodes);
  if (attr.kind() == AttributeKind::kCategorical) {
    Attribute out =
        Attribute::Categorical(attr.name(), attr.vocab_size(), num_nodes);
    if (!attr.term_names().empty()) {
      out.SetTermNames(attr.term_names());
    }
    for (NodeId v = 0; v < copied; ++v) {
      for (const TermCount& tc : attr.TermCounts(v)) {
        GENCLUS_RETURN_IF_ERROR(out.AddTermCount(v, tc.term, tc.count));
      }
    }
    return out;
  }
  Attribute out = Attribute::Numerical(attr.name(), num_nodes);
  for (NodeId v = 0; v < copied; ++v) {
    for (double x : attr.Values(v)) {
      GENCLUS_RETURN_IF_ERROR(out.AddValue(v, x));
    }
  }
  return out;
}

}  // namespace

Result<Dataset> ApplyNetworkDelta(const Dataset& base,
                                  const NetworkDelta& delta) {
  const Network& net = base.network;
  const size_t base_nodes = net.num_nodes();
  const size_t total_nodes = base_nodes + delta.nodes.size();
  if (!delta.node_labels.empty() &&
      delta.node_labels.size() != delta.nodes.size()) {
    return Status::InvalidArgument(StrFormat(
        "delta carries %zu node labels for %zu new nodes",
        delta.node_labels.size(), delta.nodes.size()));
  }

  NetworkBuilder builder(net.schema());
  for (NodeId v = 0; v < base_nodes; ++v) {
    GENCLUS_ASSIGN_OR_RETURN(
        NodeId id, builder.AddNode(net.node_type(v), net.node_name(v)));
    (void)id;
  }
  for (const DeltaNode& node : delta.nodes) {
    GENCLUS_ASSIGN_OR_RETURN(NodeId id,
                             builder.AddNode(node.type, node.name));
    (void)id;
  }
  // Every base link appears exactly once in the out-adjacency of its
  // source, so one out-link pass replays them all.
  for (NodeId v = 0; v < base_nodes; ++v) {
    for (const LinkEntry& e : net.OutLinks(v)) {
      GENCLUS_RETURN_IF_ERROR(
          builder.AddLink(v, e.neighbor, e.type, e.weight));
    }
  }
  for (const DeltaLink& link : delta.links) {
    if (link.src >= total_nodes || link.dst >= total_nodes) {
      return Status::InvalidArgument(StrFormat(
          "delta link %u -> %u addresses past the grown node count %zu",
          link.src, link.dst, total_nodes));
    }
    GENCLUS_RETURN_IF_ERROR(
        builder.AddLink(link.src, link.dst, link.type, link.weight));
  }

  Dataset out;
  GENCLUS_ASSIGN_OR_RETURN(out.network, std::move(builder).Build());

  out.attributes.reserve(base.attributes.size());
  for (const Attribute& attr : base.attributes) {
    GENCLUS_ASSIGN_OR_RETURN(Attribute grown,
                             ResizeAttribute(attr, total_nodes));
    out.attributes.push_back(std::move(grown));
  }
  for (const DeltaObservation& obs : delta.observations) {
    if (obs.attribute >= out.attributes.size()) {
      return Status::InvalidArgument(StrFormat(
          "delta observation references unknown attribute %u",
          obs.attribute));
    }
    if (obs.node >= total_nodes) {
      return Status::InvalidArgument(StrFormat(
          "delta observation addresses node %u past the grown node count "
          "%zu", obs.node, total_nodes));
    }
    Attribute& attr = out.attributes[obs.attribute];
    if (attr.kind() == AttributeKind::kCategorical) {
      GENCLUS_RETURN_IF_ERROR(
          attr.AddTermCount(obs.node, obs.term, obs.count));
    } else {
      GENCLUS_RETURN_IF_ERROR(attr.AddValue(obs.node, obs.value));
    }
  }

  out.labels = Labels(total_nodes);
  if (base.labels.size() == base_nodes) {
    for (NodeId v = 0; v < base_nodes; ++v) {
      out.labels.Set(v, base.labels.Get(v));
    }
  }
  for (size_t i = 0; i < delta.node_labels.size(); ++i) {
    out.labels.Set(static_cast<NodeId>(base_nodes + i),
                   delta.node_labels[i]);
  }

  GENCLUS_RETURN_IF_ERROR(out.Validate());
  return out;
}

Result<Dataset> SliceDatasetPrefix(const Dataset& full, size_t num_nodes,
                                   NetworkDelta* remainder) {
  const Network& net = full.network;
  const size_t total = net.num_nodes();
  if (num_nodes > total) {
    return Status::InvalidArgument(StrFormat(
        "prefix of %zu nodes requested from a %zu-node dataset", num_nodes,
        total));
  }
  const bool has_labels = full.labels.size() == total;

  NetworkBuilder builder(net.schema());
  for (NodeId v = 0; v < num_nodes; ++v) {
    GENCLUS_ASSIGN_OR_RETURN(
        NodeId id, builder.AddNode(net.node_type(v), net.node_name(v)));
    (void)id;
  }
  if (remainder != nullptr) {
    *remainder = NetworkDelta();
    remainder->nodes.reserve(total - num_nodes);
    for (NodeId v = static_cast<NodeId>(num_nodes); v < total; ++v) {
      remainder->nodes.push_back({net.node_type(v), net.node_name(v)});
      if (has_labels) {
        remainder->node_labels.push_back(full.labels.Get(v));
      }
    }
  }
  for (NodeId v = 0; v < total; ++v) {
    for (const LinkEntry& e : net.OutLinks(v)) {
      if (v < num_nodes && e.neighbor < num_nodes) {
        GENCLUS_RETURN_IF_ERROR(
            builder.AddLink(v, e.neighbor, e.type, e.weight));
      } else if (remainder != nullptr) {
        remainder->links.push_back({v, e.neighbor, e.type, e.weight});
      }
    }
  }

  Dataset out;
  GENCLUS_ASSIGN_OR_RETURN(out.network, std::move(builder).Build());

  out.attributes.reserve(full.attributes.size());
  for (size_t t = 0; t < full.attributes.size(); ++t) {
    const Attribute& attr = full.attributes[t];
    GENCLUS_ASSIGN_OR_RETURN(Attribute sliced,
                             ResizeAttribute(attr, num_nodes));
    out.attributes.push_back(std::move(sliced));
    if (remainder == nullptr) continue;
    const AttributeId id = static_cast<AttributeId>(t);
    for (NodeId v = static_cast<NodeId>(num_nodes); v < total; ++v) {
      if (attr.kind() == AttributeKind::kCategorical) {
        for (const TermCount& tc : attr.TermCounts(v)) {
          DeltaObservation obs;
          obs.attribute = id;
          obs.node = v;
          obs.term = tc.term;
          obs.count = tc.count;
          remainder->observations.push_back(obs);
        }
      } else {
        for (double x : attr.Values(v)) {
          DeltaObservation obs;
          obs.attribute = id;
          obs.node = v;
          obs.value = x;
          remainder->observations.push_back(obs);
        }
      }
    }
  }

  out.labels = Labels(num_nodes);
  if (has_labels) {
    for (NodeId v = 0; v < num_nodes; ++v) {
      out.labels.Set(v, full.labels.Get(v));
    }
  }

  GENCLUS_RETURN_IF_ERROR(out.Validate());
  return out;
}

}  // namespace genclus
