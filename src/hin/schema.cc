#include "hin/schema.h"

#include "common/check.h"
#include "common/string_util.h"

namespace genclus {

Result<ObjectTypeId> Schema::AddObjectType(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("object type name must be non-empty");
  }
  if (FindObjectType(name) != kInvalidObjectType) {
    return Status::AlreadyExists(
        StrFormat("object type '%s' already declared", name.c_str()));
  }
  object_type_names_.push_back(name);
  return static_cast<ObjectTypeId>(object_type_names_.size() - 1);
}

Result<LinkTypeId> Schema::AddLinkType(const std::string& name,
                                       ObjectTypeId source,
                                       ObjectTypeId target) {
  if (name.empty()) {
    return Status::InvalidArgument("link type name must be non-empty");
  }
  if (!ValidObjectType(source) || !ValidObjectType(target)) {
    return Status::InvalidArgument(
        StrFormat("link type '%s' references unknown object type",
                  name.c_str()));
  }
  if (FindLinkType(name) != kInvalidLinkType) {
    return Status::AlreadyExists(
        StrFormat("link type '%s' already declared", name.c_str()));
  }
  LinkTypeInfo info;
  info.name = name;
  info.source_type = source;
  info.target_type = target;
  link_types_.push_back(std::move(info));
  return static_cast<LinkTypeId>(link_types_.size() - 1);
}

Status Schema::SetInverse(LinkTypeId a, LinkTypeId b) {
  if (!ValidLinkType(a) || !ValidLinkType(b)) {
    return Status::InvalidArgument("SetInverse: unknown link type");
  }
  const LinkTypeInfo& ia = link_types_[a];
  const LinkTypeInfo& ib = link_types_[b];
  if (ia.source_type != ib.target_type || ia.target_type != ib.source_type) {
    return Status::InvalidArgument(StrFormat(
        "SetInverse: '%s' and '%s' endpoint types do not mirror",
        ia.name.c_str(), ib.name.c_str()));
  }
  link_types_[a].inverse = b;
  link_types_[b].inverse = a;
  return Status::OK();
}

const std::string& Schema::object_type_name(ObjectTypeId t) const {
  GENCLUS_CHECK(ValidObjectType(t));
  return object_type_names_[t];
}

const LinkTypeInfo& Schema::link_type(LinkTypeId r) const {
  GENCLUS_CHECK(ValidLinkType(r));
  return link_types_[r];
}

ObjectTypeId Schema::FindObjectType(const std::string& name) const {
  for (size_t i = 0; i < object_type_names_.size(); ++i) {
    if (object_type_names_[i] == name) return static_cast<ObjectTypeId>(i);
  }
  return kInvalidObjectType;
}

LinkTypeId Schema::FindLinkType(const std::string& name) const {
  for (size_t i = 0; i < link_types_.size(); ++i) {
    if (link_types_[i].name == name) return static_cast<LinkTypeId>(i);
  }
  return kInvalidLinkType;
}

}  // namespace genclus
