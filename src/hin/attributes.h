// Attribute storage. Attributes are first-class incomplete: each object
// carries a (possibly empty) bag of observations v[X] (§2.1). Two kinds:
//   * categorical (text): observations are term counts over a vocabulary,
//     modeled by per-cluster categorical components (Eq. 3);
//   * numerical: observations are real values, modeled by per-cluster
//     Gaussians (Eq. 4).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hin/types.h"

namespace genclus {

enum class AttributeKind {
  kCategorical,
  kNumerical,
};

/// One sparse term-count entry of a categorical observation bag.
struct TermCount {
  uint32_t term;
  double count;
};

/// One attribute X over all nodes of a network. Construct with the matching
/// factory, then add observations keyed by node id. Nodes with no
/// observations simply never appear (HasObservations(v) == false), which is
/// the incomplete-attribute case the model is designed for.
class Attribute {
 public:
  /// Text-like attribute with `vocab_size` distinct terms.
  static Attribute Categorical(std::string name, size_t vocab_size,
                               size_t num_nodes);

  /// Real-valued attribute.
  static Attribute Numerical(std::string name, size_t num_nodes);

  const std::string& name() const { return name_; }
  AttributeKind kind() const { return kind_; }
  size_t num_nodes() const { return num_nodes_; }

  /// Vocabulary size; only valid for categorical attributes.
  size_t vocab_size() const;

  /// Adds `count` occurrences of `term` to node v's bag (categorical).
  /// Accumulates if the term is already present.
  Status AddTermCount(NodeId v, uint32_t term, double count = 1.0);

  /// Appends a numerical observation to node v's list.
  Status AddValue(NodeId v, double value);

  /// True if v carries at least one observation of this attribute.
  bool HasObservations(NodeId v) const;

  /// Sparse term counts of node v (categorical; empty when absent).
  const std::vector<TermCount>& TermCounts(NodeId v) const;

  /// Value list of node v (numerical; empty when absent).
  const std::vector<double>& Values(NodeId v) const;

  /// Total observation count across all nodes: sum of counts (categorical)
  /// or number of values (numerical).
  double TotalObservations() const;

  /// Number of nodes with at least one observation.
  size_t NumObservedNodes() const;

  /// Optional human-readable term names (categorical); empty if unset.
  void SetTermNames(std::vector<std::string> names);
  const std::vector<std::string>& term_names() const { return term_names_; }

 private:
  Attribute(std::string name, AttributeKind kind, size_t vocab_size,
            size_t num_nodes);

  std::string name_;
  AttributeKind kind_;
  size_t vocab_size_;
  size_t num_nodes_;
  // Indexed by node id; exactly one of these is populated per kind.
  std::vector<std::vector<TermCount>> term_counts_;
  std::vector<std::vector<double>> values_;
  std::vector<std::string> term_names_;
};

}  // namespace genclus
