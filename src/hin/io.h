// Plain-text serialization of Datasets: a line-oriented format with
// sections for schema, nodes, links, attributes, and labels. Intended for
// exchanging the synthetic benchmark networks and for round-trip tests.
// The model format (core/model_io.h) shares the same record scaffolding
// via ForEachTextRecord.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "hin/dataset.h"

namespace genclus {

/// Streams the line-oriented text format shared by the dataset and model
/// files: reads `path`, skips blank lines and '#' comments, tokenizes each
/// record on whitespace, and calls fn(line_no, tokens). A non-OK return
/// from fn aborts the scan and is propagated. Errors that fn reports
/// should use RecordError for uniform "<path>:<line>: <why>" messages.
Status ForEachTextRecord(
    const std::string& path,
    const std::function<Status(size_t line_no,
                               const std::vector<std::string>& tokens)>& fn);

/// An IoError pinpointing a record: "<path>:<line>: <why>".
Status RecordError(const std::string& path, size_t line_no, const char* why);

/// Writes `dataset` to `path`. The format is self-describing; see
/// LoadDataset for the grammar.
Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by SaveDataset.
///
/// Grammar (one record per line, '#' starts a comment):
///   object_type <name>
///   link_type <name> <source_type> <target_type>
///   inverse <link_type_a> <link_type_b>
///   node <object_type> [name]
///   link <src_id> <dst_id> <link_type> <weight>
///   attribute categorical <name> <vocab_size>
///   attribute numerical <name>
///   obs_term <attr_name> <node_id> <term> <count>
///   obs_value <attr_name> <node_id> <value>
///   label <node_id> <cluster>
Result<Dataset> LoadDataset(const std::string& path);

}  // namespace genclus
