// Plain-text serialization of Datasets: a line-oriented format with
// sections for schema, nodes, links, attributes, and labels. Intended for
// exchanging the synthetic benchmark networks and for round-trip tests.
#pragma once

#include <string>

#include "common/status.h"
#include "hin/dataset.h"

namespace genclus {

/// Writes `dataset` to `path`. The format is self-describing; see
/// LoadDataset for the grammar.
Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by SaveDataset.
///
/// Grammar (one record per line, '#' starts a comment):
///   object_type <name>
///   link_type <name> <source_type> <target_type>
///   inverse <link_type_a> <link_type_b>
///   node <object_type> [name]
///   link <src_id> <dst_id> <link_type> <weight>
///   attribute categorical <name> <vocab_size>
///   attribute numerical <name>
///   obs_term <attr_name> <node_id> <term> <count>
///   obs_value <attr_name> <node_id> <value>
///   label <node_id> <cluster>
Result<Dataset> LoadDataset(const std::string& path);

}  // namespace genclus
