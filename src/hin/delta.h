// Streaming growth of a HIN dataset. A NetworkDelta describes what
// arrived since a base snapshot — new objects, new links (between any mix
// of old and new nodes) and new attribute observations — in the base's id
// space: the i-th new node of a delta gets id base.num_nodes() + i.
//
// Networks are immutable after Build, so growth is expressed as dataset
// algebra: ApplyNetworkDelta rebuilds the grown Dataset (ids of surviving
// nodes never change, which is what lets Engine::Refit carry their Theta
// rows over), and SliceDatasetPrefix cuts one full dataset into a
// base-plus-remainder pair — the growth-fixture generator refit_bench and
// the incremental-maintenance tests are built on. The serving-side
// consumer is ApplyUpdates (core/update.h), which folds deltas into a
// fitted model between refits.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "hin/dataset.h"

namespace genclus {

/// A node that arrived after the base snapshot. Delta nodes are appended
/// in order, so the i-th one gets id base.num_nodes() + i.
struct DeltaNode {
  ObjectTypeId type = 0;
  std::string name;
};

/// A link that arrived after the base snapshot; endpoints address the
/// grown id space (base nodes keep their ids, delta nodes follow).
struct DeltaLink {
  NodeId src = 0;
  NodeId dst = 0;
  LinkTypeId type = 0;
  double weight = 1.0;
};

/// One late-arriving attribute observation. `attribute` indexes the base
/// dataset's attribute list; term/count apply to categorical attributes,
/// value to numerical ones. Observations may land on old nodes too — the
/// incomplete-attribute setting, where attributes trickle in after the
/// object itself.
struct DeltaObservation {
  AttributeId attribute = 0;
  NodeId node = 0;
  uint32_t term = 0;
  double count = 1.0;
  double value = 0.0;
};

/// One batch of growth relative to a base snapshot.
struct NetworkDelta {
  std::vector<DeltaNode> nodes;
  std::vector<DeltaLink> links;
  std::vector<DeltaObservation> observations;
  /// Ground-truth labels of the new nodes (evaluation only): either empty
  /// or parallel to `nodes`, kUnlabeled for unknown.
  std::vector<uint32_t> node_labels;

  bool empty() const {
    return nodes.empty() && links.empty() && observations.empty();
  }
};

/// Applies `delta` to `base` and returns the grown dataset; `base` is
/// untouched. Base node ids carry over unchanged and delta nodes append
/// in order. Each observation is applied according to its attribute's
/// kind (term/count for categorical, value for numerical). Fails with
/// InvalidArgument on out-of-range endpoints or terms, unknown attribute
/// ids, or a non-empty node_labels whose size differs from delta.nodes.
Result<Dataset> ApplyNetworkDelta(const Dataset& base,
                                  const NetworkDelta& delta);

/// Cuts `full` into its first `num_nodes` nodes — keeping exactly the
/// links and observations among them — and, when `remainder` is non-null,
/// the delta holding everything else, addressed so that
/// ApplyNetworkDelta(prefix, *remainder) reproduces `full` exactly.
/// Fails with InvalidArgument when num_nodes > full.network.num_nodes().
Result<Dataset> SliceDatasetPrefix(const Dataset& full, size_t num_nodes,
                                   NetworkDelta* remainder);

}  // namespace genclus
