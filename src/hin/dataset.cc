#include "hin/dataset.h"

#include "common/string_util.h"

namespace genclus {

size_t Labels::NumLabeled() const {
  size_t n = 0;
  for (uint32_t l : labels_) {
    if (l != kUnlabeled) ++n;
  }
  return n;
}

Status Dataset::Validate() const {
  const size_t n = network.num_nodes();
  for (const Attribute& attr : attributes) {
    if (attr.num_nodes() != n) {
      return Status::FailedPrecondition(
          StrFormat("attribute '%s' sized for %zu nodes, network has %zu",
                    attr.name().c_str(), attr.num_nodes(), n));
    }
  }
  if (labels.size() != 0 && labels.size() != n) {
    return Status::FailedPrecondition(
        StrFormat("labels sized for %zu nodes, network has %zu",
                  labels.size(), n));
  }
  return Status::OK();
}

AttributeId Dataset::FindAttribute(const std::string& name) const {
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i].name() == name) return static_cast<AttributeId>(i);
  }
  return kInvalidAttribute;
}

}  // namespace genclus
