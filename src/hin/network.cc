#include "hin/network.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace genclus {

Result<NodeId> NetworkBuilder::AddNode(ObjectTypeId type, std::string name) {
  if (!schema_.ValidObjectType(type)) {
    return Status::InvalidArgument("AddNode: unknown object type");
  }
  if (node_types_.size() >= static_cast<size_t>(kInvalidNode)) {
    return Status::OutOfRange("node id space exhausted");
  }
  node_types_.push_back(type);
  node_names_.push_back(std::move(name));
  return static_cast<NodeId>(node_types_.size() - 1);
}

Status NetworkBuilder::AddLink(NodeId src, NodeId dst, LinkTypeId type,
                               double weight) {
  if (src >= node_types_.size() || dst >= node_types_.size()) {
    return Status::InvalidArgument("AddLink: unknown node id");
  }
  if (!schema_.ValidLinkType(type)) {
    return Status::InvalidArgument("AddLink: unknown link type");
  }
  if (!(weight > 0.0) || !std::isfinite(weight)) {
    return Status::InvalidArgument("AddLink: weight must be positive finite");
  }
  const LinkTypeInfo& info = schema_.link_type(type);
  if (node_types_[src] != info.source_type ||
      node_types_[dst] != info.target_type) {
    return Status::InvalidArgument(StrFormat(
        "AddLink: link type '%s' expects (%s -> %s) but got (%s -> %s)",
        info.name.c_str(),
        schema_.object_type_name(info.source_type).c_str(),
        schema_.object_type_name(info.target_type).c_str(),
        schema_.object_type_name(node_types_[src]).c_str(),
        schema_.object_type_name(node_types_[dst]).c_str()));
  }
  link_srcs_.push_back(src);
  link_dsts_.push_back(dst);
  link_types_.push_back(type);
  link_weights_.push_back(weight);
  return Status::OK();
}

Result<Network> NetworkBuilder::Build() && {
  Network net;
  const size_t n = node_types_.size();
  const size_t m = link_srcs_.size();

  // The typed-CSR views hand 32-bit neighbor ids to the SpMM kernels
  // (linalg's CsrMatrixView), with the all-ones id reserved as
  // kInvalidNode. AddNode already refuses to mint ids at the sentinel;
  // this guard keeps the contract explicit at the one place the CSR is
  // actually assembled (defense in depth for future builder entry
  // points, same rule as linalg's ValidateCsrColumnCount).
  if (n > static_cast<size_t>(kInvalidNode)) {
    return Status::InvalidArgument(StrFormat(
        "network has %zu nodes, exceeding the 32-bit CSR node-id space",
        n));
  }

  net.schema_ = std::move(schema_);
  net.node_types_ = std::move(node_types_);
  net.node_names_ = std::move(node_names_);

  net.nodes_by_type_.assign(net.schema_.num_object_types(), {});
  for (NodeId v = 0; v < n; ++v) {
    net.nodes_by_type_[net.node_types_[v]].push_back(v);
  }

  net.link_counts_by_type_.assign(net.schema_.num_link_types(), 0);
  net.link_weights_by_type_.assign(net.schema_.num_link_types(), 0.0);
  for (size_t e = 0; e < m; ++e) {
    net.link_counts_by_type_[link_types_[e]]++;
    net.link_weights_by_type_[link_types_[e]] += link_weights_[e];
  }

  // Counting-sort links into per-direction CSR.
  net.out_offsets_.assign(n + 1, 0);
  net.in_offsets_.assign(n + 1, 0);
  for (size_t e = 0; e < m; ++e) {
    net.out_offsets_[link_srcs_[e] + 1]++;
    net.in_offsets_[link_dsts_[e] + 1]++;
  }
  for (size_t v = 0; v < n; ++v) {
    net.out_offsets_[v + 1] += net.out_offsets_[v];
    net.in_offsets_[v + 1] += net.in_offsets_[v];
  }
  net.out_entries_.resize(m);
  net.in_entries_.resize(m);
  std::vector<size_t> out_cursor(net.out_offsets_.begin(),
                                 net.out_offsets_.end() - 1);
  std::vector<size_t> in_cursor(net.in_offsets_.begin(),
                                net.in_offsets_.end() - 1);
  for (size_t e = 0; e < m; ++e) {
    net.out_entries_[out_cursor[link_srcs_[e]]++] = {link_dsts_[e],
                                                     link_types_[e],
                                                     link_weights_[e]};
    net.in_entries_[in_cursor[link_dsts_[e]]++] = {link_srcs_[e],
                                                   link_types_[e],
                                                   link_weights_[e]};
  }
  // Canonical ordering within each node's range: by type then neighbor.
  auto by_type_then_neighbor = [](const LinkEntry& a, const LinkEntry& b) {
    if (a.type != b.type) return a.type < b.type;
    return a.neighbor < b.neighbor;
  };
  for (size_t v = 0; v < n; ++v) {
    std::sort(net.out_entries_.begin() + net.out_offsets_[v],
              net.out_entries_.begin() + net.out_offsets_[v + 1],
              by_type_then_neighbor);
    std::sort(net.in_entries_.begin() + net.in_offsets_[v],
              net.in_entries_.begin() + net.in_offsets_[v + 1],
              by_type_then_neighbor);
  }

  // Per-relation SoA adjacency: split the sorted out-link ranges into one
  // CSR matrix per link type, neighbors ascending within each row.
  const size_t num_relations = net.schema_.num_link_types();
  net.typed_out_offsets_.assign(num_relations,
                                std::vector<size_t>(n + 1, 0));
  net.typed_out_neighbors_.assign(num_relations, {});
  net.typed_out_weights_.assign(num_relations, {});
  for (LinkTypeId r = 0; r < num_relations; ++r) {
    net.typed_out_neighbors_[r].reserve(net.link_counts_by_type_[r]);
    net.typed_out_weights_[r].reserve(net.link_counts_by_type_[r]);
  }
  for (size_t v = 0; v < n; ++v) {
    for (size_t i = net.out_offsets_[v]; i < net.out_offsets_[v + 1]; ++i) {
      const LinkEntry& e = net.out_entries_[i];
      net.typed_out_neighbors_[e.type].push_back(e.neighbor);
      net.typed_out_weights_[e.type].push_back(e.weight);
    }
    for (LinkTypeId r = 0; r < num_relations; ++r) {
      net.typed_out_offsets_[r][v + 1] = net.typed_out_neighbors_[r].size();
    }
  }
  return net;
}

const std::vector<NodeId>& Network::NodesOfType(ObjectTypeId t) const {
  GENCLUS_CHECK(schema_.ValidObjectType(t));
  return nodes_by_type_[t];
}

double Network::LinkWeight(NodeId src, NodeId dst, LinkTypeId type) const {
  for (const LinkEntry& e : OutLinks(src)) {
    if (e.type == type && e.neighbor == dst) return e.weight;
  }
  return 0.0;
}

}  // namespace genclus
