// Network schema: the set of object types A and link types (relations) R,
// with each relation's source/target object types and optional inverse
// pairing (the paper's R and R^{-1}, §2.1).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "hin/types.h"

namespace genclus {

/// Declared relation: a named, directed link type between two object types.
struct LinkTypeInfo {
  std::string name;
  ObjectTypeId source_type = kInvalidObjectType;
  ObjectTypeId target_type = kInvalidObjectType;
  /// The paired inverse relation (kInvalidLinkType if not declared).
  LinkTypeId inverse = kInvalidLinkType;
};

/// Registry of object types and link types. Build once, then treat as
/// immutable; Network validates every node and link against it.
class Schema {
 public:
  /// Registers an object type; fails on duplicate names.
  Result<ObjectTypeId> AddObjectType(const std::string& name);

  /// Registers a directed link type from `source` to `target` object types.
  Result<LinkTypeId> AddLinkType(const std::string& name,
                                 ObjectTypeId source, ObjectTypeId target);

  /// Declares `a` and `b` as mutual inverses (e.g. write / written_by).
  /// Their endpoint types must mirror each other.
  Status SetInverse(LinkTypeId a, LinkTypeId b);

  size_t num_object_types() const { return object_type_names_.size(); }
  size_t num_link_types() const { return link_types_.size(); }

  const std::string& object_type_name(ObjectTypeId t) const;
  const LinkTypeInfo& link_type(LinkTypeId r) const;

  /// Name lookup; kInvalid* when absent.
  ObjectTypeId FindObjectType(const std::string& name) const;
  LinkTypeId FindLinkType(const std::string& name) const;

  bool ValidObjectType(ObjectTypeId t) const {
    return t < object_type_names_.size();
  }
  bool ValidLinkType(LinkTypeId r) const { return r < link_types_.size(); }

 private:
  std::vector<std::string> object_type_names_;
  std::vector<LinkTypeInfo> link_types_;
};

}  // namespace genclus
