// The heterogeneous information network G = (V, E, W): typed nodes, typed
// weighted directed links, CSR adjacency in both directions. Built once via
// NetworkBuilder, then immutable — the EM inner loop scans contiguous
// out-link (and in-link) ranges.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "hin/schema.h"
#include "hin/types.h"

namespace genclus {

/// One directed link endpoint as seen from a fixed node: the neighbor, the
/// relation, and the input weight w(e).
struct LinkEntry {
  NodeId neighbor;
  LinkTypeId type;
  double weight;
};

/// SoA view of one relation's out-adjacency: the CSR matrix W_r over all
/// nodes, with neighbor ids and weights in contiguous arrays. Row v spans
/// [row_offsets[v], row_offsets[v + 1]); neighbors are ascending within a
/// row. This is the shape the EM E-step's SpMM kernel consumes (the link
/// term of Eq. 10 is sum_r gamma_r * W_r Theta).
struct RelationCsr {
  std::span<const size_t> row_offsets;  // num_nodes + 1
  std::span<const NodeId> neighbors;
  std::span<const double> weights;

  size_t nnz() const { return neighbors.size(); }
};

class Network;

/// Accumulates nodes and links, validates them against the schema, and
/// produces an immutable Network.
class NetworkBuilder {
 public:
  explicit NetworkBuilder(Schema schema) : schema_(std::move(schema)) {}

  /// Adds an object of the given type; `name` is for reporting only and
  /// need not be unique. Returns the dense node id.
  Result<NodeId> AddNode(ObjectTypeId type, std::string name = "");

  /// Adds a directed link src -> dst of relation `type` with weight > 0.
  /// Endpoint object types must match the schema's declaration.
  Status AddLink(NodeId src, NodeId dst, LinkTypeId type, double weight = 1.0);

  size_t num_nodes() const { return node_types_.size(); }
  size_t num_links() const { return link_srcs_.size(); }

  /// Finalizes into a Network. The builder is consumed.
  Result<Network> Build() &&;

 private:
  Schema schema_;
  std::vector<ObjectTypeId> node_types_;
  std::vector<std::string> node_names_;
  std::vector<NodeId> link_srcs_;
  std::vector<NodeId> link_dsts_;
  std::vector<LinkTypeId> link_types_;
  std::vector<double> link_weights_;
};

/// Immutable typed directed graph with per-direction CSR adjacency.
class Network {
 public:
  Network() = default;

  const Schema& schema() const { return schema_; }
  size_t num_nodes() const { return node_types_.size(); }
  size_t num_links() const { return out_entries_.size(); }

  ObjectTypeId node_type(NodeId v) const {
    GENCLUS_DCHECK(v < node_types_.size());
    return node_types_[v];
  }
  const std::string& node_name(NodeId v) const {
    GENCLUS_DCHECK(v < node_names_.size());
    return node_names_[v];
  }

  /// All nodes of one object type, in id order.
  const std::vector<NodeId>& NodesOfType(ObjectTypeId t) const;

  /// Out-links of v (v is the source), grouped contiguously; the span is
  /// sorted by link type then neighbor.
  std::span<const LinkEntry> OutLinks(NodeId v) const {
    GENCLUS_DCHECK(v < node_types_.size());
    return {out_entries_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  /// In-links of v (v is the target); entry.neighbor is the source node.
  std::span<const LinkEntry> InLinks(NodeId v) const {
    GENCLUS_DCHECK(v < node_types_.size());
    return {in_entries_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  size_t OutDegree(NodeId v) const { return OutLinks(v).size(); }
  size_t InDegree(NodeId v) const { return InLinks(v).size(); }

  /// Out-adjacency of one relation as a CSR matrix over all nodes. The
  /// arrays are materialized at Build time, so the view is valid for the
  /// network's lifetime and costs nothing to obtain.
  RelationCsr OutCsr(LinkTypeId r) const {
    GENCLUS_DCHECK(r < typed_out_offsets_.size());
    return {typed_out_offsets_[r], typed_out_neighbors_[r],
            typed_out_weights_[r]};
  }

  /// Number of links of each relation across the whole network.
  const std::vector<size_t>& LinkCountsByType() const {
    return link_counts_by_type_;
  }

  /// Sum of link weights of each relation.
  const std::vector<double>& LinkWeightsByType() const {
    return link_weights_by_type_;
  }

  /// Weight of the src -> dst link of relation `type`; 0 when absent.
  double LinkWeight(NodeId src, NodeId dst, LinkTypeId type) const;

 private:
  friend class NetworkBuilder;

  Schema schema_;
  std::vector<ObjectTypeId> node_types_;
  std::vector<std::string> node_names_;
  std::vector<std::vector<NodeId>> nodes_by_type_;

  std::vector<size_t> out_offsets_;  // size num_nodes + 1
  std::vector<LinkEntry> out_entries_;
  std::vector<size_t> in_offsets_;
  std::vector<LinkEntry> in_entries_;

  // Per-relation SoA out-adjacency (indexed by link type), mirroring
  // out_entries_ grouped by relation; see OutCsr.
  std::vector<std::vector<size_t>> typed_out_offsets_;
  std::vector<std::vector<NodeId>> typed_out_neighbors_;
  std::vector<std::vector<double>> typed_out_weights_;

  std::vector<size_t> link_counts_by_type_;
  std::vector<double> link_weights_by_type_;
};

}  // namespace genclus
