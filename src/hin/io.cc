#include "hin/io.h"

#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/string_util.h"

namespace genclus {

Status RecordError(const std::string& path, size_t line_no, const char* why) {
  return Status::IoError(
      StrFormat("%s:%zu: %s", path.c_str(), line_no, why));
}

Status ForEachTextRecord(
    const std::string& path,
    const std::function<Status(size_t line_no,
                               const std::vector<std::string>& tokens)>& fn) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    GENCLUS_RETURN_IF_ERROR(fn(line_no, SplitWhitespace(trimmed)));
  }
  return Status::OK();
}

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  GENCLUS_RETURN_IF_ERROR(dataset.Validate());
  std::ofstream out(path);
  if (!out) {
    return Status::IoError(StrFormat("cannot open '%s' for writing",
                                     path.c_str()));
  }
  const Network& net = dataset.network;
  const Schema& schema = net.schema();

  // Round-trip exactness: shortest representation that parses back to the
  // same double.
  out << std::setprecision(17);
  out << "# genclus dataset v1\n";
  for (ObjectTypeId t = 0; t < schema.num_object_types(); ++t) {
    out << "object_type " << schema.object_type_name(t) << "\n";
  }
  for (LinkTypeId r = 0; r < schema.num_link_types(); ++r) {
    const LinkTypeInfo& info = schema.link_type(r);
    out << "link_type " << info.name << " "
        << schema.object_type_name(info.source_type) << " "
        << schema.object_type_name(info.target_type) << "\n";
  }
  for (LinkTypeId r = 0; r < schema.num_link_types(); ++r) {
    const LinkTypeInfo& info = schema.link_type(r);
    if (info.inverse != kInvalidLinkType && r < info.inverse) {
      out << "inverse " << info.name << " "
          << schema.link_type(info.inverse).name << "\n";
    }
  }
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    out << "node " << schema.object_type_name(net.node_type(v));
    if (!net.node_name(v).empty()) out << " " << net.node_name(v);
    out << "\n";
  }
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    for (const LinkEntry& e : net.OutLinks(v)) {
      out << "link " << v << " " << e.neighbor << " "
          << schema.link_type(e.type).name << " " << e.weight << "\n";
    }
  }
  for (const Attribute& attr : dataset.attributes) {
    if (attr.kind() == AttributeKind::kCategorical) {
      out << "attribute categorical " << attr.name() << " "
          << attr.vocab_size() << "\n";
      for (NodeId v = 0; v < net.num_nodes(); ++v) {
        for (const TermCount& tc : attr.TermCounts(v)) {
          out << "obs_term " << attr.name() << " " << v << " " << tc.term
              << " " << tc.count << "\n";
        }
      }
    } else {
      out << "attribute numerical " << attr.name() << "\n";
      for (NodeId v = 0; v < net.num_nodes(); ++v) {
        for (double x : attr.Values(v)) {
          out << "obs_value " << attr.name() << " " << v << " " << x << "\n";
        }
      }
    }
  }
  if (dataset.labels.size() > 0) {
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (dataset.labels.IsLabeled(v)) {
        out << "label " << v << " " << dataset.labels.Get(v) << "\n";
      }
    }
  }
  out.flush();
  if (!out) {
    return Status::IoError(StrFormat("write to '%s' failed", path.c_str()));
  }
  return Status::OK();
}

Result<Dataset> LoadDataset(const std::string& path) {
  Schema schema;
  struct PendingNode {
    std::string type;
    std::string name;
  };
  struct PendingLink {
    NodeId src;
    NodeId dst;
    std::string type;
    double weight;
  };
  std::vector<PendingNode> nodes;
  std::vector<PendingLink> links;
  std::vector<std::pair<std::string, std::string>> inverses;
  // Attribute name -> (kind, vocab). Observations are replayed after build.
  struct PendingAttr {
    std::string name;
    AttributeKind kind;
    size_t vocab = 0;
  };
  std::vector<PendingAttr> attr_decls;
  struct PendingTermObs {
    std::string attr;
    NodeId node;
    uint32_t term;
    double count;
  };
  struct PendingValueObs {
    std::string attr;
    NodeId node;
    double value;
  };
  std::vector<PendingTermObs> term_obs;
  std::vector<PendingValueObs> value_obs;
  std::vector<std::pair<NodeId, uint32_t>> label_records;

  GENCLUS_RETURN_IF_ERROR(ForEachTextRecord(
      path,
      [&](size_t line_no,
          const std::vector<std::string>& tok) -> Status {
        const std::string& cmd = tok[0];
        auto bad = [&](const char* why) {
          return RecordError(path, line_no, why);
        };
        if (cmd == "object_type") {
          if (tok.size() != 2) return bad("object_type needs 1 field");
          auto r = schema.AddObjectType(tok[1]);
          if (!r.ok()) return r.status();
        } else if (cmd == "link_type") {
          if (tok.size() != 4) return bad("link_type needs 3 fields");
          ObjectTypeId s = schema.FindObjectType(tok[2]);
          ObjectTypeId t = schema.FindObjectType(tok[3]);
          if (s == kInvalidObjectType || t == kInvalidObjectType) {
            return bad("link_type references unknown object type");
          }
          auto r = schema.AddLinkType(tok[1], s, t);
          if (!r.ok()) return r.status();
        } else if (cmd == "inverse") {
          if (tok.size() != 3) return bad("inverse needs 2 fields");
          inverses.emplace_back(tok[1], tok[2]);
        } else if (cmd == "node") {
          if (tok.size() < 2) return bad("node needs at least 1 field");
          nodes.push_back({tok[1], tok.size() > 2 ? tok[2] : ""});
        } else if (cmd == "link") {
          if (tok.size() != 5) return bad("link needs 4 fields");
          PendingLink pl;
          if (!ParseUint32(tok[1], &pl.src) ||
              !ParseUint32(tok[2], &pl.dst) ||
              !ParseDouble(tok[4], &pl.weight)) {
            return bad("link has malformed numeric field");
          }
          pl.type = tok[3];
          links.push_back(std::move(pl));
        } else if (cmd == "attribute") {
          if (tok.size() < 3) return bad("attribute needs at least 2 fields");
          if (tok[1] == "categorical") {
            if (tok.size() != 4) {
              return bad("categorical attribute needs vocab");
            }
            size_t vocab = 0;
            if (!ParseSizeT(tok[3], &vocab)) {
              return bad("malformed vocabulary size");
            }
            attr_decls.push_back({tok[2], AttributeKind::kCategorical, vocab});
          } else if (tok[1] == "numerical") {
            attr_decls.push_back({tok[2], AttributeKind::kNumerical, 0});
          } else {
            return bad("unknown attribute kind");
          }
        } else if (cmd == "obs_term") {
          if (tok.size() != 5) return bad("obs_term needs 4 fields");
          PendingTermObs o;
          if (!ParseUint32(tok[2], &o.node) ||
              !ParseUint32(tok[3], &o.term) ||
              !ParseDouble(tok[4], &o.count)) {
            return bad("obs_term has malformed numeric field");
          }
          o.attr = tok[1];
          term_obs.push_back(std::move(o));
        } else if (cmd == "obs_value") {
          if (tok.size() != 4) return bad("obs_value needs 3 fields");
          PendingValueObs o;
          if (!ParseUint32(tok[2], &o.node) ||
              !ParseDouble(tok[3], &o.value)) {
            return bad("obs_value has malformed numeric field");
          }
          o.attr = tok[1];
          value_obs.push_back(std::move(o));
        } else if (cmd == "label") {
          if (tok.size() != 3) return bad("label needs 2 fields");
          NodeId v = 0;
          uint32_t l = 0;
          if (!ParseUint32(tok[1], &v) || !ParseUint32(tok[2], &l)) {
            return bad("label has malformed numeric field");
          }
          label_records.emplace_back(v, l);
        } else {
          return bad("unknown record type");
        }
        return Status::OK();
      }));

  for (const auto& [a, b] : inverses) {
    LinkTypeId ra = schema.FindLinkType(a);
    LinkTypeId rb = schema.FindLinkType(b);
    if (ra == kInvalidLinkType || rb == kInvalidLinkType) {
      return Status::IoError("inverse references unknown link type");
    }
    GENCLUS_RETURN_IF_ERROR(schema.SetInverse(ra, rb));
  }

  NetworkBuilder builder(schema);
  for (const PendingNode& pn : nodes) {
    ObjectTypeId t = schema.FindObjectType(pn.type);
    if (t == kInvalidObjectType) {
      return Status::IoError(
          StrFormat("node references unknown object type '%s'",
                    pn.type.c_str()));
    }
    auto r = builder.AddNode(t, pn.name);
    if (!r.ok()) return r.status();
  }
  for (const PendingLink& pl : links) {
    LinkTypeId r = schema.FindLinkType(pl.type);
    if (r == kInvalidLinkType) {
      return Status::IoError(StrFormat("link references unknown type '%s'",
                                       pl.type.c_str()));
    }
    GENCLUS_RETURN_IF_ERROR(builder.AddLink(pl.src, pl.dst, r, pl.weight));
  }
  GENCLUS_ASSIGN_OR_RETURN(Network net, std::move(builder).Build());
  const size_t n = net.num_nodes();

  Dataset dataset;
  dataset.network = std::move(net);
  for (const PendingAttr& pa : attr_decls) {
    if (pa.kind == AttributeKind::kCategorical) {
      dataset.attributes.push_back(
          Attribute::Categorical(pa.name, pa.vocab, n));
    } else {
      dataset.attributes.push_back(Attribute::Numerical(pa.name, n));
    }
  }
  for (const PendingTermObs& o : term_obs) {
    AttributeId id = dataset.FindAttribute(o.attr);
    if (id == kInvalidAttribute) {
      return Status::IoError("obs_term references unknown attribute");
    }
    GENCLUS_RETURN_IF_ERROR(
        dataset.attributes[id].AddTermCount(o.node, o.term, o.count));
  }
  for (const PendingValueObs& o : value_obs) {
    AttributeId id = dataset.FindAttribute(o.attr);
    if (id == kInvalidAttribute) {
      return Status::IoError("obs_value references unknown attribute");
    }
    GENCLUS_RETURN_IF_ERROR(dataset.attributes[id].AddValue(o.node, o.value));
  }
  if (!label_records.empty()) {
    dataset.labels = Labels(n);
    for (const auto& [v, l] : label_records) {
      if (v >= n) return Status::IoError("label references unknown node");
      dataset.labels.Set(v, l);
    }
  }
  GENCLUS_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace genclus
