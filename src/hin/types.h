// Strongly-typed ids for the heterogeneous information network. Object
// types, link types (relations), nodes and attributes all index different
// tables; distinct alias names keep them from being mixed accidentally.
#pragma once

#include <cstdint>
#include <limits>

namespace genclus {

/// Dense node index in a Network (the paper's v in V).
using NodeId = uint32_t;

/// Object type index (the paper's A, via tau: V -> A).
using ObjectTypeId = uint32_t;

/// Link type / relation index (the paper's R, via phi: E -> R).
using LinkTypeId = uint32_t;

/// Attribute index within a Dataset (the paper's X in calligraphic X).
using AttributeId = uint32_t;

/// Cluster index in [0, K).
using ClusterId = uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr ObjectTypeId kInvalidObjectType =
    std::numeric_limits<ObjectTypeId>::max();
inline constexpr LinkTypeId kInvalidLinkType =
    std::numeric_limits<LinkTypeId>::max();
inline constexpr AttributeId kInvalidAttribute =
    std::numeric_limits<AttributeId>::max();

/// Label value for nodes without ground truth.
inline constexpr uint32_t kUnlabeled = std::numeric_limits<uint32_t>::max();

}  // namespace genclus
