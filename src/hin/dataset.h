// A Dataset binds a Network with its attributes and optional ground-truth
// labels — the full clustering input of §2.2 (network, specified attribute
// subset, and for evaluation the labeled subsets).
#pragma once

#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "hin/attributes.h"
#include "hin/network.h"

namespace genclus {

/// Ground-truth cluster labels for a (subset of) nodes; kUnlabeled elsewhere.
class Labels {
 public:
  Labels() = default;
  explicit Labels(size_t num_nodes)
      : labels_(num_nodes, kUnlabeled) {}

  void Set(NodeId v, uint32_t label) {
    GENCLUS_CHECK_LT(v, labels_.size());
    labels_[v] = label;
  }
  uint32_t Get(NodeId v) const {
    GENCLUS_CHECK_LT(v, labels_.size());
    return labels_[v];
  }
  bool IsLabeled(NodeId v) const { return Get(v) != kUnlabeled; }
  size_t size() const { return labels_.size(); }
  size_t NumLabeled() const;

  const std::vector<uint32_t>& raw() const { return labels_; }

 private:
  std::vector<uint32_t> labels_;
};

/// Network + attributes + labels. Attribute order defines AttributeId.
struct Dataset {
  Network network;
  std::vector<Attribute> attributes;
  Labels labels;

  /// Checks internal consistency: attribute/label sizes match the network.
  Status Validate() const;

  /// Attribute lookup by name; kInvalidAttribute when absent.
  AttributeId FindAttribute(const std::string& name) const;
};

}  // namespace genclus
