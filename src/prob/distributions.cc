#include "prob/distributions.h"

#include <cmath>
#include <limits>
#include <numeric>

#include "common/string_util.h"
#include "prob/special_functions.h"

namespace genclus {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

CategoricalDistribution::CategoricalDistribution(size_t vocab_size)
    : probs_(vocab_size, vocab_size > 0 ? 1.0 / vocab_size : 0.0) {
  GENCLUS_CHECK_GT(vocab_size, 0u);
}

Result<CategoricalDistribution> CategoricalDistribution::FromProbabilities(
    std::vector<double> probs) {
  if (probs.empty()) {
    return Status::InvalidArgument("empty probability vector");
  }
  double total = 0.0;
  for (double p : probs) {
    if (p < 0.0 || !std::isfinite(p)) {
      return Status::InvalidArgument("negative or non-finite probability");
    }
    total += p;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("probabilities sum to zero");
  }
  for (double& p : probs) p /= total;
  return CategoricalDistribution(std::move(probs));
}

Result<CategoricalDistribution> CategoricalDistribution::FromCounts(
    const std::vector<double>& counts, double smoothing) {
  if (counts.empty()) {
    return Status::InvalidArgument("empty count vector");
  }
  if (smoothing < 0.0) {
    return Status::InvalidArgument("negative smoothing");
  }
  std::vector<double> probs(counts.size());
  double total = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] < 0.0 || !std::isfinite(counts[i])) {
      return Status::InvalidArgument(
          StrFormat("bad count at index %zu", i));
    }
    probs[i] = counts[i] + smoothing;
    total += probs[i];
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("all counts zero with zero smoothing");
  }
  for (double& p : probs) p /= total;
  return CategoricalDistribution(std::move(probs));
}

double CategoricalDistribution::LogProb(size_t term) const {
  GENCLUS_CHECK_LT(term, probs_.size());
  const double p = probs_[term];
  return p > 0.0 ? std::log(p) : kNegInf;
}

size_t CategoricalDistribution::Sample(Rng* rng) const {
  GENCLUS_CHECK(rng != nullptr);
  return rng->Categorical(probs_);
}

GaussianDistribution::GaussianDistribution(double mean, double variance)
    : mean_(mean), variance_(variance) {
  GENCLUS_CHECK_MSG(variance > 0.0, "Gaussian variance must be positive");
}

double GaussianDistribution::stddev() const { return std::sqrt(variance_); }

double GaussianDistribution::Pdf(double x) const { return std::exp(LogPdf(x)); }

double GaussianDistribution::LogPdf(double x) const {
  const double d = x - mean_;
  return -0.5 * (kLogTwoPi + std::log(variance_)) - d * d / (2.0 * variance_);
}

double GaussianDistribution::Sample(Rng* rng) const {
  GENCLUS_CHECK(rng != nullptr);
  return rng->Gaussian(mean_, stddev());
}

Result<GaussianDistribution> GaussianDistribution::FitWeighted(
    const std::vector<double>& values, const std::vector<double>& weights,
    double floor_variance) {
  if (values.size() != weights.size()) {
    return Status::InvalidArgument("values/weights size mismatch");
  }
  double wsum = 0.0;
  double mean = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (weights[i] < 0.0) {
      return Status::InvalidArgument("negative weight");
    }
    wsum += weights[i];
    mean += weights[i] * values[i];
  }
  if (wsum <= 0.0) {
    return Status::InvalidArgument("total weight is zero");
  }
  mean /= wsum;
  double var = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double d = values[i] - mean;
    var += weights[i] * d * d;
  }
  var = var / wsum;
  if (var < floor_variance) var = floor_variance;
  return GaussianDistribution(mean, var);
}

Result<DirichletDistribution> DirichletDistribution::Create(
    std::vector<double> alpha) {
  if (alpha.empty()) {
    return Status::InvalidArgument("empty Dirichlet alpha");
  }
  for (double a : alpha) {
    if (!(a > 0.0) || !std::isfinite(a)) {
      return Status::InvalidArgument("Dirichlet alpha must be positive");
    }
  }
  return DirichletDistribution(std::move(alpha));
}

double DirichletDistribution::LogNormalizer() const {
  return LogMultivariateBeta(alpha_);
}

double DirichletDistribution::LogPdf(const std::vector<double>& theta) const {
  GENCLUS_CHECK_EQ(theta.size(), alpha_.size());
  double acc = -LogNormalizer();
  for (size_t k = 0; k < alpha_.size(); ++k) {
    if (theta[k] < 0.0) return kNegInf;
    if (alpha_[k] == 1.0) continue;
    if (theta[k] == 0.0) return alpha_[k] > 1.0 ? kNegInf : kNegInf;
    acc += (alpha_[k] - 1.0) * std::log(theta[k]);
  }
  return acc;
}

std::vector<double> DirichletDistribution::Mean() const {
  const double a0 = std::accumulate(alpha_.begin(), alpha_.end(), 0.0);
  std::vector<double> m(alpha_.size());
  for (size_t k = 0; k < alpha_.size(); ++k) m[k] = alpha_[k] / a0;
  return m;
}

std::vector<double> DirichletDistribution::Sample(Rng* rng) const {
  GENCLUS_CHECK(rng != nullptr);
  std::vector<double> out(alpha_.size());
  double total = 0.0;
  for (size_t k = 0; k < alpha_.size(); ++k) {
    std::gamma_distribution<double> gamma(alpha_[k], 1.0);
    out[k] = gamma(rng->engine());
    total += out[k];
  }
  if (total <= 0.0) {
    // Numerically possible for very small alphas: fall back to the mean.
    return Mean();
  }
  for (double& v : out) v /= total;
  return out;
}

}  // namespace genclus
