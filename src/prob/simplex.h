// Probability-simplex utilities. Cluster membership vectors theta_v live on
// the K-simplex; the cross-entropy feature function (Eq. 6) takes logs of
// their components, so components are clamped away from exact zero.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace genclus {

/// Default floor for membership probabilities before logs are taken.
inline constexpr double kDefaultThetaFloor = 1e-12;

/// Normalizes v in place so it sums to 1. If the total mass is <= 0 or
/// non-finite the vector is reset to uniform. The raw-buffer overload is
/// the implementation; the vector form forwards to it, so both produce
/// bitwise identical results on the same values. Inline so hot callers
/// with a compile-time length (the serve sweep's K-specialized
/// instantiations) unroll it — inlining never reorders the arithmetic.
inline void NormalizeToSimplex(double* v, size_t n) {
  double total = 0.0;
  bool bad = false;
  for (size_t i = 0; i < n; ++i) {
    const double x = v[i];
    if (!(x >= 0.0) || !std::isfinite(x)) {
      bad = true;
      break;
    }
    total += x;
  }
  if (bad || total <= 0.0 || !std::isfinite(total)) {
    const double u = 1.0 / static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) v[i] = u;
    return;
  }
  for (size_t i = 0; i < n; ++i) v[i] /= total;
}
void NormalizeToSimplex(std::vector<double>* v);

/// Clamps every component to at least `floor` and renormalizes.
inline void ClampToSimplex(double* v, size_t n,
                           double floor = kDefaultThetaFloor) {
  NormalizeToSimplex(v, n);
  bool needs_clamp = false;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] < floor) {
      needs_clamp = true;
      break;
    }
  }
  if (!needs_clamp) return;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] < floor) v[i] = floor;
  }
  NormalizeToSimplex(v, n);
}
void ClampToSimplex(std::vector<double>* v, double floor = kDefaultThetaFloor);

/// True if v sums to 1 within `tol` and every component is in [0, 1].
bool IsOnSimplex(const std::vector<double>& v, double tol = 1e-9);

/// Shannon entropy H(p) = -sum p_k log p_k (natural log). Zero components
/// contribute zero.
double Entropy(const std::vector<double>& p);

/// Cross entropy H(q, p) = -sum_k q_k log p_k, the deviation measure in
/// Eq. 6 (note the order: q weights, log of p). Components of p are floored
/// at kDefaultThetaFloor to keep the value finite.
double CrossEntropy(const std::vector<double>& q, const std::vector<double>& p);

/// KL divergence D(q || p) = H(q,p) - H(q).
double KlDivergence(const std::vector<double>& q, const std::vector<double>& p);

/// Cosine similarity between arbitrary non-negative vectors; 0 if either
/// norm vanishes.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Euclidean distance.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Index of the largest component (ties broken toward the lower index).
size_t ArgMax(const std::vector<double>& v);

}  // namespace genclus
