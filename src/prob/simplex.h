// Probability-simplex utilities. Cluster membership vectors theta_v live on
// the K-simplex; the cross-entropy feature function (Eq. 6) takes logs of
// their components, so components are clamped away from exact zero.
#pragma once

#include <cstddef>
#include <vector>

namespace genclus {

/// Default floor for membership probabilities before logs are taken.
inline constexpr double kDefaultThetaFloor = 1e-12;

/// Normalizes v in place so it sums to 1. If the total mass is <= 0 or
/// non-finite the vector is reset to uniform.
void NormalizeToSimplex(std::vector<double>* v);

/// Clamps every component to at least `floor` and renormalizes.
void ClampToSimplex(std::vector<double>* v, double floor = kDefaultThetaFloor);

/// True if v sums to 1 within `tol` and every component is in [0, 1].
bool IsOnSimplex(const std::vector<double>& v, double tol = 1e-9);

/// Shannon entropy H(p) = -sum p_k log p_k (natural log). Zero components
/// contribute zero.
double Entropy(const std::vector<double>& p);

/// Cross entropy H(q, p) = -sum_k q_k log p_k, the deviation measure in
/// Eq. 6 (note the order: q weights, log of p). Components of p are floored
/// at kDefaultThetaFloor to keep the value finite.
double CrossEntropy(const std::vector<double>& q, const std::vector<double>& p);

/// KL divergence D(q || p) = H(q,p) - H(q).
double KlDivergence(const std::vector<double>& q, const std::vector<double>& p);

/// Cosine similarity between arbitrary non-negative vectors; 0 if either
/// norm vanishes.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Euclidean distance.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Index of the largest component (ties broken toward the lower index).
size_t ArgMax(const std::vector<double>& v);

}  // namespace genclus
