#include "prob/special_functions.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace genclus {

double LogGamma(double x) {
  GENCLUS_DCHECK(x > 0.0);
  return std::lgamma(x);
}

double Digamma(double x) {
  GENCLUS_CHECK_MSG(x > 0.0, "Digamma requires x > 0");
  // Shift x upward until the asymptotic expansion is accurate, collecting
  // the recurrence terms psi(x) = psi(x+1) - 1/x.
  double result = 0.0;
  while (x < 12.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic series: psi(x) ~ ln x - 1/(2x) - sum B_2n / (2n x^{2n}).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv;
  result -= inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 -
                    inv2 * (1.0 / 240.0 - inv2 * (1.0 / 132.0)))));
  return result;
}

double Trigamma(double x) {
  GENCLUS_CHECK_MSG(x > 0.0, "Trigamma requires x > 0");
  // Recurrence psi'(x) = psi'(x+1) + 1/x^2, then asymptotic series.
  double result = 0.0;
  while (x < 12.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // psi'(x) ~ 1/x + 1/(2x^2) + sum B_2n / x^{2n+1}.
  result += inv * (1.0 + 0.5 * inv +
                   inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 *
                           (1.0 / 42.0 - inv2 * (1.0 / 30.0)))));
  return result;
}

double LogMultivariateBeta(const std::vector<double>& alpha) {
  GENCLUS_CHECK(!alpha.empty());
  double sum_alpha = 0.0;
  double sum_lgamma = 0.0;
  for (double a : alpha) {
    GENCLUS_DCHECK(a > 0.0);
    sum_alpha += a;
    sum_lgamma += std::lgamma(a);
  }
  return sum_lgamma - std::lgamma(sum_alpha);
}

double LogSumExp(const std::vector<double>& x) {
  if (x.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(x.begin(), x.end());
  if (!std::isfinite(m)) return m;  // all -inf (or a +inf dominates)
  double acc = 0.0;
  for (double v : x) acc += std::exp(v - m);
  return m + std::log(acc);
}

double LogAddExp(double a, double b) {
  if (a < b) std::swap(a, b);
  if (!std::isfinite(a)) return a;
  return a + std::log1p(std::exp(b - a));
}

}  // namespace genclus
