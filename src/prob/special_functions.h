// Special functions for the strength learner's pseudo-likelihood: the
// gradient (Eq. 16) needs digamma, the Hessian (Eq. 17) needs trigamma,
// and the local partition functions are Dirichlet normalizers log B(alpha).
#pragma once

#include <vector>

namespace genclus {

/// log Gamma(x) for x > 0.
double LogGamma(double x);

/// Digamma psi(x) = d/dx log Gamma(x), x > 0. Accurate to ~1e-12 via
/// upward recurrence + asymptotic series.
double Digamma(double x);

/// Trigamma psi'(x) = d^2/dx^2 log Gamma(x), x > 0.
double Trigamma(double x);

/// Multivariate Beta: log B(alpha) = sum_k log Gamma(alpha_k)
///                                   - log Gamma(sum_k alpha_k).
/// All alpha_k must be > 0.
double LogMultivariateBeta(const std::vector<double>& alpha);

/// Numerically stable log(sum_i exp(x_i)). Returns -inf for empty input.
double LogSumExp(const std::vector<double>& x);

/// Stable log(exp(a) + exp(b)).
double LogAddExp(double a, double b);

}  // namespace genclus
