#include "prob/simplex.h"

#include <cmath>

#include "common/check.h"

namespace genclus {

void NormalizeToSimplex(std::vector<double>* v) {
  GENCLUS_CHECK(v != nullptr && !v->empty());
  NormalizeToSimplex(v->data(), v->size());
}

void ClampToSimplex(std::vector<double>* v, double floor) {
  GENCLUS_CHECK(v != nullptr && !v->empty());
  ClampToSimplex(v->data(), v->size(), floor);
}

bool IsOnSimplex(const std::vector<double>& v, double tol) {
  double total = 0.0;
  for (double x : v) {
    if (x < -tol || x > 1.0 + tol || !std::isfinite(x)) return false;
    total += x;
  }
  return std::fabs(total - 1.0) <= tol;
}

double Entropy(const std::vector<double>& p) {
  double h = 0.0;
  for (double x : p) {
    if (x > 0.0) h -= x * std::log(x);
  }
  return h;
}

double CrossEntropy(const std::vector<double>& q,
                    const std::vector<double>& p) {
  GENCLUS_CHECK_EQ(q.size(), p.size());
  double h = 0.0;
  for (size_t k = 0; k < q.size(); ++k) {
    if (q[k] == 0.0) continue;
    const double pk = p[k] < kDefaultThetaFloor ? kDefaultThetaFloor : p[k];
    h -= q[k] * std::log(pk);
  }
  return h;
}

double KlDivergence(const std::vector<double>& q,
                    const std::vector<double>& p) {
  return CrossEntropy(q, p) - Entropy(q);
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  GENCLUS_CHECK_EQ(a.size(), b.size());
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  GENCLUS_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

size_t ArgMax(const std::vector<double>& v) {
  GENCLUS_CHECK(!v.empty());
  size_t best = 0;
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

}  // namespace genclus
