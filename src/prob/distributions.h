// The distribution families of §3.2: categorical term distributions for text
// attributes (Eq. 3), Gaussians for numerical attributes (Eq. 4), and the
// Dirichlet that arises as the conditional of theta_i given its out-link
// neighbors in the strength-learning step (Eq. 15).
#pragma once

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace genclus {

/// log(2*pi), the Gaussian log-normalizer constant shared by
/// GaussianDistribution::LogPdf and callers that hoist the per-cluster
/// constants out of their inner loops (core/components.h).
inline constexpr double kLogTwoPi = 1.8378770664093454836;

/// Categorical distribution over a vocabulary {0, ..., m-1}; the cluster
/// component beta_k of a text attribute.
class CategoricalDistribution {
 public:
  /// Uniform distribution over `vocab_size` terms.
  explicit CategoricalDistribution(size_t vocab_size);

  /// From explicit probabilities; must be non-negative and sum to ~1
  /// (renormalized internally).
  static Result<CategoricalDistribution> FromProbabilities(
      std::vector<double> probs);

  /// From non-negative counts with additive (Laplace) smoothing.
  static Result<CategoricalDistribution> FromCounts(
      const std::vector<double>& counts, double smoothing);

  size_t vocab_size() const { return probs_.size(); }
  double prob(size_t term) const {
    GENCLUS_DCHECK(term < probs_.size());
    return probs_[term];
  }
  const std::vector<double>& probs() const { return probs_; }

  /// log P(term); -inf if the term has zero probability.
  double LogProb(size_t term) const;

  /// Draws a term index.
  size_t Sample(Rng* rng) const;

 private:
  explicit CategoricalDistribution(std::vector<double> probs)
      : probs_(std::move(probs)) {}
  std::vector<double> probs_;
};

/// Univariate Gaussian; the cluster component beta_k = (mu_k, sigma_k^2)
/// of a numerical attribute.
class GaussianDistribution {
 public:
  GaussianDistribution(double mean, double variance);

  double mean() const { return mean_; }
  double variance() const { return variance_; }
  double stddev() const;

  double Pdf(double x) const;
  double LogPdf(double x) const;
  double Sample(Rng* rng) const;

  /// Fits (mu, sigma^2) from weighted observations; `floor_variance`
  /// guards against degenerate clusters with a single effective point.
  static Result<GaussianDistribution> FitWeighted(
      const std::vector<double>& values, const std::vector<double>& weights,
      double floor_variance = 1e-8);

 private:
  double mean_;
  double variance_;
};

/// Dirichlet distribution on the K-simplex. In the strength-learning step,
/// p(theta_i | out-neighbors) is Dirichlet with
/// alpha_ik = sum_{e=<v_i,v_j>} gamma(phi(e)) w(e) theta_jk + 1   (Eq. 15),
/// whose normalizer B(alpha_i) is the local partition function Z_i(gamma).
class DirichletDistribution {
 public:
  /// All alpha_k must be > 0.
  static Result<DirichletDistribution> Create(std::vector<double> alpha);

  const std::vector<double>& alpha() const { return alpha_; }
  size_t dim() const { return alpha_.size(); }

  /// log B(alpha): the log-normalizer.
  double LogNormalizer() const;

  /// Log-density at a point on the simplex.
  double LogPdf(const std::vector<double>& theta) const;

  /// Mean vector alpha_k / alpha_0.
  std::vector<double> Mean() const;

  /// Draws from the Dirichlet via normalized Gamma samples.
  std::vector<double> Sample(Rng* rng) const;

 private:
  explicit DirichletDistribution(std::vector<double> alpha)
      : alpha_(std::move(alpha)) {}
  std::vector<double> alpha_;
};

}  // namespace genclus
