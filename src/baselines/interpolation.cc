#include "baselines/interpolation.h"

#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace genclus {

Result<Matrix> InterpolateNumericalAttributes(
    const Network& network,
    const std::vector<const Attribute*>& attributes) {
  const size_t n = network.num_nodes();
  for (const Attribute* attr : attributes) {
    if (attr == nullptr || attr->kind() != AttributeKind::kNumerical) {
      return Status::InvalidArgument(
          "interpolation requires numerical attributes");
    }
    if (attr->num_nodes() != n) {
      return Status::InvalidArgument(
          StrFormat("attribute '%s' sized for a different network",
                    attr->name().c_str()));
    }
  }

  Matrix features(n, attributes.size());
  for (size_t t = 0; t < attributes.size(); ++t) {
    const Attribute& attr = *attributes[t];
    // Global mean as the last-resort fallback.
    double global_sum = 0.0;
    double global_count = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      for (double x : attr.Values(v)) {
        global_sum += x;
        global_count += 1.0;
      }
    }
    const double global_mean =
        global_count > 0.0 ? global_sum / global_count : 0.0;

    for (NodeId v = 0; v < n; ++v) {
      double sum = 0.0;
      double count = 0.0;
      for (double x : attr.Values(v)) {
        sum += x;
        count += 1.0;
      }
      for (const LinkEntry& e : network.OutLinks(v)) {
        for (double x : attr.Values(e.neighbor)) {
          sum += x;
          count += 1.0;
        }
      }
      features(v, t) = count > 0.0 ? sum / count : global_mean;
    }
  }
  return features;
}

void StandardizeColumns(Matrix* features) {
  GENCLUS_CHECK(features != nullptr);
  const size_t n = features->rows();
  const size_t dim = features->cols();
  if (n == 0) return;
  for (size_t c = 0; c < dim; ++c) {
    double mean = 0.0;
    for (size_t r = 0; r < n; ++r) mean += (*features)(r, c);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (size_t r = 0; r < n; ++r) {
      const double d = (*features)(r, c) - mean;
      var += d * d;
    }
    var /= static_cast<double>(n);
    const double stddev = std::sqrt(var);
    for (size_t r = 0; r < n; ++r) {
      (*features)(r, c) =
          stddev > 1e-12 ? ((*features)(r, c) - mean) / stddev : 0.0;
    }
  }
}

}  // namespace genclus
