#include "baselines/topic_models.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"
#include "prob/simplex.h"

namespace genclus {
namespace {

Status ValidateTextInput(const Network& network, const Attribute& text,
                         size_t num_clusters) {
  if (text.kind() != AttributeKind::kCategorical) {
    return Status::InvalidArgument("topic models need a categorical attribute");
  }
  if (text.num_nodes() != network.num_nodes()) {
    return Status::InvalidArgument("attribute sized for a different network");
  }
  if (num_clusters < 2) {
    return Status::InvalidArgument("num_clusters must be >= 2");
  }
  return Status::OK();
}

// Random simplex rows for theta; perturbed-uniform rows for beta.
void RandomInit(size_t n, size_t k, size_t vocab, Rng* rng, Matrix* theta,
                Matrix* beta) {
  *theta = Matrix(n, k);
  for (size_t v = 0; v < n; ++v) {
    theta->SetRow(v, rng->SimplexUniform(k));
  }
  *beta = Matrix(k, vocab);
  for (size_t c = 0; c < k; ++c) {
    double total = 0.0;
    for (size_t l = 0; l < vocab; ++l) {
      const double x = 0.5 + rng->Uniform();
      (*beta)(c, l) = x;
      total += x;
    }
    for (size_t l = 0; l < vocab; ++l) (*beta)(c, l) /= total;
  }
}

// PLSA corpus log-likelihood: sum_v sum_l c_vl log sum_k theta_vk beta_kl.
double PlsaLogLikelihood(const Attribute& text, const Matrix& theta,
                         const Matrix& beta) {
  double total = 0.0;
  const size_t k = theta.cols();
  for (NodeId v = 0; v < text.num_nodes(); ++v) {
    const double* theta_v = theta.Row(v);
    for (const TermCount& tc : text.TermCounts(v)) {
      double p = 0.0;
      for (size_t c = 0; c < k; ++c) p += theta_v[c] * beta(c, tc.term);
      total += tc.count * std::log(p > 0.0 ? p : 1e-300);
    }
  }
  return total;
}

// One PLSA E+M sweep producing unsmoothed theta_raw and new beta.
// theta_raw rows for nodes without text are left all-zero.
void PlsaSweep(const Attribute& text, const Matrix& theta, Matrix* theta_raw,
               Matrix* beta, double beta_smoothing) {
  const size_t n = text.num_nodes();
  const size_t k = theta.cols();
  const size_t vocab = text.vocab_size();
  *theta_raw = Matrix(n, k);
  Matrix beta_acc(k, vocab);
  std::vector<double> resp(k);

  for (NodeId v = 0; v < n; ++v) {
    const double* theta_v = theta.Row(v);
    for (const TermCount& tc : text.TermCounts(v)) {
      double total = 0.0;
      for (size_t c = 0; c < k; ++c) {
        resp[c] = theta_v[c] * (*beta)(c, tc.term);
        total += resp[c];
      }
      if (total <= 0.0) {
        std::fill(resp.begin(), resp.end(), 1.0 / k);
        total = 1.0;
      }
      for (size_t c = 0; c < k; ++c) {
        const double r = tc.count * resp[c] / total;
        (*theta_raw)(v, c) += r;
        beta_acc(c, tc.term) += r;
      }
    }
  }
  // New beta with additive smoothing.
  for (size_t c = 0; c < k; ++c) {
    double row_total = 0.0;
    for (size_t l = 0; l < vocab; ++l) row_total += beta_acc(c, l);
    const double smooth =
        beta_smoothing * (row_total > 0.0 ? row_total : 1.0);
    const double denom = row_total + smooth * static_cast<double>(vocab);
    for (size_t l = 0; l < vocab; ++l) {
      (*beta)(c, l) = (beta_acc(c, l) + smooth) / denom;
    }
  }
}

}  // namespace

Result<TopicModelResult> RunNetPlsa(const Network& network,
                                    const Attribute& text,
                                    const NetPlsaConfig& config) {
  GENCLUS_RETURN_IF_ERROR(
      ValidateTextInput(network, text, config.num_clusters));
  if (config.lambda < 0.0 || config.lambda >= 1.0) {
    return Status::InvalidArgument("lambda must be in [0, 1)");
  }
  const size_t n = network.num_nodes();
  const size_t k = config.num_clusters;

  Rng rng(config.seed);
  TopicModelResult result;
  RandomInit(n, k, text.vocab_size(), &rng, &result.theta, &result.beta);

  Matrix theta_raw;
  std::vector<double> smoothed(k);
  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    PlsaSweep(text, result.theta, &theta_raw, &result.beta,
              config.beta_smoothing);

    // Normalize PLSA part and blend with the weighted neighbor average
    // (the network-regularization step; all link types treated alike).
    Matrix new_theta(n, k);
    for (NodeId v = 0; v < n; ++v) {
      std::fill(smoothed.begin(), smoothed.end(), 0.0);
      double neighbor_weight = 0.0;
      for (const LinkEntry& e : network.OutLinks(v)) {
        const double* theta_u = result.theta.Row(e.neighbor);
        for (size_t c = 0; c < k; ++c) smoothed[c] += e.weight * theta_u[c];
        neighbor_weight += e.weight;
      }
      const bool has_text = text.HasObservations(v);
      double* out = new_theta.Row(v);
      double plsa_total = 0.0;
      for (size_t c = 0; c < k; ++c) plsa_total += theta_raw(v, c);
      for (size_t c = 0; c < k; ++c) {
        const double plsa_part =
            has_text && plsa_total > 0.0 ? theta_raw(v, c) / plsa_total : 0.0;
        const double smooth_part =
            neighbor_weight > 0.0 ? smoothed[c] / neighbor_weight : 1.0 / k;
        if (has_text) {
          out[c] = (1.0 - config.lambda) * plsa_part +
                   config.lambda * smooth_part;
        } else {
          out[c] = smooth_part;  // attribute-free nodes: pure propagation
        }
      }
      std::vector<double> row(out, out + k);
      ClampToSimplex(&row);
      new_theta.SetRow(v, row);
    }
    const double delta = Matrix::MaxAbsDiff(result.theta, new_theta);
    result.theta = std::move(new_theta);
    if (delta < config.tolerance) break;
  }
  result.log_likelihood = PlsaLogLikelihood(text, result.theta, result.beta);
  return result;
}

Result<TopicModelResult> RunITopicModel(const Network& network,
                                        const Attribute& text,
                                        const ITopicModelConfig& config) {
  GENCLUS_RETURN_IF_ERROR(
      ValidateTextInput(network, text, config.num_clusters));
  if (config.neighbor_weight < 0.0) {
    return Status::InvalidArgument("neighbor_weight must be >= 0");
  }
  const size_t n = network.num_nodes();
  const size_t k = config.num_clusters;

  Rng rng(config.seed);
  TopicModelResult result;
  RandomInit(n, k, text.vocab_size(), &rng, &result.theta, &result.beta);

  Matrix theta_raw;
  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    PlsaSweep(text, result.theta, &theta_raw, &result.beta,
              config.beta_smoothing);

    // MRF prior in the M-step: text responsibilities plus lambda-weighted
    // neighbor memberships, normalized together.
    Matrix new_theta(n, k);
    std::vector<double> mix(k);
    for (NodeId v = 0; v < n; ++v) {
      for (size_t c = 0; c < k; ++c) mix[c] = theta_raw(v, c);
      for (const LinkEntry& e : network.OutLinks(v)) {
        const double* theta_u = result.theta.Row(e.neighbor);
        for (size_t c = 0; c < k; ++c) {
          mix[c] += config.neighbor_weight * e.weight * theta_u[c];
        }
      }
      ClampToSimplex(&mix);
      new_theta.SetRow(v, mix);
    }
    const double delta = Matrix::MaxAbsDiff(result.theta, new_theta);
    result.theta = std::move(new_theta);
    if (delta < config.tolerance) break;
  }
  result.log_likelihood = PlsaLogLikelihood(text, result.theta, result.beta);
  return result;
}

}  // namespace genclus
