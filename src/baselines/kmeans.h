// Lloyd's k-means with k-means++ seeding: the first weather-network
// baseline (§5.2.1). Operates on a dense feature matrix; the incomplete
// sensor attributes are first densified with neighbor-mean interpolation
// (see interpolation.h), exactly as the paper does for this baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace genclus {

struct KMeansConfig {
  size_t num_clusters = 4;
  size_t max_iterations = 100;
  /// Converged when no assignment changes or center movement is below this.
  double tolerance = 1e-8;
  /// Independent restarts; the lowest-inertia solution wins.
  size_t num_restarts = 1;
  uint64_t seed = 1;
};

struct KMeansResult {
  std::vector<uint32_t> labels;  // cluster per row of the input
  Matrix centers;                // num_clusters x dim
  double inertia = 0.0;          // sum of squared distances to centers
  size_t iterations = 0;
};

/// Clusters the rows of `points`. Fails if there are fewer points than
/// clusters.
Result<KMeansResult> RunKMeans(const Matrix& points,
                               const KMeansConfig& config);

}  // namespace genclus
