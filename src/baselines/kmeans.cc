#include "baselines/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace genclus {
namespace {

double SquaredDistance(const double* a, const double* b, size_t dim) {
  double acc = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

// k-means++ seeding: first center uniform, then proportional to squared
// distance to the nearest chosen center.
Matrix SeedCenters(const Matrix& points, size_t k, Rng* rng) {
  const size_t n = points.rows();
  const size_t dim = points.cols();
  Matrix centers(k, dim);
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());

  size_t first = rng->UniformIndex(n);
  for (size_t d = 0; d < dim; ++d) centers(0, d) = points(first, d);
  for (size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double dist =
          SquaredDistance(points.Row(i), centers.Row(c - 1), dim);
      min_dist[i] = std::min(min_dist[i], dist);
      total += min_dist[i];
    }
    size_t chosen;
    if (total <= 0.0) {
      chosen = rng->UniformIndex(n);  // all points identical
    } else {
      double u = rng->Uniform() * total;
      chosen = n - 1;
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += min_dist[i];
        if (u < acc) {
          chosen = i;
          break;
        }
      }
    }
    for (size_t d = 0; d < dim; ++d) centers(c, d) = points(chosen, d);
  }
  return centers;
}

KMeansResult RunOnce(const Matrix& points, const KMeansConfig& config,
                     Rng* rng) {
  const size_t n = points.rows();
  const size_t dim = points.cols();
  const size_t k = config.num_clusters;

  KMeansResult result;
  result.centers = SeedCenters(points, k, rng);
  result.labels.assign(n, 0);

  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      uint32_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double d =
            SquaredDistance(points.Row(i), result.centers.Row(c), dim);
        if (d < best) {
          best = d;
          best_c = static_cast<uint32_t>(c);
        }
      }
      if (result.labels[i] != best_c) {
        result.labels[i] = best_c;
        changed = true;
      }
    }
    // Update step.
    Matrix new_centers(k, dim);
    std::vector<double> counts(k, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t c = result.labels[i];
      counts[c] += 1.0;
      for (size_t d = 0; d < dim; ++d) {
        new_centers(c, d) += points(i, d);
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] > 0.0) {
        for (size_t d = 0; d < dim; ++d) new_centers(c, d) /= counts[c];
      } else {
        // Empty cluster: re-seed at the point farthest from its center.
        size_t farthest = 0;
        double far_dist = -1.0;
        for (size_t i = 0; i < n; ++i) {
          const double d = SquaredDistance(
              points.Row(i), result.centers.Row(result.labels[i]), dim);
          if (d > far_dist) {
            far_dist = d;
            farthest = i;
          }
        }
        for (size_t d = 0; d < dim; ++d) {
          new_centers(c, d) = points(farthest, d);
        }
        changed = true;
      }
    }
    const double movement = Matrix::MaxAbsDiff(result.centers, new_centers);
    result.centers = std::move(new_centers);
    if (!changed || movement < config.tolerance) break;
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia += SquaredDistance(points.Row(i),
                                      result.centers.Row(result.labels[i]),
                                      dim);
  }
  return result;
}

}  // namespace

Result<KMeansResult> RunKMeans(const Matrix& points,
                               const KMeansConfig& config) {
  if (config.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  if (points.rows() < config.num_clusters) {
    return Status::InvalidArgument("fewer points than clusters");
  }
  if (points.cols() == 0) {
    return Status::InvalidArgument("points have zero dimension");
  }
  Rng rng(config.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  const size_t restarts = std::max<size_t>(1, config.num_restarts);
  for (size_t r = 0; r < restarts; ++r) {
    KMeansResult attempt = RunOnce(points, config, &rng);
    if (attempt.inertia < best.inertia) best = std::move(attempt);
  }
  return best;
}

}  // namespace genclus
