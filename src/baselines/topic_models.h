// Link-regularized topic-model baselines for the DBLP experiments
// (§5.2.1): NetPLSA (Mei et al. [18]) and iTopicModel (Sun et al. [22]).
// Both treat the network as HOMOGENEOUS — every link type has strength 1 —
// which is exactly the capability gap GenClus closes.
//
//  * NetPLSA: PLSA EM on the text, followed each iteration by a graph
//    smoothing step theta_v <- (1-lambda) theta_v^PLSA
//                             + lambda * weighted neighbor average.
//    Nodes without text take the pure neighbor average.
//  * iTopicModel: the neighbor term enters the M-step itself as an
//    MRF-style prior: theta_vk ∝ sum_l c_vl p(z=k|v,l)
//                               + lambda * sum_u w(v,u) theta_uk.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "hin/attributes.h"
#include "hin/network.h"
#include "linalg/matrix.h"

namespace genclus {

/// Shared output of the topic-model baselines.
struct TopicModelResult {
  /// num_nodes x K soft memberships (simplex rows).
  Matrix theta;
  /// K x vocab topic-term distributions.
  Matrix beta;
  double log_likelihood = 0.0;
  size_t iterations = 0;
};

struct NetPlsaConfig {
  size_t num_clusters = 4;
  /// Weight of the graph-smoothing term in [0, 1).
  double lambda = 0.5;
  size_t max_iterations = 100;
  double tolerance = 1e-5;
  double beta_smoothing = 1e-6;
  uint64_t seed = 1;
};

struct ITopicModelConfig {
  size_t num_clusters = 4;
  /// Strength of the neighbor prior (all link types alike).
  double neighbor_weight = 1.0;
  size_t max_iterations = 100;
  double tolerance = 1e-5;
  double beta_smoothing = 1e-6;
  uint64_t seed = 1;
};

/// Runs NetPLSA over the (homogenized) network and one text attribute.
Result<TopicModelResult> RunNetPlsa(const Network& network,
                                    const Attribute& text,
                                    const NetPlsaConfig& config);

/// Runs iTopicModel over the (homogenized) network and one text attribute.
Result<TopicModelResult> RunITopicModel(const Network& network,
                                        const Attribute& text,
                                        const ITopicModelConfig& config);

}  // namespace genclus
