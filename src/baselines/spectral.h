// SpectralCombine: the second weather-network baseline (§5.2.1), following
// the framework of Shiga et al. [20] with the attribute part replaced by
// the spectral-relaxation-of-k-means Gram matrix [26]:
//
//   M = w_net * B / ||B||_F  +  (1 - w_net) * S / ||S||_F
//
// where B = W - d d^T / (2m) is the (symmetrized) modularity matrix and
// S = X X^T is the Gram matrix of the standardized, interpolated attribute
// matrix. The top-K eigenvectors of M form the embedding, clustered with
// k-means. Both parts get equal weights (w_net = 0.5) as in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hin/network.h"
#include "linalg/matrix.h"

namespace genclus {

struct SpectralCombineConfig {
  size_t num_clusters = 4;
  /// Weight of the modularity part (attribute part gets 1 - this).
  double network_weight = 0.5;
  /// k-means restarts on the spectral embedding.
  size_t kmeans_restarts = 5;
  /// Subspace-iteration stopping parameters; the embedding needs only a
  /// loose eigenbasis, so benches can trade accuracy for time.
  double eigen_tolerance = 1e-7;
  size_t eigen_max_iters = 300;
  uint64_t seed = 1;
};

struct SpectralCombineResult {
  std::vector<uint32_t> labels;
  /// num_nodes x num_clusters spectral embedding (top eigenvectors).
  Matrix embedding;
  /// Top eigenvalues of the combined matrix.
  std::vector<double> eigenvalues;
};

/// Clusters network nodes from links + dense standardized features (rows
/// aligned with node ids; use InterpolateNumericalAttributes +
/// StandardizeColumns to produce them).
Result<SpectralCombineResult> RunSpectralCombine(
    const Network& network, const Matrix& features,
    const SpectralCombineConfig& config);

/// Symmetrized weighted adjacency: W_ij = W_ji = sum of weights of links
/// between i and j in either direction, halved.
Matrix SymmetrizedAdjacency(const Network& network);

/// Modularity matrix B = W - d d^T / (2m) of a symmetric adjacency.
Matrix ModularityMatrix(const Matrix& adjacency);

}  // namespace genclus
