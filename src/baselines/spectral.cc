#include "baselines/spectral.h"

#include <cmath>

#include "baselines/kmeans.h"
#include "common/check.h"
#include "common/random.h"
#include "linalg/eigen.h"

namespace genclus {

Matrix SymmetrizedAdjacency(const Network& network) {
  const size_t n = network.num_nodes();
  Matrix w(n, n);
  for (NodeId v = 0; v < n; ++v) {
    for (const LinkEntry& e : network.OutLinks(v)) {
      if (e.neighbor == v) continue;  // self-loops carry no modularity signal
      w(v, e.neighbor) += 0.5 * e.weight;
      w(e.neighbor, v) += 0.5 * e.weight;
    }
  }
  return w;
}

Matrix ModularityMatrix(const Matrix& adjacency) {
  GENCLUS_CHECK_EQ(adjacency.rows(), adjacency.cols());
  const size_t n = adjacency.rows();
  std::vector<double> degree(n, 0.0);
  double two_m = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) degree[i] += adjacency(i, j);
    two_m += degree[i];
  }
  Matrix b = adjacency;
  if (two_m <= 0.0) return b;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      b(i, j) -= degree[i] * degree[j] / two_m;
    }
  }
  return b;
}

Result<SpectralCombineResult> RunSpectralCombine(
    const Network& network, const Matrix& features,
    const SpectralCombineConfig& config) {
  const size_t n = network.num_nodes();
  if (features.rows() != n) {
    return Status::InvalidArgument("features do not match network size");
  }
  if (config.num_clusters < 2 || config.num_clusters > n) {
    return Status::InvalidArgument("bad num_clusters");
  }
  if (config.network_weight < 0.0 || config.network_weight > 1.0) {
    return Status::InvalidArgument("network_weight must be in [0, 1]");
  }

  // Modularity part.
  Matrix combined = ModularityMatrix(SymmetrizedAdjacency(network));
  const double b_norm = combined.FrobeniusNorm();
  if (b_norm > 0.0) combined.Scale(config.network_weight / b_norm);

  // Attribute part: Gram matrix of the feature rows.
  Matrix gram = features.Multiply(features.Transpose());
  const double s_norm = gram.FrobeniusNorm();
  if (s_norm > 0.0) {
    combined.AddScaled(gram, (1.0 - config.network_weight) / s_norm);
  }

  Rng rng(config.seed);
  GENCLUS_ASSIGN_OR_RETURN(
      EigenDecomposition eig,
      TopKEigenSymmetric(combined, config.num_clusters, &rng,
                         config.eigen_tolerance, config.eigen_max_iters));

  SpectralCombineResult result;
  result.embedding = std::move(eig.vectors);
  result.eigenvalues = std::move(eig.values);

  KMeansConfig kconfig;
  kconfig.num_clusters = config.num_clusters;
  kconfig.num_restarts = config.kmeans_restarts;
  kconfig.seed = config.seed ^ 0xABCDEF;
  GENCLUS_ASSIGN_OR_RETURN(KMeansResult kres,
                           RunKMeans(result.embedding, kconfig));
  result.labels = std::move(kres.labels);
  return result;
}

}  // namespace genclus
