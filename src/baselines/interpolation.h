// Neighbor-mean interpolation for incomplete numerical attributes
// (§5.2.1): "we use interpolation to make each sensor have a regular
// 2-dimensional attribute, by using the mean of all the observations of
// its neighbors and itself". Needed by the k-means and spectral baselines,
// which cannot consume observation bags or missing values.
#pragma once

#include <vector>

#include "common/status.h"
#include "hin/attributes.h"
#include "hin/network.h"
#include "linalg/matrix.h"

namespace genclus {

/// Builds a dense num_nodes x attributes.size() feature matrix. Column t
/// for node v is the mean of all observations of attributes[t] on v and
/// v's out-link neighbors; if none of them carries the attribute, the
/// global attribute mean is used (0 if the attribute is empty network-wide).
Result<Matrix> InterpolateNumericalAttributes(
    const Network& network, const std::vector<const Attribute*>& attributes);

/// Standardizes each column in place: subtract mean, divide by standard
/// deviation (columns with zero variance become all-zero).
void StandardizeColumns(Matrix* features);

}  // namespace genclus
