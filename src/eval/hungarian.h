// Hungarian (Kuhn-Munkres) algorithm for optimal assignment, used to match
// learned clusters to ground-truth classes (accuracy reporting and the
// Table 1 case study's cluster naming).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace genclus {

/// Result of an assignment: assignment[r] = column matched to row r.
struct HungarianResult {
  std::vector<size_t> assignment;
  double total_value = 0.0;
};

/// Maximum-weight perfect assignment on a square value matrix (O(n^3)).
HungarianResult SolveMaxAssignment(const Matrix& value);

/// Minimum-cost perfect assignment on a square cost matrix (O(n^3)).
HungarianResult SolveMinAssignment(const Matrix& cost);

}  // namespace genclus
