#include "eval/hungarian.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace genclus {
namespace {

// Classic O(n^3) potentials-based Kuhn-Munkres on a square cost matrix
// (minimization). Rows and columns are 1-indexed internally; index 0 is a
// sentinel.
HungarianResult SolveMinImpl(const Matrix& cost) {
  GENCLUS_CHECK_EQ(cost.rows(), cost.cols());
  const size_t n = cost.rows();
  HungarianResult result;
  if (n == 0) return result;

  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0);   // row potentials
  std::vector<double> v(n + 1, 0.0);   // column potentials
  std::vector<size_t> p(n + 1, 0);     // p[col] = row matched to col
  std::vector<size_t> way(n + 1, 0);

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  result.assignment.assign(n, 0);
  for (size_t j = 1; j <= n; ++j) {
    if (p[j] != 0) result.assignment[p[j] - 1] = j - 1;
  }
  result.total_value = 0.0;
  for (size_t r = 0; r < n; ++r) {
    result.total_value += cost(r, result.assignment[r]);
  }
  return result;
}

}  // namespace

HungarianResult SolveMinAssignment(const Matrix& cost) {
  return SolveMinImpl(cost);
}

HungarianResult SolveMaxAssignment(const Matrix& value) {
  GENCLUS_CHECK_EQ(value.rows(), value.cols());
  const size_t n = value.rows();
  if (n == 0) return {};
  double max_entry = 0.0;
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      max_entry = std::max(max_entry, value(r, c));
    }
  }
  Matrix cost(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      cost(r, c) = max_entry - value(r, c);
    }
  }
  HungarianResult result = SolveMinImpl(cost);
  result.total_value = 0.0;
  for (size_t r = 0; r < n; ++r) {
    result.total_value += value(r, result.assignment[r]);
  }
  return result;
}

}  // namespace genclus
