// Link prediction evaluation (§5.2.2): for a relation <A, B>, rank every
// B-typed candidate for each A-typed query by a similarity function on the
// learned membership vectors, and score the ranking against the observed
// links with Mean Average Precision (MAP).
//
// Three similarity functions from the paper:
//   cosine:             cos(theta_i, theta_j)
//   negative Euclidean: -||theta_i - theta_j||
//   negative cross entropy (asymmetric): -H(theta_j, theta_i)
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hin/network.h"
#include "linalg/matrix.h"

namespace genclus {

enum class SimilarityKind {
  kCosine,
  kNegativeEuclidean,
  kNegativeCrossEntropy,
};

/// Display name, e.g. "cos" / "-euclid" / "-crossent".
const char* SimilarityKindName(SimilarityKind kind);

/// Similarity between membership rows; for kNegativeCrossEntropy the order
/// is -H(theta_candidate, theta_query) per the paper's Table 2-4 setup.
double MembershipSimilarity(SimilarityKind kind,
                            std::span<const double> theta_query,
                            std::span<const double> theta_candidate);

/// Average precision of a ranked candidate list against a relevant set.
/// `ranked` holds candidate ids best-first; `relevant[i]` marks relevance
/// of candidate i (indexed by position in the candidate universe).
double AveragePrecision(const std::vector<size_t>& ranked,
                        const std::vector<bool>& relevant);

struct LinkPredictionResult {
  double map = 0.0;
  size_t num_queries = 0;
};

/// MAP for predicting out-links of `relation` from membership vectors:
/// queries are source-typed nodes with at least one link of `relation`;
/// candidates are all target-typed nodes; relevant = actually linked.
Result<LinkPredictionResult> EvaluateLinkPrediction(const Network& network,
                                                    const Matrix& theta,
                                                    LinkTypeId relation,
                                                    SimilarityKind kind);

}  // namespace genclus
