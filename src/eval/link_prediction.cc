#include "eval/link_prediction.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "prob/simplex.h"

namespace genclus {

const char* SimilarityKindName(SimilarityKind kind) {
  switch (kind) {
    case SimilarityKind::kCosine:
      return "cos(ti,tj)";
    case SimilarityKind::kNegativeEuclidean:
      return "-||ti-tj||";
    case SimilarityKind::kNegativeCrossEntropy:
      return "-H(tj,ti)";
  }
  return "?";
}

double MembershipSimilarity(SimilarityKind kind,
                            std::span<const double> theta_query,
                            std::span<const double> theta_candidate) {
  GENCLUS_DCHECK(theta_query.size() == theta_candidate.size());
  const size_t k = theta_query.size();
  switch (kind) {
    case SimilarityKind::kCosine: {
      double dot = 0.0;
      double nq = 0.0;
      double nc = 0.0;
      for (size_t i = 0; i < k; ++i) {
        dot += theta_query[i] * theta_candidate[i];
        nq += theta_query[i] * theta_query[i];
        nc += theta_candidate[i] * theta_candidate[i];
      }
      if (nq <= 0.0 || nc <= 0.0) return 0.0;
      return dot / (std::sqrt(nq) * std::sqrt(nc));
    }
    case SimilarityKind::kNegativeEuclidean: {
      double acc = 0.0;
      for (size_t i = 0; i < k; ++i) {
        const double d = theta_query[i] - theta_candidate[i];
        acc += d * d;
      }
      return -std::sqrt(acc);
    }
    case SimilarityKind::kNegativeCrossEntropy: {
      // -H(theta_j, theta_i) = sum_k theta_jk log theta_ik with j the
      // candidate and i the query (asymmetric; §5.2.2).
      double acc = 0.0;
      for (size_t i = 0; i < k; ++i) {
        if (theta_candidate[i] == 0.0) continue;
        const double t = theta_query[i] < kDefaultThetaFloor
                             ? kDefaultThetaFloor
                             : theta_query[i];
        acc += theta_candidate[i] * std::log(t);
      }
      return acc;
    }
  }
  return 0.0;
}

double AveragePrecision(const std::vector<size_t>& ranked,
                        const std::vector<bool>& relevant) {
  size_t hits = 0;
  double sum_precision = 0.0;
  for (size_t pos = 0; pos < ranked.size(); ++pos) {
    GENCLUS_DCHECK(ranked[pos] < relevant.size());
    if (relevant[ranked[pos]]) {
      ++hits;
      sum_precision +=
          static_cast<double>(hits) / static_cast<double>(pos + 1);
    }
  }
  if (hits == 0) return 0.0;
  return sum_precision / static_cast<double>(hits);
}

Result<LinkPredictionResult> EvaluateLinkPrediction(const Network& network,
                                                    const Matrix& theta,
                                                    LinkTypeId relation,
                                                    SimilarityKind kind) {
  if (!network.schema().ValidLinkType(relation)) {
    return Status::InvalidArgument("unknown relation");
  }
  if (theta.rows() != network.num_nodes()) {
    return Status::InvalidArgument("theta size does not match network");
  }
  const LinkTypeInfo& info = network.schema().link_type(relation);
  const std::vector<NodeId>& queries =
      network.NodesOfType(info.source_type);
  const std::vector<NodeId>& candidates =
      network.NodesOfType(info.target_type);
  if (candidates.empty()) {
    return Status::FailedPrecondition("no candidate nodes for relation");
  }
  const size_t k = theta.cols();

  LinkPredictionResult result;
  double ap_sum = 0.0;
  std::vector<double> scores(candidates.size());
  std::vector<size_t> order(candidates.size());
  std::vector<bool> relevant(candidates.size());

  for (NodeId q : queries) {
    // Relevant set: observed out-links of this relation.
    std::fill(relevant.begin(), relevant.end(), false);
    size_t num_relevant = 0;
    for (const LinkEntry& e : network.OutLinks(q)) {
      if (e.type != relation) continue;
      // Candidate ids are sorted; binary search for the position.
      auto it = std::lower_bound(candidates.begin(), candidates.end(),
                                 e.neighbor);
      GENCLUS_DCHECK(it != candidates.end() && *it == e.neighbor);
      relevant[static_cast<size_t>(it - candidates.begin())] = true;
      ++num_relevant;
    }
    if (num_relevant == 0) continue;  // queries need >= 1 observed link

    std::span<const double> theta_q(theta.Row(q), k);
    for (size_t c = 0; c < candidates.size(); ++c) {
      scores[c] = MembershipSimilarity(
          kind, theta_q, {theta.Row(candidates[c]), k});
    }
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return scores[a] > scores[b];
    });
    ap_sum += AveragePrecision(order, relevant);
    ++result.num_queries;
  }
  if (result.num_queries == 0) {
    return Status::FailedPrecondition("no queries with observed links");
  }
  result.map = ap_sum / static_cast<double>(result.num_queries);
  return result;
}

}  // namespace genclus
