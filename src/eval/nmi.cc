#include "eval/nmi.h"

#include <cmath>
#include <map>

#include "common/check.h"
#include "eval/hungarian.h"
#include "hin/types.h"

namespace genclus {
namespace {

// Contingency table over jointly-labeled positions, with dense re-indexed
// labels and marginals.
struct Contingency {
  std::map<std::pair<uint32_t, uint32_t>, double> joint;
  std::map<uint32_t, double> margin_a;
  std::map<uint32_t, double> margin_b;
  double total = 0.0;
};

Contingency BuildContingency(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b) {
  GENCLUS_CHECK_EQ(a.size(), b.size());
  Contingency c;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == kUnlabeled || b[i] == kUnlabeled) continue;
    c.joint[{a[i], b[i]}] += 1.0;
    c.margin_a[a[i]] += 1.0;
    c.margin_b[b[i]] += 1.0;
    c.total += 1.0;
  }
  return c;
}

double EntropyOfMarginal(const std::map<uint32_t, double>& margin,
                         double total) {
  double h = 0.0;
  for (const auto& [label, count] : margin) {
    const double p = count / total;
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

}  // namespace

double MutualInformation(const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b) {
  Contingency c = BuildContingency(a, b);
  if (c.total <= 0.0) return 0.0;
  double mi = 0.0;
  for (const auto& [pair, count] : c.joint) {
    const double pxy = count / c.total;
    const double px = c.margin_a.at(pair.first) / c.total;
    const double py = c.margin_b.at(pair.second) / c.total;
    mi += pxy * std::log(pxy / (px * py));
  }
  return mi > 0.0 ? mi : 0.0;
}

double LabelEntropy(const std::vector<uint32_t>& labels) {
  std::map<uint32_t, double> margin;
  double total = 0.0;
  for (uint32_t l : labels) {
    if (l == kUnlabeled) continue;
    margin[l] += 1.0;
    total += 1.0;
  }
  if (total <= 0.0) return 0.0;
  return EntropyOfMarginal(margin, total);
}

double NormalizedMutualInformation(const std::vector<uint32_t>& a,
                                   const std::vector<uint32_t>& b) {
  Contingency c = BuildContingency(a, b);
  if (c.total <= 0.0) return 0.0;
  const double ha = EntropyOfMarginal(c.margin_a, c.total);
  const double hb = EntropyOfMarginal(c.margin_b, c.total);
  if (ha <= 0.0 && hb <= 0.0) {
    // Both single-cluster over the joint support: identical partitions.
    return 1.0;
  }
  if (ha <= 0.0 || hb <= 0.0) return 0.0;
  double mi = 0.0;
  for (const auto& [pair, count] : c.joint) {
    const double pxy = count / c.total;
    const double px = c.margin_a.at(pair.first) / c.total;
    const double py = c.margin_b.at(pair.second) / c.total;
    mi += pxy * std::log(pxy / (px * py));
  }
  double nmi = mi / std::sqrt(ha * hb);
  if (nmi < 0.0) nmi = 0.0;
  if (nmi > 1.0) nmi = 1.0;
  return nmi;
}

double Purity(const std::vector<uint32_t>& pred,
              const std::vector<uint32_t>& truth) {
  GENCLUS_CHECK_EQ(pred.size(), truth.size());
  std::map<uint32_t, std::map<uint32_t, double>> by_cluster;
  double total = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == kUnlabeled || truth[i] == kUnlabeled) continue;
    by_cluster[pred[i]][truth[i]] += 1.0;
    total += 1.0;
  }
  if (total <= 0.0) return 0.0;
  double correct = 0.0;
  for (const auto& [cluster, classes] : by_cluster) {
    double best = 0.0;
    for (const auto& [cls, count] : classes) best = std::max(best, count);
    correct += best;
  }
  return correct / total;
}

double MatchedAccuracy(const std::vector<uint32_t>& pred,
                       const std::vector<uint32_t>& truth) {
  GENCLUS_CHECK_EQ(pred.size(), truth.size());
  // Dense re-index both label spaces.
  std::map<uint32_t, size_t> pred_index;
  std::map<uint32_t, size_t> truth_index;
  double total = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == kUnlabeled || truth[i] == kUnlabeled) continue;
    pred_index.emplace(pred[i], pred_index.size());
    truth_index.emplace(truth[i], truth_index.size());
    total += 1.0;
  }
  if (total <= 0.0) return 0.0;
  const size_t dim = std::max(pred_index.size(), truth_index.size());
  Matrix confusion(dim, dim);
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == kUnlabeled || truth[i] == kUnlabeled) continue;
    confusion(pred_index[pred[i]], truth_index[truth[i]]) += 1.0;
  }
  HungarianResult match = SolveMaxAssignment(confusion);
  return match.total_value / total;
}

}  // namespace genclus
