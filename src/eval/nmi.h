// Clustering agreement measures. The paper evaluates against ground truth
// with Normalized Mutual Information (NMI, Strehl & Ghosh [21]); purity and
// Hungarian-matched accuracy are provided as auxiliary measures.
#pragma once

#include <cstdint>
#include <vector>

namespace genclus {

/// NMI between two labelings restricted to positions where BOTH labels are
/// defined (!= kUnlabeled). Normalization is sqrt(H(a) * H(b)) per Strehl &
/// Ghosh. Returns 1.0 when both partitions are single-cluster and
/// identical in support, and 0.0 when either marginal entropy is 0 but the
/// partitions differ, or no positions overlap.
double NormalizedMutualInformation(const std::vector<uint32_t>& a,
                                   const std::vector<uint32_t>& b);

/// Mutual information I(a; b) in nats over jointly-labeled positions.
double MutualInformation(const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b);

/// Entropy of a labeling (over labeled positions), in nats.
double LabelEntropy(const std::vector<uint32_t>& labels);

/// Purity of clustering `pred` against ground truth `truth`: the fraction
/// of jointly-labeled objects assigned to their cluster's majority class.
double Purity(const std::vector<uint32_t>& pred,
              const std::vector<uint32_t>& truth);

/// Accuracy after optimally matching predicted clusters to ground-truth
/// classes (Hungarian algorithm on the confusion matrix).
double MatchedAccuracy(const std::vector<uint32_t>& pred,
                       const std::vector<uint32_t>& truth);

}  // namespace genclus
