// Status and Result<T>: exception-free error propagation for fallible
// operations, in the style of RocksDB/Arrow. Programming errors are handled
// with the CHECK macros in check.h instead.
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace genclus {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kNumericalError,
  kIoError,
  kNotConverged,
  kInternal,
  kCancelled,
  /// A bounded resource (e.g. the serving tier's request queue) is at
  /// capacity; the caller should back off and retry.
  kResourceExhausted,
  /// The request's deadline expired before (or would expire during)
  /// service: shed at dequeue, rejected by cost-based admission, or
  /// already expired at submit. The work was not performed.
  kDeadlineExceeded,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus, when not OK, a message.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status.
///
/// Usage:
///   Result<Network> r = LoadNetwork(path);
///   if (!r.ok()) return r.status();
///   Network net = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return t;` in functions returning Result<T>.
  Result(T value) : inner_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; must not be OK (an OK status carries no T).
  Result(Status status) : inner_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(inner_); }

  /// The status: OK if a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(inner_);
  }

  const T& value() const& { return std::get<T>(inner_); }
  T& value() & { return std::get<T>(inner_); }
  T&& value() && { return std::get<T>(std::move(inner_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> inner_;
};

}  // namespace genclus

/// Propagates a non-OK status out of the enclosing function.
#define GENCLUS_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::genclus::Status status_macro_s_ = (expr);    \
    if (!status_macro_s_.ok()) return status_macro_s_; \
  } while (0)

/// Evaluates a Result expression; assigns the value on success, propagates
/// the status on failure. `lhs` must be a declaration or assignable lvalue.
#define GENCLUS_ASSIGN_OR_RETURN(lhs, expr)          \
  GENCLUS_ASSIGN_OR_RETURN_IMPL_(                    \
      GENCLUS_STATUS_CONCAT_(result_macro_, __LINE__), lhs, expr)

#define GENCLUS_STATUS_CONCAT_INNER_(a, b) a##b
#define GENCLUS_STATUS_CONCAT_(a, b) GENCLUS_STATUS_CONCAT_INNER_(a, b)
#define GENCLUS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()
