// Fixed-size worker pool with a blocking ParallelFor. Used by the EM
// cluster-optimization step (paper §5.4 reports a 3.19x speedup with four
// threads for exactly this loop structure) and by the fused strength
// learner through ParallelForReduce.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace genclus {

/// A fixed set of worker threads executing submitted closures.
///
/// ParallelFor partitions an index range into contiguous shards, one per
/// worker, and blocks until all shards complete. Shards receive
/// (shard_index, begin, end) so callers can keep per-shard accumulators
/// without atomics.
///
/// Exception safety: a task that throws does not kill its worker thread or
/// leak the in-flight count. A Submit()ted task's first exception is
/// captured and rethrown from the next Wait(); a ParallelFor shard's first
/// exception is rethrown from that ParallelFor call itself. The pool stays
/// usable after a rethrow.
///
/// Concurrency: ParallelFor tracks completion per call, so multiple
/// threads may run ParallelFor batches on one pool concurrently (the
/// serving tier's worker sessions do) — each call blocks on exactly its
/// own shards and sees exactly its own errors. Calling ParallelFor from
/// inside a pool task still deadlocks; fan out from external threads only.
class ThreadPool {
 public:
  /// Creates `num_threads` workers. `num_threads == 0` means "hardware
  /// concurrency" (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(shard, begin, end) over a partition of [0, n) into
  /// min(num_threads, n) contiguous shards. Blocks until done. Runs inline
  /// when n is small or the pool has a single thread. Rethrows the first
  /// exception thrown by any shard once every shard has finished. Safe to
  /// call from multiple threads concurrently (per-call completion state).
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t, size_t)>& fn)
      GENCLUS_EXCLUDES(mutex_);

  /// Submits one task for asynchronous execution.
  void Submit(std::function<void()> task) GENCLUS_EXCLUDES(mutex_);

  /// Blocks until all submitted tasks have finished, then rethrows the
  /// first exception any of them raised (if one did). The rethrow happens
  /// after the pool mutex is released, so a catch handler may call back
  /// into the pool (Submit/Wait) without self-deadlocking.
  void Wait() GENCLUS_EXCLUDES(mutex_);

 private:
  void WorkerLoop() GENCLUS_EXCLUDES(mutex_);

  // threads_ is written only during construction (before any worker can
  // observe it) and joined in the destructor; it needs no guard, which is
  // what lets num_threads() stay lock-free.
  std::vector<std::thread> threads_;
  Mutex mutex_;
  CondVar task_available_;
  CondVar all_done_;
  std::queue<std::function<void()>> tasks_ GENCLUS_GUARDED_BY(mutex_);
  size_t in_flight_ GENCLUS_GUARDED_BY(mutex_) = 0;
  bool shutdown_ GENCLUS_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ GENCLUS_GUARDED_BY(mutex_);
};

/// Runs `body(block, begin, end)` over the fixed-size-block partition of
/// [0, n): block b covers [b * grain, min(n, (b + 1) * grain)). The
/// partition is a function of n and grain only — never of the thread
/// count — so callers that keep per-block state (ParallelForReduce's
/// partials, the EM sweep's workspace accumulators) get thread-invariant
/// block boundaries for free. Blocks are distributed over `pool`, or run
/// inline when the pool is null or single-threaded. Exceptions from
/// `body` propagate via ThreadPool::Wait's rethrow (or directly on the
/// sequential path).
template <typename Body>
void ForEachFixedGrainBlock(ThreadPool* pool, size_t n, size_t grain,
                            const Body& body) {
  if (n == 0) return;
  const size_t g = std::max<size_t>(1, grain);
  const size_t num_blocks = (n + g - 1) / g;
  const auto run_blocks = [&](size_t block_begin, size_t block_end) {
    for (size_t b = block_begin; b < block_end; ++b) {
      body(b, b * g, std::min(n, (b + 1) * g));
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(num_blocks,
                      [&](size_t /*shard*/, size_t begin, size_t end) {
                        run_blocks(begin, end);
                      });
  } else {
    run_blocks(0, num_blocks);
  }
}

/// Blocked deterministic parallel reduction over [0, n).
///
/// The range is cut into fixed-size blocks (ForEachFixedGrainBlock). Each
/// block accumulates into its own partial state (`body(state, begin,
/// end)`) and the partials are folded into one result in increasing block
/// order (`merge(into, from)`). Because both the block boundaries and the
/// merge order are independent of how blocks were scheduled, the reduced
/// result is bitwise identical for any thread count, including
/// `pool == nullptr` (fully sequential).
///
/// `make()` must produce an identity partial (merging it first is a
/// no-op).
template <typename State, typename MakeState, typename Body, typename Merge>
State ParallelForReduce(ThreadPool* pool, size_t n, size_t grain,
                        const MakeState& make, const Body& body,
                        const Merge& merge) {
  State result = make();
  if (n == 0) return result;
  const size_t g = std::max<size_t>(1, grain);
  const size_t num_blocks = (n + g - 1) / g;
  std::vector<State> partials;
  partials.reserve(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) partials.push_back(make());

  ForEachFixedGrainBlock(pool, n, grain,
                         [&](size_t b, size_t begin, size_t end) {
                           body(partials[b], begin, end);
                         });
  for (size_t b = 0; b < num_blocks; ++b) {
    merge(result, std::move(partials[b]));
  }
  return result;
}

}  // namespace genclus
