// Fixed-size worker pool with a blocking ParallelFor. Used by the EM
// cluster-optimization step (paper §5.4 reports a 3.19x speedup with four
// threads for exactly this loop structure).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace genclus {

/// A fixed set of worker threads executing submitted closures.
///
/// ParallelFor partitions an index range into contiguous shards, one per
/// worker, and blocks until all shards complete. Shards receive
/// (shard_index, begin, end) so callers can keep per-shard accumulators
/// without atomics.
class ThreadPool {
 public:
  /// Creates `num_threads` workers. `num_threads == 0` means "hardware
  /// concurrency" (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(shard, begin, end) over a partition of [0, n) into
  /// min(num_threads, n) contiguous shards. Blocks until done. Runs inline
  /// when n is small or the pool has a single thread.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t, size_t)>& fn);

  /// Submits one task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace genclus
