#include "common/thread_pool.h"

#include <algorithm>
#include <stdexcept>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/mutex.h"

namespace genclus {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  task_available_.NotifyAll();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && tasks_.empty()) task_available_.Wait(lock);
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // A throwing task must not unwind out of the worker (std::terminate)
    // or skip the in_flight_ decrement (Wait would hang): capture the
    // first exception and surface it from Wait.
    std::exception_ptr error;
    try {
      // Tests arm "thread_pool.task" to prove a throwing task surfaces
      // from Wait() without wedging the worker.
      GENCLUS_FAILPOINT("thread_pool.task",
                        throw std::runtime_error(
                            "injected thread_pool.task failure"));
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      MutexLock lock(mutex_);
      if (error && !first_error_) first_error_ = std::move(error);
      --in_flight_;
      if (in_flight_ == 0 && tasks_.empty()) all_done_.NotifyAll();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    GENCLUS_CHECK_MSG(!shutdown_, "Submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.NotifyOne();
}

void ThreadPool::Wait() {
  // The error is moved out and rethrown only after the lock scope ends:
  // rethrowing while holding mutex_ would deadlock any catch handler
  // that calls back into the pool.
  std::exception_ptr error;
  {
    MutexLock lock(mutex_);
    while (in_flight_ != 0 || !tasks_.empty()) all_done_.Wait(lock);
    error = std::move(first_error_);
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t shards = std::min(threads_.size(), n);
  // Small ranges or a single worker: run inline to skip dispatch overhead.
  if (shards <= 1 || n < 2 * shards) {
    fn(0, 0, n);
    return;
  }
  // Per-call completion state, so concurrent ParallelFor batches on one
  // pool never cross their completion or error tracking (each caller
  // waits for exactly its own shards). Shard tasks catch internally and
  // report here, not into the pool-level first_error_.
  struct BatchState {
    Mutex mutex;
    CondVar done;
    size_t remaining GENCLUS_GUARDED_BY(mutex) = 0;
    std::exception_ptr first_error GENCLUS_GUARDED_BY(mutex);
  } state;
  const size_t chunk = (n + shards - 1) / shards;
  size_t submitted = 0;
  for (size_t s = 0; s < shards; ++s) {
    if (s * chunk >= n) break;
    ++submitted;
  }
  {
    MutexLock lock(state.mutex);
    state.remaining = submitted;
  }
  for (size_t s = 0; s < submitted; ++s) {
    const size_t begin = s * chunk;
    const size_t end = std::min(n, begin + chunk);
    Submit([&fn, &state, s, begin, end] {
      std::exception_ptr error;
      try {
        fn(s, begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      // Notify under the lock: `state` lives on the caller's stack, and
      // the caller may return (destroying it) the moment it observes
      // remaining == 0 — which it cannot do before this lock is released.
      MutexLock lock(state.mutex);
      if (error && !state.first_error) state.first_error = std::move(error);
      if (--state.remaining == 0) state.done.NotifyAll();
    });
  }
  // As in Wait(): rethrow only after releasing the batch mutex.
  std::exception_ptr error;
  {
    MutexLock lock(state.mutex);
    while (state.remaining != 0) state.done.Wait(lock);
    error = std::move(state.first_error);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace genclus
