#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace genclus {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // A throwing task must not unwind out of the worker (std::terminate)
    // or skip the in_flight_ decrement (Wait would hang): capture the
    // first exception and surface it from Wait.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = std::move(error);
      --in_flight_;
      if (in_flight_ == 0 && tasks_.empty()) all_done_.notify_all();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    GENCLUS_CHECK_MSG(!shutdown_, "Submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0 && tasks_.empty(); });
  if (first_error_) {
    std::exception_ptr error = std::move(first_error_);
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t shards = std::min(threads_.size(), n);
  // Small ranges or a single worker: run inline to skip dispatch overhead.
  if (shards <= 1 || n < 2 * shards) {
    fn(0, 0, n);
    return;
  }
  // Per-call completion state, so concurrent ParallelFor batches on one
  // pool never cross their completion or error tracking (each caller
  // waits for exactly its own shards). Shard tasks catch internally and
  // report here, not into the pool-level first_error_.
  struct BatchState {
    std::mutex mutex;
    std::condition_variable done;
    size_t remaining = 0;
    std::exception_ptr first_error;
  } state;
  const size_t chunk = (n + shards - 1) / shards;
  size_t submitted = 0;
  for (size_t s = 0; s < shards; ++s) {
    if (s * chunk >= n) break;
    ++submitted;
  }
  state.remaining = submitted;
  for (size_t s = 0; s < submitted; ++s) {
    const size_t begin = s * chunk;
    const size_t end = std::min(n, begin + chunk);
    Submit([&fn, &state, s, begin, end] {
      std::exception_ptr error;
      try {
        fn(s, begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      // Notify under the lock: `state` lives on the caller's stack, and
      // the caller may return (destroying it) the moment it observes
      // remaining == 0 — which it cannot do before this lock is released.
      std::lock_guard<std::mutex> lock(state.mutex);
      if (error && !state.first_error) state.first_error = std::move(error);
      if (--state.remaining == 0) state.done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.remaining == 0; });
  if (state.first_error) std::rethrow_exception(state.first_error);
}

}  // namespace genclus
