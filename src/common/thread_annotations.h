// Clang thread-safety annotation macros. On Clang these expand to the
// attributes the -Wthread-safety analysis consumes, turning the project's
// lock discipline (which members a mutex guards, which functions need or
// exclude a lock) into compile-time errors on every schedule — the static
// counterpart of the TSan lane, which can only observe the schedules a
// test happens to run. On other compilers every macro is a no-op, so
// annotated headers stay portable (GCC builds carry the annotations as
// documentation only; CI's Clang lane enforces them with -Werror).
//
// Use the wrappers in common/mutex.h (genclus::Mutex / MutexLock /
// CondVar) rather than std::mutex directly: the analysis only tracks
// capability types, and tools/lint_determinism.py rejects naked std
// mutex primitives outside that header.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define GENCLUS_THREAD_ANNOTATION_ATTR(x) __attribute__((x))
#else
#define GENCLUS_THREAD_ANNOTATION_ATTR(x)  // no-op off Clang
#endif

// Marks a class as a lockable capability (e.g. a mutex). The string names
// the capability kind in diagnostics.
#define GENCLUS_CAPABILITY(x) GENCLUS_THREAD_ANNOTATION_ATTR(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases
// a capability (e.g. MutexLock).
#define GENCLUS_SCOPED_CAPABILITY GENCLUS_THREAD_ANNOTATION_ATTR(scoped_lockable)

// Declares that a data member may only be read or written while holding
// the given capability.
#define GENCLUS_GUARDED_BY(x) GENCLUS_THREAD_ANNOTATION_ATTR(guarded_by(x))

// As GUARDED_BY, but guards the data a pointer member points to rather
// than the pointer itself.
#define GENCLUS_PT_GUARDED_BY(x) GENCLUS_THREAD_ANNOTATION_ATTR(pt_guarded_by(x))

// Function-level contracts: the caller must hold the capability / must
// NOT hold it (deadlock prevention on self-locking public APIs).
#define GENCLUS_REQUIRES(...) \
  GENCLUS_THREAD_ANNOTATION_ATTR(requires_capability(__VA_ARGS__))
#define GENCLUS_EXCLUDES(...) \
  GENCLUS_THREAD_ANNOTATION_ATTR(locks_excluded(__VA_ARGS__))

// The function acquires / releases the capability (no argument = `this`,
// for methods of a capability class).
#define GENCLUS_ACQUIRE(...) \
  GENCLUS_THREAD_ANNOTATION_ATTR(acquire_capability(__VA_ARGS__))
#define GENCLUS_RELEASE(...) \
  GENCLUS_THREAD_ANNOTATION_ATTR(release_capability(__VA_ARGS__))

// The function attempts to acquire the capability and returns `succ` on
// success (e.g. try_lock returning true).
#define GENCLUS_TRY_ACQUIRE(...) \
  GENCLUS_THREAD_ANNOTATION_ATTR(try_acquire_capability(__VA_ARGS__))

// The function returns a reference to the given capability (accessor
// pattern).
#define GENCLUS_RETURN_CAPABILITY(x) \
  GENCLUS_THREAD_ANNOTATION_ATTR(lock_returned(x))

// Runtime assertion that the capability is held (for code paths the
// analysis cannot follow).
#define GENCLUS_ASSERT_CAPABILITY(x) \
  GENCLUS_THREAD_ANNOTATION_ATTR(assert_capability(x))

// Escape hatch: disables the analysis for one function. Every use must
// carry a comment explaining why the function is safe.
#define GENCLUS_NO_THREAD_SAFETY_ANALYSIS \
  GENCLUS_THREAD_ANNOTATION_ATTR(no_thread_safety_analysis)
