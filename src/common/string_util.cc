#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace genclus {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

namespace {

// strtod/strtoull need a NUL-terminated buffer; tokens are short, so a
// stack copy is cheap.
bool CopyToken(std::string_view s, char* buf, size_t buf_size) {
  if (s.empty() || s.size() >= buf_size) return false;
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  return true;
}

}  // namespace

bool ParseDouble(std::string_view s, double* out) {
  char buf[64];
  if (!CopyToken(s, buf, sizeof(buf))) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf, &end);
  if (end != buf + s.size() || errno == ERANGE) return false;
  *out = value;
  return true;
}

bool ParseSizeT(std::string_view s, size_t* out) {
  char buf[32];
  if (!CopyToken(s, buf, sizeof(buf))) return false;
  if (s[0] == '-' || s[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(buf, &end, 10);
  if (end != buf + s.size() || errno == ERANGE ||
      value > std::numeric_limits<size_t>::max()) {
    return false;
  }
  *out = static_cast<size_t>(value);
  return true;
}

bool ParseUint32(std::string_view s, uint32_t* out) {
  size_t value = 0;
  if (!ParseSizeT(s, &value) ||
      value > std::numeric_limits<uint32_t>::max()) {
    return false;
  }
  *out = static_cast<uint32_t>(value);
  return true;
}

}  // namespace genclus
