// Deterministic random number generation. Every stochastic component in the
// library takes an explicit Rng so that runs are reproducible given a seed,
// and so that parallel code can split independent streams.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace genclus {

/// Seeded pseudo-random generator wrapping mt19937_64 with the sampling
/// helpers the library needs. Copyable; copies evolve independently.
class Rng {
 public:
  /// Seeds deterministically. The same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    GENCLUS_DCHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n) {
    GENCLUS_DCHECK(n > 0);
    return std::uniform_int_distribution<size_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    GENCLUS_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal sample.
  double Gaussian() {
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Normal sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    GENCLUS_DCHECK(stddev >= 0.0);
    return mean + stddev * Gaussian();
  }

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Samples a point uniformly from a probability simplex of dimension k
  /// (i.e. a uniform Dirichlet(1,...,1) draw).
  std::vector<double> SimplexUniform(size_t k);

  /// Fisher-Yates shuffles [first, last) of an index vector.
  void Shuffle(std::vector<size_t>* indices);

  /// Derives a child generator with an independent stream; useful for
  /// splitting work across threads deterministically.
  Rng Split() { return Rng(engine_() ^ 0xD1B54A32D192ED03ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace genclus
