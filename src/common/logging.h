// Minimal leveled logger. Thread-safe; writes to stderr. Intended for
// library-internal progress/diagnostic output, controllable by callers.
#pragma once

#include <sstream>
#include <string>

namespace genclus {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Builds one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement below the active level without evaluating
/// the streamed expressions' formatting.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace genclus

#define GENCLUS_LOG(level)                                            \
  (static_cast<int>(::genclus::LogLevel::k##level) <                  \
   static_cast<int>(::genclus::GetLogLevel()))                        \
      ? (void)0                                                       \
      : (void)(::genclus::internal::LogMessage(                       \
                   ::genclus::LogLevel::k##level, __FILE__, __LINE__) \
                   .stream())

// Streaming form: GENCLUS_LOGS(Info) << "x=" << x;
#define GENCLUS_LOGS(level)                                          \
  if (static_cast<int>(::genclus::LogLevel::k##level) <              \
      static_cast<int>(::genclus::GetLogLevel())) {                  \
  } else                                                             \
    ::genclus::internal::LogMessage(::genclus::LogLevel::k##level,   \
                                    __FILE__, __LINE__)              \
        .stream()
