// CHECK macros for programming errors (never for recoverable conditions;
// those use Status). A failed CHECK prints the condition and location and
// aborts, so invariant violations fail fast in both Debug and Release.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace genclus::internal {

[[noreturn]] inline void CheckFailed(const char* cond, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               (msg != nullptr && msg[0] != '\0') ? " — " : "",
               msg != nullptr ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace genclus::internal

#define GENCLUS_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::genclus::internal::CheckFailed(#cond, __FILE__, __LINE__, "");    \
    }                                                                     \
  } while (0)

#define GENCLUS_CHECK_MSG(cond, msg)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::genclus::internal::CheckFailed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (0)

#define GENCLUS_CHECK_EQ(a, b) GENCLUS_CHECK((a) == (b))
#define GENCLUS_CHECK_NE(a, b) GENCLUS_CHECK((a) != (b))
#define GENCLUS_CHECK_LT(a, b) GENCLUS_CHECK((a) < (b))
#define GENCLUS_CHECK_LE(a, b) GENCLUS_CHECK((a) <= (b))
#define GENCLUS_CHECK_GT(a, b) GENCLUS_CHECK((a) > (b))
#define GENCLUS_CHECK_GE(a, b) GENCLUS_CHECK((a) >= (b))

// Debug-only check for hot paths.
#ifndef NDEBUG
#define GENCLUS_DCHECK(cond) GENCLUS_CHECK(cond)
#else
#define GENCLUS_DCHECK(cond) \
  do {                       \
  } while (0)
#endif
