// Cooperative cancellation for long-running operations (training runs,
// batch jobs). The caller keeps a CancellationToken alive, hands a pointer
// to the operation, and may request cancellation from any thread; the
// operation polls at safe points and winds down with StatusCode::kCancelled.
#pragma once

#include <atomic>

namespace genclus {

/// Thread-safe one-way cancellation flag. Once requested, cancellation
/// cannot be revoked; create a fresh token per operation instead.
///
/// Deliberately lock-free: the single flag is a std::atomic, so there is
/// no capability for the thread-safety analysis to track here — the
/// release/acquire pair below is the whole synchronization story. Any
/// future state beyond one flag (a cancellation reason, callbacks) must
/// move behind an annotated genclus::Mutex (common/mutex.h).
class CancellationToken {
 public:
  CancellationToken() = default;

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. Safe to call from any thread, any number of
  /// times.
  void RequestCancellation() {
    cancelled_.store(true, std::memory_order_release);
  }

  /// True once cancellation has been requested.
  bool IsCancellationRequested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace genclus
