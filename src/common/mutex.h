// Annotated mutex / scoped-lock / condition-variable wrappers — the only
// place in the library that touches std::mutex directly (enforced by
// tools/lint_determinism.py). Wrapping the std primitives in capability
// types is what lets Clang's -Wthread-safety analysis check the lock
// discipline declared with the GENCLUS_GUARDED_BY / GENCLUS_REQUIRES
// annotations (common/thread_annotations.h) at compile time.
//
// Condition waits deliberately have no predicate overloads: a predicate
// lambda is analyzed as a separate function, so guarded reads inside it
// would need their own annotations. Callers write the standard loop form
// instead, where the guarded reads sit in the scope that visibly holds
// the lock:
//
//   MutexLock lock(mutex_);
//   while (!ready_) cv_.Wait(lock);          // ready_ GUARDED_BY(mutex_)
//
// The analysis models the capability as held across Wait() even though
// the wait releases and reacquires it internally; that approximation is
// sound for discipline checking (same convention as absl::CondVar).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace genclus {

class MutexLock;

/// Annotated exclusive mutex wrapping std::mutex. Prefer MutexLock for
/// scoped acquisition; Lock/Unlock exist for the rare split-scope
/// patterns and for the negative-compilation harness.
class GENCLUS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GENCLUS_ACQUIRE() { mu_.lock(); }
  void Unlock() GENCLUS_RELEASE() { mu_.unlock(); }
  bool TryLock() GENCLUS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;

  std::mutex mu_;
};

/// RAII scoped acquisition of a Mutex. Holds a std::unique_lock so
/// CondVar can wait on the underlying std::mutex without re-locking.
class GENCLUS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GENCLUS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() GENCLUS_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;

  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock. Spurious wakeups are
/// possible, as with std::condition_variable — always wait in a loop.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex and blocks until notified, then
  /// reacquires before returning.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// As Wait, but returns once `deadline` passes even without a notify.
  /// True = timed out (the deadline passed before a notification).
  template <typename Clock, typename Duration>
  bool WaitUntil(MutexLock& lock,
                 const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline) == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace genclus
