#include "common/flags.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace genclus {
namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool LooksLikeFlag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!LooksLikeFlag(arg)) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is itself a flag (or absent),
    // in which case it is a boolean flag.
    if (i + 1 < argc && !LooksLikeFlag(argv[i + 1])) {
      flags.values_[body] = argv[i + 1];
      ++i;
    } else {
      flags.values_[body] = "";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  if (it->second.empty()) return true;  // bare --flag
  std::string v = ToLower(it->second);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace genclus
