#include "common/status.h"

namespace genclus {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotConverged:
      return "NotConverged";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace genclus
