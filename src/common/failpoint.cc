#include "common/failpoint.h"

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace genclus {

namespace {

struct FailpointState {
  FailpointSpec spec;
  size_t hits = 0;
  size_t fires = 0;
};

// std::map (not unordered): iteration order never matters here, but the
// determinism lint's hash-container rules are simplest to satisfy by
// construction. The transparent comparator lets Fire() look up by
// string_view without allocating on the hot (armed) path.
struct Registry {
  Mutex mutex;
  std::map<std::string, FailpointState, std::less<>> points
      GENCLUS_GUARDED_BY(mutex);
};

// Leaked singleton: failpoints can fire from worker threads during static
// destruction order teardown, so the registry must never be destroyed.
Registry& GlobalRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

}  // namespace

void Failpoints::Arm(std::string_view name, FailpointSpec spec) {
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mutex);
  FailpointState state;
  state.spec = spec;
  registry.points.insert_or_assign(std::string(name), state);
}

void Failpoints::Disarm(std::string_view name) {
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mutex);
  auto it = registry.points.find(name);
  if (it != registry.points.end()) registry.points.erase(it);
}

void Failpoints::DisarmAll() {
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mutex);
  registry.points.clear();
}

size_t Failpoints::HitCount(std::string_view name) {
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mutex);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.hits;
}

bool Failpoints::Fire(const char* name) {
  int64_t delay_us = 0;
  bool fail = false;
  {
    Registry& registry = GlobalRegistry();
    MutexLock lock(registry.mutex);
    auto it = registry.points.find(std::string_view(name));
    if (it == registry.points.end()) return false;
    FailpointState& state = it->second;
    ++state.hits;
    if (state.hits <= state.spec.skip_hits) return false;
    if (state.fires >= state.spec.max_fires) return false;
    ++state.fires;
    delay_us = state.spec.delay_us;
    fail = state.spec.fail;
  }
  // Sleep outside the lock so a delay failpoint stalls only its own
  // thread, not every other armed site.
  if (delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  return fail;
}

}  // namespace genclus
