// Failpoints: named fault-injection sites, compiled to nothing unless the
// build sets -DGENCLUS_FAILPOINTS (CMake option GENCLUS_FAILPOINTS=ON).
// They exist so tests can drive error paths DETERMINISTICALLY — a worker
// throw, a truncated model file, a queue storm — instead of hoping a
// stress test happens to hit them.
//
// A site names itself and states what happens when it fires:
//
//   GENCLUS_FAILPOINT("server.execute",
//                     throw std::runtime_error("injected failure"));
//   GENCLUS_FAILPOINT("bounded_queue.push", return false);
//   GENCLUS_FAILPOINT("server.worker_batch");   // delay-only site
//
// Tests arm a site by name with a FailpointSpec:
//
//   Failpoints::Arm("server.execute", {.max_fires = 1});        // throw once
//   Failpoints::Arm("server.worker_batch",
//                   {.delay_us = 20000, .fail = false});        // 20ms stall
//   Failpoints::Arm("model_io.save", {.skip_hits = 2});         // 3rd hit on
//
// Fire() applies the configured delay (if any) and returns whether the
// site's action body should run. Unarmed sites return false immediately;
// with failpoints compiled out the macro expands to an empty statement, so
// production builds carry zero overhead — no registry lookup, no branch,
// no string. The registry API itself (Arm/Disarm/HitCount) always links,
// so test code compiles in every lane and gates on Failpoints::kEnabled.
//
// Placement rule (enforced by tools/lint_determinism.py R5): in the
// numeric hot-path directories src/core and src/linalg, failpoint sites
// may appear only in the designated fault-injection surfaces (server.cc,
// model_io.cc) or inside an explicit #ifdef GENCLUS_FAILPOINTS region —
// never bare inside a kernel loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>

namespace genclus {

/// How an armed failpoint behaves. Hits are counted per Fire() call at
/// the site; a hit "triggers" once skip_hits have passed and while fewer
/// than max_fires triggers have happened. Every trigger applies delay_us
/// first; the site's action body runs only when `fail` is true.
struct FailpointSpec {
  /// Hits to pass through untouched before the first trigger (N-th-hit
  /// triggers: skip_hits = N - 1).
  size_t skip_hits = 0;
  /// Triggers after which the point goes quiet (stays armed for
  /// HitCount accounting). Default: unlimited.
  size_t max_fires = std::numeric_limits<size_t>::max();
  /// Sleep applied on each trigger, before the action body — the "slow
  /// worker" / "wedged I/O" injection.
  int64_t delay_us = 0;
  /// Whether a trigger runs the site's action body (error-return /
  /// throw). false = delay-only failpoint.
  bool fail = true;
};

/// Global registry of armed failpoints. All methods are thread-safe;
/// with failpoints compiled out, Arm/Disarm are accepted but no site
/// ever consults the registry.
class Failpoints {
 public:
#if defined(GENCLUS_FAILPOINTS)
  static constexpr bool kEnabled = true;
#else
  static constexpr bool kEnabled = false;
#endif

  /// Arms (or re-arms, resetting counters) the named failpoint.
  static void Arm(std::string_view name, FailpointSpec spec = {});

  /// Disarms the named failpoint (no-op when not armed).
  static void Disarm(std::string_view name);

  /// Disarms everything — test teardown hygiene.
  static void DisarmAll();

  /// Fire() calls the named site has seen since it was (last) armed;
  /// 0 when not armed.
  static size_t HitCount(std::string_view name);

  /// Called by GENCLUS_FAILPOINT at an armed site: counts the hit,
  /// applies the configured delay when triggering, and returns whether
  /// the site's action body should run. Not meant to be called directly.
  static bool Fire(const char* name);
};

}  // namespace genclus

#if defined(GENCLUS_FAILPOINTS)
/// Names a fault-injection site. The variadic action body runs when the
/// site is armed and triggers (see FailpointSpec); it may throw, return,
/// or mutate local state. Omit the body for a delay-only site.
#define GENCLUS_FAILPOINT(name, ...)           \
  do {                                         \
    if (::genclus::Failpoints::Fire(name)) {   \
      __VA_ARGS__;                             \
    }                                          \
  } while (0)
#else
#define GENCLUS_FAILPOINT(name, ...) \
  do {                               \
  } while (0)
#endif
