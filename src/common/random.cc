#include "common/random.h"

#include <algorithm>
#include <numeric>

namespace genclus {

size_t Rng::Categorical(const std::vector<double>& weights) {
  GENCLUS_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    GENCLUS_DCHECK(w >= 0.0);
    total += w;
  }
  GENCLUS_CHECK_MSG(total > 0.0, "Categorical requires a positive weight");
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  // Floating point slack: return the last index with positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<double> Rng::SimplexUniform(size_t k) {
  GENCLUS_CHECK(k > 0);
  // Sample k iid Exp(1) variables and normalize.
  std::vector<double> out(k);
  double total = 0.0;
  for (size_t i = 0; i < k; ++i) {
    double u = Uniform();
    // Guard against log(0).
    if (u <= 0.0) u = 1e-300;
    out[i] = -std::log(u);
    total += out[i];
  }
  for (double& v : out) v /= total;
  return out;
}

void Rng::Shuffle(std::vector<size_t>* indices) {
  GENCLUS_CHECK(indices != nullptr);
  std::shuffle(indices->begin(), indices->end(), engine_);
}

}  // namespace genclus
