// Wall-clock timing for the efficiency benchmarks (Fig. 11).
#pragma once

#include <chrono>

namespace genclus {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace genclus
