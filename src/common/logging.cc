#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/mutex.h"

namespace genclus {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

// Serializes the final fprintf so concurrent log lines never interleave.
// Only the emit path takes it; level get/set stay lock-free atomics.
Mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to keep lines short.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  MutexLock lock(g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace genclus
