// Tiny command-line flag parser used by the bench and example binaries.
// Accepts "--name value", "--name=value", and boolean "--name".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace genclus {

/// Parsed command-line flags with typed, defaulted accessors.
class Flags {
 public:
  /// Parses argv. Unrecognized positional arguments are kept in order and
  /// available via positional().
  static Flags Parse(int argc, char** argv);

  /// True if --name was present (with or without a value).
  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  /// Boolean flag: present without value, or value in
  /// {1, true, yes, on} (case-insensitive).
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace genclus
