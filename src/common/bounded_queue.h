// Bounded MPMC queue with non-blocking admission — the backpressure
// primitive of the serving tier (core/server.h). Producers never block:
// TryPush fails immediately when the queue is at capacity or closed, so
// an overloaded server can answer kResourceExhausted instead of queueing
// unboundedly. Consumers block in PopBatch, which coalesces whatever is
// queued into one batch: it waits for the first item, then lingers up to
// `max_wait` gathering more until `max_items` — the micro-batching
// admission policy, expressed once as a queue operation so it can be
// tested without a server around it.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace genclus {

/// Bounded multi-producer multi-consumer FIFO. All operations are
/// thread-safe; closing wakes every blocked consumer and lets them drain
/// the remaining items.
template <typename T>
class BoundedQueue {
 public:
  /// A queue holding at most `capacity` items (at least 1).
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push: false when the queue is full or closed (the item
  /// is dropped — callers surface backpressure to their own callers
  /// instead of waiting).
  bool TryPush(T item) GENCLUS_EXCLUDES(mutex_) {
    // Queue-storm injection: tests arm "bounded_queue.push" to make
    // admission behave as if the queue were at capacity.
    GENCLUS_FAILPOINT("bounded_queue.push", return false);
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until at least one item is available (or the queue is closed
  /// and drained — returns 0, the consumer's exit signal). Then moves up
  /// to `max_items` into `*out` (cleared first), lingering up to
  /// `max_wait` past the first pop for more arrivals so consumers see
  /// micro-batches instead of single items. Never waits once `max_items`
  /// is reached, the queue is closed, or `max_wait` is zero.
  size_t PopBatch(std::vector<T>* out, size_t max_items,
                  std::chrono::microseconds max_wait)
      GENCLUS_EXCLUDES(mutex_) {
    return PopBatch(out, max_items, max_wait, [](const T&) {
      return std::chrono::steady_clock::time_point::max();
    });
  }

  /// As above, but each popped item may tighten the linger: `item_cap`
  /// maps an item to the latest instant the consumer may keep lingering
  /// while holding it (steady_clock::time_point::max() = no cap). The
  /// serving tier passes each request's deadline (minus an execution
  /// margin), so one tight-deadline request stops the micro-batch from
  /// coalescing past the point where it could still be served in time.
  template <typename ItemCapFn>
  size_t PopBatch(std::vector<T>* out, size_t max_items,
                  std::chrono::microseconds max_wait, ItemCapFn item_cap)
      GENCLUS_EXCLUDES(mutex_) {
    out->clear();
    if (max_items == 0) return 0;
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) not_empty_.Wait(lock);
    if (items_.empty()) return 0;
    auto linger_until = std::chrono::steady_clock::now() + max_wait;
    for (;;) {
      while (!items_.empty() && out->size() < max_items) {
        out->push_back(std::move(items_.front()));
        items_.pop_front();
        linger_until = std::min(linger_until, item_cap(out->back()));
      }
      if (out->size() >= max_items || closed_ ||
          max_wait <= std::chrono::microseconds::zero()) {
        break;
      }
      // Linger: sleep until new arrivals, close, or the (possibly
      // item-capped) deadline. A timed-out wake still rechecks once — an
      // item can arrive in the same instant the deadline expires.
      bool timed_out = false;
      while (!timed_out && !closed_ && items_.empty()) {
        timed_out = not_empty_.WaitUntil(lock, linger_until);
      }
      if (closed_ || !items_.empty()) {
        continue;  // new arrivals (or close) before the linger expired
      }
      break;  // linger expired with nothing new
    }
    return out->size();
  }

  /// Pops one item, blocking. False when the queue is closed and drained.
  bool Pop(T* out) GENCLUS_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) not_empty_.Wait(lock);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Rejects all future pushes and wakes every blocked consumer. Items
  /// already queued remain poppable (consumers drain, then see 0/false).
  /// Idempotent.
  void Close() GENCLUS_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
  }

  size_t size() const GENCLUS_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

  /// Largest depth the queue ever reached — the admission-loop tuning
  /// signal ServerStats reports.
  size_t high_water() const GENCLUS_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return high_water_;
  }

  size_t capacity() const { return capacity_; }

  bool closed() const GENCLUS_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_empty_;
  std::deque<T> items_ GENCLUS_GUARDED_BY(mutex_);
  size_t high_water_ GENCLUS_GUARDED_BY(mutex_) = 0;
  bool closed_ GENCLUS_GUARDED_BY(mutex_) = false;
};

}  // namespace genclus
