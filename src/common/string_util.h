// Small string helpers shared across IO, benches and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace genclus {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on any run of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strips leading and trailing whitespace.
std::string Trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Strict numeric parsing: the whole token must be consumed, and the value
/// must fit the target type. Returns false (leaving *out untouched) on any
/// malformed input — unlike std::stod/stoul these never throw, so loaders
/// can turn bad file contents into a clean Status.
bool ParseDouble(std::string_view s, double* out);
bool ParseSizeT(std::string_view s, size_t* out);
bool ParseUint32(std::string_view s, uint32_t* out);

}  // namespace genclus
