// Deadline: a monotonic point in time a piece of work must finish by.
// Every serving-tier Request carries one (core/server.h): set per query
// through the Submit overloads or defaulted from
// ServerOptions::default_timeout_us, it is what the admission loop sheds
// against at dequeue, what caps a micro-batch's coalescing linger, and
// what cost-based early rejection compares the queue-wait prediction to.
//
// Built on steady_clock (never wall clock — the determinism lint bans
// system_clock), so a deadline is immune to clock adjustments. The
// default-constructed value is infinite: it never expires and its
// remaining budget saturates, so deadline-free callers pay no branches
// beyond one is_infinite() check.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>

namespace genclus {

/// A monotonic completion deadline. Value type, trivially copyable;
/// an infinite deadline (the default) never expires.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite: never expires.
  constexpr Deadline() = default;

  static constexpr Deadline Infinite() { return Deadline(); }

  /// Expires at the monotonic instant `when`.
  static constexpr Deadline At(Clock::time_point when) {
    return Deadline(when);
  }

  /// Expires `budget` from now.
  static Deadline After(Clock::duration budget) {
    return Deadline(Clock::now() + budget);
  }

  /// Expires `budget_us` microseconds from now.
  static Deadline AfterMicros(int64_t budget_us) {
    return After(std::chrono::microseconds(budget_us));
  }

  constexpr bool is_infinite() const {
    return when_ == Clock::time_point::max();
  }

  /// The expiry instant; Clock::time_point::max() when infinite. Usable
  /// directly as a CondVar::WaitUntil / BoundedQueue linger cap.
  constexpr Clock::time_point when() const { return when_; }

  /// True once `now` has reached the deadline. Infinite never expires.
  bool Expired(Clock::time_point now = Clock::now()) const {
    return !is_infinite() && now >= when_;
  }

  /// Remaining budget in microseconds, clamped at 0 once expired;
  /// saturates at int64 max when infinite.
  int64_t RemainingMicros(Clock::time_point now = Clock::now()) const {
    if (is_infinite()) return std::numeric_limits<int64_t>::max();
    if (now >= when_) return 0;
    return std::chrono::duration_cast<std::chrono::microseconds>(when_ - now)
        .count();
  }

  /// Remaining budget in seconds, clamped at 0; +infinity when infinite.
  double RemainingSeconds(Clock::time_point now = Clock::now()) const {
    if (is_infinite()) return std::numeric_limits<double>::infinity();
    if (now >= when_) return 0.0;
    return std::chrono::duration<double>(when_ - now).count();
  }

  constexpr bool operator==(const Deadline& other) const {
    return when_ == other.when_;
  }

 private:
  explicit constexpr Deadline(Clock::time_point when) : when_(when) {}

  Clock::time_point when_ = Clock::time_point::max();
};

}  // namespace genclus
