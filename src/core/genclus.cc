#include "core/genclus.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/em.h"
#include "core/init.h"
#include "core/objective.h"
#include "core/strength.h"
#include "prob/simplex.h"

namespace genclus {

std::vector<uint32_t> GenClusResult::HardLabels() const {
  return RowArgMax(theta);
}

GenClus::GenClus(const Network* network,
                 std::vector<const Attribute*> attributes,
                 GenClusConfig config)
    : network_(network),
      attributes_(std::move(attributes)),
      config_(std::move(config)) {
  GENCLUS_CHECK(network_ != nullptr);
  if (config_.num_threads != 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
}

GenClus::~GenClus() = default;

void GenClus::SetProgressObserver(ProgressObserver* observer) {
  observer_ = observer;
}

void GenClus::SetCancellationToken(const CancellationToken* token) {
  cancellation_ = token;
}

void GenClus::SetWarmStart(Matrix theta,
                           std::vector<AttributeComponents> components) {
  has_warm_start_ = true;
  warm_theta_ = std::move(theta);
  warm_components_ = std::move(components);
}

Result<GenClusResult> GenClus::Run() {
  const size_t num_relations = network_->schema().num_link_types();
  GENCLUS_RETURN_IF_ERROR(config_.Validate(num_relations));
  for (const Attribute* a : attributes_) {
    if (a == nullptr || a->num_nodes() != network_->num_nodes()) {
      return Status::InvalidArgument(
          "attribute is null or sized for a different network");
    }
  }

  Rng rng(config_.seed);
  EmOptimizer optimizer(network_, attributes_, &config_, pool_.get());
  // One workspace for every EM phase of the outer loop: the problem shape
  // never changes, so all EM scratch is allocated exactly once per fit.
  EmWorkspace em_workspace;

  // gamma^0: all link types equally important unless overridden (§4.3).
  std::vector<double> gamma = config_.initial_gamma.empty()
                                  ? std::vector<double>(num_relations, 1.0)
                                  : config_.initial_gamma;

  GenClusResult result;
  result.gamma = gamma;
  {
    OuterIterationRecord initial;
    initial.iteration = 0;
    initial.gamma = gamma;
    result.trace.push_back(std::move(initial));
  }

  // Theta'_0, beta'_0: either the caller-provided warm start (the refit
  // path) or best-of-seeds (§4.3 initialization).
  if (has_warm_start_) {
    if (warm_theta_.rows() != network_->num_nodes() ||
        warm_theta_.cols() != config_.num_clusters) {
      return Status::InvalidArgument(StrFormat(
          "warm-start theta is %zu x %zu, want %zu x %zu",
          warm_theta_.rows(), warm_theta_.cols(), network_->num_nodes(),
          config_.num_clusters));
    }
    if (warm_components_.size() != attributes_.size()) {
      return Status::InvalidArgument(StrFormat(
          "warm start carries %zu component sets, attribute subset has %zu",
          warm_components_.size(), attributes_.size()));
    }
    for (size_t t = 0; t < attributes_.size(); ++t) {
      const AttributeComponents& comp = warm_components_[t];
      const Attribute& attr = *attributes_[t];
      const bool kind_ok = comp.kind() == attr.kind();
      const bool shape_ok =
          kind_ok && comp.num_clusters() == config_.num_clusters &&
          (attr.kind() != AttributeKind::kCategorical ||
           comp.beta().cols() == attr.vocab_size());
      if (!shape_ok) {
        return Status::InvalidArgument(StrFormat(
            "warm-start components for attribute %zu do not match its "
            "kind/shape", t));
      }
    }
    result.theta = std::move(warm_theta_);
    result.components = std::move(warm_components_);
    has_warm_start_ = false;
  } else {
    BestOfSeedsInit(optimizer, *network_, attributes_, config_, gamma, &rng,
                    &result.theta, &result.components);
  }

  for (size_t outer = 1; outer <= config_.outer_iterations; ++outer) {
    if (cancellation_ && cancellation_->IsCancellationRequested()) {
      return Status::Cancelled(StrFormat(
          "training cancelled before outer iteration %zu", outer));
    }
    OuterIterationRecord record;
    record.iteration = outer;

    // Step 1: optimize Theta, beta for fixed gamma.
    WallTimer em_timer;
    if (!config_.warm_start && outer > 1) {
      BestOfSeedsInit(optimizer, *network_, attributes_, config_, gamma,
                      &rng, &result.theta, &result.components);
    }
    EmStats em_stats = optimizer.Run(gamma, &result.theta,
                                     &result.components, &em_workspace);
    record.em_seconds = em_timer.Seconds();
    record.em_iterations = em_stats.iterations;
    record.em_block_sweeps = em_stats.iterations * em_stats.blocks;
    for (size_t skipped : em_stats.skipped_per_sweep) {
      record.em_blocks_skipped += skipped;
    }
    result.em_blocks_skipped += record.em_blocks_skipped;
    result.em_final_block_deltas = std::move(em_stats.final_block_deltas);
    record.em_objective = G1Objective(*network_, attributes_,
                                      result.components, result.theta, gamma);

    // Step 2: optimize gamma for fixed Theta.
    double gamma_delta = 0.0;
    WallTimer strength_timer;
    if (config_.learn_strengths) {
      StrengthLearner learner(network_, &result.theta, &config_,
                              pool_.get());
      StrengthStats strength_stats;
      std::vector<double> new_gamma = learner.Learn(gamma, &strength_stats);
      for (size_t r = 0; r < num_relations; ++r) {
        gamma_delta = std::max(gamma_delta,
                               std::fabs(new_gamma[r] - gamma[r]));
      }
      gamma = std::move(new_gamma);
      record.strength_objective = strength_stats.objective;
    }
    record.strength_seconds = strength_timer.Seconds();
    record.gamma = gamma;

    GENCLUS_LOGS(Info) << "GenClus outer " << outer
                       << ": g1=" << record.em_objective
                       << " em_iters=" << em_stats.iterations
                       << " gamma_delta=" << gamma_delta;

    result.trace.push_back(record);
    if (observer_) {
      observer_->OnOuterIteration(result.trace.back(), result.theta);
    }

    if (config_.learn_strengths && outer > 1 &&
        gamma_delta < config_.outer_tolerance) {
      result.converged = true;
      break;
    }
  }

  result.gamma = gamma;
  result.objective = G1Objective(*network_, attributes_, result.components,
                                 result.theta, gamma);
  return result;
}

Result<GenClusResult> RunGenClus(const Dataset& dataset,
                                 const std::vector<std::string>& attributes,
                                 const GenClusConfig& config) {
  GENCLUS_RETURN_IF_ERROR(dataset.Validate());
  std::vector<const Attribute*> attrs;
  attrs.reserve(attributes.size());
  for (const std::string& name : attributes) {
    AttributeId id = dataset.FindAttribute(name);
    if (id == kInvalidAttribute) {
      return Status::NotFound(
          StrFormat("attribute '%s' not in dataset", name.c_str()));
    }
    attrs.push_back(&dataset.attributes[id]);
  }
  GenClus algorithm(&dataset.network, std::move(attrs), config);
  return algorithm.Run();
}

}  // namespace genclus
