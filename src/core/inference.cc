#include "core/inference.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "prob/simplex.h"

namespace genclus {

Result<std::vector<double>> InferMembership(
    const Network& network, const Model& model,
    const std::vector<NewObjectLink>& links,
    const std::vector<NewObjectObservation>& observations,
    size_t iterations, double theta_floor) {
  const size_t num_clusters = model.theta.cols();
  if (num_clusters < 2) {
    return Status::FailedPrecondition("model has no clustering");
  }
  if (model.theta.rows() != network.num_nodes() ||
      model.gamma.size() != network.schema().num_link_types()) {
    return Status::InvalidArgument("model does not match network");
  }
  for (const NewObjectLink& link : links) {
    if (link.target >= network.num_nodes()) {
      return Status::InvalidArgument("link target out of range");
    }
    if (!network.schema().ValidLinkType(link.type)) {
      return Status::InvalidArgument("unknown link type");
    }
    if (!(link.weight > 0.0) || !std::isfinite(link.weight)) {
      return Status::InvalidArgument("link weight must be positive");
    }
  }
  for (const NewObjectObservation& obs : observations) {
    if (obs.attribute >= model.components.size()) {
      return Status::InvalidArgument("observation attribute out of range");
    }
    const AttributeComponents& comp = model.components[obs.attribute];
    if (comp.kind() == AttributeKind::kCategorical &&
        obs.term >= comp.beta().cols()) {
      return Status::InvalidArgument(
          StrFormat("term %u outside vocabulary", obs.term));
    }
  }

  // Link part is constant across sweeps: sum_e gamma w theta_target.
  std::vector<double> link_part(num_clusters, 0.0);
  for (const NewObjectLink& link : links) {
    const double coeff = model.gamma[link.type] * link.weight;
    if (coeff == 0.0) continue;
    const double* theta_u = model.theta.Row(link.target);
    for (size_t k = 0; k < num_clusters; ++k) {
      link_part[k] += coeff * theta_u[k];
    }
  }

  // Gaussian constants are sweep- and observation-invariant; hoisting them
  // here applies the same evaluation rule the training E-step uses
  // (core/em.cc), so fold-in stays consistent with a full training pass.
  // Only attributes this query actually observes pay the build (an empty
  // table marks "not built").
  std::vector<GaussianEvalTable> gaussians(model.components.size());
  for (const NewObjectObservation& obs : observations) {
    const AttributeComponents& comp = model.components[obs.attribute];
    if (comp.kind() == AttributeKind::kNumerical &&
        gaussians[obs.attribute].num_clusters() == 0) {
      gaussians[obs.attribute].Rebuild(comp);
    }
  }

  std::vector<double> theta(num_clusters, 1.0 / num_clusters);
  std::vector<double> resp(num_clusters);
  const size_t sweeps = std::max<size_t>(1, iterations);
  for (size_t iter = 0; iter < sweeps; ++iter) {
    std::vector<double> mix = link_part;
    for (const NewObjectObservation& obs : observations) {
      const AttributeComponents& comp = model.components[obs.attribute];
      if (comp.kind() == AttributeKind::kCategorical) {
        double total = 0.0;
        for (size_t k = 0; k < num_clusters; ++k) {
          resp[k] = theta[k] * comp.TermProb(static_cast<ClusterId>(k),
                                             obs.term);
          total += resp[k];
        }
        if (total <= 0.0) {
          // All clusters assign zero mass (possible with zero smoothing).
          // Mirror the training E-step (em.cc): uniform responsibilities,
          // and the observation's count mass still contributes — skipping
          // it would make fold-in memberships diverge from what a full
          // training pass assigns to the same evidence.
          std::fill(resp.begin(), resp.end(), 1.0 / num_clusters);
          total = 1.0;
        }
        for (size_t k = 0; k < num_clusters; ++k) {
          mix[k] += obs.count * resp[k] / total;
        }
      } else {
        const GaussianEvalTable& table = gaussians[obs.attribute];
        double max_log = -std::numeric_limits<double>::infinity();
        for (size_t k = 0; k < num_clusters; ++k) {
          const double t = theta[k] > 0.0 ? theta[k] : 1e-300;
          resp[k] = std::log(t) + table.LogPdf(k, obs.value);
          max_log = std::max(max_log, resp[k]);
        }
        double total = 0.0;
        for (size_t k = 0; k < num_clusters; ++k) {
          resp[k] = std::exp(resp[k] - max_log);
          total += resp[k];
        }
        for (size_t k = 0; k < num_clusters; ++k) {
          mix[k] += resp[k] / total;
        }
      }
    }
    NormalizeToSimplex(&mix);
    ClampToSimplex(&mix, theta_floor);
    const double delta = MaxAbsDiff(theta, mix);
    theta = std::move(mix);
    if (delta < 1e-10) break;
  }
  return theta;
}

}  // namespace genclus
