#include "core/inference.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace genclus {

namespace {

// Model-vs-network precondition shared by the reference path and the
// planner; a per-query path returns it per query, the planner computes it
// once per (network, model) pair.
Status ValidateModelForServing(const Network& network, const Model& model) {
  if (model.theta.cols() < 2) {
    return Status::FailedPrecondition("model has no clustering");
  }
  // The model may cover MORE nodes than the network (a refreshed model
  // hot-swapped into a server still planning against the old network —
  // queries only link to nodes the network can address, all of which
  // have Θ rows), never fewer.
  if (model.theta.rows() < network.num_nodes() ||
      model.gamma.size() != network.schema().num_link_types()) {
    return Status::InvalidArgument("model does not match network");
  }
  // The plan CSR addresses link targets with 32-bit column ids; reject
  // node counts that would silently wrap instead of truncating at
  // assembly time.
  GENCLUS_RETURN_IF_ERROR(
      ValidateCsrColumnCount(network.num_nodes(), "serving node count"));
  return Status::OK();
}

Status ValidateLink(const Network& network, const NewObjectLink& link) {
  if (link.target >= network.num_nodes()) {
    return Status::InvalidArgument("link target out of range");
  }
  if (!network.schema().ValidLinkType(link.type)) {
    return Status::InvalidArgument("unknown link type");
  }
  if (!(link.weight > 0.0) || !std::isfinite(link.weight)) {
    return Status::InvalidArgument("link weight must be positive");
  }
  return Status::OK();
}

// First-error validation of one query, in the reference path's order:
// links before observations. Used by InferMembership; BatchPlanner::Plan
// fuses the SAME per-item checks and ordering into its assembly loop, so
// a query fails with the same status on either path — keep the two in
// sync (serve_batch_test pins the status equality).
Status ValidateQuery(const Network& network, const Model& model,
                     const std::vector<NewObjectLink>& links,
                     const std::vector<NewObjectObservation>& observations) {
  for (const NewObjectLink& link : links) {
    GENCLUS_RETURN_IF_ERROR(ValidateLink(network, link));
  }
  for (const NewObjectObservation& obs : observations) {
    GENCLUS_RETURN_IF_ERROR(obs.Validate(model));
  }
  return Status::OK();
}

const char* KindName(AttributeKind kind) {
  return kind == AttributeKind::kCategorical ? "categorical" : "numerical";
}

}  // namespace

NewObjectObservation NewObjectObservation::Categorical(AttributeId attribute,
                                                       uint32_t term,
                                                       double count) {
  NewObjectObservation obs;
  obs.attribute = attribute;
  obs.term = term;
  obs.count = count;
  obs.kind = ObservationKind::kCategorical;
  return obs;
}

NewObjectObservation NewObjectObservation::Numerical(AttributeId attribute,
                                                     double value) {
  NewObjectObservation obs;
  obs.attribute = attribute;
  obs.value = value;
  obs.kind = ObservationKind::kNumerical;
  return obs;
}

Status NewObjectObservation::Validate(const Model& model) const {
  if (attribute >= model.components.size()) {
    return Status::InvalidArgument("observation attribute out of range");
  }
  const AttributeKind model_kind = model.components[attribute].kind();
  // attributes metadata is aligned with components in Engine-produced
  // models but may be absent in hand-built ones; fall back to the id.
  // Built lazily: error paths only, the hot path stays allocation-free.
  const auto name = [&]() -> std::string {
    return attribute < model.attributes.size()
               ? model.attributes[attribute].name
               : StrFormat("#%u", attribute);
  };
  if (kind == ObservationKind::kCategorical &&
      model_kind != AttributeKind::kCategorical) {
    return Status::InvalidArgument(
        StrFormat("categorical observation for attribute '%s', which is "
                  "%s — use NewObjectObservation::Numerical",
                  name().c_str(), KindName(model_kind)));
  }
  if (kind == ObservationKind::kNumerical &&
      model_kind != AttributeKind::kNumerical) {
    return Status::InvalidArgument(
        StrFormat("numerical observation for attribute '%s', which is "
                  "%s — use NewObjectObservation::Categorical",
                  name().c_str(), KindName(model_kind)));
  }
  if (model_kind == AttributeKind::kCategorical) {
    const AttributeComponents& comp = model.components[attribute];
    if (term >= comp.beta().cols()) {
      return Status::InvalidArgument(
          StrFormat("term %u outside vocabulary", term));
    }
    if (!(count >= 0.0) || !std::isfinite(count)) {
      return Status::InvalidArgument(
          StrFormat("observation count for attribute '%s' must be a "
                    "finite non-negative number",
                    name().c_str()));
    }
  } else if (!std::isfinite(value)) {
    return Status::InvalidArgument(
        StrFormat("numerical observation for attribute '%s' must be finite",
                  name().c_str()));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// BatchPlanner

BatchPlanner::BatchPlanner(const Network* network, const Model* model,
                           size_t theta_shards)
    : network_(network),
      model_(model),
      model_status_(ValidateModelForServing(*network, *model)),
      theta_partition_(ShardPartition::Resolve(
          theta_shards == 0 ? model->theta_shards : theta_shards,
          model->num_nodes())) {}

InferPlan BatchPlanner::Plan(std::span<const NewObjectQuery> queries) const {
  WallTimer timer;
  InferPlan plan;
  plan.theta_partition = theta_partition_;
  std::vector<std::pair<uint32_t, double>> row_links;  // sort scratch
  plan.statuses.reserve(queries.size());
  plan.row_to_query.reserve(queries.size());
  plan.row_offsets.reserve(queries.size() + 1);
  plan.observation_offsets.reserve(queries.size() + 1);
  size_t max_links = 0;
  size_t max_observations = 0;
  for (const NewObjectQuery& query : queries) {
    max_links += query.links.size();
    max_observations += query.observations.size();
  }
  plan.link_cols.reserve(max_links);
  plan.link_values.reserve(max_links);
  plan.observations.reserve(max_observations);
  plan.observation_categorical.reserve(max_observations);
  plan.row_offsets.push_back(0);
  plan.observation_offsets.push_back(0);
  for (size_t i = 0; i < queries.size(); ++i) {
    const NewObjectQuery& query = queries[i];
    if (!model_status_.ok()) {
      plan.statuses.push_back(model_status_);
      continue;
    }
    // Fused validate + assemble, one pass per query: links then
    // observations, first error wins — the same order ValidateQuery and
    // the reference path check in. On error the row's partial CSR output
    // is rolled back, so invalid queries leave no trace in the batch.
    const size_t links_start = plan.link_cols.size();
    Status status;
    for (const NewObjectLink& link : query.links) {
      status = ValidateLink(*network_, link);
      if (!status.ok()) break;
      plan.link_cols.push_back(link.target);
      // Fold gamma in here: the SpMM pass then runs with coeff 1.0 and
      // each row accumulates gamma * w * theta_target in the query's own
      // link order — exactly the reference path's sum.
      plan.link_values.push_back(model_->gamma[link.type] * link.weight);
    }
    if (status.ok()) {
      for (const NewObjectObservation& obs : query.observations) {
        status = obs.Validate(*model_);
        if (!status.ok()) break;
      }
    }
    if (!status.ok()) {
      plan.link_cols.resize(links_start);
      plan.link_values.resize(links_start);
      plan.statuses.push_back(std::move(status));
      continue;
    }
    // Canonicalize the kept row: stable-sort its non-zeros by target
    // column. This is the accumulation order the reference path uses too,
    // and ascending columns are what lets the column-shard split replay
    // the exact chain for any shard count.
    const size_t links_count = plan.link_cols.size() - links_start;
    if (links_count > 1) {
      row_links.resize(links_count);
      for (size_t j = 0; j < links_count; ++j) {
        row_links[j] = {plan.link_cols[links_start + j],
                        plan.link_values[links_start + j]};
      }
      std::stable_sort(row_links.begin(), row_links.end(),
                       [](const std::pair<uint32_t, double>& a,
                          const std::pair<uint32_t, double>& b) {
                         return a.first < b.first;
                       });
      for (size_t j = 0; j < links_count; ++j) {
        plan.link_cols[links_start + j] = row_links[j].first;
        plan.link_values[links_start + j] = row_links[j].second;
      }
    }
    plan.statuses.push_back(Status::OK());
    plan.row_to_query.push_back(i);
    plan.row_offsets.push_back(plan.link_cols.size());
    plan.observations.insert(plan.observations.end(),
                             query.observations.begin(),
                             query.observations.end());
    for (const NewObjectObservation& obs : query.observations) {
      plan.observation_categorical.push_back(
          model_->components[obs.attribute].kind() ==
          AttributeKind::kCategorical);
    }
    plan.observation_offsets.push_back(plan.observations.size());
    plan.total_links += query.links.size();
    plan.total_observations += query.observations.size();
  }
  if (theta_partition_.num_shards() > 1) {
    plan.shard_split.Build(plan.links(), theta_partition_);
  }
  plan.plan_seconds = timer.Seconds();
  return plan;
}

// ---------------------------------------------------------------------------
// ServeWorkspace

void ServeWorkspace::PrepareModel(const Model& model) {
  if (prepared_for_ == &model) return;
  const size_t num_attributes = model.components.size();
  beta_transpose_.assign(num_attributes, Matrix());
  gaussians_.assign(num_attributes, GaussianEvalTable());
  for (size_t a = 0; a < num_attributes; ++a) {
    const AttributeComponents& comp = model.components[a];
    if (comp.kind() == AttributeKind::kCategorical) {
      beta_transpose_[a] = comp.beta().Transpose();
    } else {
      gaussians_[a].Rebuild(comp);
    }
  }
  prepared_for_ = &model;
}

void ServeWorkspace::PrepareBatch(size_t num_rows, size_t num_clusters,
                                  size_t num_blocks) {
  if (link_part_.rows() != num_rows || link_part_.cols() != num_clusters) {
    link_part_ = Matrix(num_rows, num_clusters);
  } else {
    std::fill(link_part_.data().begin(), link_part_.data().end(), 0.0);
  }
  if (block_scratch_.size() < num_blocks) {
    block_scratch_.resize(num_blocks);
  }
  for (size_t b = 0; b < num_blocks; ++b) {
    block_scratch_[b].kbuf.resize(4 * num_clusters);
  }
}

// ---------------------------------------------------------------------------
// InferSession

InferSession::InferSession(const Model* model, ThreadPool* pool,
                           size_t iterations, double theta_floor)
    : model_(model),
      pool_(pool),
      iterations_(iterations),
      theta_floor_(theta_floor) {}

InferenceResult InferSession::Execute(const InferPlan& plan) {
  WallTimer timer;
  const size_t num_queries = plan.num_queries();
  const size_t num_rows = plan.num_rows();
  const size_t num_clusters = model_->num_clusters();
  const size_t grain = ServeDefaults::kBatchBlockGrain;
  const size_t num_blocks = num_rows == 0 ? 0 : (num_rows + grain - 1) / grain;

  InferenceResult out;
  out.statuses = plan.statuses;
  out.memberships = Matrix(num_queries, num_clusters);
  out.hard_labels.assign(num_queries, kNoHardLabel);

  if (num_rows > 0) {
    workspace_.PrepareModel(*model_);
    workspace_.PrepareBatch(num_rows, num_clusters, num_blocks);
    // One pass over fixed-grain query blocks: SpMM fills the block's
    // link-term rows while they are hot, then the block's queries sweep.
    // Per-row SpMM accumulation order is the CSR non-zero order and every
    // query's sweep touches only its own state, so any block scheduling
    // yields bitwise identical results.
    ForEachFixedGrainBlock(pool_, num_rows, grain,
                           [&](size_t block, size_t begin, size_t end) {
                             ExecuteBlock(plan, block, begin, end, &out);
                           });
  }

  out.report.batch_size = num_queries;
  out.report.valid_queries = num_rows;
  out.report.total_links = plan.total_links;
  out.report.total_observations = plan.total_observations;
  out.report.exec_blocks = num_blocks;
  out.report.plan_seconds = plan.plan_seconds;
  out.report.exec_seconds = timer.Seconds();
  return out;
}

void InferSession::ExecuteBlock(const InferPlan& plan, size_t block,
                                size_t row_begin, size_t row_end,
                                InferenceResult* out) {
  const size_t num_clusters = model_->num_clusters();
  const CsrMatrixView links = plan.links();
  const size_t num_shards = plan.theta_partition.num_shards();
  if (num_shards > 1 && !plan.shard_split.empty()) {
    // Per-shard link terms merged in ascending shard order — each row's
    // chain replays the monolithic call's non-zero order bit for bit,
    // while every shard gathers from only its own Θ block. The shard base
    // comes from the plan's partition (the planner may override the
    // model's stamped shard count, so Model::ShardThetaData would slice
    // differently).
    const double* theta = model_->theta.data().data();
    for (size_t s = 0; s < num_shards; ++s) {
      SpmmAccumulateShard(links, plan.shard_split, plan.theta_partition, s,
                          1.0,
                          theta + plan.theta_partition.begin(s) * num_clusters,
                          num_clusters, row_begin, row_end,
                          workspace_.link_part_.data().data());
    }
  } else {
    SpmmAccumulate(links, 1.0, model_->theta.data().data(), num_clusters,
                   row_begin, row_end, workspace_.link_part_.data().data());
  }
  switch (num_clusters) {
    case 2:
      SweepRows<2>(plan, block, row_begin, row_end, out);
      break;
    case 3:
      SweepRows<3>(plan, block, row_begin, row_end, out);
      break;
    case 4:
      SweepRows<4>(plan, block, row_begin, row_end, out);
      break;
    case 8:
      SweepRows<8>(plan, block, row_begin, row_end, out);
      break;
    default:
      SweepRows<-1>(plan, block, row_begin, row_end, out);
      break;
  }
}

// The attribute fixed-point sweeps for one block's query rows. Mirrors
// the reference path's loop (InferMembership) operation for operation,
// with value-preserving changes only: beta is read term-major, log
// theta_k is evaluated once per sweep instead of once per observation,
// each observation's sweep-invariant Gaussian log-density row is cached
// across sweeps, the max-logit cluster's exponential — exactly
// exp(0) = 1 — is never evaluated, and common cluster counts get fully
// unrolled instantiations.
template <int kFixedK>
void InferSession::SweepRows(const InferPlan& plan, size_t block,
                             size_t row_begin, size_t row_end,
                             InferenceResult* out) {
  const size_t num_clusters = kFixedK > 0
                                  ? static_cast<size_t>(kFixedK)
                                  : model_->num_clusters();
  ServeWorkspace::BlockScratch& scratch = workspace_.block_scratch_[block];
  GENCLUS_DCHECK(scratch.kbuf.size() >= 4 * num_clusters);
  double* theta = scratch.kbuf.data();
  double* mix = theta + num_clusters;
  double* resp = mix + num_clusters;
  double* log_theta = resp + num_clusters;

  const size_t sweeps = std::max<size_t>(1, iterations_);
  for (size_t row = row_begin; row < row_end; ++row) {
    const double* link_row = workspace_.link_part_.Row(row);
    const size_t obs_begin = plan.observation_offsets[row];
    const size_t obs_end = plan.observation_offsets[row + 1];
    const size_t num_obs = obs_end - obs_begin;

    // Resolve the query's observations once: Gaussian log-densities are
    // (sweep, theta)-invariant, so each numerical observation's K-row is
    // evaluated here and reused by every sweep; categorical observations
    // resolve to their term-major beta row. The sweep loop then reads
    // flat descriptors instead of chasing model components per sweep.
    if (scratch.log_pdf.size() < num_obs * num_clusters) {
      scratch.log_pdf.resize(num_obs * num_clusters);
    }
    if (scratch.obs.size() < num_obs) scratch.obs.resize(num_obs);
    for (size_t j = 0; j < num_obs; ++j) {
      const NewObjectObservation& obs = plan.observations[obs_begin + j];
      ServeWorkspace::ObsRef& ref = scratch.obs[j];
      if (plan.observation_categorical[obs_begin + j] != 0) {
        ref.categorical = true;
        ref.count = obs.count;
        ref.data = workspace_.beta_transpose_[obs.attribute].Row(obs.term);
      } else {
        const GaussianEvalTable& table =
            workspace_.gaussians_[obs.attribute];
        double* log_pdf = scratch.log_pdf.data() + j * num_clusters;
        for (size_t k = 0; k < num_clusters; ++k) {
          log_pdf[k] = table.LogPdf(k, obs.value);
        }
        ref.categorical = false;
        ref.count = 0.0;
        ref.data = log_pdf;
      }
    }

    std::fill(theta, theta + num_clusters, 1.0 / num_clusters);
    for (size_t iter = 0; iter < sweeps; ++iter) {
      std::copy(link_row, link_row + num_clusters, mix);
      bool log_theta_ready = false;
      for (size_t j = 0; j < num_obs; ++j) {
        const ServeWorkspace::ObsRef& obs = scratch.obs[j];
        if (obs.categorical) {
          const double* beta_term = obs.data;
          double total = 0.0;
          for (size_t k = 0; k < num_clusters; ++k) {
            resp[k] = theta[k] * beta_term[k];
            total += resp[k];
          }
          if (total <= 0.0) {
            // Zero-mass term: uniform responsibilities, count mass still
            // contributes (matches the training E-step and the reference
            // path).
            std::fill(resp, resp + num_clusters, 1.0 / num_clusters);
            total = 1.0;
          }
          for (size_t k = 0; k < num_clusters; ++k) {
            mix[k] += obs.count * resp[k] / total;
          }
        } else {
          const double* log_pdf = obs.data;
          if (!log_theta_ready) {
            if (iter == 0) {
              // Sweep 0 starts from the uniform vector: every component
              // is exactly 1/K, so one log covers all K entries.
              const double log_uniform =
                  std::log(1.0 / static_cast<double>(num_clusters));
              for (size_t k = 0; k < num_clusters; ++k) {
                log_theta[k] = log_uniform;
              }
            } else {
              for (size_t k = 0; k < num_clusters; ++k) {
                const double t = theta[k] > 0.0 ? theta[k] : 1e-300;
                log_theta[k] = std::log(t);
              }
            }
            log_theta_ready = true;
          }
          double max_log = -std::numeric_limits<double>::infinity();
          for (size_t k = 0; k < num_clusters; ++k) {
            resp[k] = log_theta[k] + log_pdf[k];
            max_log = std::max(max_log, resp[k]);
          }
          // exp(0) is exactly 1, so the max cluster's exponential is
          // free — one std::exp saved per observation per sweep. The
          // shifted-logit test keeps the max scan itself branchless.
          double total = 0.0;
          for (size_t k = 0; k < num_clusters; ++k) {
            const double shifted = resp[k] - max_log;
            resp[k] = shifted == 0.0 ? 1.0 : std::exp(shifted);
            total += resp[k];
          }
          for (size_t k = 0; k < num_clusters; ++k) {
            mix[k] += resp[k] / total;
          }
        }
      }
      NormalizeToSimplex(mix, num_clusters);
      ClampToSimplex(mix, num_clusters, theta_floor_);
      // Fused max-|delta| + swap: after this loop `theta` holds the new
      // iterate and `mix` the old one (overwritten next sweep).
      double delta = 0.0;
      for (size_t k = 0; k < num_clusters; ++k) {
        delta = std::max(delta, std::abs(theta[k] - mix[k]));
        std::swap(theta[k], mix[k]);
      }
      if (delta < ServeDefaults::kSweepTolerance) break;
    }
    const size_t query = plan.row_to_query[row];
    std::copy(theta, theta + num_clusters, out->memberships.Row(query));
    size_t best = 0;
    for (size_t k = 1; k < num_clusters; ++k) {
      if (theta[k] > theta[best]) best = k;
    }
    out->hard_labels[query] = static_cast<uint32_t>(best);
  }
}

// ---------------------------------------------------------------------------
// Reference path

Result<std::vector<double>> InferMembership(
    const Network& network, const Model& model,
    const std::vector<NewObjectLink>& links,
    const std::vector<NewObjectObservation>& observations,
    size_t iterations, double theta_floor) {
  const size_t num_clusters = model.theta.cols();
  GENCLUS_RETURN_IF_ERROR(ValidateModelForServing(network, model));
  GENCLUS_RETURN_IF_ERROR(
      ValidateQuery(network, model, links, observations));

  // Link part is constant across sweeps: sum_e gamma w theta_target,
  // accumulated in stable ascending-target order — the canonical order
  // the batch planner sorts each CSR row into, so the two paths stay
  // bitwise identical for every Θ shard count.
  std::vector<size_t> order(links.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return links[a].target < links[b].target;
  });
  std::vector<double> link_part(num_clusters, 0.0);
  for (size_t idx : order) {
    const NewObjectLink& link = links[idx];
    const double coeff = model.gamma[link.type] * link.weight;
    if (coeff == 0.0) continue;
    const double* theta_u = model.theta.Row(link.target);
    for (size_t k = 0; k < num_clusters; ++k) {
      link_part[k] += coeff * theta_u[k];
    }
  }

  // Gaussian constants are sweep- and observation-invariant; hoisting them
  // here applies the same evaluation rule the training E-step uses
  // (core/em.cc), so fold-in stays consistent with a full training pass.
  // Only attributes this query actually observes pay the build (an empty
  // table marks "not built").
  std::vector<GaussianEvalTable> gaussians(model.components.size());
  for (const NewObjectObservation& obs : observations) {
    const AttributeComponents& comp = model.components[obs.attribute];
    if (comp.kind() == AttributeKind::kNumerical &&
        gaussians[obs.attribute].num_clusters() == 0) {
      gaussians[obs.attribute].Rebuild(comp);
    }
  }

  std::vector<double> theta(num_clusters, 1.0 / num_clusters);
  std::vector<double> resp(num_clusters);
  const size_t sweeps = std::max<size_t>(1, iterations);
  for (size_t iter = 0; iter < sweeps; ++iter) {
    std::vector<double> mix = link_part;
    for (const NewObjectObservation& obs : observations) {
      const AttributeComponents& comp = model.components[obs.attribute];
      if (comp.kind() == AttributeKind::kCategorical) {
        double total = 0.0;
        for (size_t k = 0; k < num_clusters; ++k) {
          resp[k] = theta[k] * comp.TermProb(static_cast<ClusterId>(k),
                                             obs.term);
          total += resp[k];
        }
        if (total <= 0.0) {
          // All clusters assign zero mass (possible with zero smoothing).
          // Mirror the training E-step (em.cc): uniform responsibilities,
          // and the observation's count mass still contributes — skipping
          // it would make fold-in memberships diverge from what a full
          // training pass assigns to the same evidence.
          std::fill(resp.begin(), resp.end(), 1.0 / num_clusters);
          total = 1.0;
        }
        for (size_t k = 0; k < num_clusters; ++k) {
          mix[k] += obs.count * resp[k] / total;
        }
      } else {
        const GaussianEvalTable& table = gaussians[obs.attribute];
        double max_log = -std::numeric_limits<double>::infinity();
        for (size_t k = 0; k < num_clusters; ++k) {
          const double t = theta[k] > 0.0 ? theta[k] : 1e-300;
          resp[k] = std::log(t) + table.LogPdf(k, obs.value);
          max_log = std::max(max_log, resp[k]);
        }
        double total = 0.0;
        for (size_t k = 0; k < num_clusters; ++k) {
          resp[k] = std::exp(resp[k] - max_log);
          total += resp[k];
        }
        for (size_t k = 0; k < num_clusters; ++k) {
          mix[k] += resp[k] / total;
        }
      }
    }
    NormalizeToSimplex(&mix);
    ClampToSimplex(&mix, theta_floor);
    const double delta = MaxAbsDiff(theta, mix);
    theta = std::move(mix);
    if (delta < ServeDefaults::kSweepTolerance) break;
  }
  return theta;
}

}  // namespace genclus
