#include "core/components.h"

#include "common/check.h"

namespace genclus {

AttributeComponents AttributeComponents::CategoricalUniform(
    size_t num_clusters, size_t vocab_size) {
  GENCLUS_CHECK_GT(num_clusters, 0u);
  GENCLUS_CHECK_GT(vocab_size, 0u);
  Matrix beta(num_clusters, vocab_size, 1.0 / static_cast<double>(vocab_size));
  return AttributeComponents(AttributeKind::kCategorical, std::move(beta), {});
}

AttributeComponents AttributeComponents::Numerical(
    std::vector<GaussianDistribution> g) {
  GENCLUS_CHECK(!g.empty());
  return AttributeComponents(AttributeKind::kNumerical, Matrix(),
                             std::move(g));
}

size_t AttributeComponents::num_clusters() const {
  return kind_ == AttributeKind::kCategorical ? beta_.rows()
                                              : gaussians_.size();
}

const Matrix& AttributeComponents::beta() const {
  GENCLUS_CHECK(kind_ == AttributeKind::kCategorical);
  return beta_;
}

Matrix* AttributeComponents::mutable_beta() {
  GENCLUS_CHECK(kind_ == AttributeKind::kCategorical);
  return &beta_;
}

const GaussianDistribution& AttributeComponents::gaussian(ClusterId k) const {
  GENCLUS_CHECK(kind_ == AttributeKind::kNumerical);
  GENCLUS_CHECK_LT(k, gaussians_.size());
  return gaussians_[k];
}

std::vector<GaussianDistribution>* AttributeComponents::mutable_gaussians() {
  GENCLUS_CHECK(kind_ == AttributeKind::kNumerical);
  return &gaussians_;
}

double AttributeComponents::LogPdf(ClusterId k, double x) const {
  return gaussian(k).LogPdf(x);
}

}  // namespace genclus
