#include "core/components.h"

#include <cmath>

#include "common/check.h"

namespace genclus {

AttributeComponents AttributeComponents::CategoricalUniform(
    size_t num_clusters, size_t vocab_size) {
  GENCLUS_CHECK_GT(num_clusters, 0u);
  GENCLUS_CHECK_GT(vocab_size, 0u);
  Matrix beta(num_clusters, vocab_size, 1.0 / static_cast<double>(vocab_size));
  return AttributeComponents(AttributeKind::kCategorical, std::move(beta), {});
}

AttributeComponents AttributeComponents::Numerical(
    std::vector<GaussianDistribution> g) {
  GENCLUS_CHECK(!g.empty());
  return AttributeComponents(AttributeKind::kNumerical, Matrix(),
                             std::move(g));
}

size_t AttributeComponents::num_clusters() const {
  return kind_ == AttributeKind::kCategorical ? beta_.rows()
                                              : gaussians_.size();
}

const Matrix& AttributeComponents::beta() const {
  GENCLUS_CHECK(kind_ == AttributeKind::kCategorical);
  return beta_;
}

Matrix* AttributeComponents::mutable_beta() {
  GENCLUS_CHECK(kind_ == AttributeKind::kCategorical);
  return &beta_;
}

const GaussianDistribution& AttributeComponents::gaussian(ClusterId k) const {
  GENCLUS_CHECK(kind_ == AttributeKind::kNumerical);
  GENCLUS_CHECK_LT(k, gaussians_.size());
  return gaussians_[k];
}

std::vector<GaussianDistribution>* AttributeComponents::mutable_gaussians() {
  GENCLUS_CHECK(kind_ == AttributeKind::kNumerical);
  return &gaussians_;
}

double AttributeComponents::LogPdf(ClusterId k, double x) const {
  return gaussian(k).LogPdf(x);
}

void GaussianEvalTable::Rebuild(const AttributeComponents& components) {
  GENCLUS_CHECK(components.kind() == AttributeKind::kNumerical);
  const size_t num_clusters = components.num_clusters();
  mean_.resize(num_clusters);
  neg_half_inv_var_.resize(num_clusters);
  log_norm_.resize(num_clusters);
  for (size_t k = 0; k < num_clusters; ++k) {
    const GaussianDistribution& g =
        components.gaussian(static_cast<ClusterId>(k));
    mean_[k] = g.mean();
    neg_half_inv_var_[k] = -0.5 / g.variance();
    log_norm_[k] = -0.5 * (kLogTwoPi + std::log(g.variance()));
  }
}

}  // namespace genclus
