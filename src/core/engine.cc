#include "core/engine.h"

#include <utility>

#include "common/string_util.h"
#include "common/timer.h"

namespace genclus {

Result<FitResult> Engine::Fit(const Dataset& dataset,
                              const FitOptions& options) {
  GENCLUS_RETURN_IF_ERROR(dataset.Validate());
  const Schema& schema = dataset.network.schema();
  GENCLUS_RETURN_IF_ERROR(
      options.config.Validate(schema.num_link_types()));

  std::vector<const Attribute*> attrs;
  std::vector<ModelAttributeInfo> attr_info;
  attrs.reserve(options.attributes.size());
  attr_info.reserve(options.attributes.size());
  for (const std::string& name : options.attributes) {
    AttributeId id = dataset.FindAttribute(name);
    if (id == kInvalidAttribute) {
      return Status::NotFound(
          StrFormat("attribute '%s' not in dataset", name.c_str()));
    }
    const Attribute& attribute = dataset.attributes[id];
    attrs.push_back(&attribute);
    ModelAttributeInfo info;
    info.name = attribute.name();
    info.kind = attribute.kind();
    info.vocab_size = attribute.kind() == AttributeKind::kCategorical
                          ? attribute.vocab_size()
                          : 0;
    attr_info.push_back(std::move(info));
  }

  WallTimer timer;
  GenClus algorithm(&dataset.network, std::move(attrs), options.config);
  algorithm.SetProgressObserver(options.observer);
  algorithm.SetCancellationToken(options.cancellation);
  GENCLUS_ASSIGN_OR_RETURN(GenClusResult run, algorithm.Run());

  FitResult out;
  out.model.theta = std::move(run.theta);
  out.model.gamma = std::move(run.gamma);
  out.model.components = std::move(run.components);
  out.model.attributes = std::move(attr_info);
  out.model.objective = run.objective;
  out.model.link_types.reserve(schema.num_link_types());
  for (LinkTypeId r = 0; r < schema.num_link_types(); ++r) {
    out.model.link_types.push_back(schema.link_type(r).name);
  }
  out.report.converged = run.converged;
  out.report.objective = run.objective;
  out.report.outer_iterations =
      run.trace.empty() ? 0 : run.trace.size() - 1;
  out.report.trace = std::move(run.trace);
  for (const OuterIterationRecord& record : out.report.trace) {
    out.report.em_seconds += record.em_seconds;
    out.report.strength_seconds += record.strength_seconds;
  }
  out.report.total_seconds = timer.Seconds();
  return out;
}

Engine::Engine(const Network* network, Model model, EngineOptions options)
    : network_(network),
      model_(std::move(model)),
      options_(options),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {}

Result<Engine> Engine::Create(const Network* network, Model model,
                              EngineOptions options) {
  if (network == nullptr) {
    return Status::InvalidArgument("network must not be null");
  }
  GENCLUS_RETURN_IF_ERROR(model.ValidateAgainst(*network));
  if (options.inference_iterations < 1) {
    return Status::InvalidArgument("inference_iterations must be >= 1");
  }
  if (!(options.theta_floor > 0.0)) {
    return Status::InvalidArgument("theta_floor must be > 0");
  }
  return Engine(network, std::move(model), options);
}

Result<std::vector<double>> Engine::Infer(const NewObjectQuery& query) const {
  return InferMembership(*network_, model_, query.links, query.observations,
                         options_.inference_iterations,
                         options_.theta_floor);
}

std::vector<Result<std::vector<double>>> Engine::InferBatch(
    std::span<const NewObjectQuery> queries) const {
  std::vector<Result<std::vector<double>>> out(
      queries.size(),
      Result<std::vector<double>>(Status::Internal("query not executed")));
  // Each slot depends only on its own query, so any sharding yields the
  // same results — determinism across thread counts for free.
  pool_->ParallelFor(queries.size(),
                     [&](size_t /*shard*/, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                         out[i] = Infer(queries[i]);
                       }
                     });
  return out;
}

}  // namespace genclus
