#include "core/engine.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace genclus {

Status Engine::ResolveAttributes(const Dataset& dataset,
                                 const std::vector<std::string>& names,
                                 std::vector<const Attribute*>* attrs,
                                 std::vector<ModelAttributeInfo>* info) {
  attrs->reserve(names.size());
  info->reserve(names.size());
  for (const std::string& name : names) {
    AttributeId id = dataset.FindAttribute(name);
    if (id == kInvalidAttribute) {
      return Status::NotFound(
          StrFormat("attribute '%s' not in dataset", name.c_str()));
    }
    const Attribute& attribute = dataset.attributes[id];
    attrs->push_back(&attribute);
    ModelAttributeInfo entry;
    entry.name = attribute.name();
    entry.kind = attribute.kind();
    entry.vocab_size = attribute.kind() == AttributeKind::kCategorical
                           ? attribute.vocab_size()
                           : 0;
    info->push_back(std::move(entry));
  }
  return Status::OK();
}

FitResult Engine::AssembleFitResult(const Schema& schema, GenClusResult run,
                                    std::vector<ModelAttributeInfo> info,
                                    size_t theta_shards_request,
                                    double total_seconds) {
  FitResult out;
  out.model.theta = std::move(run.theta);
  // Stamp the resolved shard count the fit ran with, so serving adopts
  // the same partition by default and both model formats persist it.
  out.model.theta_shards =
      ShardPartition::Resolve(theta_shards_request, out.model.theta.rows())
          .num_shards();
  out.model.gamma = std::move(run.gamma);
  out.model.components = std::move(run.components);
  out.model.attributes = std::move(info);
  out.model.objective = run.objective;
  out.model.link_types.reserve(schema.num_link_types());
  for (LinkTypeId r = 0; r < schema.num_link_types(); ++r) {
    out.model.link_types.push_back(schema.link_type(r).name);
  }
  out.report.converged = run.converged;
  out.report.objective = run.objective;
  out.report.outer_iterations =
      run.trace.empty() ? 0 : run.trace.size() - 1;
  out.report.em_blocks_skipped = run.em_blocks_skipped;
  out.report.em_final_block_deltas = std::move(run.em_final_block_deltas);
  out.report.trace = std::move(run.trace);
  for (const OuterIterationRecord& record : out.report.trace) {
    out.report.em_seconds += record.em_seconds;
    out.report.strength_seconds += record.strength_seconds;
  }
  out.report.total_seconds = total_seconds;
  return out;
}

Result<FitResult> Engine::Fit(const Dataset& dataset,
                              const FitOptions& options) {
  GENCLUS_RETURN_IF_ERROR(dataset.Validate());
  const Schema& schema = dataset.network.schema();
  GENCLUS_RETURN_IF_ERROR(
      options.config.Validate(schema.num_link_types()));

  std::vector<const Attribute*> attrs;
  std::vector<ModelAttributeInfo> attr_info;
  GENCLUS_RETURN_IF_ERROR(
      ResolveAttributes(dataset, options.attributes, &attrs, &attr_info));

  WallTimer timer;
  GenClus algorithm(&dataset.network, std::move(attrs), options.config);
  algorithm.SetProgressObserver(options.observer);
  algorithm.SetCancellationToken(options.cancellation);
  GENCLUS_ASSIGN_OR_RETURN(GenClusResult run, algorithm.Run());
  return AssembleFitResult(schema, std::move(run), std::move(attr_info),
                           options.config.theta_shards, timer.Seconds());
}

// Batch planner plus a pool of InferSessions. Sessions are created
// lazily, one per concurrent Execute caller, and recycled through the
// free list — each owns its own ServeWorkspace, so concurrent batches
// execute in parallel with no global execution mutex (ParallelFor tracks
// completion per call, so sessions may share the engine's thread pool).
struct Engine::ServeState {
  ServeState(const Network* network, const Model* model, ThreadPool* pool,
             const EngineOptions& options)
      : network(network),
        model(model),
        pool(pool),
        options(options),
        planner(network, model, options.theta_shards) {}

  const Network* network;
  const Model* model;
  ThreadPool* pool;
  EngineOptions options;
  BatchPlanner planner;

  Mutex session_mutex;
  std::vector<std::unique_ptr<InferSession>> free_sessions
      GENCLUS_GUARDED_BY(session_mutex);

  std::unique_ptr<InferSession> AcquireSession()
      GENCLUS_EXCLUDES(session_mutex) {
    {
      MutexLock lock(session_mutex);
      if (!free_sessions.empty()) {
        std::unique_ptr<InferSession> session =
            std::move(free_sessions.back());
        free_sessions.pop_back();
        return session;
      }
    }
    return std::make_unique<InferSession>(
        model, pool, options.inference_iterations, options.theta_floor);
  }

  void ReleaseSession(std::unique_ptr<InferSession> session)
      GENCLUS_EXCLUDES(session_mutex) {
    MutexLock lock(session_mutex);
    free_sessions.push_back(std::move(session));
  }
};

Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;
Engine::~Engine() = default;

Engine::Engine(const Network* network, std::unique_ptr<Model> model,
               EngineOptions options)
    : network_(network),
      model_(std::move(model)),
      options_(options),
      pool_(std::make_unique<ThreadPool>(options.num_threads)),
      serve_(std::make_unique<ServeState>(network_, model_.get(),
                                          pool_.get(), options_)) {}

Result<Engine> Engine::Create(const Network* network, Model model,
                              EngineOptions options) {
  if (network == nullptr) {
    return Status::InvalidArgument("network must not be null");
  }
  GENCLUS_RETURN_IF_ERROR(model.ValidateAgainst(*network));
  if (options.inference_iterations < 1) {
    return Status::InvalidArgument("inference_iterations must be >= 1");
  }
  if (!(options.theta_floor > 0.0)) {
    return Status::InvalidArgument("theta_floor must be > 0");
  }
  return Engine(network, std::make_unique<Model>(std::move(model)),
                options);
}

InferPlan Engine::Plan(std::span<const NewObjectQuery> queries) const {
  return serve_->planner.Plan(queries);
}

InferenceResult Engine::Execute(const InferPlan& plan) const {
  // Check a session out of the pool (or build one for a new concurrency
  // level) and return it afterwards; an exception drops the session
  // instead of recycling it, which is safe — just slower next time.
  std::unique_ptr<InferSession> session = serve_->AcquireSession();
  InferenceResult result = session->Execute(plan);
  serve_->ReleaseSession(std::move(session));
  return result;
}

Result<std::vector<double>> Engine::Infer(const NewObjectQuery& query) const {
  InferenceResult result = Execute(Plan(std::span(&query, 1)));
  if (!result.statuses[0].ok()) return result.statuses[0];
  return result.memberships.RowVector(0);
}

std::vector<Result<std::vector<double>>> Engine::InferBatch(
    std::span<const NewObjectQuery> queries) const {
  InferenceResult result = Execute(Plan(queries));
  std::vector<Result<std::vector<double>>> out;
  out.reserve(result.size());
  for (size_t i = 0; i < result.size(); ++i) {
    if (result.statuses[i].ok()) {
      out.push_back(result.memberships.RowVector(i));
    } else {
      out.push_back(std::move(result.statuses[i]));
    }
  }
  return out;
}

}  // namespace genclus
