#include "core/engine.h"

#include <mutex>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"

namespace genclus {

Result<FitResult> Engine::Fit(const Dataset& dataset,
                              const FitOptions& options) {
  GENCLUS_RETURN_IF_ERROR(dataset.Validate());
  const Schema& schema = dataset.network.schema();
  GENCLUS_RETURN_IF_ERROR(
      options.config.Validate(schema.num_link_types()));

  std::vector<const Attribute*> attrs;
  std::vector<ModelAttributeInfo> attr_info;
  attrs.reserve(options.attributes.size());
  attr_info.reserve(options.attributes.size());
  for (const std::string& name : options.attributes) {
    AttributeId id = dataset.FindAttribute(name);
    if (id == kInvalidAttribute) {
      return Status::NotFound(
          StrFormat("attribute '%s' not in dataset", name.c_str()));
    }
    const Attribute& attribute = dataset.attributes[id];
    attrs.push_back(&attribute);
    ModelAttributeInfo info;
    info.name = attribute.name();
    info.kind = attribute.kind();
    info.vocab_size = attribute.kind() == AttributeKind::kCategorical
                          ? attribute.vocab_size()
                          : 0;
    attr_info.push_back(std::move(info));
  }

  WallTimer timer;
  GenClus algorithm(&dataset.network, std::move(attrs), options.config);
  algorithm.SetProgressObserver(options.observer);
  algorithm.SetCancellationToken(options.cancellation);
  GENCLUS_ASSIGN_OR_RETURN(GenClusResult run, algorithm.Run());

  FitResult out;
  out.model.theta = std::move(run.theta);
  out.model.gamma = std::move(run.gamma);
  out.model.components = std::move(run.components);
  out.model.attributes = std::move(attr_info);
  out.model.objective = run.objective;
  out.model.link_types.reserve(schema.num_link_types());
  for (LinkTypeId r = 0; r < schema.num_link_types(); ++r) {
    out.model.link_types.push_back(schema.link_type(r).name);
  }
  out.report.converged = run.converged;
  out.report.objective = run.objective;
  out.report.outer_iterations =
      run.trace.empty() ? 0 : run.trace.size() - 1;
  out.report.trace = std::move(run.trace);
  for (const OuterIterationRecord& record : out.report.trace) {
    out.report.em_seconds += record.em_seconds;
    out.report.strength_seconds += record.strength_seconds;
  }
  out.report.total_seconds = timer.Seconds();
  return out;
}

// Batch planner plus the serialized execution state. The session's
// ServeWorkspace is reused across batches (model-side tables are built
// once); the mutex serializes Execute calls because ThreadPool::Wait
// tracks all in-flight tasks globally — interleaving two ParallelFor
// batches on one pool would cross their completion (and error) tracking.
struct Engine::ServeState {
  ServeState(const Network* network, const Model* model, ThreadPool* pool,
             const EngineOptions& options)
      : planner(network, model),
        session(model, pool, options.inference_iterations,
                options.theta_floor) {}

  BatchPlanner planner;
  std::mutex exec_mutex;
  InferSession session;
};

Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;
Engine::~Engine() = default;

Engine::Engine(const Network* network, std::unique_ptr<Model> model,
               EngineOptions options)
    : network_(network),
      model_(std::move(model)),
      options_(options),
      pool_(std::make_unique<ThreadPool>(options.num_threads)),
      serve_(std::make_unique<ServeState>(network_, model_.get(),
                                          pool_.get(), options_)) {}

Result<Engine> Engine::Create(const Network* network, Model model,
                              EngineOptions options) {
  if (network == nullptr) {
    return Status::InvalidArgument("network must not be null");
  }
  GENCLUS_RETURN_IF_ERROR(model.ValidateAgainst(*network));
  if (options.inference_iterations < 1) {
    return Status::InvalidArgument("inference_iterations must be >= 1");
  }
  if (!(options.theta_floor > 0.0)) {
    return Status::InvalidArgument("theta_floor must be > 0");
  }
  return Engine(network, std::make_unique<Model>(std::move(model)),
                options);
}

InferPlan Engine::Plan(std::span<const NewObjectQuery> queries) const {
  return serve_->planner.Plan(queries);
}

InferenceResult Engine::Execute(const InferPlan& plan) const {
  std::lock_guard<std::mutex> lock(serve_->exec_mutex);
  return serve_->session.Execute(plan);
}

std::future<InferenceResult> Engine::Submit(
    std::vector<NewObjectQuery> queries) const {
  // One background thread per batch: execution itself fans out over the
  // engine's pool, so running Plan + Execute inside a pool worker would
  // deadlock the pool's global Wait. Capture the heap-held ServeState
  // rather than `this`, so a pending future survives an Engine move (the
  // engine — wherever it was moved to — must still outlive completion).
  ServeState* serve = serve_.get();
  return std::async(std::launch::async,
                    [serve, queries = std::move(queries)]() {
                      InferPlan plan = serve->planner.Plan(queries);
                      std::lock_guard<std::mutex> lock(serve->exec_mutex);
                      return serve->session.Execute(plan);
                    });
}

Result<std::vector<double>> Engine::Infer(const NewObjectQuery& query) const {
  InferenceResult result = Execute(Plan(std::span(&query, 1)));
  if (!result.statuses[0].ok()) return result.statuses[0];
  return result.memberships.RowVector(0);
}

std::vector<Result<std::vector<double>>> Engine::InferBatch(
    std::span<const NewObjectQuery> queries) const {
  InferenceResult result = Execute(Plan(queries));
  std::vector<Result<std::vector<double>>> out;
  out.reserve(result.size());
  for (size_t i = 0; i < result.size(); ++i) {
    if (result.statuses[i].ok()) {
      out.push_back(result.memberships.RowVector(i));
    } else {
      out.push_back(std::move(result.statuses[i]));
    }
  }
  return out;
}

}  // namespace genclus
