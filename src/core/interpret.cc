#include "core/interpret.h"

#include <algorithm>

namespace genclus {

Result<std::vector<std::vector<SalientTerm>>> TopTermsPerCluster(
    const Attribute& attribute, const AttributeComponents& components,
    size_t count) {
  if (attribute.kind() != AttributeKind::kCategorical ||
      components.kind() != AttributeKind::kCategorical) {
    return Status::InvalidArgument("TopTermsPerCluster needs categorical");
  }
  const Matrix& beta = components.beta();
  if (beta.cols() != attribute.vocab_size()) {
    return Status::InvalidArgument("components do not match vocabulary");
  }
  const size_t vocab = attribute.vocab_size();
  const size_t num_clusters = beta.rows();

  // Corpus term frequencies for the lift denominator.
  std::vector<double> corpus(vocab, 0.0);
  double total = 0.0;
  for (NodeId v = 0; v < attribute.num_nodes(); ++v) {
    for (const TermCount& tc : attribute.TermCounts(v)) {
      corpus[tc.term] += tc.count;
      total += tc.count;
    }
  }
  const double uniform = 1.0 / static_cast<double>(vocab);

  std::vector<std::vector<SalientTerm>> out(num_clusters);
  std::vector<SalientTerm> scored(vocab);
  for (size_t k = 0; k < num_clusters; ++k) {
    for (uint32_t l = 0; l < vocab; ++l) {
      scored[l].term = l;
      scored[l].probability = beta(k, l);
      const double freq = total > 0.0 ? corpus[l] / total : uniform;
      scored[l].lift = freq > 0.0 ? beta(k, l) / freq : 0.0;
    }
    const size_t keep = std::min(count, static_cast<size_t>(vocab));
    std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                      [](const SalientTerm& a, const SalientTerm& b) {
                        return a.lift > b.lift;
                      });
    out[k].assign(scored.begin(), scored.begin() + keep);
  }
  return out;
}

Result<std::vector<std::vector<NodeId>>> RepresentativeObjects(
    const Network& network, const Matrix& theta, size_t count,
    ObjectTypeId type) {
  if (theta.rows() != network.num_nodes()) {
    return Status::InvalidArgument("theta does not match network");
  }
  if (type != kInvalidObjectType && !network.schema().ValidObjectType(type)) {
    return Status::InvalidArgument("unknown object type");
  }
  const size_t num_clusters = theta.cols();
  std::vector<std::vector<std::pair<double, NodeId>>> scored(num_clusters);
  for (NodeId v = 0; v < network.num_nodes(); ++v) {
    if (type != kInvalidObjectType && network.node_type(v) != type) continue;
    const double* row = theta.Row(v);
    size_t best = 0;
    for (size_t k = 1; k < num_clusters; ++k) {
      if (row[k] > row[best]) best = k;
    }
    scored[best].emplace_back(row[best], v);
  }
  std::vector<std::vector<NodeId>> out(num_clusters);
  for (size_t k = 0; k < num_clusters; ++k) {
    const size_t keep = std::min(count, scored[k].size());
    std::partial_sort(scored[k].begin(), scored[k].begin() + keep,
                      scored[k].end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    out[k].reserve(keep);
    for (size_t i = 0; i < keep; ++i) out[k].push_back(scored[k][i].second);
  }
  return out;
}

}  // namespace genclus
