// Cluster interpretation utilities: top terms per cluster for categorical
// attributes (how the paper names its four DBLP areas after clustering)
// and representative objects per cluster.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/components.h"
#include "hin/attributes.h"
#include "hin/network.h"
#include "linalg/matrix.h"

namespace genclus {

/// One term's salience inside a cluster.
struct SalientTerm {
  uint32_t term = 0;
  double probability = 0.0;  // beta_{k, term}
  double lift = 0.0;         // beta_{k, term} / corpus frequency
};

/// Top `count` terms of each cluster for a categorical attribute's fitted
/// components, ranked by lift (probability relative to corpus frequency)
/// so that globally common background terms don't dominate. Requires the
/// components to be categorical with the attribute's vocabulary.
Result<std::vector<std::vector<SalientTerm>>> TopTermsPerCluster(
    const Attribute& attribute, const AttributeComponents& components,
    size_t count);

/// The `count` objects of each cluster with the most concentrated
/// membership (highest theta(v, k)), optionally restricted to one object
/// type (kInvalidObjectType = all types).
Result<std::vector<std::vector<NodeId>>> RepresentativeObjects(
    const Network& network, const Matrix& theta, size_t count,
    ObjectTypeId type = kInvalidObjectType);

}  // namespace genclus
