// Model selection for the number of clusters K. §2.2 leaves choosing K to
// standard criteria (AIC/BIC); this helper runs GenClus over a K range and
// scores each fit. The likelihood term is the attribute log-likelihood
// (the structural term's partition function is intractable and identical
// pressure applies at every K, so it is excluded — a common pragmatic
// choice for network-regularized mixtures).
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "core/genclus.h"
#include "hin/dataset.h"

namespace genclus {

enum class SelectionCriterion {
  kAic,  // 2p - 2 log L
  kBic,  // p log n - 2 log L
};

/// One candidate K's fit and score.
struct ModelSelectionEntry {
  size_t num_clusters = 0;
  double log_likelihood = 0.0;  // attribute log-likelihood at the fit
  double num_parameters = 0.0;
  double score = 0.0;  // lower is better (AIC/BIC convention)
};

struct ModelSelectionResult {
  std::vector<ModelSelectionEntry> entries;  // in K order
  size_t best_num_clusters = 0;              // argmin score
};

/// Effective parameter count for a fit: (K-1) free membership components
/// per object plus the component parameters of each attribute
/// (K*(vocab-1) categorical, 2K Gaussian) plus |R| strengths.
double CountModelParameters(const Dataset& dataset,
                            const std::vector<std::string>& attributes,
                            size_t num_clusters);

/// Fits GenClus for each K in [min_clusters, max_clusters] (config's
/// num_clusters is overridden) and scores with the criterion. The sample
/// size for BIC is the total observation count of the specified
/// attributes.
Result<ModelSelectionResult> SelectNumClusters(
    const Dataset& dataset, const std::vector<std::string>& attributes,
    const GenClusConfig& config, size_t min_clusters, size_t max_clusters,
    SelectionCriterion criterion = SelectionCriterion::kBic);

}  // namespace genclus
