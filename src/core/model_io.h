// Plain-text serialization of trained Models, alongside the dataset format
// in hin/io.h (both share ForEachTextRecord's line-oriented scaffolding).
// Doubles are written at 17 significant digits, so a save/load round trip
// is bit-exact and a model trained once keeps answering queries with the
// same doubles after being persisted and reloaded.
#pragma once

#include <string>

#include "common/status.h"
#include "core/model.h"

namespace genclus {

/// Writes `model` to `path`. Fails with InvalidArgument if the model does
/// not pass Model::Validate(), IoError on filesystem problems.
Status SaveModel(const Model& model, const std::string& path);

/// Reads a model written by SaveModel. Truncated or corrupt files fail
/// with a clean IoError naming the offending line; the loaded model is
/// re-validated before being returned.
///
/// Grammar (one record per line, '#' starts a comment):
///   genclus_model <version>
///   clusters <K>
///   nodes <N>
///   objective <value>
///   link_type <name> <gamma>
///   theta <node> <K values>
///   attribute categorical <name> <vocab>
///   beta <cluster> <vocab values>        (for the preceding attribute)
///   attribute numerical <name>
///   gaussian <cluster> <mean> <variance> (for the preceding attribute)
Result<Model> LoadModel(const std::string& path);

}  // namespace genclus
