// Serialization of trained Models in two formats.
//
// Text (SaveModel/LoadModel): the fidelity format, alongside the dataset
// format in hin/io.h (both share ForEachTextRecord's line-oriented
// scaffolding). Doubles are written at 17 significant digits, so a
// save/load round trip is bit-exact and a model trained once keeps
// answering queries with the same doubles after being persisted and
// reloaded.
//
// Binary (SaveModelBinary/LoadModelBinary): a versioned little-endian
// container built for fast, checksummed loads of large models. Layout:
//
//   [64-byte header]
//     bytes  0..7   magic "GENCLUSB"
//     bytes  8..11  u32 format version (currently 1)
//     bytes 12..15  u32 flags (must be 0)
//     bytes 16..23  u64 payload size (file size minus the header)
//     bytes 24..31  u64 FNV-1a 64 checksum of the payload bytes
//     bytes 32..39  u64 num_nodes
//     bytes 40..47  u64 num_clusters
//     bytes 48..55  u64 num_shards (the model's Θ column-shard stamp)
//     bytes 56..63  reserved, zero
//   [payload]
//     f64 objective
//     link types:   u64 count; per type u32 name length + bytes;
//                   then count f64 gamma values
//     attributes:   u64 count; per attribute u8 kind (0 categorical,
//                   1 numerical), u32 name length + bytes, u64 vocab
//                   size (0 for numerical), then K x vocab f64 beta
//                   rows (categorical) or K {mean, variance} f64 pairs
//                   (numerical)
//     shard table:  64-byte-aligned file offset; per shard u64
//                   node_begin, u64 node_count, u64 theta file offset,
//                   u64 theta byte count
//     Θ blocks:     per shard, at its recorded 64-byte-aligned offset,
//                   node_count x K raw f64 rows
//
// Every section is written little-endian; Θ blocks are 64-byte aligned in
// the file so a loaded (or memory-mapped) image can hand shard pointers
// straight to the SpMM kernels. A binary round trip is bitwise exact and
// equivalent to the text round trip of the same model.
#pragma once

#include <string>

#include "common/status.h"
#include "core/model.h"

namespace genclus {

/// Writes `model` to `path`. Fails with InvalidArgument if the model does
/// not pass Model::Validate(), IoError on filesystem problems.
Status SaveModel(const Model& model, const std::string& path);

/// Reads a model written by SaveModel. Truncated or corrupt files fail
/// with a clean IoError naming the offending line; the loaded model is
/// re-validated before being returned.
///
/// Grammar (one record per line, '#' starts a comment):
///   genclus_model <version>
///   clusters <K>
///   nodes <N>
///   objective <value>
///   link_type <name> <gamma>
///   theta <node> <K values>
///   attribute categorical <name> <vocab>
///   beta <cluster> <vocab values>        (for the preceding attribute)
///   attribute numerical <name>
///   gaussian <cluster> <mean> <variance> (for the preceding attribute)
///   theta_shards <S>                     (optional; defaults to 1)
Result<Model> LoadModel(const std::string& path);

/// Writes `model` to `path` in the binary container described above.
/// Fails with InvalidArgument if the model does not pass
/// Model::Validate(), IoError on filesystem problems.
Status SaveModelBinary(const Model& model, const std::string& path);

/// Reads a model written by SaveModelBinary. The loaded Θ, gamma, beta
/// and Gaussian parameters are bitwise identical to the saved ones.
/// Truncated files, checksum mismatches, bad magic/version/flags and
/// malformed sections all fail with a clean IoError; the loaded model is
/// re-validated before being returned.
Result<Model> LoadModelBinary(const std::string& path);

}  // namespace genclus
