// Cluster optimization (§4.1): EM over Theta and beta with gamma fixed.
//
// Per EM iteration (update rules Eqs. 10-12, all right-hand sides at the
// previous iterate):
//   E-step: responsibilities of each observation,
//     categorical:  p(z_vl = k)  ∝ theta_vk * beta_kl
//     numerical:    p(z_vx = k)  ∝ theta_vk * N(x | mu_k, sigma_k^2)
//   M-step:
//     theta_vk ∝ sum_{e=<v,u>} gamma(phi(e)) w(e) theta_uk
//                + sum over v's observations of responsibilities for k
//     beta_kl  ∝ sum_v c_vl p(z_vl = k)                  (categorical)
//     mu_k, sigma_k^2 = responsibility-weighted moments  (numerical)
//
// Objects without observations are clustered purely from their out-link
// neighborhood — the incomplete-attribute case. The node sweep is
// parallelized across a ThreadPool with per-shard component accumulators.
#pragma once

#include <vector>

#include "common/thread_pool.h"
#include "core/components.h"
#include "core/config.h"
#include "hin/attributes.h"
#include "hin/network.h"
#include "linalg/matrix.h"

namespace genclus {

/// Outcome of one cluster-optimization step.
struct EmStats {
  size_t iterations = 0;
  bool converged = false;
  /// g1 objective after each EM iteration (monitoring only; computing it
  /// costs an extra pass, so it is filled only when track_objective).
  std::vector<double> objective_trace;
  /// Max |Theta_t - Theta_{t-1}| at the last iteration.
  double final_delta = 0.0;
};

/// Runs the EM loop of Algorithm 1's Step 1 for fixed gamma.
class EmOptimizer {
 public:
  /// `network`, `attributes` and `config` must outlive the optimizer.
  /// `pool` may be null for single-threaded execution.
  EmOptimizer(const Network* network,
              std::vector<const Attribute*> attributes,
              const GenClusConfig* config, ThreadPool* pool);

  /// Runs EM until convergence or config->em_iterations, updating `theta`
  /// (num_nodes x K, rows on the simplex) and `components` in place.
  EmStats Run(const std::vector<double>& gamma, Matrix* theta,
              std::vector<AttributeComponents>* components,
              bool track_objective = false) const;

  /// One EM iteration; returns max |Theta_new - Theta_old|.
  double Step(const std::vector<double>& gamma, Matrix* theta,
              std::vector<AttributeComponents>* components) const;

  /// Re-estimates components from scratch treating `theta` rows as
  /// observation responsibilities (used for initialization).
  void EstimateComponents(const Matrix& theta,
                          std::vector<AttributeComponents>* components) const;

 private:
  // Accumulators for one attribute's M-step statistics within one shard.
  struct ComponentAccumulator {
    // categorical: counts[k * vocab + l]
    std::vector<double> counts;
    // numerical: per-cluster moment sums
    std::vector<double> weight_sum;
    std::vector<double> value_sum;
    std::vector<double> square_sum;
  };

  void InitAccumulators(
      std::vector<std::vector<ComponentAccumulator>>* acc) const;

  // Processes nodes [begin, end): fills new_theta rows and adds this
  // shard's component statistics into acc.
  void ProcessNodes(size_t begin, size_t end,
                    const std::vector<double>& gamma, const Matrix& theta,
                    const std::vector<AttributeComponents>& components,
                    Matrix* new_theta,
                    std::vector<ComponentAccumulator>* acc) const;

  // Merges shard accumulators and writes the new beta values.
  void UpdateComponents(
      const std::vector<std::vector<ComponentAccumulator>>& acc,
      std::vector<AttributeComponents>* components) const;

  const Network* network_;
  std::vector<const Attribute*> attributes_;
  const GenClusConfig* config_;
  ThreadPool* pool_;
};

}  // namespace genclus
