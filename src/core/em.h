// Cluster optimization (§4.1): EM over Theta and beta with gamma fixed.
//
// Per EM iteration (update rules Eqs. 10-12, all right-hand sides at the
// previous iterate):
//   E-step: responsibilities of each observation,
//     categorical:  p(z_vl = k)  ∝ theta_vk * beta_kl
//     numerical:    p(z_vx = k)  ∝ theta_vk * N(x | mu_k, sigma_k^2)
//   M-step:
//     theta_vk ∝ sum_{e=<v,u>} gamma(phi(e)) w(e) theta_uk
//                + sum over v's observations of responsibilities for k
//     beta_kl  ∝ sum_v c_vl p(z_vl = k)                  (categorical)
//     mu_k, sigma_k^2 = responsibility-weighted moments  (numerical)
//
// Objects without observations are clustered purely from their out-link
// neighborhood — the incomplete-attribute case.
//
// The sweep is organized as a typed-CSR kernel pass: the link term is
// computed per relation as gamma_r * (W_r Theta) through the SpMM kernel
// (linalg/spmm.h) over Network::OutCsr views, and the attribute E-step
// reads a term-major transpose of beta plus hoisted per-cluster Gaussian
// constants (GaussianEvalTable) instead of calling LogPdf per
// (observation, cluster). All scratch state lives in an EmWorkspace that
// Run allocates once and every Step reuses.
//
// Determinism: the node range is cut into fixed-size blocks (a function of
// n only, never of the thread count); each block accumulates its component
// statistics into its own slot and the slots are merged in block order.
// Theta, beta and the Gaussians are therefore bitwise identical for any
// thread count, including pool == nullptr.
//
// ReferenceStep preserves the original per-link AoS traversal as a serial
// reference implementation; tests cross-check the kernel path against it.
#pragma once

#include <vector>

#include "common/thread_pool.h"
#include "core/components.h"
#include "core/config.h"
#include "hin/attributes.h"
#include "hin/network.h"
#include "linalg/matrix.h"
#include "linalg/sharding.h"

namespace genclus {

/// Outcome of one cluster-optimization step.
struct EmStats {
  size_t iterations = 0;
  bool converged = false;
  /// g1 objective after each EM iteration, filled only when
  /// track_objective. Entries up to the second-to-last are computed for
  /// free inside the next iteration's fused sweep; only the last iterate
  /// pays a dedicated (blocked, parallel) objective pass.
  std::vector<double> objective_trace;
  /// Max |Theta_t - Theta_{t-1}| at the last iteration.
  double final_delta = 0.0;
  /// Reduction blocks the node range was cut into — the denominator of
  /// the skip accounting (one "block sweep" per block per iteration).
  size_t blocks = 0;
  /// Block sweeps skipped by convergence-aware skipping, one entry per EM
  /// iteration. Empty unless GenClusConfig::block_convergence_tol > 0.
  std::vector<size_t> skipped_per_sweep;
  /// Per-block max |Theta| change at the last iteration (a block skipped
  /// there reports the frozen delta of its last computed sweep).
  std::vector<double> final_block_deltas;
};

// Per-attribute M-step statistics of one reduction block.
struct EmComponentAccumulator {
  // categorical: counts[k * vocab + l]
  std::vector<double> counts;
  // numerical: per-cluster moment sums
  std::vector<double> weight_sum;
  std::vector<double> value_sum;
  std::vector<double> square_sum;
};

/// Reusable scratch state for the EM sweep: the new-Theta buffer,
/// per-block component accumulators and reduction partials, per-block
/// responsibility/log-theta scratch, the term-major beta transposes and
/// the Gaussian constant tables. Allocated on first use and reused across
/// Steps (and across Runs, if the caller keeps it); the pre-kernel code
/// reallocated all of this on every Step.
class EmWorkspace {
 public:
  EmWorkspace() = default;

 private:
  friend class EmOptimizer;

  // (Re)sizes everything for the given problem shape; no-op when the
  // shape is unchanged.
  void Prepare(size_t num_nodes, size_t num_clusters,
               const std::vector<const Attribute*>& attributes,
               size_t num_blocks);

  // (Re)builds the column-shard state — the resolved node partition and,
  // when it has more than one shard, one CsrColumnSplit per relation — for
  // the requested shard count (0 = auto). No-op when already built for
  // this network shape and count.
  void PrepareSharding(const Network& network, size_t requested_shards);

  size_t num_nodes_ = 0;
  size_t num_clusters_ = 0;
  size_t num_blocks_ = 0;
  size_t num_attributes_ = 0;

  Matrix new_theta_;
  // block_acc_[block][attribute]
  std::vector<std::vector<EmComponentAccumulator>> block_acc_;
  std::vector<double> block_delta_;
  std::vector<double> block_objective_;
  // Per-block scratch: 4 * K doubles each (responsibilities, log theta_v
  // clamped for the E-step, log theta_v clamped for the structural score,
  // and the hoisted log theta_vk + log_norm_k base of the Gaussian
  // E-step).
  std::vector<double> scratch_;
  // Term-major transpose of each categorical attribute's beta (vocab x K),
  // so the per-term E-step reads K contiguous doubles.
  std::vector<Matrix> beta_transpose_;
  // Hoisted Gaussian constants of each numerical attribute.
  std::vector<GaussianEvalTable> gaussians_;
  // Column-shard state for the link term (see PrepareSharding).
  // shard_splits_ is empty when the partition has a single shard — the
  // sweep then takes the monolithic SpmmAccumulate path unchanged.
  bool shard_ready_ = false;
  ShardPartition shard_partition_;
  std::vector<CsrColumnSplit> shard_splits_;  // indexed by LinkTypeId

  // Convergence-aware skip state (GenClusConfig::block_convergence_tol).
  // Everything here is a pure function of the deterministic per-block
  // deltas, the fixed block graph and the gamma vector, so the skip
  // decisions — and therefore the fitted model — stay bitwise invariant
  // to thread count x shard count.
  std::vector<size_t> block_quiet_;   // consecutive sweeps below tolerance
  std::vector<uint8_t> block_skip_;   // this sweep's skip decision
  // block_dependents_[m]: blocks holding at least one out-link into block
  // m. They read m's Theta rows, so when m moves they are re-armed.
  std::vector<std::vector<uint32_t>> block_dependents_;
  bool dependents_ready_ = false;
  // Gamma of the previous sweep: a gamma change (a new outer iteration)
  // invalidates every block's link term, so all quiet counts reset.
  std::vector<double> last_gamma_;
  size_t last_sweep_skipped_ = 0;
  // Merge destination of the per-block component statistics. A separate
  // buffer — not block 0's slot, which the pre-skip code merged into
  // destructively — so a skipped block's cached statistics survive the
  // merge and can be reused next sweep.
  std::vector<EmComponentAccumulator> merged_acc_;
};

/// Runs the EM loop of Algorithm 1's Step 1 for fixed gamma.
class EmOptimizer {
 public:
  /// `network`, `attributes` and `config` must outlive the optimizer.
  /// `pool` may be null for single-threaded execution.
  EmOptimizer(const Network* network,
              std::vector<const Attribute*> attributes,
              const GenClusConfig* config, ThreadPool* pool);

  /// Runs EM until convergence or config->em_iterations, updating `theta`
  /// (num_nodes x K, rows on the simplex) and `components` in place. The
  /// overload without a workspace allocates one for the whole run; pass a
  /// workspace to reuse scratch across runs (e.g. outer iterations).
  EmStats Run(const std::vector<double>& gamma, Matrix* theta,
              std::vector<AttributeComponents>* components,
              bool track_objective = false) const;
  EmStats Run(const std::vector<double>& gamma, Matrix* theta,
              std::vector<AttributeComponents>* components,
              EmWorkspace* workspace, bool track_objective = false) const;

  /// One EM iteration; returns max |Theta_new - Theta_old|. The overload
  /// without a workspace allocates a fresh one per call — prefer passing
  /// a workspace when stepping in a loop.
  double Step(const std::vector<double>& gamma, Matrix* theta,
              std::vector<AttributeComponents>* components) const;
  double Step(const std::vector<double>& gamma, Matrix* theta,
              std::vector<AttributeComponents>* components,
              EmWorkspace* workspace) const;

  /// One EM iteration through the original per-link AoS traversal, kept
  /// as the serial reference implementation the kernel path is tested
  /// against (and the baseline em_bench measures speedups from).
  double ReferenceStep(const std::vector<double>& gamma, Matrix* theta,
                       std::vector<AttributeComponents>* components) const;

  /// g1 objective (feature part + attribute log-likelihood) at the given
  /// iterate, computed with the same blocked sweep and hoisted constants
  /// as Step — equal to objective.h's G1Objective up to floating-point
  /// reassociation, and bitwise invariant to the thread count.
  double FusedObjective(const std::vector<double>& gamma, const Matrix& theta,
                        const std::vector<AttributeComponents>& components,
                        EmWorkspace* workspace) const;

  /// Re-estimates components from scratch treating `theta` rows as
  /// observation responsibilities (used for initialization).
  void EstimateComponents(const Matrix& theta,
                          std::vector<AttributeComponents>* components) const;

 private:
  // Kernel-path sweep: one EM iteration reusing `workspace`. When
  // `entry_objective` is non-null, also computes g1 at the *input* iterate
  // (theta, components) fused into the same traversal. Convergence-aware
  // block skipping engages only when `allow_block_skip`, the config
  // tolerance is non-zero and no objective is being traced (a traced run
  // must evaluate every block exactly).
  double FusedStep(const std::vector<double>& gamma, Matrix* theta,
                   std::vector<AttributeComponents>* components,
                   EmWorkspace* workspace, double* entry_objective,
                   bool allow_block_skip = true) const;

  // Builds workspace->block_dependents_: for each target block m, the
  // ascending list of blocks holding at least one out-link into m. Pure
  // function of the network and kEmBlockGrain.
  void BuildBlockDependents(EmWorkspace* workspace) const;

  // Link part of the fused sweeps: out rows [begin, end) +=
  // sum_r gamma_r (W_r Theta), each relation computed per column shard in
  // ascending shard order — bitwise identical to the unsharded product
  // for every shard count (see linalg/sharding.h).
  void AccumulateLinkTerm(const std::vector<double>& gamma,
                          const double* theta_data, size_t begin, size_t end,
                          EmWorkspace* ws, double* out) const;

  // Rebuilds the per-step derived tables (beta transposes, Gaussian
  // constants) in the workspace from the current components.
  void RebuildDerivedTables(
      const std::vector<AttributeComponents>& components,
      EmWorkspace* workspace) const;

  size_t NumBlocks() const;

  // Processes nodes [begin, end) with the original AoS traversal: fills
  // new_theta rows and adds component statistics into acc. Serial
  // reference implementation backing ReferenceStep.
  void ProcessNodes(size_t begin, size_t end,
                    const std::vector<double>& gamma, const Matrix& theta,
                    const std::vector<AttributeComponents>& components,
                    Matrix* new_theta,
                    std::vector<EmComponentAccumulator>* acc) const;

  // Writes the new component parameters from merged accumulators.
  void UpdateComponents(const std::vector<EmComponentAccumulator>& acc,
                        std::vector<AttributeComponents>* components) const;

  const Network* network_;
  std::vector<const Attribute*> attributes_;
  const GenClusConfig* config_;
  ThreadPool* pool_;
  bool has_numerical_ = false;
};

}  // namespace genclus
