#include "core/objective.h"

#include <cmath>

#include "common/check.h"
#include "core/feature.h"
#include "prob/special_functions.h"

namespace genclus {

double AttributeLogLikelihood(const Attribute& attribute,
                              const AttributeComponents& components,
                              const Matrix& theta) {
  const size_t num_clusters = theta.cols();
  GENCLUS_CHECK_EQ(components.num_clusters(), num_clusters);
  GENCLUS_CHECK_EQ(attribute.num_nodes(), theta.rows());

  double total = 0.0;
  if (attribute.kind() == AttributeKind::kCategorical) {
    const Matrix& beta = components.beta();
    for (NodeId v = 0; v < attribute.num_nodes(); ++v) {
      const auto& bag = attribute.TermCounts(v);
      if (bag.empty()) continue;
      const double* theta_v = theta.Row(v);
      for (const TermCount& tc : bag) {
        double p = 0.0;
        for (size_t k = 0; k < num_clusters; ++k) {
          p += theta_v[k] * beta(k, tc.term);
        }
        // Guard against components that assign zero mass everywhere; the
        // smoothing in the M-step normally prevents this.
        total += tc.count * std::log(p > 0.0 ? p : 1e-300);
      }
    }
  } else {
    std::vector<double> logs(num_clusters);
    for (NodeId v = 0; v < attribute.num_nodes(); ++v) {
      const auto& values = attribute.Values(v);
      if (values.empty()) continue;
      const double* theta_v = theta.Row(v);
      for (double x : values) {
        for (size_t k = 0; k < num_clusters; ++k) {
          const double t = theta_v[k] > 0.0 ? theta_v[k] : 1e-300;
          logs[k] = std::log(t) + components.LogPdf(k, x);
        }
        total += LogSumExp(logs);
      }
    }
  }
  return total;
}

double TotalAttributeLogLikelihood(
    const std::vector<const Attribute*>& attributes,
    const std::vector<AttributeComponents>& components, const Matrix& theta) {
  GENCLUS_CHECK_EQ(attributes.size(), components.size());
  double total = 0.0;
  for (size_t t = 0; t < attributes.size(); ++t) {
    total += AttributeLogLikelihood(*attributes[t], components[t], theta);
  }
  return total;
}

double G1Objective(const Network& network,
                   const std::vector<const Attribute*>& attributes,
                   const std::vector<AttributeComponents>& components,
                   const Matrix& theta, const std::vector<double>& gamma) {
  return StructuralScore(network, theta, gamma) +
         TotalAttributeLogLikelihood(attributes, components, theta);
}

}  // namespace genclus
