// Fold-in serving: compute membership vectors for NEW objects from their
// links into an already-clustered network plus their own attribute
// observations, holding the trained Model (Theta, beta, gamma) fixed.
// Each answer is exactly one Eq. 10/11-style update for the new object —
// the update GenClus applies to attribute-free objects every sweep — so
// the result is consistent with what a full re-run would assign.
//
// Two paths compute that update:
//
//   * InferMembership — the per-query reference path: validates one
//     query, gathers its link term over Model::theta and runs the
//     attribute fixed-point sweeps. Kept as the ground truth the batch
//     path is tested (and benched) against.
//
//   * BatchPlanner + InferSession — the batch-planned serving pipeline.
//     A batch of queries *is* a sparse matrix (rows = queries, cols =
//     link targets), so Plan() validates every query up front (per-query
//     Status preserved), assembles the valid queries' links into one
//     query x node CSR, and Execute() computes the whole batch's link
//     term Σ_r γ_r (Q_r Θ) through the SpMM kernel (linalg/spmm.h) — γ_r
//     is folded into the CSR values at plan time so each row accumulates
//     in the query's original link order and the result stays bitwise
//     identical to the reference path. Model-side constants (one
//     GaussianEvalTable per numerical attribute, a term-major transpose
//     of each categorical beta) are built once in a reusable
//     ServeWorkspace and shared by every query of every batch. The
//     attribute sweeps run over fixed-grain query blocks, so results are
//     bitwise invariant to the thread count.
//
// Engine (core/engine.h) wraps the pipeline behind Plan/Execute and keeps
// Infer/InferBatch as thin wrappers over a one-shot plan; Server
// (core/server.h) runs it behind a bounded micro-batching request queue.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/components.h"
#include "core/config.h"
#include "core/model.h"
#include "hin/network.h"
#include "linalg/matrix.h"
#include "linalg/sharding.h"
#include "linalg/spmm.h"
#include "prob/simplex.h"

namespace genclus {

/// Serving defaults, single-sourced: engine options, InferMembership's
/// defaults and the tests all read these instead of restating literals.
struct ServeDefaults {
  /// Fixed-point sweeps per query (the responsibilities depend on the
  /// object's own theta, so a few iterations refine the attribute part;
  /// the link part is constant).
  static constexpr size_t kInferenceIterations = 10;
  /// Floor applied to inferred membership probabilities — the same floor
  /// training clamps Theta rows with (prob/simplex.h), not a restatement.
  static constexpr double kThetaFloor = kDefaultThetaFloor;
  /// Early-exit tolerance of the fixed-point sweep: stop once
  /// max_k |theta_k - theta_k'| falls below this.
  static constexpr double kSweepTolerance = 1e-10;
  /// Queries per fixed-grain execution block. The block partition is a
  /// function of the batch size only — never of the thread count — which
  /// is what makes batch execution bitwise thread-invariant.
  static constexpr size_t kBatchBlockGrain = 16;
};

/// A would-be out-link of the new object into the existing network.
struct NewObjectLink {
  NodeId target = kInvalidNode;
  LinkTypeId type = kInvalidLinkType;
  double weight = 1.0;
};

/// Which union member of NewObjectObservation the caller filled. Legacy
/// aggregate-initialized observations are kUnspecified and keep being
/// interpreted by the model attribute's kind; factory-built observations
/// declare their kind and are rejected at plan time when it mismatches.
enum class ObservationKind : uint8_t {
  kUnspecified,
  kCategorical,
  kNumerical,
};

/// A categorical observation of the new object (term + count) for one of
/// the model's attributes, or a numerical value. Prefer the Categorical /
/// Numerical factories, which record which union member is meant so
/// Validate can reject kind mismatches with a precise message.
struct NewObjectObservation {
  AttributeId attribute = kInvalidAttribute;
  uint32_t term = 0;      // categorical
  double count = 1.0;     // categorical
  double value = 0.0;     // numerical
  ObservationKind kind = ObservationKind::kUnspecified;

  /// `count` occurrences of `term` for a categorical attribute.
  static NewObjectObservation Categorical(AttributeId attribute,
                                          uint32_t term, double count = 1.0);
  /// One real-valued observation of a numerical attribute.
  static NewObjectObservation Numerical(AttributeId attribute, double value);

  /// Checks this observation against a trained model: the attribute must
  /// exist, a declared kind must match the attribute's kind, a
  /// categorical term must lie inside the trained vocabulary, and the
  /// count/value must be finite (count non-negative).
  Status Validate(const Model& model) const;
};

/// A new object's evidence for one fold-in membership query: its would-be
/// out-links into the serving network and its own attribute observations.
struct NewObjectQuery {
  std::vector<NewObjectLink> links;
  std::vector<NewObjectObservation> observations;
};

/// Hard label reported for queries that failed validation.
inline constexpr uint32_t kNoHardLabel =
    std::numeric_limits<uint32_t>::max();

/// Validated, executable form of one serve batch, produced by
/// BatchPlanner::Plan (or Engine::Plan). Invalid queries keep their
/// per-query Status and are excluded from the CSR; valid queries occupy
/// CSR rows in input order.
struct InferPlan {
  /// Per-input-query validation outcome, slot i for query i.
  std::vector<Status> statuses;
  /// CSR row -> input query index (valid queries only, in input order).
  std::vector<size_t> row_to_query;
  /// Query x node link matrix in CSR form. Values are gamma(type) *
  /// weight, and each row's non-zeros are stable-sorted by target column
  /// — the canonical accumulation order shared with the reference path
  /// (InferMembership sums its link part in the same stable
  /// ascending-target order), so SpMM output is bitwise identical to the
  /// reference link term AND independent of how the columns are cut into
  /// Θ shards. Duplicate links to the same target stay separate adjacent
  /// non-zeros in their original relative order.
  std::vector<size_t> row_offsets;  // num_rows() + 1
  std::vector<uint32_t> link_cols;
  std::vector<double> link_values;
  /// Column-shard state of the link CSR: the planner's resolved Θ
  /// partition, plus the per-row shard cuts when the partition has more
  /// than one shard (Execute then merges per-shard link terms in
  /// ascending shard order; otherwise it takes the monolithic path).
  ShardPartition theta_partition;
  CsrColumnSplit shard_split;
  /// Observations of the valid queries, flattened; row i's observations
  /// live at [observation_offsets[i], observation_offsets[i + 1]).
  /// `observation_categorical[j]` resolves observation j's kind against
  /// the model once at plan time (1 = categorical), so execution never
  /// chases model components.
  std::vector<NewObjectObservation> observations;
  std::vector<uint8_t> observation_categorical;
  std::vector<size_t> observation_offsets;  // num_rows() + 1
  /// Batch stats over the valid queries.
  size_t total_links = 0;
  size_t total_observations = 0;
  /// Wall-clock seconds spent planning (validation + CSR assembly).
  double plan_seconds = 0.0;

  size_t num_queries() const { return statuses.size(); }
  size_t num_rows() const { return row_to_query.size(); }
  CsrMatrixView links() const {
    return CsrMatrixView{row_offsets, link_cols, link_values};
  }
};

/// Plan/exec timings and batch stats of one executed batch.
struct ServeReport {
  size_t batch_size = 0;
  size_t valid_queries = 0;
  size_t total_links = 0;
  size_t total_observations = 0;
  /// Fixed-grain execution blocks the batch was cut into.
  size_t exec_blocks = 0;
  /// Valid queries answered with fewer fixed-point sweeps than the
  /// configured normal — the serving tier's graceful-degradation mode.
  /// Always 0 on the direct Engine/InferSession paths.
  size_t degraded_queries = 0;
  double plan_seconds = 0.0;
  double exec_seconds = 0.0;
};

/// Typed result of executing an InferPlan: per-query status, membership
/// and hard label (slot i for input query i), plus the batch report.
/// Memberships are one dense batch x K matrix — a single allocation per
/// batch instead of one vector per query, and the natural shape for
/// callers that post-process whole batches. Failed queries keep a zero
/// membership row and kNoHardLabel.
struct InferenceResult {
  std::vector<Status> statuses;
  Matrix memberships;
  std::vector<uint32_t> hard_labels;
  /// Version of the model that answered each query — filled only by the
  /// serving tier's collector path (core/server.h), where answers of one
  /// logical batch can straddle a SwapModel; empty on the direct
  /// Engine/InferSession paths. Slot i is 0 for queries that failed
  /// before execution.
  std::vector<uint64_t> model_versions;
  ServeReport report;

  size_t size() const { return statuses.size(); }
  bool ok(size_t i) const { return statuses[i].ok(); }
  /// Query i's membership row (all-zero when the query failed).
  std::span<const double> membership(size_t i) const {
    return {memberships.Row(i), memberships.cols()};
  }
};

/// Validates serve batches against a (network, model) pair and assembles
/// InferPlans. Stateless apart from the model-level precondition, which
/// is checked once at construction; both pointers must outlive the
/// planner.
class BatchPlanner {
 public:
  /// `theta_shards` picks the column-shard count used to execute the
  /// batch link term: 0 (default) adopts the model's stamped
  /// `theta_shards`, any other value overrides it (clamped like
  /// ShardPartition::Resolve). Served memberships are bitwise identical
  /// for every choice.
  BatchPlanner(const Network* network, const Model* model,
               size_t theta_shards = 0);

  /// Validates every query (per-query Status — one bad query never
  /// poisons the rest) and assembles the valid ones into the batch CSR.
  InferPlan Plan(std::span<const NewObjectQuery> queries) const;

 private:
  const Network* network_;
  const Model* model_;
  /// Model-vs-network precondition; a failure marks every query.
  Status model_status_;
  /// Resolved Θ column partition every plan carries.
  ShardPartition theta_partition_;
};

/// Reusable per-session scratch of the batch execution path: the
/// model-side constants shared by every batch (one GaussianEvalTable per
/// numerical attribute, a term-major transpose of each categorical beta)
/// and the per-batch buffers (the batch link-term matrix, per-block sweep
/// scratch). Analogous to the EM path's EmWorkspace.
class ServeWorkspace {
 public:
  ServeWorkspace() = default;

 private:
  friend class InferSession;

  // Builds the model-side tables; no-op when already built for `model`.
  // The model must not be mutated while a workspace is prepared for it.
  void PrepareModel(const Model& model);
  // (Re)sizes the per-batch buffers; reuses capacity across batches.
  void PrepareBatch(size_t num_rows, size_t num_clusters,
                    size_t num_blocks);

  // One resolved observation of the executing query: the sweep loop
  // reads `data` (term-major beta row, or the query's cached Gaussian
  // log-density row) instead of chasing model components per sweep.
  struct ObsRef {
    const double* data = nullptr;
    double count = 0.0;
    bool categorical = false;
  };

  // Per-block sweep scratch: theta/mix/responsibilities/log-theta (4 x K
  // doubles in `kbuf`), the per-query cache of sweep-invariant Gaussian
  // log-densities (one K-row per numerical observation) and the resolved
  // observation descriptors.
  struct BlockScratch {
    std::vector<double> kbuf;
    std::vector<double> log_pdf;
    std::vector<ObsRef> obs;
  };

  const Model* prepared_for_ = nullptr;
  // Term-major transpose (vocab x K) of each categorical attribute's
  // beta, so the per-term E-step reads K contiguous doubles.
  std::vector<Matrix> beta_transpose_;
  // Hoisted Gaussian constants of each numerical attribute — built once
  // per model instead of once per query.
  std::vector<GaussianEvalTable> gaussians_;
  // Batch link term Σ_r γ_r (Q_r Θ): num_rows x K.
  Matrix link_part_;
  std::vector<BlockScratch> block_scratch_;
};

/// Executes InferPlans over a thread pool, reusing one ServeWorkspace
/// across batches. `model` must outlive the session and must not change
/// while the session exists; `pool` may be null for serial execution.
/// Not thread-safe: callers running batches concurrently use one session
/// per concurrent batch (Engine recycles a session pool; Server gives
/// each worker thread its own session).
class InferSession {
 public:
  InferSession(const Model* model, ThreadPool* pool,
               size_t iterations = ServeDefaults::kInferenceIterations,
               double theta_floor = ServeDefaults::kThetaFloor);

  /// Runs the batch: one SpMM pass for the link term, then the attribute
  /// fixed-point sweeps, both over fixed-grain query blocks. Results are
  /// bitwise identical to per-query InferMembership and to any other
  /// thread count. The plan must have been built against this session's
  /// model.
  InferenceResult Execute(const InferPlan& plan);

  /// Fixed-point sweeps per query. The serving tier's degradation
  /// controller lowers this under sustained overload and restores it on
  /// recovery; each worker owns its session, so no synchronization is
  /// needed. Clamped to at least 1 at execution time.
  void set_iterations(size_t iterations) { iterations_ = iterations; }
  size_t iterations() const { return iterations_; }

 private:
  // Runs query rows [row_begin, row_end) of one block: SpMM for the
  // block's link-term rows, then the per-query sweeps (dispatched to a
  // K-specialized instantiation for common cluster counts, like the SpMM
  // kernel — unrolling never reorders a floating-point op, so every
  // instantiation yields bitwise identical results).
  void ExecuteBlock(const InferPlan& plan, size_t block, size_t row_begin,
                    size_t row_end, InferenceResult* out);
  // kFixedK > 0: compile-time cluster count; kFixedK == -1: runtime K.
  template <int kFixedK>
  void SweepRows(const InferPlan& plan, size_t block, size_t row_begin,
                 size_t row_end, InferenceResult* out);

  const Model* model_;
  ThreadPool* pool_;
  size_t iterations_;
  double theta_floor_;
  ServeWorkspace workspace_;
};

/// Infers theta for a new object given its out-links and observations —
/// the per-query reference path the batch pipeline is tested against.
/// `iterations` fixed-point sweeps. Fails if a link/observation
/// references unknown ids or mismatched attribute kinds.
Result<std::vector<double>> InferMembership(
    const Network& network, const Model& model,
    const std::vector<NewObjectLink>& links,
    const std::vector<NewObjectObservation>& observations,
    size_t iterations = ServeDefaults::kInferenceIterations,
    double theta_floor = ServeDefaults::kThetaFloor);

}  // namespace genclus
