// Fold-in inference: compute the membership vector of a NEW object from
// its links into an already-clustered network plus its own attribute
// observations, holding the trained Model (Theta, beta, gamma) fixed.
// This is exactly one Eq. 10/11-style update for the new object — the
// update GenClus applies to attribute-free objects every sweep — so the
// result is consistent with what a full re-run would assign. For serving
// many queries, prefer Engine::InferBatch (core/engine.h), which runs this
// path in parallel over a thread pool.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/components.h"
#include "core/config.h"
#include "core/model.h"
#include "hin/network.h"
#include "linalg/matrix.h"

namespace genclus {

/// A would-be out-link of the new object into the existing network.
struct NewObjectLink {
  NodeId target = kInvalidNode;
  LinkTypeId type = kInvalidLinkType;
  double weight = 1.0;
};

/// A categorical observation of the new object (term + count) for one of
/// the model's attributes, or a numerical value.
struct NewObjectObservation {
  AttributeId attribute = kInvalidAttribute;
  uint32_t term = 0;      // categorical
  double count = 1.0;     // categorical
  double value = 0.0;     // numerical
};

inline constexpr double kDefaultInferenceThetaFloor = 1e-12;

/// Infers theta for a new object given its out-links and observations.
/// `iterations` fixed-point sweeps (the responsibilities depend on the
/// object's own theta, so a few iterations refine the attribute part;
/// the link part is constant). Fails if a link/observation references
/// unknown ids or mismatched attribute kinds.
Result<std::vector<double>> InferMembership(
    const Network& network, const Model& model,
    const std::vector<NewObjectLink>& links,
    const std::vector<NewObjectObservation>& observations,
    size_t iterations = 10,
    double theta_floor = kDefaultInferenceThetaFloor);

}  // namespace genclus
