// Cluster component parameters beta for one attribute: a K x vocab matrix
// of term probabilities (categorical attributes, Eq. 3) or K Gaussians
// (numerical attributes, Eq. 4).
#pragma once

#include <span>
#include <vector>

#include "common/status.h"
#include "hin/attributes.h"
#include "linalg/matrix.h"
#include "prob/distributions.h"

namespace genclus {

/// Per-cluster mixture components for a single attribute.
class AttributeComponents {
 public:
  /// Uniform categorical components: beta_{k,l} = 1/vocab for all k.
  static AttributeComponents CategoricalUniform(size_t num_clusters,
                                                size_t vocab_size);

  /// Gaussian components at the given initial parameters (one per cluster).
  static AttributeComponents Numerical(std::vector<GaussianDistribution> g);

  AttributeKind kind() const { return kind_; }
  size_t num_clusters() const;

  // --- categorical ---
  /// K x vocab matrix; row k is the term distribution of cluster k.
  const Matrix& beta() const;
  Matrix* mutable_beta();
  double TermProb(ClusterId k, uint32_t term) const {
    return beta_(k, term);
  }

  // --- numerical ---
  const GaussianDistribution& gaussian(ClusterId k) const;
  std::vector<GaussianDistribution>* mutable_gaussians();

  /// log p(x | beta_k) for a numerical observation.
  double LogPdf(ClusterId k, double x) const;

 private:
  AttributeComponents(AttributeKind kind, Matrix beta,
                      std::vector<GaussianDistribution> gaussians)
      : kind_(kind),
        beta_(std::move(beta)),
        gaussians_(std::move(gaussians)) {}

  AttributeKind kind_;
  Matrix beta_;  // categorical only
  std::vector<GaussianDistribution> gaussians_;  // numerical only
};

/// Per-cluster Gaussian evaluation constants hoisted out of inner loops:
///   LogPdf(k, x) = log_norm_k + neg_half_inv_var_k * (x - mu_k)^2
/// with log_norm_k = -0.5 * (log(2*pi) + log(sigma_k^2)) precomputed, so
/// evaluating an observation against all K clusters costs no logarithms.
/// Both the training E-step (core/em.cc) and fold-in inference
/// (core/inference.cc) evaluate Gaussians through this table — one
/// evaluation rule for train and serve.
class GaussianEvalTable {
 public:
  /// (Re)builds the table from a numerical component set; reuses the
  /// existing buffers when the cluster count is unchanged.
  void Rebuild(const AttributeComponents& components);

  size_t num_clusters() const { return mean_.size(); }

  double LogPdf(size_t k, double x) const {
    GENCLUS_DCHECK(k < mean_.size());
    const double d = x - mean_[k];
    return log_norm_[k] + neg_half_inv_var_[k] * d * d;
  }

  // Raw constant arrays, for callers that hoist further invariants out of
  // their observation loops (the EM sweep folds log theta_vk + log_norm_k
  // into one per-node base term).
  std::span<const double> means() const { return mean_; }
  std::span<const double> neg_half_inv_vars() const {
    return neg_half_inv_var_;
  }
  std::span<const double> log_norms() const { return log_norm_; }

 private:
  std::vector<double> mean_;
  std::vector<double> neg_half_inv_var_;
  std::vector<double> log_norm_;
};

}  // namespace genclus
