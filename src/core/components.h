// Cluster component parameters beta for one attribute: a K x vocab matrix
// of term probabilities (categorical attributes, Eq. 3) or K Gaussians
// (numerical attributes, Eq. 4).
#pragma once

#include <vector>

#include "common/status.h"
#include "hin/attributes.h"
#include "linalg/matrix.h"
#include "prob/distributions.h"

namespace genclus {

/// Per-cluster mixture components for a single attribute.
class AttributeComponents {
 public:
  /// Uniform categorical components: beta_{k,l} = 1/vocab for all k.
  static AttributeComponents CategoricalUniform(size_t num_clusters,
                                                size_t vocab_size);

  /// Gaussian components at the given initial parameters (one per cluster).
  static AttributeComponents Numerical(std::vector<GaussianDistribution> g);

  AttributeKind kind() const { return kind_; }
  size_t num_clusters() const;

  // --- categorical ---
  /// K x vocab matrix; row k is the term distribution of cluster k.
  const Matrix& beta() const;
  Matrix* mutable_beta();
  double TermProb(ClusterId k, uint32_t term) const {
    return beta_(k, term);
  }

  // --- numerical ---
  const GaussianDistribution& gaussian(ClusterId k) const;
  std::vector<GaussianDistribution>* mutable_gaussians();

  /// log p(x | beta_k) for a numerical observation.
  double LogPdf(ClusterId k, double x) const;

 private:
  AttributeComponents(AttributeKind kind, Matrix beta,
                      std::vector<GaussianDistribution> gaussians)
      : kind_(kind),
        beta_(std::move(beta)),
        gaussians_(std::move(gaussians)) {}

  AttributeKind kind_;
  Matrix beta_;  // categorical only
  std::vector<GaussianDistribution> gaussians_;  // numerical only
};

}  // namespace genclus
