#include "core/init.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "baselines/interpolation.h"
#include "baselines/kmeans.h"
#include "common/check.h"
#include "core/objective.h"

namespace genclus {

Matrix RandomTheta(size_t num_nodes, size_t num_clusters, Rng* rng) {
  GENCLUS_CHECK(rng != nullptr);
  GENCLUS_CHECK_GE(num_clusters, 2u);
  Matrix theta(num_nodes, num_clusters);
  for (size_t v = 0; v < num_nodes; ++v) {
    std::vector<double> row = rng->SimplexUniform(num_clusters);
    theta.SetRow(v, row);
  }
  return theta;
}

std::vector<AttributeComponents> InitialComponents(
    const std::vector<const Attribute*>& attributes,
    const GenClusConfig& config, Rng* rng) {
  GENCLUS_CHECK(rng != nullptr);
  const size_t num_clusters = config.num_clusters;
  std::vector<AttributeComponents> components;
  components.reserve(attributes.size());

  for (const Attribute* attr : attributes) {
    if (attr->kind() == AttributeKind::kCategorical) {
      const size_t vocab = attr->vocab_size();
      // Corpus-wide term counts.
      std::vector<double> corpus(vocab, 0.0);
      double total = 0.0;
      for (NodeId v = 0; v < attr->num_nodes(); ++v) {
        for (const TermCount& tc : attr->TermCounts(v)) {
          corpus[tc.term] += tc.count;
          total += tc.count;
        }
      }
      AttributeComponents comp =
          AttributeComponents::CategoricalUniform(num_clusters, vocab);
      Matrix* beta = comp.mutable_beta();
      for (size_t k = 0; k < num_clusters; ++k) {
        double row_total = 0.0;
        for (size_t l = 0; l < vocab; ++l) {
          // Corpus share plus multiplicative noise to break symmetry.
          const double base =
              total > 0.0 ? corpus[l] / total : 1.0 / vocab;
          const double noisy = (base + 0.1 / vocab) * (0.5 + rng->Uniform());
          (*beta)(k, l) = noisy;
          row_total += noisy;
        }
        for (size_t l = 0; l < vocab; ++l) (*beta)(k, l) /= row_total;
      }
      components.push_back(std::move(comp));
    } else {
      // Global moments of the observed values.
      double sum = 0.0;
      double sum2 = 0.0;
      double count = 0.0;
      std::vector<double> pool;
      for (NodeId v = 0; v < attr->num_nodes(); ++v) {
        for (double x : attr->Values(v)) {
          sum += x;
          sum2 += x * x;
          count += 1.0;
          pool.push_back(x);
        }
      }
      const double mean = count > 0.0 ? sum / count : 0.0;
      double var = count > 0.0 ? sum2 / count - mean * mean : 1.0;
      if (var < config.variance_floor) var = config.variance_floor;
      std::sort(pool.begin(), pool.end());
      const double stddev = std::sqrt(var);
      std::vector<GaussianDistribution> gaussians;
      gaussians.reserve(num_clusters);
      for (size_t k = 0; k < num_clusters; ++k) {
        // Quantile-aligned centers: cluster k starts at the k-th quantile
        // of EVERY numerical attribute (plus jitter for seed diversity).
        // This couples the cluster identities across attributes carried by
        // disjoint object types — with independent random centers, each
        // type's objects converge to a private permutation of the same
        // partition and the cross-type relations get wrongly suppressed.
        double center;
        if (pool.empty()) {
          center = mean + rng->Gaussian();
        } else if (config.numerical_init == NumericalInit::kQuantile) {
          const size_t idx = std::min(
              pool.size() - 1,
              static_cast<size_t>((static_cast<double>(k) + 0.5) /
                                  static_cast<double>(num_clusters) *
                                  static_cast<double>(pool.size())));
          center = pool[idx] + 0.05 * stddev * rng->Gaussian();
        } else {
          center = pool[rng->UniformIndex(pool.size())] +
                   0.05 * stddev * rng->Gaussian();
        }
        gaussians.emplace_back(center, var);
      }
      components.push_back(
          AttributeComponents::Numerical(std::move(gaussians)));
    }
  }
  return components;
}

bool KMeansTheta(const Network& network,
                 const std::vector<const Attribute*>& attributes,
                 const GenClusConfig& config, Rng* rng, Matrix* theta) {
  GENCLUS_CHECK(theta != nullptr && rng != nullptr);
  std::vector<const Attribute*> numerical;
  for (const Attribute* attr : attributes) {
    if (attr->kind() == AttributeKind::kNumerical) numerical.push_back(attr);
  }
  if (numerical.empty()) return false;
  auto features = InterpolateNumericalAttributes(network, numerical);
  if (!features.ok()) return false;
  StandardizeColumns(&features.value());
  KMeansConfig kconfig;
  kconfig.num_clusters = config.num_clusters;
  kconfig.num_restarts = 5;
  kconfig.seed = rng->engine()();
  auto kmeans = RunKMeans(*features, kconfig);
  if (!kmeans.ok()) return false;
  // Concentrated-but-soft memberships: EM can still move nodes around.
  constexpr double kEps = 0.2;
  *theta = Matrix(network.num_nodes(), config.num_clusters,
                  kEps / static_cast<double>(config.num_clusters - 1));
  for (NodeId v = 0; v < network.num_nodes(); ++v) {
    (*theta)(v, kmeans->labels[v]) = 1.0 - kEps;
  }
  return true;
}

void BestOfSeedsInit(const EmOptimizer& optimizer, const Network& network,
                     const std::vector<const Attribute*>& attributes,
                     const GenClusConfig& config,
                     const std::vector<double>& gamma, Rng* rng,
                     Matrix* theta,
                     std::vector<AttributeComponents>* components) {
  GENCLUS_CHECK(theta != nullptr && components != nullptr);
  const size_t seeds = std::max<size_t>(1, config.num_init_seeds);
  double best_objective = -std::numeric_limits<double>::infinity();

  // One workspace shared across every candidate's scoring steps: the
  // problem shape never changes, so all scratch is allocated exactly once.
  EmWorkspace workspace;
  auto consider = [&](Matrix cand_theta,
                      std::vector<AttributeComponents> cand_components) {
    for (size_t step = 0; step < config.init_em_steps; ++step) {
      optimizer.Step(gamma, &cand_theta, &cand_components, &workspace);
    }
    const double obj = G1Objective(network, attributes, cand_components,
                                   cand_theta, gamma);
    if (obj > best_objective) {
      best_objective = obj;
      *theta = std::move(cand_theta);
      *components = std::move(cand_components);
    }
  };

  if (config.theta_init == ThetaInit::kRandomSeedsPlusKMeans) {
    Matrix kmeans_theta;
    if (KMeansTheta(network, attributes, config, rng, &kmeans_theta)) {
      std::vector<AttributeComponents> cand_components =
          InitialComponents(attributes, config, rng);
      optimizer.EstimateComponents(kmeans_theta, &cand_components);
      consider(std::move(kmeans_theta), std::move(cand_components));
    }
  }
  for (size_t s = 0; s < seeds; ++s) {
    consider(RandomTheta(network.num_nodes(), config.num_clusters, rng),
             InitialComponents(attributes, config, rng));
  }
}

}  // namespace genclus
