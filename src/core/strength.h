// Link type strength learning (§4.2): maximize the pseudo-log-likelihood
//
//   g2'(gamma) = sum_i [ sum_{e=<v_i,v_j>} f(theta_i, theta_j, e, gamma)
//                        - log Z_i(gamma) ]  -  ||gamma||^2 / (2 sigma^2)
//
// subject to gamma >= 0 (Eq. 14). The conditional of theta_i given its
// out-neighbors is Dirichlet with alpha_ik = sum_e gamma(phi(e)) w(e)
// theta_jk + 1 (Eq. 15), so Z_i = B(alpha_i); the gradient (Eq. 16) and
// Hessian (Eq. 17) involve digamma and trigamma. g2' is concave
// (Appendix B); we run Newton-Raphson with projection onto gamma >= 0,
// with step damping and a projected-gradient fallback for robustness.
//
// Hot path: EvalAll computes objective, gradient and Hessian in ONE fused
// traversal of the per-node sufficient statistics (sharing the alpha,
// log-gamma, digamma and trigamma evaluations that separate passes would
// recompute), blocked over a ThreadPool with a deterministic block-order
// reduction — the result is bitwise identical for any thread count.
#pragma once

#include <vector>

#include "common/thread_pool.h"
#include "core/config.h"
#include "hin/network.h"
#include "linalg/matrix.h"

namespace genclus {

/// Outcome of one strength-learning step.
struct StrengthStats {
  size_t iterations = 0;
  bool converged = false;
  /// g2'(gamma) at the returned iterate.
  double objective = 0.0;
  /// True if any Newton step had to fall back to projected gradient.
  bool used_gradient_fallback = false;
};

/// Learns gamma for fixed Theta. Construct once per strength step (the
/// constructor precomputes per-node sufficient statistics in O(|E| K),
/// sharded over `pool` when given), then call Learn.
class StrengthLearner {
 public:
  /// `pool` may be null for single-threaded execution; results are
  /// identical either way.
  StrengthLearner(const Network* network, const Matrix* theta,
                  const GenClusConfig* config, ThreadPool* pool = nullptr);

  /// One fused evaluation of g2' and its derivatives at `gamma`.
  struct Evaluation {
    double objective = 0.0;
    /// Gradient of g2' (Eq. 16); size |R|.
    std::vector<double> gradient;
    /// Hessian of g2' (Eq. 17); |R| x |R|, symmetric negative definite.
    Matrix hessian;
  };

  /// Computes objective, gradient and Hessian together in one traversal.
  /// Deterministic: bitwise identical for any thread count (block partials
  /// are reduced in fixed block order).
  Evaluation EvalAll(const std::vector<double>& gamma) const;

  /// Maximizes g2' starting from `gamma` (paper: the previous outer
  /// iterate). Returns the new gamma; `stats` may be null. Uses the fused
  /// EvalAll path, so the learned gamma is thread-count-invariant.
  std::vector<double> Learn(const std::vector<double>& gamma,
                            StrengthStats* stats) const;

  // Serial reference implementations: independent single-purpose passes
  // with their own arithmetic (alpha recomputed per call, digamma inside
  // the inner loops, LogMultivariateBeta), NOT built on the fused
  // traversal — the tests comparing them against EvalAll genuinely
  // cross-check it. Learn does not call them.

  /// g2'(gamma): the pseudo-log-likelihood plus the Gaussian prior term.
  double Objective(const std::vector<double>& gamma) const;

  /// Gradient of g2' (Eq. 16); size |R|.
  std::vector<double> Gradient(const std::vector<double>& gamma) const;

  /// Hessian of g2' (Eq. 17); |R| x |R|, symmetric negative definite.
  Matrix Hessian(const std::vector<double>& gamma) const;

 private:
  // alpha_ik = 1 + sum_j gamma(r_j) s_j[k] for stat node `node` (Eq. 15);
  // reference-path helper.
  void ComputeAlpha(size_t node, const std::vector<double>& gamma,
                    std::vector<double>* alpha) const;

  // Sufficient statistics live in flat arenas indexed by "group": one
  // group is (node with out-degree >= 1, relation occurring among its
  // out-links). Node i owns groups [node_group_offsets_[i],
  // node_group_offsets_[i + 1]); group g's s-vector is the K doubles at
  // group_s_[g * K].

  size_t num_stat_nodes() const { return node_group_offsets_.size() - 1; }

  // Accumulates nodes [begin, end)'s contribution to the objective (and,
  // when `derivatives`, gradient + Hessian) of the data term into *out.
  // The prior is NOT applied here. The objective arithmetic is identical
  // whether or not derivatives are requested.
  void AccumulateRange(size_t begin, size_t end,
                       const std::vector<double>& gamma, bool derivatives,
                       Evaluation* out) const;

  // Blocked reduction over all stat nodes (via ParallelForReduce), prior
  // applied. `derivatives` false leaves gradient/hessian empty.
  Evaluation Reduce(const std::vector<double>& gamma,
                    bool derivatives) const;

  // Fused parallel objective-only evaluation (line-search path).
  double FusedObjective(const std::vector<double>& gamma) const;

  const Network* network_;
  const Matrix* theta_;
  const GenClusConfig* config_;
  ThreadPool* pool_;
  size_t num_relations_;
  size_t num_clusters_;

  std::vector<size_t> node_group_offsets_;  // size num_stat_nodes() + 1
  std::vector<LinkTypeId> group_relation_;
  // total weight of the group: sum_{e of relation r} w(e).
  std::vector<double> group_weight_;
  // coefficient of gamma(r) in the feature-function sum:
  // sum_{e of relation r} w(e) * sum_k theta_jk log theta_ik.
  std::vector<double> group_f_coeff_;
  // s-vectors, K doubles per group: sum_{e of relation r} w(e) * theta_target.
  std::vector<double> group_s_;
};

}  // namespace genclus
