// Link type strength learning (§4.2): maximize the pseudo-log-likelihood
//
//   g2'(gamma) = sum_i [ sum_{e=<v_i,v_j>} f(theta_i, theta_j, e, gamma)
//                        - log Z_i(gamma) ]  -  ||gamma||^2 / (2 sigma^2)
//
// subject to gamma >= 0 (Eq. 14). The conditional of theta_i given its
// out-neighbors is Dirichlet with alpha_ik = sum_e gamma(phi(e)) w(e)
// theta_jk + 1 (Eq. 15), so Z_i = B(alpha_i); the gradient (Eq. 16) and
// Hessian (Eq. 17) involve digamma and trigamma. g2' is concave
// (Appendix B); we run Newton-Raphson with projection onto gamma >= 0,
// with step damping and a projected-gradient fallback for robustness.
#pragma once

#include <vector>

#include "core/config.h"
#include "hin/network.h"
#include "linalg/matrix.h"

namespace genclus {

/// Outcome of one strength-learning step.
struct StrengthStats {
  size_t iterations = 0;
  bool converged = false;
  /// g2'(gamma) at the returned iterate.
  double objective = 0.0;
  /// True if any Newton step had to fall back to projected gradient.
  bool used_gradient_fallback = false;
};

/// Learns gamma for fixed Theta. Construct once per strength step (the
/// constructor precomputes per-node sufficient statistics in O(|E| K)),
/// then call Learn.
class StrengthLearner {
 public:
  StrengthLearner(const Network* network, const Matrix* theta,
                  const GenClusConfig* config);

  /// Maximizes g2' starting from `gamma` (paper: the previous outer
  /// iterate). Returns the new gamma; `stats` may be null.
  std::vector<double> Learn(const std::vector<double>& gamma,
                            StrengthStats* stats) const;

  /// g2'(gamma): the pseudo-log-likelihood plus the Gaussian prior term.
  double Objective(const std::vector<double>& gamma) const;

  /// Gradient of g2' (Eq. 16); size |R|.
  std::vector<double> Gradient(const std::vector<double>& gamma) const;

  /// Hessian of g2' (Eq. 17); |R| x |R|, symmetric negative definite.
  Matrix Hessian(const std::vector<double>& gamma) const;

 private:
  // Sufficient statistics of one node's out-link neighborhood, grouped by
  // relation. Only relations that occur among the node's out-links appear.
  struct NodeStats {
    std::vector<LinkTypeId> relations;
    // s[j] is the K-vector sum_{e of relation j} w(e) * theta_target.
    std::vector<std::vector<double>> s;
    // total_weight[j] = sum_{e of relation j} w(e)  (== sum_k s[j][k]).
    std::vector<double> total_weight;
    // f_coeff[j] = sum_{e of relation j} w(e) * sum_k theta_jk log theta_ik:
    // the coefficient of gamma(r_j) in the feature-function sum.
    std::vector<double> f_coeff;
  };

  // alpha_ik = 1 + sum_j gamma(r_j) s[j][k] for one node.
  void ComputeAlpha(const NodeStats& ns, const std::vector<double>& gamma,
                    std::vector<double>* alpha) const;

  const Network* network_;
  const Matrix* theta_;
  const GenClusConfig* config_;
  size_t num_relations_;
  size_t num_clusters_;
  std::vector<NodeStats> node_stats_;  // nodes with out-degree >= 1 only
};

}  // namespace genclus
