#include "core/config.h"

#include <cmath>

#include "common/string_util.h"

namespace genclus {

namespace {

bool FiniteNonNegative(double x) { return std::isfinite(x) && x >= 0.0; }

bool FinitePositive(double x) { return std::isfinite(x) && x > 0.0; }

}  // namespace

Status GenClusConfig::Validate(size_t num_link_types) const {
  if (num_clusters < 2) {
    return Status::InvalidArgument("num_clusters must be >= 2");
  }
  if (outer_iterations < 1) {
    return Status::InvalidArgument("outer_iterations must be >= 1");
  }
  if (em_iterations < 1) {
    return Status::InvalidArgument("em_iterations must be >= 1");
  }
  if (newton_iterations < 1) {
    return Status::InvalidArgument("newton_iterations must be >= 1");
  }
  if (num_init_seeds < 1) {
    return Status::InvalidArgument("num_init_seeds must be >= 1");
  }
  if (!FiniteNonNegative(outer_tolerance)) {
    return Status::InvalidArgument(
        "outer_tolerance must be finite and >= 0");
  }
  if (!FiniteNonNegative(em_tolerance)) {
    return Status::InvalidArgument("em_tolerance must be finite and >= 0");
  }
  if (!FiniteNonNegative(block_convergence_tol)) {
    return Status::InvalidArgument(
        "block_convergence_tol must be finite and >= 0");
  }
  if (block_convergence_tol > 0.0 && block_convergence_tol > em_tolerance) {
    return Status::InvalidArgument(
        "block_convergence_tol must be <= em_tolerance (a skipped block's "
        "frozen delta must sit below the global convergence test)");
  }
  if (block_convergence_sweeps < 1) {
    return Status::InvalidArgument(
        "block_convergence_sweeps must be >= 1");
  }
  if (!FiniteNonNegative(newton_tolerance)) {
    return Status::InvalidArgument(
        "newton_tolerance must be finite and >= 0");
  }
  if (!FinitePositive(gamma_prior_sigma)) {
    return Status::InvalidArgument("gamma_prior_sigma must be > 0");
  }
  if (!FinitePositive(theta_floor) || theta_floor >= 1.0 / num_clusters) {
    return Status::InvalidArgument(
        "theta_floor must be in (0, 1/num_clusters)");
  }
  if (!FiniteNonNegative(beta_smoothing)) {
    return Status::InvalidArgument(
        "beta_smoothing must be finite and >= 0");
  }
  if (!FinitePositive(variance_floor)) {
    return Status::InvalidArgument("variance_floor must be > 0");
  }
  if (!initial_gamma.empty()) {
    if (initial_gamma.size() != num_link_types) {
      return Status::InvalidArgument(StrFormat(
          "initial_gamma has %zu entries, schema declares %zu link types",
          initial_gamma.size(), num_link_types));
    }
    for (double g : initial_gamma) {
      if (!FiniteNonNegative(g)) {
        return Status::InvalidArgument(
            "initial_gamma entries must be finite and >= 0");
      }
    }
  }
  return Status::OK();
}

}  // namespace genclus
