// Objective evaluation: the attribute log-likelihood of §3.2, the
// simplified cluster-optimization objective g1 (Eq. 9), and the full
// regularized objective g (Eq. 8) up to the gamma partition function
// (which is constant during cluster optimization and handled via the
// pseudo-likelihood in the strength learner).
#pragma once

#include <vector>

#include "core/components.h"
#include "hin/attributes.h"
#include "hin/network.h"
#include "linalg/matrix.h"

namespace genclus {

/// log p({v[X]} | Theta, beta) for one attribute: the mixture-model
/// log-likelihood of every observation (Eqs. 3 and 4).
double AttributeLogLikelihood(const Attribute& attribute,
                              const AttributeComponents& components,
                              const Matrix& theta);

/// Sum of AttributeLogLikelihood over the specified attributes (Eq. 5
/// assumes independence across attributes).
double TotalAttributeLogLikelihood(
    const std::vector<const Attribute*>& attributes,
    const std::vector<AttributeComponents>& components, const Matrix& theta);

/// g1(Theta, beta) = structural score + attribute log-likelihood (Eq. 9).
double G1Objective(const Network& network,
                   const std::vector<const Attribute*>& attributes,
                   const std::vector<AttributeComponents>& components,
                   const Matrix& theta, const std::vector<double>& gamma);

}  // namespace genclus
