// Train/serve split around the GenClus algorithm.
//
// Training: Engine::Fit(dataset, options) runs Algorithm 1 once and
// returns a persistable Model plus a structured FitReport — convergence,
// objective, timings and the per-iteration trace. Progress streaming and
// cooperative cancellation go through FitOptions (ProgressObserver /
// CancellationToken), replacing the old SetIterationCallback.
//
// Serving: Engine::Create(network, model) builds a reusable serving object
// that owns a ThreadPool and answers membership queries for new objects
// via the Eq. 10/11 fold-in update, batch-planned (core/inference.h):
//
//   InferPlan plan = engine.Plan(queries);     // validate + assemble CSR
//   InferenceResult result = engine.Execute(plan);
//
// Plan validates every query up front (per-query Status — one bad query
// never poisons the rest) and assembles the valid queries' links into one
// query x node CSR. Execute routes the whole batch's link term through
// the SpMM kernel and runs the attribute sweeps over fixed-grain query
// blocks on the engine's pool; results are bitwise identical to the
// per-query InferMembership reference and to any thread count. Concurrent
// Execute calls run in parallel, each on its own pooled InferSession
// (own ServeWorkspace) — there is no global execution mutex. Callers that
// want per-query submission with bounded-queue backpressure run the
// micro-batching serving tier (core/server.h) directly.
// Infer/InferBatch remain as thin wrappers over a one-query / one-shot
// plan.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/genclus.h"
#include "core/inference.h"
#include "core/model.h"
#include "hin/dataset.h"

namespace genclus {

/// Training-surface options: which attributes to cluster by, the algorithm
/// configuration, and optional progress/cancellation hooks (not owned;
/// must outlive the Fit call).
struct FitOptions {
  /// Attribute names resolved against the dataset (the user-specified
  /// subset X; may be empty for pure link-based clustering).
  std::vector<std::string> attributes;
  GenClusConfig config;
  /// Notified after every outer iteration; null = no observation.
  ProgressObserver* observer = nullptr;
  /// Polled between outer iterations; null = not cancellable.
  const CancellationToken* cancellation = nullptr;
};

/// Structured summary of one training run.
struct FitReport {
  /// True if the outer loop hit the gamma-change tolerance.
  bool converged = false;
  /// g1 objective at the final iterate.
  double objective = 0.0;
  /// Outer iterations actually executed.
  size_t outer_iterations = 0;
  /// Wall-clock seconds for the whole fit, including initialization.
  double total_seconds = 0.0;
  /// Wall-clock seconds spent in the EM cluster-optimization steps
  /// (E-step phase), summed over outer iterations.
  double em_seconds = 0.0;
  /// Wall-clock seconds spent learning relation strengths (γ-step phase),
  /// summed over outer iterations.
  double strength_seconds = 0.0;
  /// Per-outer-iteration records, including the initial gamma at index 0.
  std::vector<OuterIterationRecord> trace;
  /// Block sweeps skipped by convergence-aware EM skipping, summed over
  /// every EM phase (0 unless config.block_convergence_tol > 0; the
  /// per-iteration split is in the trace).
  size_t em_blocks_skipped = 0;
  /// Per-block max |Theta| change at the last EM sweep of the final outer
  /// iteration (frozen values for blocks skipped there).
  std::vector<double> em_final_block_deltas;
};

/// Result of Engine::Fit: the trained artifact plus the run summary.
struct FitResult {
  Model model;
  FitReport report;
};

/// Serving-side knobs. Defaults come from ServeDefaults
/// (core/inference.h) — the single source the reference path uses too.
struct EngineOptions {
  /// Worker threads for batch execution. 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Fixed-point sweeps per query (see InferMembership).
  size_t inference_iterations = ServeDefaults::kInferenceIterations;
  /// Floor applied to inferred membership probabilities.
  double theta_floor = ServeDefaults::kThetaFloor;
  /// Θ column-shard count for the batch link term. 0 (default) adopts the
  /// model's stamped `theta_shards`; any other value overrides it
  /// (clamped like ShardPartition::Resolve). Served memberships are
  /// bitwise identical for every choice.
  size_t theta_shards = 0;
};

struct RefitOptions;  // core/update.h

/// Reusable serving object: a Network + trained Model + thread pool +
/// batch planner/session. The network must outlive the engine; the model
/// is owned.
class Engine {
 public:
  /// Trains a model on `dataset`. Validates the dataset, the attribute
  /// names and the config up front; fails with kCancelled if
  /// options.cancellation fires mid-run.
  static Result<FitResult> Fit(const Dataset& dataset,
                               const FitOptions& options);

  /// Retrains on a grown dataset warm-starting from `prev_model`:
  /// surviving nodes keep their Theta rows, new nodes are seeded by the
  /// fold-in path, and components/gamma carry over — so a refresh costs
  /// iterations-to-delta instead of iterations-from-scratch. Defined in
  /// core/update.cc; see RefitOptions there.
  static Result<FitResult> Refit(const Dataset& dataset,
                                 const Model& prev_model,
                                 const RefitOptions& options);

  /// Builds a serving engine after checking that `model` is internally
  /// consistent and matches `network` (node count, link-type names).
  static Result<Engine> Create(const Network* network, Model model,
                               EngineOptions options = {});

  // Out-of-line (ServeState is incomplete here).
  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const Model& model() const { return *model_; }
  size_t num_threads() const { return pool_->num_threads(); }

  /// Validates a batch and assembles its executable plan. Per-query
  /// failures land in InferPlan::statuses; valid queries form the batch
  /// CSR. Pure function of the queries — never blocks on the pool.
  InferPlan Plan(std::span<const NewObjectQuery> queries) const;

  /// Executes a plan this engine produced: one SpMM pass for the batch
  /// link term plus blocked attribute sweeps over the pool. Concurrent
  /// calls execute in parallel, each on its own pooled InferSession;
  /// results are bitwise identical to per-query InferMembership for any
  /// thread count.
  InferenceResult Execute(const InferPlan& plan) const;

  /// Answers one fold-in query — a thin wrapper over a one-query plan.
  Result<std::vector<double>> Infer(const NewObjectQuery& query) const;

  /// Answers a batch of queries — a thin wrapper over a one-shot plan.
  /// Slot i holds query i's membership vector or its own error status.
  std::vector<Result<std::vector<double>>> InferBatch(
      std::span<const NewObjectQuery> queries) const;

 private:
  struct ServeState;

  Engine(const Network* network, std::unique_ptr<Model> model,
         EngineOptions options);

  // Shared by Fit and Refit (core/update.cc): resolves the attribute-name
  // subset against the dataset and records the model-side attribute info.
  static Status ResolveAttributes(const Dataset& dataset,
                                  const std::vector<std::string>& names,
                                  std::vector<const Attribute*>* attrs,
                                  std::vector<ModelAttributeInfo>* info);

  // Shared by Fit and Refit: packages a finished GenClus run into the
  // Model + FitReport pair, stamping the resolved shard count and the
  // schema's link-type names.
  static FitResult AssembleFitResult(const Schema& schema, GenClusResult run,
                                     std::vector<ModelAttributeInfo> info,
                                     size_t theta_shards_request,
                                     double total_seconds);

  const Network* network_;
  // Heap-held so the planner/session pointers into the model survive
  // Engine moves.
  std::unique_ptr<Model> model_;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  // Planner plus the recycled InferSession pool (one session per
  // concurrent Execute caller); defined in engine.cc. Declared last so it
  // is destroyed while model_ and pool_ are still alive.
  std::unique_ptr<ServeState> serve_;
};

}  // namespace genclus
