// Train/serve split around the GenClus algorithm.
//
// Training: Engine::Fit(dataset, options) runs Algorithm 1 once and
// returns a persistable Model plus a structured FitReport — convergence,
// objective, timings and the per-iteration trace. Progress streaming and
// cooperative cancellation go through FitOptions (ProgressObserver /
// CancellationToken), replacing the old SetIterationCallback.
//
// Serving: Engine::Create(network, model) builds a reusable serving object
// that owns a ThreadPool and answers membership queries for new objects
// via the Eq. 10/11 fold-in update (core/inference.h). InferBatch fans a
// batch out across the pool; results are deterministic regardless of
// thread count, and each query fails or succeeds on its own.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/genclus.h"
#include "core/inference.h"
#include "core/model.h"
#include "hin/dataset.h"

namespace genclus {

/// Training-surface options: which attributes to cluster by, the algorithm
/// configuration, and optional progress/cancellation hooks (not owned;
/// must outlive the Fit call).
struct FitOptions {
  /// Attribute names resolved against the dataset (the user-specified
  /// subset X; may be empty for pure link-based clustering).
  std::vector<std::string> attributes;
  GenClusConfig config;
  /// Notified after every outer iteration; null = no observation.
  ProgressObserver* observer = nullptr;
  /// Polled between outer iterations; null = not cancellable.
  const CancellationToken* cancellation = nullptr;
};

/// Structured summary of one training run.
struct FitReport {
  /// True if the outer loop hit the gamma-change tolerance.
  bool converged = false;
  /// g1 objective at the final iterate.
  double objective = 0.0;
  /// Outer iterations actually executed.
  size_t outer_iterations = 0;
  /// Wall-clock seconds for the whole fit, including initialization.
  double total_seconds = 0.0;
  /// Wall-clock seconds spent in the EM cluster-optimization steps
  /// (E-step phase), summed over outer iterations.
  double em_seconds = 0.0;
  /// Wall-clock seconds spent learning relation strengths (γ-step phase),
  /// summed over outer iterations.
  double strength_seconds = 0.0;
  /// Per-outer-iteration records, including the initial gamma at index 0.
  std::vector<OuterIterationRecord> trace;
};

/// Result of Engine::Fit: the trained artifact plus the run summary.
struct FitResult {
  Model model;
  FitReport report;
};

/// A new object's evidence for one fold-in membership query: its would-be
/// out-links into the serving network and its own attribute observations.
struct NewObjectQuery {
  std::vector<NewObjectLink> links;
  std::vector<NewObjectObservation> observations;
};

/// Serving-side knobs.
struct EngineOptions {
  /// Worker threads for InferBatch. 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Fixed-point sweeps per query (see InferMembership).
  size_t inference_iterations = 10;
  /// Floor applied to inferred membership probabilities.
  double theta_floor = kDefaultInferenceThetaFloor;
};

/// Reusable serving object: a Network + trained Model + thread pool.
/// The network must outlive the engine; the model is owned.
class Engine {
 public:
  /// Trains a model on `dataset`. Validates the dataset, the attribute
  /// names and the config up front; fails with kCancelled if
  /// options.cancellation fires mid-run.
  static Result<FitResult> Fit(const Dataset& dataset,
                               const FitOptions& options);

  /// Builds a serving engine after checking that `model` is internally
  /// consistent and matches `network` (node count, link-type names).
  static Result<Engine> Create(const Network* network, Model model,
                               EngineOptions options = {});

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const Model& model() const { return model_; }
  size_t num_threads() const { return pool_->num_threads(); }

  /// Answers one fold-in query.
  Result<std::vector<double>> Infer(const NewObjectQuery& query) const;

  /// Answers a batch of queries in parallel over the engine's pool.
  /// Slot i holds query i's membership vector or its own error status;
  /// one bad query never poisons the rest, and results are identical for
  /// any thread count.
  std::vector<Result<std::vector<double>>> InferBatch(
      std::span<const NewObjectQuery> queries) const;

 private:
  Engine(const Network* network, Model model, EngineOptions options);

  const Network* network_;
  Model model_;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace genclus
