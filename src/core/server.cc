#include "core/server.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/mutex.h"
#include "common/string_util.h"

namespace genclus {

namespace {

// Latency rings keep the most recent samples only: percentiles reflect
// current behavior, memory stays bounded under sustained traffic.
constexpr size_t kMaxLatencySamples = 8192;

// Smoothing of the admission-prediction EWMAs (queue wait, batch exec).
// One sample per micro-batch: 0.25 converges in a handful of batches yet
// rides out single-batch outliers.
constexpr double kEwmaAlpha = 0.25;

// Scheduling slack added to the predicted execution time when a deadline
// caps its micro-batch's linger: the batch must start early enough that
// dequeue-to-execute overhead does not eat the remaining budget.
constexpr int64_t kLingerSlackUs = 1000;

// Nearest-rank percentile, reordering `samples` in place. Successive
// calls on the same scratch buffer are fine: nth_element needs no
// pre-existing order.
double Percentile(std::vector<double>& samples, double q) {
  const size_t rank = std::min(
      samples.size() - 1,
      static_cast<size_t>(q * static_cast<double>(samples.size())));
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

// Takes its scratch copy by value; Stats() passes ring snapshots taken
// under stats_mutex_, so the nth_element work here runs unlocked.
LatencySummary Summarize(std::vector<double> samples) {
  LatencySummary out;
  out.count = samples.size();
  if (samples.empty()) return out;
  out.max_us = *std::max_element(samples.begin(), samples.end());
  out.p50_us = Percentile(samples, 0.50);
  out.p90_us = Percentile(samples, 0.90);
  out.p99_us = Percentile(samples, 0.99);
  return out;
}

double SecondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// Folds one sample into a bit-cast-published EWMA and returns the new
// value. Callers serialize the read-modify-write (the workers run it
// under stats_mutex_); the atomic is only the lock-free publication
// channel for Submit-side readers. Zero bits = no samples yet, so the
// first sample seeds the average instead of decaying from 0.
double FoldEwma(std::atomic<uint64_t>* bits, double sample_us) {
  const double prev =
      std::bit_cast<double>(bits->load(std::memory_order_relaxed));
  const double next =
      prev == 0.0 ? sample_us : prev + kEwmaAlpha * (sample_us - prev);
  bits->store(std::bit_cast<uint64_t>(next), std::memory_order_relaxed);
  return next;
}

}  // namespace

Status ServerOptions::Validate() const {
  if (queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (max_batch < 1) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  if (inference_iterations < 1) {
    return Status::InvalidArgument("inference_iterations must be >= 1");
  }
  if (!(theta_floor > 0.0)) {
    return Status::InvalidArgument("theta_floor must be > 0");
  }
  if (min_inference_iterations < 1 ||
      min_inference_iterations > inference_iterations) {
    return Status::InvalidArgument(
        "min_inference_iterations must be in [1, inference_iterations]");
  }
  if (default_timeout_us < 0) {
    return Status::InvalidArgument("default_timeout_us must be >= 0");
  }
  if (degrade_queue_wait_us < 0 || recover_queue_wait_us < 0) {
    return Status::InvalidArgument(
        "degradation thresholds must be >= 0");
  }
  if (degrade_queue_wait_us > 0 && recover_queue_wait_us > 0 &&
      recover_queue_wait_us >= degrade_queue_wait_us) {
    return Status::InvalidArgument(
        "recover_queue_wait_us must be below degrade_queue_wait_us "
        "(the hysteresis gap)");
  }
  return Status::OK();
}

// One published model snapshot (see server.h). `planner` is built against
// `model` once at publication; Plan() is const, so every worker on this
// version shares it without synchronization.
struct Server::VersionedModel {
  std::shared_ptr<const Model> model;
  BatchPlanner planner;
  uint64_t version;
  uint64_t fingerprint;

  VersionedModel(const Network* network, std::shared_ptr<const Model> m,
                 size_t theta_shards, uint64_t v)
      : model(std::move(m)),
        planner(network, model.get(), theta_shards),
        version(v),
        fingerprint(model->Fingerprint()) {}
};

// Whole-batch reassembly state. The result is preallocated at submit time
// (zero membership rows, kNoHardLabel) and each completion fills its slot;
// `remaining` counts down under `mutex` and the thread that takes it to
// zero moves the result out (still under the lock) and fulfills the
// promise after releasing it. Rejected slots count down too, so the batch
// future always completes. The promise itself needs no guard: get_future
// runs once before the collector is shared, and set_value runs once, on
// the single thread that observed remaining hit zero.
struct Server::BatchCollector {
  Mutex mutex;
  size_t remaining GENCLUS_GUARDED_BY(mutex) = 0;
  InferenceResult result GENCLUS_GUARDED_BY(mutex);
  std::promise<InferenceResult> promise;
};

void Server::SampleRing::Add(double us) {
  if (samples.size() < kMaxLatencySamples) {
    samples.push_back(us);
    return;
  }
  samples[next] = us;
  next = (next + 1) % kMaxLatencySamples;
}

Result<std::unique_ptr<Server>> Server::Create(const Network* network,
                                               Model model,
                                               ServerOptions options) {
  return Create(network, std::make_shared<const Model>(std::move(model)),
                options);
}

Result<std::unique_ptr<Server>> Server::Create(const Network* network,
                                               const Model* model,
                                               ServerOptions options) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  // Non-owning shared_ptr: the caller keeps ownership (and the outlives
  // contract); the server's snapshot machinery is oblivious either way.
  return Create(network,
                std::shared_ptr<const Model>(model, [](const Model*) {}),
                options);
}

Result<std::unique_ptr<Server>> Server::Create(
    const Network* network, std::shared_ptr<const Model> model,
    ServerOptions options) {
  if (network == nullptr) {
    return Status::InvalidArgument("network must not be null");
  }
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  GENCLUS_RETURN_IF_ERROR(options.Validate());
  GENCLUS_RETURN_IF_ERROR(model->ValidateAgainst(*network));
  auto first = std::make_shared<const VersionedModel>(
      network, std::move(model), options.theta_shards, /*v=*/1);
  return std::unique_ptr<Server>(new Server(network, std::move(first),
                                            options));
}

Server::Server(const Network* network,
               std::shared_ptr<const VersionedModel> first,
               ServerOptions options)
    : options_(options),
      network_(network),
      num_clusters_(first->model->num_clusters()),
      queue_(options.queue_capacity),
      current_model_(std::move(first)),
      current_iterations_(options.inference_iterations),
      batch_size_histogram_(options.max_batch + 1, 0) {
  size_t num_workers = options_.num_workers;
  if (num_workers == 0) {
    num_workers = std::max<unsigned>(1, std::thread::hardware_concurrency());
  }
  options_.num_workers = num_workers;
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Server::~Server() { Stop(); }

void Server::Stop() {
  MutexLock lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;
  if (!options_.drain_on_stop) cancel_pending_.store(true);
  // Close first: admissions stop, workers drain what is left (executing
  // or cancelling it), then their PopBatch returns 0 and they exit.
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::shared_ptr<const Server::VersionedModel> Server::CurrentModel() const {
  MutexLock lock(model_mutex_);
  return current_model_;
}

Status Server::SwapModel(std::shared_ptr<const Model> model) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  // ValidateForServing, not ValidateAgainst: a refreshed model trained on
  // a grown dataset legitimately covers more nodes than the serving
  // network. K is pinned because SubmitBatch preallocates K-wide result
  // rows at admission, before knowing which model will answer.
  GENCLUS_RETURN_IF_ERROR(model->ValidateForServing(*network_));
  if (model->num_clusters() != num_clusters_) {
    return Status::InvalidArgument(StrFormat(
        "swapped model has %zu clusters, server was created with %zu",
        model->num_clusters(), num_clusters_));
  }
  // Build the snapshot (planner + fingerprint — the expensive part)
  // outside the lock; only version assignment and publication are
  // serialized.
  auto replacement = std::make_shared<VersionedModel>(
      network_, std::move(model), options_.theta_shards, /*v=*/0);
  {
    MutexLock lock(model_mutex_);
    replacement->version = current_model_->version + 1;
    current_model_ = std::move(replacement);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Server::SwapModel(Model model) {
  return SwapModel(std::make_shared<const Model>(std::move(model)));
}

std::shared_ptr<const Model> Server::model() const {
  return CurrentModel()->model;
}

uint64_t Server::model_version() const { return CurrentModel()->version; }

Deadline Server::EffectiveDeadline(Deadline deadline) const {
  if (!deadline.is_infinite()) return deadline;
  if (options_.default_timeout_us > 0) {
    return Deadline::AfterMicros(options_.default_timeout_us);
  }
  return Deadline::Infinite();
}

double Server::PredictedQueueWaitMicros() const {
  return std::bit_cast<double>(
      queue_wait_ewma_bits_.load(std::memory_order_relaxed));
}

double Server::PredictedExecMicros() const {
  return std::bit_cast<double>(
      exec_ewma_bits_.load(std::memory_order_relaxed));
}

Status Server::CheckDeadlineAdmissible(
    const Deadline& deadline,
    std::chrono::steady_clock::time_point now) const {
  if (deadline.is_infinite()) return Status::OK();
  if (deadline.Expired(now)) {
    return Status::DeadlineExceeded("deadline already expired at submit");
  }
  if (!options_.cost_based_rejection) return Status::OK();
  // Predicted service time = expected queue wait + expected batch
  // execution; a request whose remaining budget is smaller than that is
  // near-certain to be shed at dequeue anyway, so reject it before it
  // occupies a queue slot and delays requests that CAN meet theirs.
  const double predicted_us =
      PredictedQueueWaitMicros() + PredictedExecMicros();
  const int64_t remaining_us = deadline.RemainingMicros(now);
  if (predicted_us > static_cast<double>(remaining_us)) {
    return Status::DeadlineExceeded(
        StrFormat("predicted service time %.0fus exceeds remaining "
                  "deadline budget %lldus",
                  predicted_us, static_cast<long long>(remaining_us)));
  }
  return Status::OK();
}

void Server::UpdateDegradation(double queue_wait_ewma_us) {
  if (options_.degrade_queue_wait_us <= 0) return;
  const double enter = static_cast<double>(options_.degrade_queue_wait_us);
  const double exit = options_.recover_queue_wait_us > 0
                          ? static_cast<double>(options_.recover_queue_wait_us)
                          : enter / 4.0;
  size_t current = current_iterations_.load(std::memory_order_relaxed);
  if (queue_wait_ewma_us >= enter &&
      current > options_.min_inference_iterations) {
    // CAS, not a store: concurrent workers observing the same overload
    // step the sweep count by at most one per observation.
    current_iterations_.compare_exchange_strong(current, current - 1,
                                                std::memory_order_relaxed);
  } else if (queue_wait_ewma_us <= exit &&
             current < options_.inference_iterations) {
    current_iterations_.compare_exchange_strong(current, current + 1,
                                                std::memory_order_relaxed);
  }
}

bool Server::Enqueue(Request request, Status* rejection) {
  if (queue_.TryPush(std::move(request))) {
    accepted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  rejected_.fetch_add(1, std::memory_order_relaxed);
  *rejection = queue_.closed()
                   ? Status::FailedPrecondition("server is stopped")
                   : Status::ResourceExhausted(StrFormat(
                         "request queue full (capacity %zu)",
                         queue_.capacity()));
  return false;
}

Result<std::future<QueryResult>> Server::Submit(NewObjectQuery query) {
  return Submit(std::move(query), Deadline::Infinite());
}

Result<std::future<QueryResult>> Server::Submit(NewObjectQuery query,
                                                Deadline deadline) {
  Request request;
  request.query = std::move(query);
  request.deadline = EffectiveDeadline(deadline);
  request.enqueued_at = std::chrono::steady_clock::now();
  Status admission =
      CheckDeadlineAdmissible(request.deadline, request.enqueued_at);
  if (!admission.ok()) {
    deadline_rejected_.fetch_add(1, std::memory_order_relaxed);
    return admission;
  }
  std::future<QueryResult> future = request.promise.get_future();
  Status rejection;
  if (!Enqueue(std::move(request), &rejection)) return rejection;
  return future;
}

std::future<InferenceResult> Server::SubmitBatch(
    std::vector<NewObjectQuery> queries) {
  return SubmitBatch(std::move(queries), Deadline::Infinite());
}

std::future<InferenceResult> Server::SubmitBatch(
    std::vector<NewObjectQuery> queries, Deadline deadline) {
  auto collector = std::make_shared<BatchCollector>();
  const size_t n = queries.size();
  const size_t num_clusters = num_clusters_;
  InferenceResult empty_result;
  {
    // The collector is not shared yet, but its state is guarded — take
    // the (uncontended) lock so the annotations hold unconditionally.
    MutexLock lock(collector->mutex);
    collector->remaining = n;
    collector->result.statuses.assign(n, Status::OK());
    collector->result.memberships = Matrix(n, num_clusters);
    collector->result.hard_labels.assign(n, kNoHardLabel);
    collector->result.model_versions.assign(n, 0);
    collector->result.report.batch_size = n;
    if (n == 0) empty_result = std::move(collector->result);
  }
  std::future<InferenceResult> future = collector->promise.get_future();
  if (n == 0) {
    collector->promise.set_value(std::move(empty_result));
    return future;
  }
  const Deadline effective = EffectiveDeadline(deadline);
  const auto now = std::chrono::steady_clock::now();
  // One admission verdict for the whole batch: every query carries the
  // same deadline, and the prediction would not move between iterations.
  const Status admission = CheckDeadlineAdmissible(effective, now);
  for (size_t i = 0; i < n; ++i) {
    if (!admission.ok()) {
      deadline_rejected_.fetch_add(1, std::memory_order_relaxed);
      CompleteCollectorSlot(*collector, i, admission,
                            /*membership=*/nullptr, num_clusters,
                            kNoHardLabel, /*degraded=*/false,
                            /*model_version=*/0, 0, 0, 0.0, 0.0);
      continue;
    }
    Request request;
    request.query = std::move(queries[i]);
    request.collector = collector;
    request.slot = i;
    request.num_links = request.query.links.size();
    request.num_observations = request.query.observations.size();
    request.deadline = effective;
    request.enqueued_at = now;
    Status rejection;
    if (!Enqueue(std::move(request), &rejection)) {
      // The request (and its collector reference) was dropped by the
      // queue; complete the slot right here so the batch future still
      // resolves.
      CompleteCollectorSlot(*collector, i, std::move(rejection),
                            /*membership=*/nullptr, num_clusters,
                            kNoHardLabel, /*degraded=*/false,
                            /*model_version=*/0, 0, 0, 0.0, 0.0);
    }
  }
  return future;
}

void Server::CompleteCollectorSlot(BatchCollector& collector, size_t slot,
                                   Status status, const double* membership,
                                   size_t num_clusters, uint32_t hard_label,
                                   bool degraded, uint64_t model_version,
                                   size_t num_links, size_t num_observations,
                                   double plan_share_seconds,
                                   double exec_share_seconds) {
  bool last = false;
  InferenceResult finished;
  {
    MutexLock lock(collector.mutex);
    const bool ok = status.ok();
    collector.result.statuses[slot] = std::move(status);
    if (membership != nullptr) {
      std::memcpy(collector.result.memberships.Row(slot), membership,
                  num_clusters * sizeof(double));
    }
    collector.result.hard_labels[slot] = hard_label;
    collector.result.model_versions[slot] = model_version;
    if (ok) {
      collector.result.report.valid_queries += 1;
      collector.result.report.total_links += num_links;
      collector.result.report.total_observations += num_observations;
      if (degraded) collector.result.report.degraded_queries += 1;
    }
    collector.result.report.plan_seconds += plan_share_seconds;
    collector.result.report.exec_seconds += exec_share_seconds;
    last = (--collector.remaining == 0);
    // Move the result out while still holding the guard; the promise is
    // fulfilled after release so no waiter ever wakes into our lock.
    if (last) finished = std::move(collector.result);
  }
  if (last) collector.promise.set_value(std::move(finished));
}

void Server::Deliver(Request& request, const InferenceResult& result,
                     size_t row, bool degraded, uint64_t model_version,
                     double plan_share_seconds, double exec_share_seconds,
                     std::chrono::steady_clock::time_point dequeued_at,
                     std::chrono::steady_clock::time_point now) {
  // Counted BEFORE the promise is fulfilled: a caller that just resolved
  // its future must see stats that already include that query.
  completed_.fetch_add(1, std::memory_order_relaxed);
  const Status& status = result.statuses[row];
  const bool mark_degraded = degraded && status.ok();
  if (mark_degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
  const size_t num_clusters = result.memberships.cols();
  if (request.collector != nullptr) {
    CompleteCollectorSlot(
        *request.collector, request.slot, status,
        status.ok() ? result.memberships.Row(row) : nullptr, num_clusters,
        result.hard_labels[row], mark_degraded, model_version,
        request.num_links, request.num_observations, plan_share_seconds,
        exec_share_seconds);
  } else {
    QueryResult answer;
    answer.status = status;
    if (status.ok()) {
      answer.membership.assign(result.memberships.Row(row),
                               result.memberships.Row(row) + num_clusters);
    }
    answer.hard_label = result.hard_labels[row];
    answer.degraded = mark_degraded;
    answer.queue_seconds = SecondsBetween(request.enqueued_at, dequeued_at);
    answer.total_seconds = SecondsBetween(request.enqueued_at, now);
    answer.model_version = model_version;
    request.promise.set_value(std::move(answer));
  }
}

void Server::Shed(Request& request,
                  std::chrono::steady_clock::time_point dequeued_at) {
  deadline_shed_.fetch_add(1, std::memory_order_relaxed);  // before fulfillment
  Status status =
      Status::DeadlineExceeded("deadline expired before execution");
  if (request.collector != nullptr) {
    CompleteCollectorSlot(*request.collector, request.slot,
                          std::move(status), /*membership=*/nullptr,
                          num_clusters_, kNoHardLabel,
                          /*degraded=*/false, /*model_version=*/0, 0, 0,
                          0.0, 0.0);
  } else {
    QueryResult answer;
    answer.status = std::move(status);
    answer.queue_seconds = SecondsBetween(request.enqueued_at, dequeued_at);
    answer.total_seconds = answer.queue_seconds;
    request.promise.set_value(std::move(answer));
  }
}

void Server::Fail(Request& request, Status status,
                  std::atomic<size_t>* counter) {
  counter->fetch_add(1, std::memory_order_relaxed);  // before fulfillment
  if (request.collector != nullptr) {
    CompleteCollectorSlot(*request.collector, request.slot,
                          std::move(status), /*membership=*/nullptr,
                          num_clusters_, kNoHardLabel,
                          /*degraded=*/false, /*model_version=*/0, 0, 0,
                          0.0, 0.0);
  } else {
    QueryResult answer;
    answer.status = std::move(status);
    request.promise.set_value(std::move(answer));
  }
}

// The admission loop body each worker runs: coalesce queued queries into
// one micro-batch (linger capped by the tightest member deadline), shed
// members whose deadline already passed, plan + execute the rest on this
// worker's own session (own ServeWorkspace — workers never share mutable
// execution state, so micro-batches run concurrently), deliver per-query
// answers, record stats and feed the admission/degradation controllers.
// The session runs its batch serially: with num_workers sessions in
// flight the tier already saturates the cores batch-wise, and serial
// execution keeps per-batch latency deterministic. An execution exception
// fails only that batch (kInternal) — the worker keeps serving.
//
// Model swaps are observed per batch: the worker pins the current
// VersionedModel snapshot before planning, so a SwapModel racing this
// batch takes effect at the NEXT dequeue — never mid-batch. The
// InferSession (whose ServeWorkspace caches model-side tables) is rebuilt
// lazily on the first batch after the pinned snapshot changes; a rebuild
// failure fails only that batch with kInternal and keeps the previous
// session, so the worker still serves the old model until a rebuild
// succeeds.
void Server::WorkerLoop() {
  // Built lazily against `pinned` (the snapshot the session's workspace
  // caches tables for); nullopt until the first non-empty batch.
  std::shared_ptr<const VersionedModel> pinned;
  std::optional<InferSession> session;
  std::vector<Request> batch;
  std::vector<Request> live;
  std::vector<NewObjectQuery> queries;
  std::vector<double> queue_waits_us;
  const std::chrono::microseconds linger(options_.max_wait_us);
  // A tight-deadline member caps its batch's linger: coalescing must end
  // early enough that the predicted execution (plus scheduling slack)
  // still fits that member's remaining budget.
  const auto linger_cap = [this](const Request& request) {
    if (request.deadline.is_infinite()) {
      return std::chrono::steady_clock::time_point::max();
    }
    const auto margin = std::chrono::microseconds(
        static_cast<int64_t>(PredictedExecMicros()) + kLingerSlackUs);
    return request.deadline.when() - margin;
  };
  while (queue_.PopBatch(&batch, options_.max_batch, linger, linger_cap) >
         0) {
    // Delay-only site: tests wedge a worker here to force queue-wait
    // buildup (cost-based rejection, degradation entry).
    GENCLUS_FAILPOINT("server.worker_batch");
    const auto dequeued_at = std::chrono::steady_clock::now();
    if (cancel_pending_.load(std::memory_order_relaxed)) {
      for (Request& request : batch) {
        Fail(request, Status::Cancelled("server stopped before execution"),
             &cancelled_);
      }
      continue;
    }
    // Shed pass: drop members that cannot meet their deadline anymore —
    // expired outright, or expiring within the predicted execution time
    // (an answer delivered after its deadline helps nobody and delays
    // every request queued behind it).
    const auto exec_budget = std::chrono::microseconds(
        static_cast<int64_t>(PredictedExecMicros()));
    live.clear();
    queue_waits_us.clear();
    double max_queue_wait_us = 0.0;
    for (Request& request : batch) {
      const double wait_us =
          SecondsBetween(request.enqueued_at, dequeued_at) * 1e6;
      queue_waits_us.push_back(wait_us);
      max_queue_wait_us = std::max(max_queue_wait_us, wait_us);
      if (request.deadline.Expired(dequeued_at + exec_budget)) {
        Shed(request, dequeued_at);
      } else {
        live.push_back(std::move(request));
      }
    }
    const size_t iterations =
        current_iterations_.load(std::memory_order_relaxed);
    const bool degraded = iterations < options_.inference_iterations;
    InferPlan plan;
    InferenceResult result;
    Status exec_error;
    uint64_t batch_model_version = 0;
    if (!live.empty()) {
      // Pin the model snapshot this whole batch runs on; a concurrent
      // SwapModel affects only later dequeues. Rebuild the session when
      // the snapshot changed since the last batch (or never existed).
      std::shared_ptr<const VersionedModel> current = CurrentModel();
      if (pinned != current) {
        try {
          // Error-injection site: proves a worker exception during the
          // post-swap session rebuild fails only that batch (kInternal)
          // while the worker keeps its old session and keeps serving.
          GENCLUS_FAILPOINT("server.swap_model",
                            throw std::runtime_error(
                                "injected server.swap_model rebuild "
                                "failure"));
          session.emplace(current->model.get(), /*pool=*/nullptr,
                          options_.inference_iterations,
                          options_.theta_floor);
          pinned = std::move(current);
        } catch (const std::exception& e) {
          exec_error = Status::Internal(StrFormat(
              "session rebuild after model swap failed: %s", e.what()));
        } catch (...) {
          exec_error =
              Status::Internal("session rebuild after model swap failed");
        }
      }
      if (exec_error.ok()) {
        batch_model_version = pinned->version;
        session->set_iterations(iterations);
        queries.clear();
        queries.reserve(live.size());
        for (Request& request : live) {
          queries.push_back(std::move(request.query));
        }
        plan = pinned->planner.Plan(queries);
        try {
          // Error-injection site: proves a throwing Execute fails its
          // batch with kInternal while the worker keeps serving.
          GENCLUS_FAILPOINT("server.execute",
                            throw std::runtime_error(
                                "injected server.execute failure"));
          result = session->Execute(plan);
        } catch (const std::exception& e) {
          exec_error =
              Status::Internal(StrFormat("batch execution failed: %s",
                                         e.what()));
        } catch (...) {
          exec_error = Status::Internal("batch execution failed");
        }
      }
    }
    const auto done_at = std::chrono::steady_clock::now();
    const bool executed = !live.empty() && exec_error.ok();
    if (executed) batches_.fetch_add(1, std::memory_order_relaxed);
    // Stats first, delivery second: the moment a future resolves, the
    // histogram, rings and EWMAs already cover its micro-batch. The
    // queue-wait EWMA folds every dequeue (even all-shed batches) so the
    // admission controller sees the overload that caused the shedding.
    double queue_wait_ewma_us = 0.0;
    {
      MutexLock lock(stats_mutex_);
      for (const double wait_us : queue_waits_us) {
        queue_wait_us_.Add(wait_us);
      }
      queue_wait_ewma_us =
          FoldEwma(&queue_wait_ewma_bits_, max_queue_wait_us);
      if (executed) {
        batch_size_histogram_[live.size()] += 1;
        plan_us_.Add(plan.plan_seconds * 1e6);
        exec_us_.Add(result.report.exec_seconds * 1e6);
        FoldEwma(&exec_ewma_bits_, result.report.exec_seconds * 1e6);
        for (const Request& request : live) {
          end_to_end_us_.Add(
              SecondsBetween(request.enqueued_at, done_at) * 1e6);
        }
      }
    }
    UpdateDegradation(queue_wait_ewma_us);
    if (live.empty()) continue;
    if (!exec_error.ok()) {
      for (Request& request : live) {
        Fail(request, exec_error, &completed_);
      }
      continue;
    }
    // Per-query attribution of the shared plan/exec cost: equal shares,
    // so whole-batch reassembly sums back to the micro-batch totals.
    const double share = 1.0 / static_cast<double>(live.size());
    const double plan_share = plan.plan_seconds * share;
    const double exec_share = result.report.exec_seconds * share;
    for (size_t i = 0; i < live.size(); ++i) {
      Deliver(live[i], result, i, degraded, batch_model_version, plan_share,
              exec_share, dequeued_at, done_at);
    }
  }
}

ServerStats Server::Stats() const {
  ServerStats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.deadline_rejected =
      deadline_rejected_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.cancelled = cancelled_.load(std::memory_order_relaxed);
  out.deadline_shed = deadline_shed_.load(std::memory_order_relaxed);
  out.degraded = degraded_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.current_inference_iterations =
      current_iterations_.load(std::memory_order_relaxed);
  out.predicted_queue_wait_us = PredictedQueueWaitMicros();
  out.predicted_exec_us = PredictedExecMicros();
  out.queue_depth = queue_.size();
  out.queue_high_water = queue_.high_water();
  {
    const std::shared_ptr<const VersionedModel> current = CurrentModel();
    out.model_version = current->version;
    out.model_fingerprint = current->fingerprint;
  }
  out.model_swaps = swaps_.load(std::memory_order_relaxed);
  // Hold stats_mutex_ only for the copies. The old code ran the
  // nth_element percentile extraction (4 rings x up to 8192 samples)
  // inside this critical section, stalling every worker's per-batch
  // stats recording while a monitor polled Stats(); annotating the guard
  // made the oversized section obvious. Summarize now runs on the
  // snapshots after release.
  std::vector<double> queue_wait_snapshot;
  std::vector<double> plan_snapshot;
  std::vector<double> exec_snapshot;
  std::vector<double> end_to_end_snapshot;
  {
    MutexLock lock(stats_mutex_);
    out.batch_size_histogram = batch_size_histogram_;
    queue_wait_snapshot = queue_wait_us_.samples;
    plan_snapshot = plan_us_.samples;
    exec_snapshot = exec_us_.samples;
    end_to_end_snapshot = end_to_end_us_.samples;
  }
  out.queue_wait = Summarize(std::move(queue_wait_snapshot));
  out.plan = Summarize(std::move(plan_snapshot));
  out.exec = Summarize(std::move(exec_snapshot));
  out.end_to_end = Summarize(std::move(end_to_end_snapshot));
  return out;
}

}  // namespace genclus
