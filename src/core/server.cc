#include "core/server.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/string_util.h"

namespace genclus {

namespace {

// Latency rings keep the most recent samples only: percentiles reflect
// current behavior, memory stays bounded under sustained traffic.
constexpr size_t kMaxLatencySamples = 8192;

// Nearest-rank percentile, reordering `samples` in place. Successive
// calls on the same scratch buffer are fine: nth_element needs no
// pre-existing order.
double Percentile(std::vector<double>& samples, double q) {
  const size_t rank = std::min(
      samples.size() - 1,
      static_cast<size_t>(q * static_cast<double>(samples.size())));
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

// Takes its scratch copy by value; Stats() passes ring snapshots taken
// under stats_mutex_, so the nth_element work here runs unlocked.
LatencySummary Summarize(std::vector<double> samples) {
  LatencySummary out;
  out.count = samples.size();
  if (samples.empty()) return out;
  out.max_us = *std::max_element(samples.begin(), samples.end());
  out.p50_us = Percentile(samples, 0.50);
  out.p90_us = Percentile(samples, 0.90);
  out.p99_us = Percentile(samples, 0.99);
  return out;
}

double SecondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

Status ServerOptions::Validate() const {
  if (queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (max_batch < 1) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  if (inference_iterations < 1) {
    return Status::InvalidArgument("inference_iterations must be >= 1");
  }
  if (!(theta_floor > 0.0)) {
    return Status::InvalidArgument("theta_floor must be > 0");
  }
  return Status::OK();
}

// Whole-batch reassembly state. The result is preallocated at submit time
// (zero membership rows, kNoHardLabel) and each completion fills its slot;
// `remaining` counts down under `mutex` and the thread that takes it to
// zero moves the result out (still under the lock) and fulfills the
// promise after releasing it. Rejected slots count down too, so the batch
// future always completes. The promise itself needs no guard: get_future
// runs once before the collector is shared, and set_value runs once, on
// the single thread that observed remaining hit zero.
struct Server::BatchCollector {
  Mutex mutex;
  size_t remaining GENCLUS_GUARDED_BY(mutex) = 0;
  InferenceResult result GENCLUS_GUARDED_BY(mutex);
  std::promise<InferenceResult> promise;
};

void Server::SampleRing::Add(double us) {
  if (samples.size() < kMaxLatencySamples) {
    samples.push_back(us);
    return;
  }
  samples[next] = us;
  next = (next + 1) % kMaxLatencySamples;
}

Result<std::unique_ptr<Server>> Server::Create(const Network* network,
                                               Model model,
                                               ServerOptions options) {
  if (network == nullptr) {
    return Status::InvalidArgument("network must not be null");
  }
  GENCLUS_RETURN_IF_ERROR(options.Validate());
  GENCLUS_RETURN_IF_ERROR(model.ValidateAgainst(*network));
  auto owned = std::make_unique<Model>(std::move(model));
  const Model* raw = owned.get();
  return std::unique_ptr<Server>(
      new Server(network, std::move(owned), raw, options));
}

Result<std::unique_ptr<Server>> Server::Create(const Network* network,
                                               const Model* model,
                                               ServerOptions options) {
  if (network == nullptr) {
    return Status::InvalidArgument("network must not be null");
  }
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  GENCLUS_RETURN_IF_ERROR(options.Validate());
  GENCLUS_RETURN_IF_ERROR(model->ValidateAgainst(*network));
  return std::unique_ptr<Server>(new Server(network, nullptr, model, options));
}

Server::Server(const Network* network, std::unique_ptr<Model> owned_model,
               const Model* model, ServerOptions options)
    : options_(options),
      owned_model_(std::move(owned_model)),
      model_(model),
      planner_(network, model, options.theta_shards),
      queue_(options.queue_capacity),
      batch_size_histogram_(options.max_batch + 1, 0) {
  size_t num_workers = options_.num_workers;
  if (num_workers == 0) {
    num_workers = std::max<unsigned>(1, std::thread::hardware_concurrency());
  }
  options_.num_workers = num_workers;
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Server::~Server() { Stop(); }

void Server::Stop() {
  MutexLock lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;
  if (!options_.drain_on_stop) cancel_pending_.store(true);
  // Close first: admissions stop, workers drain what is left (executing
  // or cancelling it), then their PopBatch returns 0 and they exit.
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool Server::Enqueue(Request request, Status* rejection) {
  if (queue_.TryPush(std::move(request))) {
    accepted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  rejected_.fetch_add(1, std::memory_order_relaxed);
  *rejection = queue_.closed()
                   ? Status::FailedPrecondition("server is stopped")
                   : Status::ResourceExhausted(StrFormat(
                         "request queue full (capacity %zu)",
                         queue_.capacity()));
  return false;
}

Result<std::future<QueryResult>> Server::Submit(NewObjectQuery query) {
  Request request;
  request.query = std::move(query);
  request.enqueued_at = std::chrono::steady_clock::now();
  std::future<QueryResult> future = request.promise.get_future();
  Status rejection;
  if (!Enqueue(std::move(request), &rejection)) return rejection;
  return future;
}

std::future<InferenceResult> Server::SubmitBatch(
    std::vector<NewObjectQuery> queries) {
  auto collector = std::make_shared<BatchCollector>();
  const size_t n = queries.size();
  const size_t num_clusters = model_->num_clusters();
  InferenceResult empty_result;
  {
    // The collector is not shared yet, but its state is guarded — take
    // the (uncontended) lock so the annotations hold unconditionally.
    MutexLock lock(collector->mutex);
    collector->remaining = n;
    collector->result.statuses.assign(n, Status::OK());
    collector->result.memberships = Matrix(n, num_clusters);
    collector->result.hard_labels.assign(n, kNoHardLabel);
    collector->result.report.batch_size = n;
    if (n == 0) empty_result = std::move(collector->result);
  }
  std::future<InferenceResult> future = collector->promise.get_future();
  if (n == 0) {
    collector->promise.set_value(std::move(empty_result));
    return future;
  }
  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    Request request;
    request.query = std::move(queries[i]);
    request.collector = collector;
    request.slot = i;
    request.num_links = request.query.links.size();
    request.num_observations = request.query.observations.size();
    request.enqueued_at = now;
    Status rejection;
    if (!Enqueue(std::move(request), &rejection)) {
      // The request (and its collector reference) was dropped by the
      // queue; complete the slot right here so the batch future still
      // resolves.
      CompleteCollectorSlot(*collector, i, std::move(rejection),
                            /*membership=*/nullptr, num_clusters,
                            kNoHardLabel, 0, 0, 0.0, 0.0);
    }
  }
  return future;
}

void Server::CompleteCollectorSlot(BatchCollector& collector, size_t slot,
                                   Status status, const double* membership,
                                   size_t num_clusters, uint32_t hard_label,
                                   size_t num_links, size_t num_observations,
                                   double plan_share_seconds,
                                   double exec_share_seconds) {
  bool last = false;
  InferenceResult finished;
  {
    MutexLock lock(collector.mutex);
    const bool ok = status.ok();
    collector.result.statuses[slot] = std::move(status);
    if (membership != nullptr) {
      std::memcpy(collector.result.memberships.Row(slot), membership,
                  num_clusters * sizeof(double));
    }
    collector.result.hard_labels[slot] = hard_label;
    if (ok) {
      collector.result.report.valid_queries += 1;
      collector.result.report.total_links += num_links;
      collector.result.report.total_observations += num_observations;
    }
    collector.result.report.plan_seconds += plan_share_seconds;
    collector.result.report.exec_seconds += exec_share_seconds;
    last = (--collector.remaining == 0);
    // Move the result out while still holding the guard; the promise is
    // fulfilled after release so no waiter ever wakes into our lock.
    if (last) finished = std::move(collector.result);
  }
  if (last) collector.promise.set_value(std::move(finished));
}

void Server::Deliver(Request& request, const InferenceResult& result,
                     size_t row, double plan_share_seconds,
                     double exec_share_seconds,
                     std::chrono::steady_clock::time_point dequeued_at,
                     std::chrono::steady_clock::time_point now) {
  // Counted BEFORE the promise is fulfilled: a caller that just resolved
  // its future must see stats that already include that query.
  completed_.fetch_add(1, std::memory_order_relaxed);
  const Status& status = result.statuses[row];
  const size_t num_clusters = result.memberships.cols();
  if (request.collector != nullptr) {
    CompleteCollectorSlot(
        *request.collector, request.slot, status,
        status.ok() ? result.memberships.Row(row) : nullptr, num_clusters,
        result.hard_labels[row], request.num_links,
        request.num_observations, plan_share_seconds, exec_share_seconds);
  } else {
    QueryResult answer;
    answer.status = status;
    if (status.ok()) {
      answer.membership.assign(result.memberships.Row(row),
                               result.memberships.Row(row) + num_clusters);
    }
    answer.hard_label = result.hard_labels[row];
    answer.queue_seconds = SecondsBetween(request.enqueued_at, dequeued_at);
    answer.total_seconds = SecondsBetween(request.enqueued_at, now);
    request.promise.set_value(std::move(answer));
  }
}

void Server::Cancel(Request& request) {
  cancelled_.fetch_add(1, std::memory_order_relaxed);  // before fulfillment
  Status status = Status::Cancelled("server stopped before execution");
  if (request.collector != nullptr) {
    CompleteCollectorSlot(*request.collector, request.slot,
                          std::move(status), nullptr,
                          model_->num_clusters(), kNoHardLabel, 0, 0, 0.0,
                          0.0);
  } else {
    QueryResult answer;
    answer.status = std::move(status);
    request.promise.set_value(std::move(answer));
  }
}

// The admission loop body each worker runs: coalesce queued queries into
// one micro-batch, plan + execute it on this worker's own session (own
// ServeWorkspace — workers never share mutable execution state, so
// micro-batches run concurrently), deliver per-query answers, record
// stats. The session runs its batch serially: with num_workers sessions
// in flight the tier already saturates the cores batch-wise, and serial
// execution keeps per-batch latency deterministic.
void Server::WorkerLoop() {
  InferSession session(model_, /*pool=*/nullptr,
                       options_.inference_iterations, options_.theta_floor);
  std::vector<Request> batch;
  std::vector<NewObjectQuery> queries;
  const std::chrono::microseconds linger(options_.max_wait_us);
  while (queue_.PopBatch(&batch, options_.max_batch, linger) > 0) {
    const auto dequeued_at = std::chrono::steady_clock::now();
    if (cancel_pending_.load(std::memory_order_relaxed)) {
      for (Request& request : batch) Cancel(request);
      continue;
    }
    queries.clear();
    queries.reserve(batch.size());
    for (Request& request : batch) {
      queries.push_back(std::move(request.query));
    }
    InferPlan plan = planner_.Plan(queries);
    InferenceResult result = session.Execute(plan);
    const auto done_at = std::chrono::steady_clock::now();
    // Per-query attribution of the shared plan/exec cost: equal shares,
    // so whole-batch reassembly sums back to the micro-batch totals.
    const double share = 1.0 / static_cast<double>(batch.size());
    const double plan_share = plan.plan_seconds * share;
    const double exec_share = result.report.exec_seconds * share;
    // Stats first, delivery second: the moment a future resolves, the
    // histogram and latency rings already cover its micro-batch.
    batches_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(stats_mutex_);
      batch_size_histogram_[batch.size()] += 1;
      plan_us_.Add(plan.plan_seconds * 1e6);
      exec_us_.Add(result.report.exec_seconds * 1e6);
      for (const Request& request : batch) {
        queue_wait_us_.Add(
            SecondsBetween(request.enqueued_at, dequeued_at) * 1e6);
        end_to_end_us_.Add(
            SecondsBetween(request.enqueued_at, done_at) * 1e6);
      }
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      Deliver(batch[i], result, i, plan_share, exec_share, dequeued_at,
              done_at);
    }
  }
}

ServerStats Server::Stats() const {
  ServerStats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.cancelled = cancelled_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.queue_depth = queue_.size();
  out.queue_high_water = queue_.high_water();
  // Hold stats_mutex_ only for the copies. The old code ran the
  // nth_element percentile extraction (4 rings x up to 8192 samples)
  // inside this critical section, stalling every worker's per-batch
  // stats recording while a monitor polled Stats(); annotating the guard
  // made the oversized section obvious. Summarize now runs on the
  // snapshots after release.
  std::vector<double> queue_wait_snapshot;
  std::vector<double> plan_snapshot;
  std::vector<double> exec_snapshot;
  std::vector<double> end_to_end_snapshot;
  {
    MutexLock lock(stats_mutex_);
    out.batch_size_histogram = batch_size_histogram_;
    queue_wait_snapshot = queue_wait_us_.samples;
    plan_snapshot = plan_us_.samples;
    exec_snapshot = exec_us_.samples;
    end_to_end_snapshot = end_to_end_us_.samples;
  }
  out.queue_wait = Summarize(std::move(queue_wait_snapshot));
  out.plan = Summarize(std::move(plan_snapshot));
  out.exec = Summarize(std::move(exec_snapshot));
  out.end_to_end = Summarize(std::move(end_to_end_snapshot));
  return out;
}

}  // namespace genclus
