#include "core/update.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/em.h"

namespace genclus {

namespace {

// Same normalization rule as the EM sweep and the serving sweep: project
// onto the simplex with the theta floor, uniform fallback for all-zero
// mixes.
void NormalizeRow(const double* mix, size_t num_clusters, double floor,
                  double* out) {
  double total = 0.0;
  for (size_t k = 0; k < num_clusters; ++k) total += mix[k];
  if (total <= 0.0 || !std::isfinite(total)) {
    const double u = 1.0 / static_cast<double>(num_clusters);
    for (size_t k = 0; k < num_clusters; ++k) out[k] = u;
    return;
  }
  double clamped_total = 0.0;
  for (size_t k = 0; k < num_clusters; ++k) {
    double val = mix[k] / total;
    if (val < floor) val = floor;
    out[k] = val;
    clamped_total += val;
  }
  for (size_t k = 0; k < num_clusters; ++k) out[k] /= clamped_total;
}

// The fold-in update (Eq. 10/11 with the rest of the model fixed) for one
// node of a full network: the link term reads `snapshot` rows — only
// neighbors below `valid_rows`, so a Refit seeding pass can walk new
// nodes in ascending id order — and the attribute part runs `iterations`
// fixed-point sweeps over the node's own observations.
void FoldInRow(const Network& network, NodeId v, const Matrix& snapshot,
               size_t valid_rows, const std::vector<double>& gamma,
               const std::vector<const Attribute*>& attrs,
               const std::vector<AttributeComponents>& components,
               size_t iterations, double theta_floor, double* out) {
  const size_t num_clusters = snapshot.cols();
  std::vector<double> link_mix(num_clusters, 0.0);
  std::vector<double> mix(num_clusters);
  std::vector<double> resp(num_clusters);
  std::vector<double> theta_v(num_clusters,
                              1.0 / static_cast<double>(num_clusters));

  for (const LinkEntry& e : network.OutLinks(v)) {
    if (e.neighbor >= valid_rows) continue;
    const double coeff = gamma[e.type] * e.weight;
    if (coeff == 0.0) continue;
    const double* row = snapshot.Row(e.neighbor);
    for (size_t k = 0; k < num_clusters; ++k) link_mix[k] += coeff * row[k];
  }

  for (size_t it = 0; it < iterations; ++it) {
    std::copy(link_mix.begin(), link_mix.end(), mix.begin());
    for (size_t t = 0; t < attrs.size(); ++t) {
      const Attribute& attr = *attrs[t];
      const AttributeComponents& comp = components[t];
      if (attr.kind() == AttributeKind::kCategorical) {
        const Matrix& beta = comp.beta();
        for (const TermCount& tc : attr.TermCounts(v)) {
          double total = 0.0;
          for (size_t k = 0; k < num_clusters; ++k) {
            resp[k] = theta_v[k] * beta(k, tc.term);
            total += resp[k];
          }
          if (total <= 0.0) {
            std::fill(resp.begin(), resp.end(),
                      1.0 / static_cast<double>(num_clusters));
            total = 1.0;
          }
          for (size_t k = 0; k < num_clusters; ++k) {
            mix[k] += tc.count * resp[k] / total;
          }
        }
      } else {
        for (double x : attr.Values(v)) {
          double max_log = -std::numeric_limits<double>::infinity();
          for (size_t k = 0; k < num_clusters; ++k) {
            const double tk = theta_v[k] > 0.0 ? theta_v[k] : 1e-300;
            resp[k] = std::log(tk) + comp.LogPdf(k, x);
            max_log = std::max(max_log, resp[k]);
          }
          double total = 0.0;
          for (size_t k = 0; k < num_clusters; ++k) {
            resp[k] = std::exp(resp[k] - max_log);
            total += resp[k];
          }
          for (size_t k = 0; k < num_clusters; ++k) {
            mix[k] += resp[k] / total;
          }
        }
      }
    }
    double delta = 0.0;
    NormalizeRow(mix.data(), num_clusters, theta_floor, mix.data());
    for (size_t k = 0; k < num_clusters; ++k) {
      delta = std::max(delta, std::fabs(mix[k] - theta_v[k]));
      theta_v[k] = mix[k];
    }
    if (delta < ServeDefaults::kSweepTolerance) break;
  }
  std::copy(theta_v.begin(), theta_v.end(), out);
}

// Checks that the dataset's schema and attribute shapes still match what
// `model` was trained on — the precondition for carrying Theta rows,
// components and gamma over.
Status CheckModelMatchesDataset(const Model& model, const Dataset& dataset) {
  const Schema& schema = dataset.network.schema();
  if (model.link_types.size() != schema.num_link_types()) {
    return Status::InvalidArgument(StrFormat(
        "model was trained on %zu link types, dataset schema declares %zu",
        model.link_types.size(), schema.num_link_types()));
  }
  for (LinkTypeId r = 0; r < schema.num_link_types(); ++r) {
    if (model.link_types[r] != schema.link_type(r).name) {
      return Status::InvalidArgument(StrFormat(
          "link type %u is '%s' in the model but '%s' in the dataset",
          r, model.link_types[r].c_str(),
          schema.link_type(r).name.c_str()));
    }
  }
  for (const ModelAttributeInfo& info : model.attributes) {
    const AttributeId id = dataset.FindAttribute(info.name);
    if (id == kInvalidAttribute) {
      return Status::NotFound(StrFormat(
          "model attribute '%s' not in dataset", info.name.c_str()));
    }
    const Attribute& attr = dataset.attributes[id];
    if (attr.kind() != info.kind) {
      return Status::InvalidArgument(StrFormat(
          "attribute '%s' changed kind since the model was trained",
          info.name.c_str()));
    }
    if (info.kind == AttributeKind::kCategorical &&
        attr.vocab_size() != info.vocab_size) {
      return Status::InvalidArgument(StrFormat(
          "attribute '%s' has vocabulary %zu, model was trained on %zu "
          "(the vocabulary must stay stable across refits)",
          info.name.c_str(), attr.vocab_size(), info.vocab_size));
    }
  }
  return Status::OK();
}

std::vector<std::string> ModelAttributeNames(const Model& model) {
  std::vector<std::string> names;
  names.reserve(model.attributes.size());
  for (const ModelAttributeInfo& info : model.attributes) {
    names.push_back(info.name);
  }
  return names;
}

}  // namespace

Result<FitResult> Engine::Refit(const Dataset& dataset,
                                const Model& prev_model,
                                const RefitOptions& options) {
  GENCLUS_RETURN_IF_ERROR(dataset.Validate());
  GENCLUS_RETURN_IF_ERROR(prev_model.Validate());
  GENCLUS_RETURN_IF_ERROR(CheckModelMatchesDataset(prev_model, dataset));
  if (options.seed_sweeps < 1) {
    return Status::InvalidArgument("seed_sweeps must be >= 1");
  }
  const Schema& schema = dataset.network.schema();
  const size_t n = dataset.network.num_nodes();
  const size_t prev_rows = prev_model.num_nodes();
  const size_t num_clusters = prev_model.num_clusters();
  if (prev_rows > n) {
    return Status::InvalidArgument(StrFormat(
        "previous model covers %zu nodes, grown dataset has only %zu "
        "(refit supports growth, not shrinkage)", prev_rows, n));
  }

  // K is pinned by the previous model, gamma and warm start carry over.
  GenClusConfig config = options.config;
  config.num_clusters = num_clusters;
  config.warm_start = true;
  if (config.initial_gamma.empty()) config.initial_gamma = prev_model.gamma;
  GENCLUS_RETURN_IF_ERROR(config.Validate(schema.num_link_types()));

  std::vector<const Attribute*> attrs;
  std::vector<ModelAttributeInfo> attr_info;
  GENCLUS_RETURN_IF_ERROR(ResolveAttributes(
      dataset, ModelAttributeNames(prev_model), &attrs, &attr_info));

  WallTimer timer;
  // Warm Theta: survivors keep their rows, new nodes are seeded by the
  // fold-in update in ascending id order (each seed may read earlier
  // seeds — links among new nodes still contribute).
  Matrix theta(n, num_clusters);
  for (size_t v = 0; v < prev_rows; ++v) {
    std::copy(prev_model.theta.Row(v), prev_model.theta.Row(v) + num_clusters,
              theta.Row(v));
  }
  for (size_t v = prev_rows; v < n; ++v) {
    FoldInRow(dataset.network, static_cast<NodeId>(v), theta,
              /*valid_rows=*/v, config.initial_gamma, attrs,
              prev_model.components, options.seed_sweeps,
              config.theta_floor, theta.Row(v));
  }

  GenClus algorithm(&dataset.network, attrs, config);
  algorithm.SetWarmStart(std::move(theta), prev_model.components);
  algorithm.SetProgressObserver(options.observer);
  algorithm.SetCancellationToken(options.cancellation);
  GENCLUS_ASSIGN_OR_RETURN(GenClusResult run, algorithm.Run());
  return AssembleFitResult(schema, std::move(run), std::move(attr_info),
                           config.theta_shards, timer.Seconds());
}

Result<UpdateReport> ApplyUpdates(Dataset* dataset, Model* model,
                                  std::span<const NetworkDelta> deltas,
                                  const UpdateOptions& options) {
  GENCLUS_CHECK(dataset != nullptr && model != nullptr);
  GENCLUS_RETURN_IF_ERROR(dataset->Validate());
  GENCLUS_RETURN_IF_ERROR(model->Validate());
  GENCLUS_RETURN_IF_ERROR(CheckModelMatchesDataset(*model, *dataset));
  if (options.rounds < 1) {
    return Status::InvalidArgument("rounds must be >= 1");
  }
  if (options.fold_in_sweeps < 1) {
    return Status::InvalidArgument("fold_in_sweeps must be >= 1");
  }
  const size_t num_clusters = model->num_clusters();
  if (!(options.theta_floor > 0.0) ||
      options.theta_floor >= 1.0 / static_cast<double>(num_clusters)) {
    return Status::InvalidArgument(
        "theta_floor must be in (0, 1/num_clusters)");
  }
  const size_t old_nodes = dataset->network.num_nodes();
  if (model->num_nodes() != old_nodes) {
    return Status::InvalidArgument(StrFormat(
        "model covers %zu nodes, dataset has %zu — refit instead of "
        "streaming updates", model->num_nodes(), old_nodes));
  }

  WallTimer timer;
  UpdateReport report;
  // Grow the dataset delta by delta (each delta's ids address the network
  // as of its turn) and collect the touched survivors.
  std::vector<NodeId> touched_ids;
  for (const NetworkDelta& delta : deltas) {
    GENCLUS_ASSIGN_OR_RETURN(Dataset grown,
                             ApplyNetworkDelta(*dataset, delta));
    *dataset = std::move(grown);
    for (const DeltaLink& link : delta.links) {
      touched_ids.push_back(link.src);
    }
    for (const DeltaObservation& obs : delta.observations) {
      touched_ids.push_back(obs.node);
    }
    report.deltas_applied += 1;
    report.new_nodes += delta.nodes.size();
    report.new_links += delta.links.size();
    report.new_observations += delta.observations.size();
  }
  const size_t n = dataset->network.num_nodes();

  std::vector<const Attribute*> attrs;
  attrs.reserve(model->attributes.size());
  for (const ModelAttributeInfo& info : model->attributes) {
    // CheckModelMatchesDataset validated the name on the base dataset and
    // growth never removes attributes.
    attrs.push_back(&dataset->attributes[dataset->FindAttribute(info.name)]);
  }

  // Grow Theta: survivors keep their rows, new nodes start uniform and
  // are solved by the Jacobi rounds below (every new node is touched).
  Matrix theta(n, num_clusters, 1.0 / static_cast<double>(num_clusters));
  for (size_t v = 0; v < old_nodes; ++v) {
    std::copy(model->theta.Row(v), model->theta.Row(v) + num_clusters,
              theta.Row(v));
  }
  model->theta = std::move(theta);

  std::vector<uint8_t> touched(n, 0);
  for (size_t v = old_nodes; v < n; ++v) touched[v] = 1;
  for (NodeId v : touched_ids) touched[v] = 1;
  for (uint8_t flag : touched) report.touched_nodes += flag;

  // Jacobi rounds: each round re-solves every touched row against a
  // snapshot of the previous round's Theta, so the result is independent
  // of the iteration order (deterministic, and trivially parallelizable).
  for (size_t round = 0; round < options.rounds; ++round) {
    const Matrix snapshot = model->theta;
    for (size_t v = 0; v < n; ++v) {
      if (!touched[v]) continue;
      FoldInRow(dataset->network, static_cast<NodeId>(v), snapshot,
                /*valid_rows=*/n, model->gamma, attrs, model->components,
                options.fold_in_sweeps, options.theta_floor,
                model->theta.Row(v));
    }
  }

  if (options.refresh_components && !attrs.empty()) {
    GenClusConfig config;
    config.num_clusters = num_clusters;
    EmOptimizer optimizer(&dataset->network, attrs, &config, nullptr);
    optimizer.EstimateComponents(model->theta, &model->components);
  }

  report.seconds = timer.Seconds();
  return report;
}

}  // namespace genclus
