// Initialization strategies for Theta and beta (§4.3): plain random
// membership vectors, and the more stable "several random seeds, keep the
// best g1 after a few EM steps" variant the paper recommends.
#pragma once

#include <vector>

#include "common/random.h"
#include "core/components.h"
#include "core/config.h"
#include "core/em.h"
#include "hin/attributes.h"
#include "hin/network.h"
#include "linalg/matrix.h"

namespace genclus {

/// Random membership matrix: each row drawn uniformly from the K-simplex.
Matrix RandomTheta(size_t num_nodes, size_t num_clusters, Rng* rng);

/// Fresh component parameters breaking cluster symmetry:
///  * categorical: corpus term distribution perturbed per cluster;
///  * numerical: means drawn from random observed values, global variance.
std::vector<AttributeComponents> InitialComponents(
    const std::vector<const Attribute*>& attributes,
    const GenClusConfig& config, Rng* rng);

/// Membership matrix from a k-means pass over interpolated numerical
/// attributes: each node's row concentrates on its assigned cluster.
/// Returns false (leaving theta untouched) when the attribute set contains
/// no numerical attribute or k-means fails.
bool KMeansTheta(const Network& network,
                 const std::vector<const Attribute*>& attributes,
                 const GenClusConfig& config, Rng* rng, Matrix* theta);

/// Runs `config.num_init_seeds` tentative starts of `config.init_em_steps`
/// EM iterations each — plus, under ThetaInit::kRandomSeedsPlusKMeans, a
/// k-means-derived candidate — and returns the (Theta, components) with
/// the best g1 objective (ties by first seen). With num_init_seeds == 1
/// and no k-means candidate this is a plain random initialization plus
/// init_em_steps warm-up sweeps.
void BestOfSeedsInit(const EmOptimizer& optimizer, const Network& network,
                     const std::vector<const Attribute*>& attributes,
                     const GenClusConfig& config,
                     const std::vector<double>& gamma, Rng* rng,
                     Matrix* theta,
                     std::vector<AttributeComponents>* components);

}  // namespace genclus
