#include "core/em.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/objective.h"
#include "prob/simplex.h"
#include "prob/special_functions.h"

namespace genclus {

EmOptimizer::EmOptimizer(const Network* network,
                         std::vector<const Attribute*> attributes,
                         const GenClusConfig* config, ThreadPool* pool)
    : network_(network),
      attributes_(std::move(attributes)),
      config_(config),
      pool_(pool) {
  GENCLUS_CHECK(network_ != nullptr);
  GENCLUS_CHECK(config_ != nullptr);
  GENCLUS_CHECK_GE(config_->num_clusters, 2u);
  for (const Attribute* a : attributes_) {
    GENCLUS_CHECK(a != nullptr);
    GENCLUS_CHECK_EQ(a->num_nodes(), network_->num_nodes());
  }
}

void EmOptimizer::InitAccumulators(
    std::vector<std::vector<ComponentAccumulator>>* acc) const {
  const size_t shards = pool_ != nullptr ? pool_->num_threads() : 1;
  const size_t num_clusters = config_->num_clusters;
  acc->assign(shards, {});
  for (auto& shard : *acc) {
    shard.resize(attributes_.size());
    for (size_t t = 0; t < attributes_.size(); ++t) {
      if (attributes_[t]->kind() == AttributeKind::kCategorical) {
        shard[t].counts.assign(num_clusters * attributes_[t]->vocab_size(),
                               0.0);
      } else {
        shard[t].weight_sum.assign(num_clusters, 0.0);
        shard[t].value_sum.assign(num_clusters, 0.0);
        shard[t].square_sum.assign(num_clusters, 0.0);
      }
    }
  }
}

void EmOptimizer::ProcessNodes(
    size_t begin, size_t end, const std::vector<double>& gamma,
    const Matrix& theta, const std::vector<AttributeComponents>& components,
    Matrix* new_theta, std::vector<ComponentAccumulator>* acc) const {
  const size_t num_clusters = config_->num_clusters;
  std::vector<double> mix(num_clusters);   // theta_v contributions
  std::vector<double> resp(num_clusters);  // per-observation responsibilities

  for (size_t vi = begin; vi < end; ++vi) {
    const NodeId v = static_cast<NodeId>(vi);
    std::fill(mix.begin(), mix.end(), 0.0);

    // Link part of Eq. 10/11/12: out-neighbors weighted by link weight and
    // relation strength.
    for (const LinkEntry& e : network_->OutLinks(v)) {
      const double coeff = gamma[e.type] * e.weight;
      if (coeff == 0.0) continue;
      const double* theta_u = theta.Row(e.neighbor);
      for (size_t k = 0; k < num_clusters; ++k) {
        mix[k] += coeff * theta_u[k];
      }
    }

    // Attribute part: responsibilities of v's own observations.
    const double* theta_v = theta.Row(v);
    for (size_t t = 0; t < attributes_.size(); ++t) {
      const Attribute& attr = *attributes_[t];
      const AttributeComponents& comp = components[t];
      if (attr.kind() == AttributeKind::kCategorical) {
        const Matrix& beta = comp.beta();
        const size_t vocab = attr.vocab_size();
        for (const TermCount& tc : attr.TermCounts(v)) {
          double total = 0.0;
          for (size_t k = 0; k < num_clusters; ++k) {
            resp[k] = theta_v[k] * beta(k, tc.term);
            total += resp[k];
          }
          if (total <= 0.0) {
            // All clusters assign zero mass (possible with zero smoothing):
            // treat the observation as uninformative.
            std::fill(resp.begin(), resp.end(), 1.0 / num_clusters);
            total = 1.0;
          }
          double* counts = (*acc)[t].counts.data();
          for (size_t k = 0; k < num_clusters; ++k) {
            const double r = tc.count * resp[k] / total;
            mix[k] += r;
            counts[k * vocab + tc.term] += r;
          }
        }
      } else {
        for (double x : attr.Values(v)) {
          // Log-space for numerical stability of the Gaussian E-step.
          double max_log = -1e308;
          for (size_t k = 0; k < num_clusters; ++k) {
            const double tk = theta_v[k] > 0.0 ? theta_v[k] : 1e-300;
            resp[k] = std::log(tk) + comp.LogPdf(k, x);
            max_log = std::max(max_log, resp[k]);
          }
          double total = 0.0;
          for (size_t k = 0; k < num_clusters; ++k) {
            resp[k] = std::exp(resp[k] - max_log);
            total += resp[k];
          }
          auto& a = (*acc)[t];
          for (size_t k = 0; k < num_clusters; ++k) {
            const double r = resp[k] / total;
            mix[k] += r;
            a.weight_sum[k] += r;
            a.value_sum[k] += r * x;
            a.square_sum[k] += r * x * x;
          }
        }
      }
    }

    // Normalize onto the simplex; isolated attribute-free nodes fall back
    // to uniform inside NormalizeToSimplex.
    double total = 0.0;
    for (size_t k = 0; k < num_clusters; ++k) total += mix[k];
    double* out = new_theta->Row(v);
    if (total <= 0.0 || !std::isfinite(total)) {
      const double u = 1.0 / static_cast<double>(num_clusters);
      for (size_t k = 0; k < num_clusters; ++k) out[k] = u;
    } else {
      const double floor = config_->theta_floor;
      double clamped_total = 0.0;
      for (size_t k = 0; k < num_clusters; ++k) {
        double val = mix[k] / total;
        if (val < floor) val = floor;
        out[k] = val;
        clamped_total += val;
      }
      for (size_t k = 0; k < num_clusters; ++k) out[k] /= clamped_total;
    }
  }
}

void EmOptimizer::UpdateComponents(
    const std::vector<std::vector<ComponentAccumulator>>& acc,
    std::vector<AttributeComponents>* components) const {
  const size_t num_clusters = config_->num_clusters;
  for (size_t t = 0; t < attributes_.size(); ++t) {
    if (attributes_[t]->kind() == AttributeKind::kCategorical) {
      const size_t vocab = attributes_[t]->vocab_size();
      Matrix* beta = (*components)[t].mutable_beta();
      for (size_t k = 0; k < num_clusters; ++k) {
        double row_total = 0.0;
        for (size_t l = 0; l < vocab; ++l) {
          double c = 0.0;
          for (const auto& shard : acc) c += shard[t].counts[k * vocab + l];
          (*beta)(k, l) = c;
          row_total += c;
        }
        // Additive smoothing scaled by the cluster's count mass keeps the
        // relative flattening comparable across clusters of any size.
        const double smooth =
            config_->beta_smoothing * (row_total > 0.0 ? row_total : 1.0);
        const double denom = row_total + smooth * static_cast<double>(vocab);
        if (denom <= 0.0) {
          // Empty cluster: keep a uniform term distribution.
          const double u = 1.0 / static_cast<double>(vocab);
          for (size_t l = 0; l < vocab; ++l) (*beta)(k, l) = u;
        } else {
          for (size_t l = 0; l < vocab; ++l) {
            (*beta)(k, l) = ((*beta)(k, l) + smooth) / denom;
          }
        }
      }
    } else {
      auto* gaussians = (*components)[t].mutable_gaussians();
      for (size_t k = 0; k < num_clusters; ++k) {
        double w = 0.0;
        double wx = 0.0;
        double wx2 = 0.0;
        for (const auto& shard : acc) {
          w += shard[t].weight_sum[k];
          wx += shard[t].value_sum[k];
          wx2 += shard[t].square_sum[k];
        }
        if (w <= 1e-12) continue;  // empty cluster: keep previous parameters
        const double mean = wx / w;
        double var = wx2 / w - mean * mean;
        if (var < config_->variance_floor) var = config_->variance_floor;
        (*gaussians)[k] = GaussianDistribution(mean, var);
      }
    }
  }
}

double EmOptimizer::Step(const std::vector<double>& gamma, Matrix* theta,
                         std::vector<AttributeComponents>* components) const {
  GENCLUS_CHECK(theta != nullptr && components != nullptr);
  GENCLUS_CHECK_EQ(theta->rows(), network_->num_nodes());
  GENCLUS_CHECK_EQ(theta->cols(), config_->num_clusters);
  GENCLUS_CHECK_EQ(gamma.size(), network_->schema().num_link_types());
  GENCLUS_CHECK_EQ(components->size(), attributes_.size());

  const size_t n = network_->num_nodes();
  Matrix new_theta(n, config_->num_clusters);
  std::vector<std::vector<ComponentAccumulator>> acc;
  InitAccumulators(&acc);

  if (pool_ != nullptr && pool_->num_threads() > 1) {
    pool_->ParallelFor(n, [&](size_t shard, size_t begin, size_t end) {
      ProcessNodes(begin, end, gamma, *theta, *components, &new_theta,
                   &acc[shard]);
    });
  } else {
    ProcessNodes(0, n, gamma, *theta, *components, &new_theta, &acc[0]);
  }

  UpdateComponents(acc, components);
  const double delta = Matrix::MaxAbsDiff(*theta, new_theta);
  *theta = std::move(new_theta);
  return delta;
}

EmStats EmOptimizer::Run(const std::vector<double>& gamma, Matrix* theta,
                         std::vector<AttributeComponents>* components,
                         bool track_objective) const {
  EmStats stats;
  for (size_t iter = 0; iter < config_->em_iterations; ++iter) {
    const double delta = Step(gamma, theta, components);
    stats.iterations = iter + 1;
    stats.final_delta = delta;
    if (track_objective) {
      stats.objective_trace.push_back(
          G1Objective(*network_, attributes_, *components, *theta, gamma));
    }
    if (delta < config_->em_tolerance) {
      stats.converged = true;
      break;
    }
  }
  return stats;
}

void EmOptimizer::EstimateComponents(
    const Matrix& theta, std::vector<AttributeComponents>* components) const {
  const size_t num_clusters = config_->num_clusters;
  GENCLUS_CHECK(components != nullptr);
  GENCLUS_CHECK_EQ(components->size(), attributes_.size());

  for (size_t t = 0; t < attributes_.size(); ++t) {
    const Attribute& attr = *attributes_[t];
    if (attr.kind() == AttributeKind::kCategorical) {
      const size_t vocab = attr.vocab_size();
      Matrix* beta = (*components)[t].mutable_beta();
      Matrix counts(num_clusters, vocab);
      for (NodeId v = 0; v < attr.num_nodes(); ++v) {
        const double* theta_v = theta.Row(v);
        for (const TermCount& tc : attr.TermCounts(v)) {
          for (size_t k = 0; k < num_clusters; ++k) {
            counts(k, tc.term) += theta_v[k] * tc.count;
          }
        }
      }
      for (size_t k = 0; k < num_clusters; ++k) {
        double row_total = 0.0;
        for (size_t l = 0; l < vocab; ++l) row_total += counts(k, l);
        // Same smoothing rule as UpdateComponents, so the initial
        // component estimate and the EM updates are interchangeable.
        const double smooth =
            config_->beta_smoothing * (row_total > 0.0 ? row_total : 1.0);
        const double denom = row_total + smooth * static_cast<double>(vocab);
        if (denom <= 0.0) {
          // Empty cluster: keep a uniform term distribution.
          const double u = 1.0 / static_cast<double>(vocab);
          for (size_t l = 0; l < vocab; ++l) (*beta)(k, l) = u;
        } else {
          for (size_t l = 0; l < vocab; ++l) {
            (*beta)(k, l) = (counts(k, l) + smooth) / denom;
          }
        }
      }
    } else {
      auto* gaussians = (*components)[t].mutable_gaussians();
      for (size_t k = 0; k < num_clusters; ++k) {
        double w = 0.0;
        double wx = 0.0;
        double wx2 = 0.0;
        for (NodeId v = 0; v < attr.num_nodes(); ++v) {
          const double tv = theta(v, k);
          for (double x : attr.Values(v)) {
            w += tv;
            wx += tv * x;
            wx2 += tv * x * x;
          }
        }
        if (w <= 1e-12) continue;
        const double mean = wx / w;
        double var = wx2 / w - mean * mean;
        if (var < config_->variance_floor) var = config_->variance_floor;
        (*gaussians)[k] = GaussianDistribution(mean, var);
      }
    }
  }
}

}  // namespace genclus
