#include "core/em.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.h"
#include "linalg/sharding.h"
#include "linalg/spmm.h"
#include "prob/simplex.h"
#include "prob/special_functions.h"

namespace genclus {

namespace {

// Nodes per reduction block. Fixed (independent of the thread count) so
// block boundaries — and therefore the merged floating-point result — are
// invariant to how many workers execute them (same contract as the
// strength learner's ParallelForReduce grain).
constexpr size_t kEmBlockGrain = 128;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Normalizes `mix` onto the simplex into `out` (aliasing allowed), with
// the uniform fallback for isolated attribute-free nodes and the
// theta_floor clamp. Shared by the kernel path and the reference path so
// both apply the identical arithmetic.
inline void NormalizeOntoSimplex(const double* mix, size_t num_clusters,
                                 double floor, double* out) {
  double total = 0.0;
  for (size_t k = 0; k < num_clusters; ++k) total += mix[k];
  if (total <= 0.0 || !std::isfinite(total)) {
    const double u = 1.0 / static_cast<double>(num_clusters);
    for (size_t k = 0; k < num_clusters; ++k) out[k] = u;
    return;
  }
  double clamped_total = 0.0;
  for (size_t k = 0; k < num_clusters; ++k) {
    double val = mix[k] / total;
    if (val < floor) val = floor;
    out[k] = val;
    clamped_total += val;
  }
  for (size_t k = 0; k < num_clusters; ++k) out[k] /= clamped_total;
}

void ZeroAccumulator(EmComponentAccumulator* acc) {
  std::fill(acc->counts.begin(), acc->counts.end(), 0.0);
  std::fill(acc->weight_sum.begin(), acc->weight_sum.end(), 0.0);
  std::fill(acc->value_sum.begin(), acc->value_sum.end(), 0.0);
  std::fill(acc->square_sum.begin(), acc->square_sum.end(), 0.0);
}

void MergeAccumulator(EmComponentAccumulator* into,
                      const EmComponentAccumulator& from) {
  for (size_t i = 0; i < into->counts.size(); ++i) {
    into->counts[i] += from.counts[i];
  }
  for (size_t i = 0; i < into->weight_sum.size(); ++i) {
    into->weight_sum[i] += from.weight_sum[i];
    into->value_sum[i] += from.value_sum[i];
    into->square_sum[i] += from.square_sum[i];
  }
}

}  // namespace

void EmWorkspace::Prepare(size_t num_nodes, size_t num_clusters,
                          const std::vector<const Attribute*>& attributes,
                          size_t num_blocks) {
  bool shape_unchanged =
      num_nodes_ == num_nodes && num_clusters_ == num_clusters &&
      num_blocks_ == num_blocks && num_attributes_ == attributes.size();
  for (size_t t = 0; shape_unchanged && t < attributes.size(); ++t) {
    if (attributes[t]->kind() == AttributeKind::kCategorical) {
      shape_unchanged = beta_transpose_[t].rows() == attributes[t]->vocab_size();
    } else {
      shape_unchanged = beta_transpose_[t].empty();
    }
  }
  if (shape_unchanged) return;
  num_nodes_ = num_nodes;
  num_clusters_ = num_clusters;
  num_blocks_ = num_blocks;
  num_attributes_ = attributes.size();

  new_theta_ = Matrix(num_nodes, num_clusters);
  block_delta_.assign(num_blocks, 0.0);
  block_objective_.assign(num_blocks, 0.0);
  scratch_.assign(num_blocks * 4 * num_clusters, 0.0);

  block_acc_.assign(num_blocks, {});
  for (auto& block : block_acc_) {
    block.resize(attributes.size());
    for (size_t t = 0; t < attributes.size(); ++t) {
      if (attributes[t]->kind() == AttributeKind::kCategorical) {
        block[t].counts.assign(
            num_clusters * attributes[t]->vocab_size(), 0.0);
      } else {
        block[t].weight_sum.assign(num_clusters, 0.0);
        block[t].value_sum.assign(num_clusters, 0.0);
        block[t].square_sum.assign(num_clusters, 0.0);
      }
    }
  }

  beta_transpose_.assign(attributes.size(), Matrix());
  gaussians_.assign(attributes.size(), GaussianEvalTable());
  for (size_t t = 0; t < attributes.size(); ++t) {
    if (attributes[t]->kind() == AttributeKind::kCategorical) {
      beta_transpose_[t] = Matrix(attributes[t]->vocab_size(), num_clusters);
    }
  }

  // Convergence-aware skip state starts disarmed for a new shape; the
  // merge buffer clones block 0's accumulator shapes.
  block_quiet_.assign(num_blocks, 0);
  block_skip_.assign(num_blocks, 0);
  block_dependents_.clear();
  dependents_ready_ = false;
  last_gamma_.clear();
  last_sweep_skipped_ = 0;
  merged_acc_ = block_acc_[0];
}

void EmWorkspace::PrepareSharding(const Network& network,
                                  size_t requested_shards) {
  const ShardPartition partition =
      ShardPartition::Resolve(requested_shards, network.num_nodes());
  const size_t num_relations = network.schema().num_link_types();
  const size_t want_splits = partition.num_shards() > 1 ? num_relations : 0;
  if (shard_ready_ &&
      shard_partition_.num_shards() == partition.num_shards() &&
      shard_partition_.num_cols() == partition.num_cols() &&
      shard_splits_.size() == want_splits) {
    return;
  }
  shard_partition_ = partition;
  shard_splits_.assign(want_splits, CsrColumnSplit());
  for (LinkTypeId r = 0; r < want_splits; ++r) {
    const RelationCsr adj = network.OutCsr(r);
    const CsrMatrixView view{adj.row_offsets, adj.neighbors, adj.weights};
    shard_splits_[r].Build(view, shard_partition_);
  }
  shard_ready_ = true;
}

EmOptimizer::EmOptimizer(const Network* network,
                         std::vector<const Attribute*> attributes,
                         const GenClusConfig* config, ThreadPool* pool)
    : network_(network),
      attributes_(std::move(attributes)),
      config_(config),
      pool_(pool) {
  GENCLUS_CHECK(network_ != nullptr);
  GENCLUS_CHECK(config_ != nullptr);
  GENCLUS_CHECK_GE(config_->num_clusters, 2u);
  for (const Attribute* a : attributes_) {
    GENCLUS_CHECK(a != nullptr);
    GENCLUS_CHECK_EQ(a->num_nodes(), network_->num_nodes());
    if (a->kind() == AttributeKind::kNumerical) has_numerical_ = true;
  }
}

size_t EmOptimizer::NumBlocks() const {
  const size_t n = network_->num_nodes();
  // At least one block so the merged accumulators exist even for an empty
  // node range (UpdateComponents still applies its empty-cluster rules;
  // ForEachFixedGrainBlock runs nothing for n == 0, so the sweeps zero
  // that block's slots explicitly in that case).
  return std::max<size_t>(1, (n + kEmBlockGrain - 1) / kEmBlockGrain);
}

void EmOptimizer::RebuildDerivedTables(
    const std::vector<AttributeComponents>& components,
    EmWorkspace* ws) const {
  for (size_t t = 0; t < attributes_.size(); ++t) {
    if (attributes_[t]->kind() == AttributeKind::kCategorical) {
      const Matrix& beta = components[t].beta();
      Matrix& beta_t = ws->beta_transpose_[t];
      for (size_t k = 0; k < beta.rows(); ++k) {
        const double* row = beta.Row(k);
        for (size_t l = 0; l < beta.cols(); ++l) beta_t(l, k) = row[l];
      }
    } else {
      ws->gaussians_[t].Rebuild(components[t]);
    }
  }
}

void EmOptimizer::AccumulateLinkTerm(const std::vector<double>& gamma,
                                     const double* theta_data, size_t begin,
                                     size_t end, EmWorkspace* ws,
                                     double* out) const {
  const size_t num_clusters = config_->num_clusters;
  const size_t num_relations = gamma.size();
  const ShardPartition& partition = ws->shard_partition_;
  const size_t num_shards = partition.num_shards();
  for (LinkTypeId r = 0; r < num_relations; ++r) {
    if (gamma[r] == 0.0) continue;
    const RelationCsr adj = network_->OutCsr(r);
    const CsrMatrixView view{adj.row_offsets, adj.neighbors, adj.weights};
    if (num_shards == 1) {
      SpmmAccumulate(view, gamma[r], theta_data, num_clusters, begin, end,
                     out);
      continue;
    }
    // Shards run ascending inside each relation so every output row's
    // non-zero chain replays the unsharded relation-by-relation order.
    for (size_t s = 0; s < num_shards; ++s) {
      SpmmAccumulateShard(view, ws->shard_splits_[r], partition, s, gamma[r],
                          theta_data + partition.begin(s) * num_clusters,
                          num_clusters, begin, end, out);
    }
  }
}

double EmOptimizer::FusedStep(const std::vector<double>& gamma, Matrix* theta,
                              std::vector<AttributeComponents>* components,
                              EmWorkspace* ws, double* entry_objective,
                              bool allow_block_skip) const {
  GENCLUS_CHECK(theta != nullptr && components != nullptr && ws != nullptr);
  GENCLUS_CHECK_EQ(theta->rows(), network_->num_nodes());
  GENCLUS_CHECK_EQ(theta->cols(), config_->num_clusters);
  GENCLUS_CHECK_EQ(gamma.size(), network_->schema().num_link_types());
  GENCLUS_CHECK_EQ(components->size(), attributes_.size());

  const size_t n = network_->num_nodes();
  const size_t num_clusters = config_->num_clusters;
  const size_t num_blocks = NumBlocks();
  const bool track = entry_objective != nullptr;
  const bool need_logs = has_numerical_ || track;
  const double log_theta_floor = std::log(kDefaultThetaFloor);

  ws->Prepare(n, num_clusters, attributes_, num_blocks);
  ws->PrepareSharding(*network_, config_->theta_shards);
  RebuildDerivedTables(*components, ws);

  const double* theta_data = theta->data().data();
  double* new_theta_data = ws->new_theta_.data().data();
  if (n == 0) {
    // No blocks run below; clear the lone reduction slot by hand so a
    // reused workspace cannot leak stale statistics into the M-step.
    for (auto& a : ws->block_acc_[0]) ZeroAccumulator(&a);
    ws->block_delta_[0] = 0.0;
    ws->block_objective_[0] = 0.0;
  }

  // Convergence-aware skip decisions, made serially before the sweep from
  // last sweep's deterministic per-block deltas: a block quiet for
  // block_convergence_sweeps consecutive sweeps is carried forward. A
  // traced sweep must evaluate every block, so skipping disengages while
  // an objective rides along.
  const double block_tol = config_->block_convergence_tol;
  const bool adaptive = allow_block_skip && block_tol > 0.0 && !track && n > 0;
  if (adaptive) {
    // A gamma change (a new outer iteration) rescales every link term, so
    // cached quiet streaks no longer mean anything.
    if (ws->last_gamma_ != gamma) {
      std::fill(ws->block_quiet_.begin(), ws->block_quiet_.end(), 0);
      ws->last_gamma_ = gamma;
    }
    if (!ws->dependents_ready_) BuildBlockDependents(ws);
    for (size_t b = 0; b < num_blocks; ++b) {
      ws->block_skip_[b] =
          ws->block_quiet_[b] >= config_->block_convergence_sweeps ? 1 : 0;
    }
  } else {
    std::fill(ws->block_skip_.begin(), ws->block_skip_.end(), 0);
  }

  ForEachFixedGrainBlock(pool_, n, kEmBlockGrain, [&](size_t b, size_t begin,
                                                      size_t end) {
    if (ws->block_skip_[b]) {
      // Carried block: Theta rows pass through unchanged, the component
      // statistics cached from the block's last computed sweep are merged
      // as-is below, and block_delta_ keeps its frozen value (< block_tol,
      // so it can never stall the global convergence test).
      std::memcpy(new_theta_data + begin * num_clusters,
                  theta_data + begin * num_clusters,
                  (end - begin) * num_clusters * sizeof(double));
      return;
    }
    std::vector<EmComponentAccumulator>& acc = ws->block_acc_[b];
    for (auto& a : acc) ZeroAccumulator(&a);
    double* resp = ws->scratch_.data() + b * 4 * num_clusters;
    double* log_e = resp + num_clusters;  // E-step clamp (1e-300)
    double* log_s = log_e + num_clusters;  // structural clamp (theta floor)
    double* base = log_s + num_clusters;  // log theta_vk + log_norm_k

    // Link part of Eq. 10/11/12 as a typed-CSR SpMM: per relation r,
    // new_theta rows of this block += gamma_r * (W_r Theta), one column
    // shard at a time.
    std::fill(new_theta_data + begin * num_clusters,
              new_theta_data + end * num_clusters, 0.0);
    AccumulateLinkTerm(gamma, theta_data, begin, end, ws, new_theta_data);

    double local_delta = 0.0;
    double local_obj = 0.0;
    for (size_t vi = begin; vi < end; ++vi) {
      const NodeId v = static_cast<NodeId>(vi);
      const double* theta_v = theta_data + vi * num_clusters;
      double* out = new_theta_data + vi * num_clusters;

      if (need_logs) {
        for (size_t k = 0; k < num_clusters; ++k) {
          const double tk = theta_v[k] > 0.0 ? theta_v[k] : 1e-300;
          log_e[k] = std::log(tk);
          if (track) {
            log_s[k] = theta_v[k] < kDefaultThetaFloor ? log_theta_floor
                                                       : log_e[k];
          }
        }
      }
      if (track) {
        // Feature part of g1 at the entry iterate, factored through the
        // link mix: sum_e gamma w CE(theta_v, theta_u)
        //         = sum_k log(clamped theta_vk) * [sum_e gamma w theta_uk],
        // and `out` holds exactly that bracket before the attribute part
        // lands on it.
        double structural = 0.0;
        for (size_t k = 0; k < num_clusters; ++k) {
          structural += log_s[k] * out[k];
        }
        local_obj += structural;
      }

      // Attribute part: responsibilities of v's own observations, with
      // the per-observation likelihood riding along for the fused trace.
      for (size_t t = 0; t < attributes_.size(); ++t) {
        const Attribute& attr = *attributes_[t];
        if (attr.kind() == AttributeKind::kCategorical) {
          const Matrix& beta_t = ws->beta_transpose_[t];
          const size_t vocab = attr.vocab_size();
          double* counts = acc[t].counts.data();
          for (const TermCount& tc : attr.TermCounts(v)) {
            const double* beta_term = beta_t.Row(tc.term);
            double total = 0.0;
            for (size_t k = 0; k < num_clusters; ++k) {
              resp[k] = theta_v[k] * beta_term[k];
              total += resp[k];
            }
            if (track) {
              local_obj +=
                  tc.count * std::log(total > 0.0 ? total : 1e-300);
            }
            if (total <= 0.0) {
              // All clusters assign zero mass (possible with zero
              // smoothing): treat the observation as uninformative.
              const double u = 1.0 / static_cast<double>(num_clusters);
              for (size_t k = 0; k < num_clusters; ++k) resp[k] = u;
              total = 1.0;
            }
            const double scale = tc.count / total;  // one division per obs
            for (size_t k = 0; k < num_clusters; ++k) {
              const double r = resp[k] * scale;
              out[k] += r;
              counts[k * vocab + tc.term] += r;
            }
          }
        } else {
          const std::vector<double>& values = attr.Values(v);
          if (values.empty()) continue;
          const GaussianEvalTable& table = ws->gaussians_[t];
          const double* mean = table.means().data();
          const double* neg_half_inv_var = table.neg_half_inv_vars().data();
          const double* log_norm = table.log_norms().data();
          EmComponentAccumulator& a = acc[t];
          // log theta_vk + log_norm_k is observation-invariant: hoist it so
          // the per-observation logit is two fused ops per cluster.
          for (size_t k = 0; k < num_clusters; ++k) {
            base[k] = log_e[k] + log_norm[k];
          }
          for (double x : values) {
            // Log-space for numerical stability of the Gaussian E-step;
            // log theta_v and the Gaussian constants are hoisted, so the
            // inner loop is pure arithmetic.
            double max_log = kNegInf;
            size_t arg_max = 0;
            for (size_t k = 0; k < num_clusters; ++k) {
              const double d = x - mean[k];
              resp[k] = base[k] + neg_half_inv_var[k] * d * d;
              if (resp[k] > max_log) {
                max_log = resp[k];
                arg_max = k;
              }
            }
            // exp(0) is exactly 1, so the max cluster's exponential is
            // free — one std::exp saved per observation.
            double total = 0.0;
            for (size_t k = 0; k < num_clusters; ++k) {
              resp[k] =
                  k == arg_max ? 1.0 : std::exp(resp[k] - max_log);
              total += resp[k];
            }
            if (track) local_obj += max_log + std::log(total);
            const double inv_total = 1.0 / total;
            for (size_t k = 0; k < num_clusters; ++k) {
              const double r = resp[k] * inv_total;
              out[k] += r;
              a.weight_sum[k] += r;
              a.value_sum[k] += r * x;
              a.square_sum[k] += r * x * x;
            }
          }
        }
      }

      NormalizeOntoSimplex(out, num_clusters, config_->theta_floor, out);
      for (size_t k = 0; k < num_clusters; ++k) {
        local_delta = std::max(local_delta, std::fabs(out[k] - theta_v[k]));
      }
    }
    ws->block_delta_[b] = local_delta;
    ws->block_objective_[b] = local_obj;
  });

  // Deterministic reduction: fold block partials in block order, so the
  // merged statistics (and hence beta and the Gaussians) never depend on
  // how blocks were scheduled across threads.
  double delta = 0.0;
  for (size_t b = 0; b < num_blocks; ++b) {
    delta = std::max(delta, ws->block_delta_[b]);
  }
  if (track) {
    double obj = 0.0;
    for (size_t b = 0; b < num_blocks; ++b) obj += ws->block_objective_[b];
    *entry_objective = obj;
  }
  // Fold the per-block statistics in block order into the dedicated merge
  // buffer — never into block 0's slot, whose cached statistics a skipped
  // block 0 must be able to reuse next sweep. Seeding the buffer with a
  // copy of block 0 keeps the addition chain bitwise identical to the old
  // in-place merge.
  std::vector<EmComponentAccumulator>& merged = ws->merged_acc_;
  for (size_t t = 0; t < attributes_.size(); ++t) {
    merged[t] = ws->block_acc_[0][t];
  }
  for (size_t b = 1; b < num_blocks; ++b) {
    for (size_t t = 0; t < attributes_.size(); ++t) {
      MergeAccumulator(&merged[t], ws->block_acc_[b][t]);
    }
  }
  UpdateComponents(merged, components);
  std::swap(*theta, ws->new_theta_);

  size_t skipped = 0;
  if (adaptive) {
    // Saturating quiet streaks (a skipped block's frozen delta keeps it
    // quiet), then re-arm every reader of a block that moved this sweep:
    // the reader's link term depends on the mover's Theta rows.
    constexpr size_t kQuietCap = size_t{1} << 20;
    for (size_t b = 0; b < num_blocks; ++b) {
      if (ws->block_skip_[b]) ++skipped;
      size_t& quiet = ws->block_quiet_[b];
      quiet = ws->block_delta_[b] < block_tol ? std::min(quiet + 1, kQuietCap)
                                              : 0;
    }
    for (size_t m = 0; m < num_blocks; ++m) {
      if (ws->block_skip_[m] || ws->block_delta_[m] < block_tol) continue;
      for (uint32_t reader : ws->block_dependents_[m]) {
        ws->block_quiet_[reader] = 0;
      }
    }
  }
  ws->last_sweep_skipped_ = skipped;
  return delta;
}

void EmOptimizer::BuildBlockDependents(EmWorkspace* ws) const {
  const size_t num_blocks = NumBlocks();
  ws->block_dependents_.assign(num_blocks, {});
  // stamp[m] = last reader block recorded for target m. Nodes iterate in
  // ascending order, so each reader's inserts arrive contiguously and the
  // stamp dedups them in O(1); every list comes out sorted ascending.
  std::vector<uint32_t> stamp(num_blocks,
                              std::numeric_limits<uint32_t>::max());
  for (NodeId v = 0; v < network_->num_nodes(); ++v) {
    const uint32_t reader = static_cast<uint32_t>(v / kEmBlockGrain);
    for (const LinkEntry& e : network_->OutLinks(v)) {
      const uint32_t target =
          static_cast<uint32_t>(e.neighbor / kEmBlockGrain);
      if (stamp[target] == reader) continue;
      stamp[target] = reader;
      ws->block_dependents_[target].push_back(reader);
    }
  }
  ws->dependents_ready_ = true;
}

double EmOptimizer::FusedObjective(
    const std::vector<double>& gamma, const Matrix& theta,
    const std::vector<AttributeComponents>& components,
    EmWorkspace* ws) const {
  // This sweep deliberately mirrors the `track` arithmetic of FusedStep
  // (same SpMM link mix, log hoists, arg-max exp skip) minus the state
  // updates — keep the two in sync. The FusedTraceMatchesG1Objective test
  // pins both against objective.h's independent G1Objective, so drift in
  // either copy fails the suite.
  GENCLUS_CHECK(ws != nullptr);
  GENCLUS_CHECK_EQ(theta.rows(), network_->num_nodes());
  GENCLUS_CHECK_EQ(theta.cols(), config_->num_clusters);
  GENCLUS_CHECK_EQ(gamma.size(), network_->schema().num_link_types());
  GENCLUS_CHECK_EQ(components.size(), attributes_.size());

  const size_t num_clusters = config_->num_clusters;
  const size_t num_blocks = NumBlocks();
  const double log_theta_floor = std::log(kDefaultThetaFloor);

  const size_t n = network_->num_nodes();
  ws->Prepare(n, num_clusters, attributes_, num_blocks);
  ws->PrepareSharding(*network_, config_->theta_shards);
  RebuildDerivedTables(components, ws);
  const double* theta_data = theta.data().data();
  double* mix_data = ws->new_theta_.data().data();  // scratch rows only
  if (n == 0) ws->block_objective_[0] = 0.0;

  ForEachFixedGrainBlock(pool_, n, kEmBlockGrain, [&](size_t b, size_t begin,
                                                      size_t end) {
    double* resp = ws->scratch_.data() + b * 4 * num_clusters;
    double* log_e = resp + num_clusters;
    double* log_s = log_e + num_clusters;
    double* base = log_s + num_clusters;

    std::fill(mix_data + begin * num_clusters, mix_data + end * num_clusters,
              0.0);
    AccumulateLinkTerm(gamma, theta_data, begin, end, ws, mix_data);

    double local_obj = 0.0;
    for (size_t vi = begin; vi < end; ++vi) {
      const NodeId v = static_cast<NodeId>(vi);
      const double* theta_v = theta_data + vi * num_clusters;
      const double* mix = mix_data + vi * num_clusters;
      for (size_t k = 0; k < num_clusters; ++k) {
        const double tk = theta_v[k] > 0.0 ? theta_v[k] : 1e-300;
        log_e[k] = std::log(tk);
        log_s[k] = theta_v[k] < kDefaultThetaFloor ? log_theta_floor
                                                   : log_e[k];
        local_obj += log_s[k] * mix[k];
      }
      for (size_t t = 0; t < attributes_.size(); ++t) {
        const Attribute& attr = *attributes_[t];
        if (attr.kind() == AttributeKind::kCategorical) {
          const Matrix& beta_t = ws->beta_transpose_[t];
          for (const TermCount& tc : attr.TermCounts(v)) {
            const double* beta_term = beta_t.Row(tc.term);
            double total = 0.0;
            for (size_t k = 0; k < num_clusters; ++k) {
              total += theta_v[k] * beta_term[k];
            }
            local_obj += tc.count * std::log(total > 0.0 ? total : 1e-300);
          }
        } else {
          const std::vector<double>& values = attr.Values(v);
          if (values.empty()) continue;
          const GaussianEvalTable& table = ws->gaussians_[t];
          const double* mean = table.means().data();
          const double* neg_half_inv_var = table.neg_half_inv_vars().data();
          const double* log_norm = table.log_norms().data();
          for (size_t k = 0; k < num_clusters; ++k) {
            base[k] = log_e[k] + log_norm[k];
          }
          for (double x : values) {
            double max_log = kNegInf;
            size_t arg_max = 0;
            for (size_t k = 0; k < num_clusters; ++k) {
              const double d = x - mean[k];
              resp[k] = base[k] + neg_half_inv_var[k] * d * d;
              if (resp[k] > max_log) {
                max_log = resp[k];
                arg_max = k;
              }
            }
            double total = 0.0;
            for (size_t k = 0; k < num_clusters; ++k) {
              total += k == arg_max ? 1.0 : std::exp(resp[k] - max_log);
            }
            local_obj += max_log + std::log(total);
          }
        }
      }
    }
    ws->block_objective_[b] = local_obj;
  });

  double obj = 0.0;
  for (size_t b = 0; b < num_blocks; ++b) obj += ws->block_objective_[b];
  return obj;
}

void EmOptimizer::ProcessNodes(
    size_t begin, size_t end, const std::vector<double>& gamma,
    const Matrix& theta, const std::vector<AttributeComponents>& components,
    Matrix* new_theta, std::vector<EmComponentAccumulator>* acc) const {
  const size_t num_clusters = config_->num_clusters;
  std::vector<double> mix(num_clusters);   // theta_v contributions
  std::vector<double> resp(num_clusters);  // per-observation responsibilities

  for (size_t vi = begin; vi < end; ++vi) {
    const NodeId v = static_cast<NodeId>(vi);
    std::fill(mix.begin(), mix.end(), 0.0);

    // Link part of Eq. 10/11/12: out-neighbors weighted by link weight and
    // relation strength.
    for (const LinkEntry& e : network_->OutLinks(v)) {
      const double coeff = gamma[e.type] * e.weight;
      if (coeff == 0.0) continue;
      const double* theta_u = theta.Row(e.neighbor);
      for (size_t k = 0; k < num_clusters; ++k) {
        mix[k] += coeff * theta_u[k];
      }
    }

    // Attribute part: responsibilities of v's own observations.
    const double* theta_v = theta.Row(v);
    for (size_t t = 0; t < attributes_.size(); ++t) {
      const Attribute& attr = *attributes_[t];
      const AttributeComponents& comp = components[t];
      if (attr.kind() == AttributeKind::kCategorical) {
        const Matrix& beta = comp.beta();
        const size_t vocab = attr.vocab_size();
        for (const TermCount& tc : attr.TermCounts(v)) {
          double total = 0.0;
          for (size_t k = 0; k < num_clusters; ++k) {
            resp[k] = theta_v[k] * beta(k, tc.term);
            total += resp[k];
          }
          if (total <= 0.0) {
            // All clusters assign zero mass (possible with zero smoothing):
            // treat the observation as uninformative.
            std::fill(resp.begin(), resp.end(), 1.0 / num_clusters);
            total = 1.0;
          }
          double* counts = (*acc)[t].counts.data();
          for (size_t k = 0; k < num_clusters; ++k) {
            const double r = tc.count * resp[k] / total;
            mix[k] += r;
            counts[k * vocab + tc.term] += r;
          }
        }
      } else {
        for (double x : attr.Values(v)) {
          // Log-space for numerical stability of the Gaussian E-step.
          double max_log = kNegInf;
          for (size_t k = 0; k < num_clusters; ++k) {
            const double tk = theta_v[k] > 0.0 ? theta_v[k] : 1e-300;
            resp[k] = std::log(tk) + comp.LogPdf(k, x);
            max_log = std::max(max_log, resp[k]);
          }
          double total = 0.0;
          for (size_t k = 0; k < num_clusters; ++k) {
            resp[k] = std::exp(resp[k] - max_log);
            total += resp[k];
          }
          auto& a = (*acc)[t];
          for (size_t k = 0; k < num_clusters; ++k) {
            const double r = resp[k] / total;
            mix[k] += r;
            a.weight_sum[k] += r;
            a.value_sum[k] += r * x;
            a.square_sum[k] += r * x * x;
          }
        }
      }
    }

    // Normalize onto the simplex; isolated attribute-free nodes fall back
    // to uniform inside NormalizeOntoSimplex.
    NormalizeOntoSimplex(mix.data(), num_clusters, config_->theta_floor,
                         new_theta->Row(v));
  }
}

void EmOptimizer::UpdateComponents(
    const std::vector<EmComponentAccumulator>& acc,
    std::vector<AttributeComponents>* components) const {
  const size_t num_clusters = config_->num_clusters;
  for (size_t t = 0; t < attributes_.size(); ++t) {
    if (attributes_[t]->kind() == AttributeKind::kCategorical) {
      const size_t vocab = attributes_[t]->vocab_size();
      Matrix* beta = (*components)[t].mutable_beta();
      for (size_t k = 0; k < num_clusters; ++k) {
        double row_total = 0.0;
        for (size_t l = 0; l < vocab; ++l) {
          row_total += acc[t].counts[k * vocab + l];
        }
        // Additive smoothing scaled by the cluster's count mass keeps the
        // relative flattening comparable across clusters of any size.
        const double smooth =
            config_->beta_smoothing * (row_total > 0.0 ? row_total : 1.0);
        const double denom = row_total + smooth * static_cast<double>(vocab);
        if (denom <= 0.0) {
          // Empty cluster: keep a uniform term distribution.
          const double u = 1.0 / static_cast<double>(vocab);
          for (size_t l = 0; l < vocab; ++l) (*beta)(k, l) = u;
        } else {
          for (size_t l = 0; l < vocab; ++l) {
            (*beta)(k, l) = (acc[t].counts[k * vocab + l] + smooth) / denom;
          }
        }
      }
    } else {
      auto* gaussians = (*components)[t].mutable_gaussians();
      for (size_t k = 0; k < num_clusters; ++k) {
        const double w = acc[t].weight_sum[k];
        if (w <= 1e-12) continue;  // empty cluster: keep previous parameters
        const double mean = acc[t].value_sum[k] / w;
        double var = acc[t].square_sum[k] / w - mean * mean;
        if (var < config_->variance_floor) var = config_->variance_floor;
        (*gaussians)[k] = GaussianDistribution(mean, var);
      }
    }
  }
}

double EmOptimizer::Step(const std::vector<double>& gamma, Matrix* theta,
                         std::vector<AttributeComponents>* components) const {
  EmWorkspace workspace;
  return FusedStep(gamma, theta, components, &workspace, nullptr);
}

double EmOptimizer::Step(const std::vector<double>& gamma, Matrix* theta,
                         std::vector<AttributeComponents>* components,
                         EmWorkspace* workspace) const {
  return FusedStep(gamma, theta, components, workspace, nullptr);
}

double EmOptimizer::ReferenceStep(
    const std::vector<double>& gamma, Matrix* theta,
    std::vector<AttributeComponents>* components) const {
  GENCLUS_CHECK(theta != nullptr && components != nullptr);
  GENCLUS_CHECK_EQ(theta->rows(), network_->num_nodes());
  GENCLUS_CHECK_EQ(theta->cols(), config_->num_clusters);
  GENCLUS_CHECK_EQ(gamma.size(), network_->schema().num_link_types());
  GENCLUS_CHECK_EQ(components->size(), attributes_.size());

  const size_t n = network_->num_nodes();
  const size_t num_clusters = config_->num_clusters;
  Matrix new_theta(n, num_clusters);
  std::vector<EmComponentAccumulator> acc(attributes_.size());
  for (size_t t = 0; t < attributes_.size(); ++t) {
    if (attributes_[t]->kind() == AttributeKind::kCategorical) {
      acc[t].counts.assign(num_clusters * attributes_[t]->vocab_size(), 0.0);
    } else {
      acc[t].weight_sum.assign(num_clusters, 0.0);
      acc[t].value_sum.assign(num_clusters, 0.0);
      acc[t].square_sum.assign(num_clusters, 0.0);
    }
  }
  ProcessNodes(0, n, gamma, *theta, *components, &new_theta, &acc);
  UpdateComponents(acc, components);
  const double delta = Matrix::MaxAbsDiff(*theta, new_theta);
  *theta = std::move(new_theta);
  return delta;
}

EmStats EmOptimizer::Run(const std::vector<double>& gamma, Matrix* theta,
                         std::vector<AttributeComponents>* components,
                         bool track_objective) const {
  EmWorkspace workspace;
  return Run(gamma, theta, components, &workspace, track_objective);
}

EmStats EmOptimizer::Run(const std::vector<double>& gamma, Matrix* theta,
                         std::vector<AttributeComponents>* components,
                         EmWorkspace* workspace, bool track_objective) const {
  GENCLUS_CHECK(workspace != nullptr);
  EmStats stats;
  stats.blocks = NumBlocks();
  // A traced run evaluates every block every sweep (the fused trace must
  // be exact), so convergence-aware skipping engages only untraced.
  const bool adaptive =
      !track_objective && config_->block_convergence_tol > 0.0;
  for (size_t iter = 0; iter < config_->em_iterations; ++iter) {
    // The sweep of iteration t evaluates g1 at its entry iterate for free,
    // which is exactly the post-iteration value of iteration t-1 (useless
    // on the first sweep); only the final iterate needs a dedicated
    // objective pass below.
    double entry_objective = 0.0;
    const bool want_entry = track_objective && iter > 0;
    const double delta =
        FusedStep(gamma, theta, components, workspace,
                  want_entry ? &entry_objective : nullptr,
                  /*allow_block_skip=*/!track_objective);
    if (want_entry) stats.objective_trace.push_back(entry_objective);
    if (adaptive) {
      stats.skipped_per_sweep.push_back(workspace->last_sweep_skipped_);
    }
    stats.iterations = iter + 1;
    stats.final_delta = delta;
    if (delta < config_->em_tolerance) {
      stats.converged = true;
      break;
    }
  }
  if (stats.iterations > 0) {
    stats.final_block_deltas.assign(workspace->block_delta_.begin(),
                                    workspace->block_delta_.end());
  }
  if (track_objective && stats.iterations > 0) {
    stats.objective_trace.push_back(
        FusedObjective(gamma, *theta, *components, workspace));
  }
  return stats;
}

void EmOptimizer::EstimateComponents(
    const Matrix& theta, std::vector<AttributeComponents>* components) const {
  const size_t num_clusters = config_->num_clusters;
  GENCLUS_CHECK(components != nullptr);
  GENCLUS_CHECK_EQ(components->size(), attributes_.size());

  for (size_t t = 0; t < attributes_.size(); ++t) {
    const Attribute& attr = *attributes_[t];
    if (attr.kind() == AttributeKind::kCategorical) {
      const size_t vocab = attr.vocab_size();
      Matrix* beta = (*components)[t].mutable_beta();
      Matrix counts(num_clusters, vocab);
      for (NodeId v = 0; v < attr.num_nodes(); ++v) {
        const double* theta_v = theta.Row(v);
        for (const TermCount& tc : attr.TermCounts(v)) {
          for (size_t k = 0; k < num_clusters; ++k) {
            counts(k, tc.term) += theta_v[k] * tc.count;
          }
        }
      }
      for (size_t k = 0; k < num_clusters; ++k) {
        double row_total = 0.0;
        for (size_t l = 0; l < vocab; ++l) row_total += counts(k, l);
        // Same smoothing rule as UpdateComponents, so the initial
        // component estimate and the EM updates are interchangeable.
        const double smooth =
            config_->beta_smoothing * (row_total > 0.0 ? row_total : 1.0);
        const double denom = row_total + smooth * static_cast<double>(vocab);
        if (denom <= 0.0) {
          // Empty cluster: keep a uniform term distribution.
          const double u = 1.0 / static_cast<double>(vocab);
          for (size_t l = 0; l < vocab; ++l) (*beta)(k, l) = u;
        } else {
          for (size_t l = 0; l < vocab; ++l) {
            (*beta)(k, l) = (counts(k, l) + smooth) / denom;
          }
        }
      }
    } else {
      auto* gaussians = (*components)[t].mutable_gaussians();
      for (size_t k = 0; k < num_clusters; ++k) {
        double w = 0.0;
        double wx = 0.0;
        double wx2 = 0.0;
        for (NodeId v = 0; v < attr.num_nodes(); ++v) {
          const double tv = theta(v, k);
          for (double x : attr.Values(v)) {
            w += tv;
            wx += tv * x;
            wx2 += tv * x * x;
          }
        }
        if (w <= 1e-12) continue;
        const double mean = wx / w;
        double var = wx2 / w - mean * mean;
        if (var < config_->variance_floor) var = config_->variance_floor;
        (*gaussians)[k] = GaussianDistribution(mean, var);
      }
    }
  }
}

}  // namespace genclus
