// Configuration for the GenClus algorithm (Algorithm 1). Defaults follow
// the paper's experimental settings where stated (sigma = 0.1, all-ones
// initial gamma, 10 outer iterations).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace genclus {

/// How Gaussian component means are initialized for numerical attributes.
enum class NumericalInit {
  /// Cluster k starts at the k-th quantile of every numerical attribute.
  /// Aligns cluster identities across attributes carried by disjoint
  /// object types, but cannot separate clusters whose marginal means
  /// coincide (e.g. the paper's weather Setting 2).
  kQuantile,
  /// Cluster means drawn from random observed values (k-means++-flavored
  /// diversity through the multi-seed initialization).
  kRandomObservation,
};

/// How the initial membership matrix Theta'_0 is chosen. §4.3 leaves this
/// open ("random assignments, or start with several random seeds ... and
/// choose the one with the highest value of the objective function g1").
enum class ThetaInit {
  /// Random simplex rows per seed; best-of-seeds by g1.
  kRandomSeeds,
  /// Additionally score a k-means candidate: interpolate the numerical
  /// attributes to dense per-node features (neighbor means, as the
  /// baselines do), run k-means, and concentrate each node's membership
  /// on its assigned cluster. Standard mixture-model initialization; it
  /// finds the coordinated basin in settings like the paper's weather
  /// Setting 2 where marginal attribute values alone cannot identify the
  /// clusters. No effect when the attribute set has no numerical
  /// attributes.
  kRandomSeedsPlusKMeans,
};

struct GenClusConfig {
  /// Number of clusters K. Must be >= 2.
  size_t num_clusters = 4;

  /// Outer iterations t alternating cluster optimization and strength
  /// learning (paper uses 10 for DBLP, 5 for the weather networks).
  size_t outer_iterations = 10;

  /// Stop the outer loop early when max |gamma_t - gamma_{t-1}| falls
  /// below this.
  double outer_tolerance = 1e-4;

  /// Maximum EM iterations per cluster-optimization step (t1).
  size_t em_iterations = 50;

  /// EM converges when max |Theta_t - Theta_{t-1}| drops below this.
  double em_tolerance = 1e-4;

  /// Convergence-aware EM sweeps: a reduction block whose per-block
  /// max |Theta| change stayed below this tolerance for
  /// `block_convergence_sweeps` consecutive sweeps is skipped — its Theta
  /// rows and cached component statistics are carried forward — until a
  /// block it reads (an out-link neighborhood block) moves again, which
  /// re-arms it. 0 (default) disables skipping. Skip decisions derive only
  /// from the deterministic per-block deltas, so fitted models stay
  /// bitwise invariant to thread count x shard count; skipping is an
  /// approximation bounded by this tolerance (a skipped block's rows lag
  /// by < tol per sweep). Must be <= em_tolerance when non-zero: a
  /// skipped block's frozen delta then sits below the global convergence
  /// test and can never stall it.
  double block_convergence_tol = 0.0;

  /// Consecutive quiet sweeps before a block is skipped (see
  /// block_convergence_tol). Must be >= 1.
  size_t block_convergence_sweeps = 2;

  /// Maximum Newton-Raphson iterations per strength-learning step (t2).
  size_t newton_iterations = 50;

  /// Newton converges when max |gamma_s - gamma_{s-1}| drops below this.
  double newton_tolerance = 1e-6;

  /// Standard deviation of the zero-mean Gaussian prior on gamma
  /// (the regularizer ||gamma||^2 / (2 sigma^2); paper sets 0.1).
  ///
  /// Note: with sigma = 0.1 the prior is strong; the paper's learned
  /// strengths (e.g. 14.46) imply the data term dominates for real
  /// networks, which we observe as well.
  double gamma_prior_sigma = 0.1;

  /// Floor applied to membership probabilities before logs (Eq. 6 needs
  /// log theta).
  double theta_floor = 1e-12;

  /// Additive smoothing for categorical component updates, as a fraction
  /// of the per-cluster total count mass (keeps the E-step defined for
  /// terms unseen in a cluster).
  double beta_smoothing = 1e-6;

  /// Lower bound for Gaussian component variances.
  double variance_floor = 1e-6;

  /// Number of random starting points for Theta; the one with the best
  /// objective g1 after `init_em_steps` EM steps is kept (§4.3's
  /// "several random seeds" initialization). 1 = plain random init.
  size_t num_init_seeds = 1;

  /// EM steps used to score each tentative seed.
  size_t init_em_steps = 3;

  /// Initialization strategy for Gaussian components; random observations
  /// by default, with the multi-seed objective selecting the best start.
  NumericalInit numerical_init = NumericalInit::kRandomObservation;

  /// Theta initialization strategy (see ThetaInit).
  ThetaInit theta_init = ThetaInit::kRandomSeedsPlusKMeans;

  /// Master RNG seed; every run with the same seed is bit-reproducible.
  uint64_t seed = 42;

  /// Worker threads for the EM step. 0 = hardware concurrency.
  size_t num_threads = 1;

  /// Column (node-range) shards for Θ's link term: the EM sweep computes
  /// the W_r Θ product one shard at a time so each shard's Θ block stays
  /// cache/NUMA-local, and Engine::Fit stamps the resolved count on the
  /// fitted model. 0 = auto from the node count (see
  /// ShardPartition::Resolve); any count is clamped to [1, num_nodes]
  /// and the fitted Θ is bitwise identical for every choice. Default 1 =
  /// today's monolithic layout.
  size_t theta_shards = 1;

  /// When false, gamma stays at its initial value (the "no strength
  /// learning" ablation; baselines effectively run in this mode).
  bool learn_strengths = true;

  /// When true (default), each outer iteration's EM starts from the
  /// previous iteration's Theta instead of re-initializing, so clustering
  /// and strengths mutually enhance each other across iterations
  /// (the behaviour Fig. 10 illustrates).
  bool warm_start = true;

  /// Initial strength per link type; empty = all ones (paper default).
  std::vector<double> initial_gamma;

  /// Checks every field for sanity: num_clusters >= 2, iteration budgets
  /// and seed counts >= 1, tolerances finite and non-negative, floors and
  /// the gamma prior positive, and initial_gamma (when non-empty) sized
  /// for `num_link_types` with finite non-negative entries. Called at the
  /// top of Engine::Fit and GenClus::Run; surfaced here so callers can
  /// reject a bad config before paying for data loading.
  Status Validate(size_t num_link_types) const;
};

}  // namespace genclus
