#include "core/model_io.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "hin/io.h"

namespace genclus {

namespace {

constexpr int kModelFormatVersion = 1;

}  // namespace

Status SaveModel(const Model& model, const std::string& path) {
  GENCLUS_RETURN_IF_ERROR(model.Validate());
  std::ofstream out(path);
  if (!out) {
    return Status::IoError(StrFormat("cannot open '%s' for writing",
                                     path.c_str()));
  }
  // Round-trip exactness: shortest representation that parses back to the
  // same double (same convention as SaveDataset).
  out << std::setprecision(17);
  out << "# genclus trained model\n";
  out << "genclus_model " << kModelFormatVersion << "\n";
  out << "clusters " << model.num_clusters() << "\n";
  out << "nodes " << model.num_nodes() << "\n";
  out << "objective " << model.objective << "\n";
  for (size_t r = 0; r < model.gamma.size(); ++r) {
    out << "link_type " << model.link_types[r] << " " << model.gamma[r]
        << "\n";
  }
  for (size_t v = 0; v < model.theta.rows(); ++v) {
    out << "theta " << v;
    const double* row = model.theta.Row(v);
    for (size_t k = 0; k < model.theta.cols(); ++k) out << " " << row[k];
    out << "\n";
  }
  for (size_t a = 0; a < model.components.size(); ++a) {
    const ModelAttributeInfo& info = model.attributes[a];
    const AttributeComponents& comp = model.components[a];
    if (info.kind == AttributeKind::kCategorical) {
      out << "attribute categorical " << info.name << " " << info.vocab_size
          << "\n";
      for (size_t k = 0; k < comp.beta().rows(); ++k) {
        out << "beta " << k;
        const double* row = comp.beta().Row(k);
        for (size_t l = 0; l < comp.beta().cols(); ++l) {
          out << " " << row[l];
        }
        out << "\n";
      }
    } else {
      out << "attribute numerical " << info.name << "\n";
      for (size_t k = 0; k < comp.num_clusters(); ++k) {
        const GaussianDistribution& g =
            comp.gaussian(static_cast<ClusterId>(k));
        out << "gaussian " << k << " " << g.mean() << " " << g.variance()
            << "\n";
      }
    }
  }
  out.flush();
  if (!out) {
    return Status::IoError(StrFormat("write to '%s' failed", path.c_str()));
  }
  return Status::OK();
}

Result<Model> LoadModel(const std::string& path) {
  // Parse state. Header records (version, clusters, nodes) must precede
  // the bulk sections so matrices can be sized up front.
  bool version_seen = false;
  size_t num_clusters = 0;
  size_t num_nodes = 0;
  bool nodes_seen = false;
  bool objective_seen = false;

  Model model;

  struct PendingAttr {
    ModelAttributeInfo info;
    Matrix beta;                   // categorical
    std::vector<bool> rows_seen;   // per-cluster component rows
    std::vector<std::pair<double, double>> gaussians;  // mean, variance
  };
  std::vector<PendingAttr> attrs;
  std::vector<bool> theta_seen;

  GENCLUS_RETURN_IF_ERROR(ForEachTextRecord(
      path,
      [&](size_t line_no,
          const std::vector<std::string>& tok) -> Status {
        const std::string& cmd = tok[0];
        auto bad = [&](const char* why) {
          return RecordError(path, line_no, why);
        };
        if (cmd == "genclus_model") {
          if (version_seen) return bad("duplicate genclus_model record");
          size_t version = 0;
          if (tok.size() != 2 || !ParseSizeT(tok[1], &version)) {
            return bad("genclus_model needs a version number");
          }
          if (version != static_cast<size_t>(kModelFormatVersion)) {
            return bad("unsupported model format version");
          }
          version_seen = true;
          return Status::OK();
        }
        if (!version_seen) {
          return bad("file does not start with a genclus_model header");
        }
        if (cmd == "clusters") {
          // Header records are single-shot: buffers below are sized from
          // them, so a re-declaration would desynchronize bounds checks.
          if (num_clusters != 0) return bad("duplicate clusters record");
          if (tok.size() != 2 || !ParseSizeT(tok[1], &num_clusters)) {
            return bad("clusters needs a count");
          }
          if (num_clusters < 2) return bad("clusters must be >= 2");
        } else if (cmd == "nodes") {
          if (nodes_seen) return bad("duplicate nodes record");
          if (tok.size() != 2 || !ParseSizeT(tok[1], &num_nodes)) {
            return bad("nodes needs a count");
          }
          nodes_seen = true;
        } else if (cmd == "objective") {
          if (objective_seen) return bad("duplicate objective record");
          if (tok.size() != 2 || !ParseDouble(tok[1], &model.objective)) {
            return bad("objective needs a value");
          }
          objective_seen = true;
        } else if (cmd == "link_type") {
          double g = 0.0;
          if (tok.size() != 3 || !ParseDouble(tok[2], &g)) {
            return bad("link_type needs a name and a strength");
          }
          if (!std::isfinite(g) || g < 0.0) {
            return bad("link strength must be finite and >= 0");
          }
          model.link_types.push_back(tok[1]);
          model.gamma.push_back(g);
        } else if (cmd == "theta") {
          if (num_clusters == 0 || !nodes_seen) {
            return bad("theta before clusters/nodes header");
          }
          if (model.theta.empty() && num_nodes > 0) {
            model.theta = Matrix(num_nodes, num_clusters);
            theta_seen.assign(num_nodes, false);
          }
          size_t v = 0;
          if (tok.size() != 2 + num_clusters || !ParseSizeT(tok[1], &v)) {
            return bad("theta needs a node id and K values");
          }
          if (v >= num_nodes) return bad("theta node id out of range");
          if (theta_seen[v]) return bad("duplicate theta row");
          theta_seen[v] = true;
          for (size_t k = 0; k < num_clusters; ++k) {
            if (!ParseDouble(tok[2 + k], &model.theta(v, k)) ||
                !std::isfinite(model.theta(v, k))) {
              return bad("theta has malformed value");
            }
          }
        } else if (cmd == "attribute") {
          if (num_clusters == 0) return bad("attribute before clusters");
          if (tok.size() < 3) return bad("attribute needs kind and name");
          PendingAttr pa;
          pa.info.name = tok[2];
          pa.rows_seen.assign(num_clusters, false);
          if (tok[1] == "categorical") {
            if (tok.size() != 4 ||
                !ParseSizeT(tok[3], &pa.info.vocab_size) ||
                pa.info.vocab_size == 0) {
              return bad("categorical attribute needs a vocabulary size");
            }
            pa.info.kind = AttributeKind::kCategorical;
            pa.beta = Matrix(num_clusters, pa.info.vocab_size);
          } else if (tok[1] == "numerical") {
            if (tok.size() != 3) return bad("numerical attribute: extra fields");
            pa.info.kind = AttributeKind::kNumerical;
            pa.gaussians.assign(num_clusters, {0.0, 0.0});
          } else {
            return bad("unknown attribute kind");
          }
          attrs.push_back(std::move(pa));
        } else if (cmd == "beta") {
          if (attrs.empty() ||
              attrs.back().info.kind != AttributeKind::kCategorical) {
            return bad("beta without a preceding categorical attribute");
          }
          PendingAttr& pa = attrs.back();
          size_t k = 0;
          if (tok.size() != 2 + pa.info.vocab_size ||
              !ParseSizeT(tok[1], &k)) {
            return bad("beta needs a cluster id and vocab values");
          }
          if (k >= num_clusters) return bad("beta cluster id out of range");
          if (pa.rows_seen[k]) return bad("duplicate beta row");
          pa.rows_seen[k] = true;
          for (size_t l = 0; l < pa.info.vocab_size; ++l) {
            if (!ParseDouble(tok[2 + l], &pa.beta(k, l))) {
              return bad("beta has malformed value");
            }
          }
        } else if (cmd == "gaussian") {
          if (attrs.empty() ||
              attrs.back().info.kind != AttributeKind::kNumerical) {
            return bad("gaussian without a preceding numerical attribute");
          }
          PendingAttr& pa = attrs.back();
          size_t k = 0;
          double mean = 0.0;
          double variance = 0.0;
          if (tok.size() != 4 || !ParseSizeT(tok[1], &k) ||
              !ParseDouble(tok[2], &mean) ||
              !ParseDouble(tok[3], &variance)) {
            return bad("gaussian needs cluster, mean, variance");
          }
          if (k >= num_clusters) {
            return bad("gaussian cluster id out of range");
          }
          if (pa.rows_seen[k]) return bad("duplicate gaussian row");
          if (!std::isfinite(mean) || !std::isfinite(variance) ||
              variance <= 0.0) {
            return bad("gaussian needs finite mean and positive variance");
          }
          pa.rows_seen[k] = true;
          pa.gaussians[k] = {mean, variance};
        } else {
          return bad("unknown record type");
        }
        return Status::OK();
      }));

  // Completeness checks: a truncated file is an error, not a partial model.
  auto incomplete = [&](const char* why) {
    return Status::IoError(StrFormat("%s: %s", path.c_str(), why));
  };
  if (!version_seen) return incomplete("missing genclus_model header");
  if (num_clusters == 0) return incomplete("missing clusters record");
  if (!nodes_seen) return incomplete("missing nodes record");
  if (!objective_seen) return incomplete("missing objective record");
  if (num_nodes > 0 && model.theta.empty()) {
    return incomplete("missing theta rows");
  }
  for (size_t v = 0; v < theta_seen.size(); ++v) {
    if (!theta_seen[v]) {
      return incomplete("truncated file: missing theta rows");
    }
  }
  for (PendingAttr& pa : attrs) {
    for (size_t k = 0; k < num_clusters; ++k) {
      if (!pa.rows_seen[k]) {
        return incomplete("truncated file: missing component rows");
      }
    }
    model.attributes.push_back(pa.info);
    if (pa.info.kind == AttributeKind::kCategorical) {
      AttributeComponents comp = AttributeComponents::CategoricalUniform(
          num_clusters, pa.info.vocab_size);
      *comp.mutable_beta() = std::move(pa.beta);
      model.components.push_back(std::move(comp));
    } else {
      std::vector<GaussianDistribution> gaussians;
      gaussians.reserve(num_clusters);
      for (const auto& [mean, variance] : pa.gaussians) {
        gaussians.emplace_back(mean, variance);
      }
      model.components.push_back(
          AttributeComponents::Numerical(std::move(gaussians)));
    }
  }
  GENCLUS_RETURN_IF_ERROR(model.Validate());
  return model;
}

}  // namespace genclus
