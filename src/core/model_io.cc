#include "core/model_io.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iterator>
#include <span>
#include <sstream>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/check.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "hin/io.h"

namespace genclus {

namespace {

constexpr int kModelFormatVersion = 1;

// --------------------------------------------------------------------------
// Binary container plumbing (layout documented in model_io.h).

constexpr char kBinaryMagic[8] = {'G', 'E', 'N', 'C', 'L', 'U', 'S', 'B'};
constexpr uint32_t kBinaryVersion = 1;
constexpr size_t kBinaryHeaderSize = 64;
constexpr size_t kBinaryAlignment = 64;

uint64_t Fnv1a64(const uint8_t* data, size_t size) {
  uint64_t hash = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

size_t RoundUpTo(size_t value, size_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

// The container is defined little-endian; on the (guarded) little-endian
// hosts a memcpy of the native representation is exactly that encoding.
Status RequireLittleEndian() {
  if (std::endian::native != std::endian::little) {
    return Status::FailedPrecondition(
        "binary model I/O is little-endian only; use the text format on "
        "this host");
  }
  return Status::OK();
}

void AppendBytes(std::vector<uint8_t>* out, const void* src, size_t n) {
  const uint8_t* bytes = static_cast<const uint8_t*>(src);
  out->insert(out->end(), bytes, bytes + n);
}

template <typename T>
void AppendScalar(std::vector<uint8_t>* out, T value) {
  AppendBytes(out, &value, sizeof(T));
}

// Zero-pads `out` up to `size` (never shrinks).
void PadTo(std::vector<uint8_t>* out, size_t size) {
  GENCLUS_DCHECK(size >= out->size());
  out->resize(size, 0);
}

// Commits `chunks` to `path` atomically: the bytes go to a sibling
// `path + ".tmp"` first, are flushed (and fsync'd where available) there,
// and only a successful temp file is renamed over the target. A crash —
// or an injected "model_io.save" fault — mid-write therefore never
// replaces a good model file with a half-written one; at worst a .tmp
// debris file remains next to the intact target.
Status CommitFileAtomic(const std::string& path,
                        std::initializer_list<std::span<const uint8_t>>
                            chunks) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError(
        StrFormat("cannot open '%s' for writing", tmp.c_str()));
  }
  auto fail = [&](const char* what) {
    std::fclose(file);
    std::remove(tmp.c_str());
    return Status::IoError(StrFormat("%s '%s' failed", what, tmp.c_str()));
  };
  // Crash injection: write only half of the first chunk, close, and
  // report failure — the temp debris a real crash would leave. The
  // target must stay intact (model_io_test pins this).
  GENCLUS_FAILPOINT("model_io.save", {
    if (chunks.size() > 0 && chunks.begin()->size() > 0) {
      std::fwrite(chunks.begin()->data(), 1, chunks.begin()->size() / 2,
                  file);
    }
    std::fclose(file);
    return Status::IoError(
        StrFormat("injected crash while writing '%s'", tmp.c_str()));
  });
  for (const std::span<const uint8_t> chunk : chunks) {
    if (chunk.empty()) continue;
    if (std::fwrite(chunk.data(), 1, chunk.size(), file) != chunk.size()) {
      return fail("write to");
    }
  }
  if (std::fflush(file) != 0) return fail("flush of");
#if defined(__unix__) || defined(__APPLE__)
  // Durability before visibility: rename must never publish a file whose
  // bytes still live only in the page cache.
  if (fsync(fileno(file)) != 0) return fail("fsync of");
#endif
  if (std::fclose(file) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(StrFormat("close of '%s' failed", tmp.c_str()));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(StrFormat("rename of '%s' over '%s' failed",
                                     tmp.c_str(), path.c_str()));
  }
  return Status::OK();
}

std::span<const uint8_t> BytesOf(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

std::span<const uint8_t> BytesOf(const std::vector<uint8_t>& v) {
  return {v.data(), v.size()};
}

// Bounds-checked forward cursor over a loaded file image. Every read
// fails (returns false) instead of running past the buffer, so a
// truncated or lying file surfaces as a clean error at the call site.
class ByteReader {
 public:
  ByteReader(const std::vector<uint8_t>& bytes, size_t offset)
      : bytes_(bytes), offset_(offset) {}

  bool Read(void* dst, size_t n) {
    if (n > bytes_.size() - offset_) return false;
    std::memcpy(dst, bytes_.data() + offset_, n);
    offset_ += n;
    return true;
  }

  template <typename T>
  bool ReadScalar(T* out) {
    return Read(out, sizeof(T));
  }

  // u32 length-prefixed string.
  bool ReadString(std::string* out) {
    uint32_t length = 0;
    if (!ReadScalar(&length)) return false;
    if (length > bytes_.size() - offset_) return false;
    out->assign(reinterpret_cast<const char*>(bytes_.data()) + offset_,
                length);
    offset_ += length;
    return true;
  }

  bool SeekTo(size_t offset) {
    if (offset > bytes_.size()) return false;
    offset_ = offset;
    return true;
  }

  size_t offset() const { return offset_; }
  size_t remaining() const { return bytes_.size() - offset_; }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t offset_;
};

}  // namespace

Status SaveModel(const Model& model, const std::string& path) {
  GENCLUS_RETURN_IF_ERROR(model.Validate());
  // Serialize to memory first, then commit atomically: `path` either
  // keeps its previous contents or holds the complete new model, never a
  // torn mix.
  std::ostringstream out;
  // Round-trip exactness: shortest representation that parses back to the
  // same double (same convention as SaveDataset).
  out << std::setprecision(17);
  out << "# genclus trained model\n";
  out << "genclus_model " << kModelFormatVersion << "\n";
  out << "clusters " << model.num_clusters() << "\n";
  out << "nodes " << model.num_nodes() << "\n";
  out << "theta_shards " << model.theta_shards << "\n";
  out << "objective " << model.objective << "\n";
  for (size_t r = 0; r < model.gamma.size(); ++r) {
    out << "link_type " << model.link_types[r] << " " << model.gamma[r]
        << "\n";
  }
  for (size_t v = 0; v < model.theta.rows(); ++v) {
    out << "theta " << v;
    const double* row = model.theta.Row(v);
    for (size_t k = 0; k < model.theta.cols(); ++k) out << " " << row[k];
    out << "\n";
  }
  for (size_t a = 0; a < model.components.size(); ++a) {
    const ModelAttributeInfo& info = model.attributes[a];
    const AttributeComponents& comp = model.components[a];
    if (info.kind == AttributeKind::kCategorical) {
      out << "attribute categorical " << info.name << " " << info.vocab_size
          << "\n";
      for (size_t k = 0; k < comp.beta().rows(); ++k) {
        out << "beta " << k;
        const double* row = comp.beta().Row(k);
        for (size_t l = 0; l < comp.beta().cols(); ++l) {
          out << " " << row[l];
        }
        out << "\n";
      }
    } else {
      out << "attribute numerical " << info.name << "\n";
      for (size_t k = 0; k < comp.num_clusters(); ++k) {
        const GaussianDistribution& g =
            comp.gaussian(static_cast<ClusterId>(k));
        out << "gaussian " << k << " " << g.mean() << " " << g.variance()
            << "\n";
      }
    }
  }
  const std::string text = std::move(out).str();
  return CommitFileAtomic(path, {BytesOf(text)});
}

Result<Model> LoadModel(const std::string& path) {
  // Parse state. Header records (version, clusters, nodes) must precede
  // the bulk sections so matrices can be sized up front.
  bool version_seen = false;
  size_t num_clusters = 0;
  size_t num_nodes = 0;
  bool nodes_seen = false;
  bool objective_seen = false;

  Model model;

  struct PendingAttr {
    ModelAttributeInfo info;
    Matrix beta;                   // categorical
    std::vector<bool> rows_seen;   // per-cluster component rows
    std::vector<std::pair<double, double>> gaussians;  // mean, variance
  };
  std::vector<PendingAttr> attrs;
  std::vector<bool> theta_seen;

  GENCLUS_RETURN_IF_ERROR(ForEachTextRecord(
      path,
      [&](size_t line_no,
          const std::vector<std::string>& tok) -> Status {
        const std::string& cmd = tok[0];
        auto bad = [&](const char* why) {
          return RecordError(path, line_no, why);
        };
        if (cmd == "genclus_model") {
          if (version_seen) return bad("duplicate genclus_model record");
          size_t version = 0;
          if (tok.size() != 2 || !ParseSizeT(tok[1], &version)) {
            return bad("genclus_model needs a version number");
          }
          if (version != static_cast<size_t>(kModelFormatVersion)) {
            return bad("unsupported model format version");
          }
          version_seen = true;
          return Status::OK();
        }
        if (!version_seen) {
          return bad("file does not start with a genclus_model header");
        }
        if (cmd == "clusters") {
          // Header records are single-shot: buffers below are sized from
          // them, so a re-declaration would desynchronize bounds checks.
          if (num_clusters != 0) return bad("duplicate clusters record");
          if (tok.size() != 2 || !ParseSizeT(tok[1], &num_clusters)) {
            return bad("clusters needs a count");
          }
          if (num_clusters < 2) return bad("clusters must be >= 2");
        } else if (cmd == "nodes") {
          if (nodes_seen) return bad("duplicate nodes record");
          if (tok.size() != 2 || !ParseSizeT(tok[1], &num_nodes)) {
            return bad("nodes needs a count");
          }
          nodes_seen = true;
        } else if (cmd == "theta_shards") {
          // Optional (files before the sharded-Θ format keep default 1).
          if (tok.size() != 2 ||
              !ParseSizeT(tok[1], &model.theta_shards) ||
              model.theta_shards == 0) {
            return bad("theta_shards needs a positive count");
          }
        } else if (cmd == "objective") {
          if (objective_seen) return bad("duplicate objective record");
          if (tok.size() != 2 || !ParseDouble(tok[1], &model.objective)) {
            return bad("objective needs a value");
          }
          objective_seen = true;
        } else if (cmd == "link_type") {
          double g = 0.0;
          if (tok.size() != 3 || !ParseDouble(tok[2], &g)) {
            return bad("link_type needs a name and a strength");
          }
          if (!std::isfinite(g) || g < 0.0) {
            return bad("link strength must be finite and >= 0");
          }
          model.link_types.push_back(tok[1]);
          model.gamma.push_back(g);
        } else if (cmd == "theta") {
          if (num_clusters == 0 || !nodes_seen) {
            return bad("theta before clusters/nodes header");
          }
          if (model.theta.empty() && num_nodes > 0) {
            model.theta = Matrix(num_nodes, num_clusters);
            theta_seen.assign(num_nodes, false);
          }
          size_t v = 0;
          if (tok.size() != 2 + num_clusters || !ParseSizeT(tok[1], &v)) {
            return bad("theta needs a node id and K values");
          }
          if (v >= num_nodes) return bad("theta node id out of range");
          if (theta_seen[v]) return bad("duplicate theta row");
          theta_seen[v] = true;
          for (size_t k = 0; k < num_clusters; ++k) {
            if (!ParseDouble(tok[2 + k], &model.theta(v, k)) ||
                !std::isfinite(model.theta(v, k))) {
              return bad("theta has malformed value");
            }
          }
        } else if (cmd == "attribute") {
          if (num_clusters == 0) return bad("attribute before clusters");
          if (tok.size() < 3) return bad("attribute needs kind and name");
          PendingAttr pa;
          pa.info.name = tok[2];
          pa.rows_seen.assign(num_clusters, false);
          if (tok[1] == "categorical") {
            if (tok.size() != 4 ||
                !ParseSizeT(tok[3], &pa.info.vocab_size) ||
                pa.info.vocab_size == 0) {
              return bad("categorical attribute needs a vocabulary size");
            }
            pa.info.kind = AttributeKind::kCategorical;
            pa.beta = Matrix(num_clusters, pa.info.vocab_size);
          } else if (tok[1] == "numerical") {
            if (tok.size() != 3) return bad("numerical attribute: extra fields");
            pa.info.kind = AttributeKind::kNumerical;
            pa.gaussians.assign(num_clusters, {0.0, 0.0});
          } else {
            return bad("unknown attribute kind");
          }
          attrs.push_back(std::move(pa));
        } else if (cmd == "beta") {
          if (attrs.empty() ||
              attrs.back().info.kind != AttributeKind::kCategorical) {
            return bad("beta without a preceding categorical attribute");
          }
          PendingAttr& pa = attrs.back();
          size_t k = 0;
          if (tok.size() != 2 + pa.info.vocab_size ||
              !ParseSizeT(tok[1], &k)) {
            return bad("beta needs a cluster id and vocab values");
          }
          if (k >= num_clusters) return bad("beta cluster id out of range");
          if (pa.rows_seen[k]) return bad("duplicate beta row");
          pa.rows_seen[k] = true;
          for (size_t l = 0; l < pa.info.vocab_size; ++l) {
            if (!ParseDouble(tok[2 + l], &pa.beta(k, l))) {
              return bad("beta has malformed value");
            }
          }
        } else if (cmd == "gaussian") {
          if (attrs.empty() ||
              attrs.back().info.kind != AttributeKind::kNumerical) {
            return bad("gaussian without a preceding numerical attribute");
          }
          PendingAttr& pa = attrs.back();
          size_t k = 0;
          double mean = 0.0;
          double variance = 0.0;
          if (tok.size() != 4 || !ParseSizeT(tok[1], &k) ||
              !ParseDouble(tok[2], &mean) ||
              !ParseDouble(tok[3], &variance)) {
            return bad("gaussian needs cluster, mean, variance");
          }
          if (k >= num_clusters) {
            return bad("gaussian cluster id out of range");
          }
          if (pa.rows_seen[k]) return bad("duplicate gaussian row");
          if (!std::isfinite(mean) || !std::isfinite(variance) ||
              variance <= 0.0) {
            return bad("gaussian needs finite mean and positive variance");
          }
          pa.rows_seen[k] = true;
          pa.gaussians[k] = {mean, variance};
        } else {
          return bad("unknown record type");
        }
        return Status::OK();
      }));

  // Completeness checks: a truncated file is an error, not a partial model.
  auto incomplete = [&](const char* why) {
    return Status::IoError(StrFormat("%s: %s", path.c_str(), why));
  };
  if (!version_seen) return incomplete("missing genclus_model header");
  if (num_clusters == 0) return incomplete("missing clusters record");
  if (!nodes_seen) return incomplete("missing nodes record");
  if (!objective_seen) return incomplete("missing objective record");
  if (num_nodes > 0 && model.theta.empty()) {
    return incomplete("missing theta rows");
  }
  for (size_t v = 0; v < theta_seen.size(); ++v) {
    if (!theta_seen[v]) {
      return incomplete("truncated file: missing theta rows");
    }
  }
  for (PendingAttr& pa : attrs) {
    for (size_t k = 0; k < num_clusters; ++k) {
      if (!pa.rows_seen[k]) {
        return incomplete("truncated file: missing component rows");
      }
    }
    model.attributes.push_back(pa.info);
    if (pa.info.kind == AttributeKind::kCategorical) {
      AttributeComponents comp = AttributeComponents::CategoricalUniform(
          num_clusters, pa.info.vocab_size);
      *comp.mutable_beta() = std::move(pa.beta);
      model.components.push_back(std::move(comp));
    } else {
      std::vector<GaussianDistribution> gaussians;
      gaussians.reserve(num_clusters);
      for (const auto& [mean, variance] : pa.gaussians) {
        gaussians.emplace_back(mean, variance);
      }
      model.components.push_back(
          AttributeComponents::Numerical(std::move(gaussians)));
    }
  }
  GENCLUS_RETURN_IF_ERROR(model.Validate());
  return model;
}

namespace {

// Serializes everything after the 64-byte header: objective, link types
// + gammas, components, the aligned shard table and the raw Θ blocks.
// Shared by SaveModelBinary and Model::Fingerprint, so the fingerprint
// IS the container's payload checksum.
std::vector<uint8_t> BuildModelPayload(const Model& model) {
  const size_t num_clusters = model.num_clusters();

  std::vector<uint8_t> payload;
  AppendScalar(&payload, model.objective);

  AppendScalar(&payload, static_cast<uint64_t>(model.link_types.size()));
  for (const std::string& name : model.link_types) {
    AppendScalar(&payload, static_cast<uint32_t>(name.size()));
    AppendBytes(&payload, name.data(), name.size());
  }
  for (double gamma : model.gamma) AppendScalar(&payload, gamma);

  AppendScalar(&payload, static_cast<uint64_t>(model.components.size()));
  for (size_t a = 0; a < model.components.size(); ++a) {
    const ModelAttributeInfo& info = model.attributes[a];
    const AttributeComponents& comp = model.components[a];
    const bool categorical = info.kind == AttributeKind::kCategorical;
    AppendScalar(&payload, static_cast<uint8_t>(categorical ? 0 : 1));
    AppendScalar(&payload, static_cast<uint32_t>(info.name.size()));
    AppendBytes(&payload, info.name.data(), info.name.size());
    AppendScalar(&payload,
                 static_cast<uint64_t>(categorical ? info.vocab_size : 0));
    if (categorical) {
      AppendBytes(&payload, comp.beta().data().data(),
                  num_clusters * info.vocab_size * sizeof(double));
    } else {
      for (size_t k = 0; k < num_clusters; ++k) {
        const GaussianDistribution& g =
            comp.gaussian(static_cast<ClusterId>(k));
        AppendScalar(&payload, g.mean());
        AppendScalar(&payload, g.variance());
      }
    }
  }

  // Shard table, then each shard's raw Θ block, all 64-byte aligned in
  // the file. The header is itself 64 bytes, so aligning payload offsets
  // aligns file offsets too.
  const ShardPartition partition = model.ThetaPartition();
  const size_t num_shards = partition.num_shards();
  PadTo(&payload, RoundUpTo(payload.size(), kBinaryAlignment));
  struct ShardEntry {
    uint64_t node_begin, node_count, theta_offset, theta_bytes;
  };
  std::vector<ShardEntry> table(num_shards);
  size_t cursor = payload.size() + num_shards * sizeof(ShardEntry);
  for (size_t s = 0; s < num_shards; ++s) {
    cursor = RoundUpTo(cursor, kBinaryAlignment);
    const size_t begin = partition.begin(s);
    const size_t count = partition.end(s) - begin;
    table[s] = {begin, count, kBinaryHeaderSize + cursor,
                count * num_clusters * sizeof(double)};
    cursor += table[s].theta_bytes;
  }
  for (const ShardEntry& entry : table) {
    AppendScalar(&payload, entry.node_begin);
    AppendScalar(&payload, entry.node_count);
    AppendScalar(&payload, entry.theta_offset);
    AppendScalar(&payload, entry.theta_bytes);
  }
  for (const ShardEntry& entry : table) {
    PadTo(&payload, entry.theta_offset - kBinaryHeaderSize);
    AppendBytes(&payload,
                model.theta.data().data() + entry.node_begin * num_clusters,
                entry.theta_bytes);
  }
  return payload;
}

}  // namespace

uint64_t Model::Fingerprint() const {
  const std::vector<uint8_t> payload = BuildModelPayload(*this);
  return Fnv1a64(payload.data(), payload.size());
}

Status SaveModelBinary(const Model& model, const std::string& path) {
  GENCLUS_RETURN_IF_ERROR(model.Validate());
  GENCLUS_RETURN_IF_ERROR(RequireLittleEndian());
  const size_t num_nodes = model.num_nodes();
  const size_t num_clusters = model.num_clusters();
  std::vector<uint8_t> payload = BuildModelPayload(model);

  std::vector<uint8_t> header;
  header.reserve(kBinaryHeaderSize);
  AppendBytes(&header, kBinaryMagic, sizeof(kBinaryMagic));
  AppendScalar(&header, kBinaryVersion);
  AppendScalar(&header, uint32_t{0});  // flags
  AppendScalar(&header, static_cast<uint64_t>(payload.size()));
  AppendScalar(&header, Fnv1a64(payload.data(), payload.size()));
  AppendScalar(&header, static_cast<uint64_t>(num_nodes));
  AppendScalar(&header, static_cast<uint64_t>(num_clusters));
  AppendScalar(&header, static_cast<uint64_t>(model.theta_shards));
  PadTo(&header, kBinaryHeaderSize);  // reserved tail

  return CommitFileAtomic(path, {BytesOf(header), BytesOf(payload)});
}

Result<Model> LoadModelBinary(const std::string& path) {
  GENCLUS_RETURN_IF_ERROR(RequireLittleEndian());
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError(
        StrFormat("cannot open '%s' for reading", path.c_str()));
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  // Truncation injection: tests chop the file image in half to prove
  // every downstream bounds check turns it into a clean IoError.
  GENCLUS_FAILPOINT("model_io.load", bytes.resize(bytes.size() / 2));
  auto bad = [&](const char* why) {
    return Status::IoError(StrFormat("%s: %s", path.c_str(), why));
  };
  if (bytes.size() < kBinaryHeaderSize) {
    return bad("truncated binary model header");
  }
  if (std::memcmp(bytes.data(), kBinaryMagic, sizeof(kBinaryMagic)) != 0) {
    return bad("not a genclus binary model (bad magic)");
  }
  ByteReader header(bytes, sizeof(kBinaryMagic));
  uint32_t version = 0;
  uint32_t flags = 0;
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
  uint64_t num_nodes64 = 0;
  uint64_t num_clusters64 = 0;
  uint64_t num_shards64 = 0;
  // Reads within the (size-checked) 64-byte header cannot fail.
  header.ReadScalar(&version);
  header.ReadScalar(&flags);
  header.ReadScalar(&payload_size);
  header.ReadScalar(&checksum);
  header.ReadScalar(&num_nodes64);
  header.ReadScalar(&num_clusters64);
  header.ReadScalar(&num_shards64);
  if (version != kBinaryVersion) {
    return bad("unsupported binary model format version");
  }
  if (flags != 0) return bad("unsupported binary model flags");
  if (payload_size != bytes.size() - kBinaryHeaderSize) {
    return bad("payload size does not match the file (truncated?)");
  }
  if (checksum != Fnv1a64(bytes.data() + kBinaryHeaderSize, payload_size)) {
    return bad("payload checksum mismatch (corrupt file)");
  }
  const size_t num_nodes = static_cast<size_t>(num_nodes64);
  const size_t num_clusters = static_cast<size_t>(num_clusters64);
  if (num_shards64 < 1 ||
      num_shards64 > std::max<uint64_t>(1, num_nodes64)) {
    return bad("theta shard count out of range");
  }
  // Reject absurd extents before sizing Θ: every row must physically fit
  // in the payload, so a lying header cannot trigger a huge allocation.
  if (num_clusters != 0 &&
      num_nodes > payload_size / sizeof(double) / num_clusters) {
    return bad("theta extent exceeds the file");
  }

  Model model;
  model.theta_shards = static_cast<size_t>(num_shards64);
  ByteReader reader(bytes, kBinaryHeaderSize);
  if (!reader.ReadScalar(&model.objective)) return bad("truncated objective");

  uint64_t num_link_types = 0;
  if (!reader.ReadScalar(&num_link_types) ||
      num_link_types > reader.remaining()) {
    return bad("truncated link-type section");
  }
  model.link_types.resize(static_cast<size_t>(num_link_types));
  for (std::string& name : model.link_types) {
    if (!reader.ReadString(&name)) return bad("truncated link-type name");
  }
  model.gamma.resize(static_cast<size_t>(num_link_types));
  for (double& gamma : model.gamma) {
    if (!reader.ReadScalar(&gamma)) return bad("truncated gamma values");
  }

  uint64_t num_attributes = 0;
  if (!reader.ReadScalar(&num_attributes) ||
      num_attributes > reader.remaining()) {
    return bad("truncated attribute section");
  }
  for (uint64_t a = 0; a < num_attributes; ++a) {
    uint8_t kind = 0;
    ModelAttributeInfo info;
    uint64_t vocab = 0;
    if (!reader.ReadScalar(&kind) || !reader.ReadString(&info.name) ||
        !reader.ReadScalar(&vocab)) {
      return bad("truncated attribute record");
    }
    if (kind == 0) {
      info.kind = AttributeKind::kCategorical;
      info.vocab_size = static_cast<size_t>(vocab);
      if (info.vocab_size == 0 || num_clusters == 0 ||
          info.vocab_size >
              reader.remaining() / sizeof(double) / num_clusters) {
        return bad("categorical attribute extent exceeds the file");
      }
      const size_t cells = num_clusters * info.vocab_size;
      AttributeComponents comp = AttributeComponents::CategoricalUniform(
          num_clusters, info.vocab_size);
      if (!reader.Read(comp.mutable_beta()->data().data(),
                       cells * sizeof(double))) {
        return bad("truncated beta rows");
      }
      model.components.push_back(std::move(comp));
    } else if (kind == 1) {
      info.kind = AttributeKind::kNumerical;
      if (vocab != 0) return bad("numerical attribute declares a vocabulary");
      std::vector<GaussianDistribution> gaussians;
      gaussians.reserve(num_clusters);
      for (size_t k = 0; k < num_clusters; ++k) {
        double mean = 0.0;
        double variance = 0.0;
        if (!reader.ReadScalar(&mean) || !reader.ReadScalar(&variance)) {
          return bad("truncated gaussian rows");
        }
        if (!std::isfinite(mean) || !std::isfinite(variance) ||
            variance <= 0.0) {
          return bad("gaussian needs finite mean and positive variance");
        }
        gaussians.emplace_back(mean, variance);
      }
      model.components.push_back(
          AttributeComponents::Numerical(std::move(gaussians)));
    } else {
      return bad("unknown attribute kind");
    }
    model.attributes.push_back(std::move(info));
  }

  // Shard table at the next 64-byte boundary; entries must tile [0, n)
  // in ascending order and each Θ block must lie inside the file.
  if (!reader.SeekTo(RoundUpTo(reader.offset(), kBinaryAlignment))) {
    return bad("truncated shard table");
  }
  if (num_nodes > 0) model.theta = Matrix(num_nodes, num_clusters);
  uint64_t expected_begin = 0;
  for (uint64_t s = 0; s < num_shards64; ++s) {
    uint64_t node_begin = 0;
    uint64_t node_count = 0;
    uint64_t theta_offset = 0;
    uint64_t theta_bytes = 0;
    if (!reader.ReadScalar(&node_begin) || !reader.ReadScalar(&node_count) ||
        !reader.ReadScalar(&theta_offset) ||
        !reader.ReadScalar(&theta_bytes)) {
      return bad("truncated shard table");
    }
    if (node_begin != expected_begin || node_count > num_nodes64 ||
        node_begin + node_count > num_nodes64) {
      return bad("shard table does not tile the node range");
    }
    expected_begin = node_begin + node_count;
    if (theta_bytes !=
        node_count * num_clusters64 * sizeof(double)) {
      return bad("shard extent does not match its node count");
    }
    if (theta_offset % kBinaryAlignment != 0) {
      return bad("misaligned theta block");
    }
    if (theta_offset < kBinaryHeaderSize || theta_offset > bytes.size() ||
        theta_bytes > bytes.size() - theta_offset) {
      return bad("theta block out of bounds");
    }
    if (theta_bytes > 0) {
      std::memcpy(model.theta.data().data() +
                      static_cast<size_t>(node_begin) * num_clusters,
                  bytes.data() + theta_offset,
                  static_cast<size_t>(theta_bytes));
    }
  }
  if (expected_begin != num_nodes64) {
    return bad("shard table does not tile the node range");
  }

  GENCLUS_RETURN_IF_ERROR(model.Validate());
  return model;
}

}  // namespace genclus
