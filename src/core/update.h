// Incremental model maintenance: the middle ground between fit-once and
// refit-from-scratch for HINs that keep growing.
//
// Three freshness tiers, cheapest first:
//
//   * ApplyUpdates — streaming: folds batches of NetworkDelta (hin/delta.h)
//     into an existing Dataset + Model in place. New nodes get Theta rows
//     from the fold-in update (the same Eq. 10/11 arithmetic serving
//     uses), touched survivors are re-solved with a few Jacobi rounds,
//     and components are optionally re-estimated from the updated Theta.
//     No EM sweeps over the full network.
//
//   * Engine::Refit (declared in core/engine.h, defined here) — nightly:
//     a full Algorithm 1 run on the grown dataset, warm-started from the
//     previous Model. Surviving nodes keep their Theta rows, new nodes
//     are seeded by the fold-in path, and components/gamma carry over, so
//     convergence costs iterations-to-delta instead of
//     iterations-from-scratch. Combine with
//     GenClusConfig::block_convergence_tol to also skip already-converged
//     node blocks inside each sweep.
//
//   * Engine::Fit — the from-scratch baseline.
//
// A refreshed model reaches production through Server::SwapModel
// (core/server.h) with zero downtime; Model::Fingerprint() identifies
// which model answered which request.
#pragma once

#include <span>

#include "core/engine.h"
#include "hin/delta.h"

namespace genclus {

/// Options of Engine::Refit. The cluster count always comes from the
/// previous model (a refit cannot change K); an empty
/// config.initial_gamma means "carry the previous model's gamma".
struct RefitOptions {
  GenClusConfig config;
  /// Fixed-point sweeps seeding each new node's Theta row (>= 1).
  size_t seed_sweeps = ServeDefaults::kInferenceIterations;
  /// Notified after every outer iteration; null = no observation.
  ProgressObserver* observer = nullptr;
  /// Polled between outer iterations; null = not cancellable.
  const CancellationToken* cancellation = nullptr;
};

/// Options of ApplyUpdates.
struct UpdateOptions {
  /// Jacobi refinement rounds over the touched node set: every round
  /// re-solves each touched row against a snapshot of the previous
  /// round's full Theta, so the result is independent of iteration order
  /// and deterministic. >= 1.
  size_t rounds = 2;
  /// Fixed-point sweeps per touched row per round (>= 1).
  size_t fold_in_sweeps = ServeDefaults::kInferenceIterations;
  /// Floor applied to updated membership probabilities.
  double theta_floor = ServeDefaults::kThetaFloor;
  /// Re-estimate beta and the Gaussians from the updated Theta after the
  /// rows settle (one pass over all observations). When false, components
  /// are carried unchanged — cheaper, and fine for small deltas.
  bool refresh_components = true;
};

/// What one ApplyUpdates call did.
struct UpdateReport {
  size_t deltas_applied = 0;
  size_t new_nodes = 0;
  size_t new_links = 0;
  size_t new_observations = 0;
  /// Distinct nodes whose Theta rows were re-solved (new nodes, sources
  /// of new links, nodes with new observations).
  size_t touched_nodes = 0;
  double seconds = 0.0;
};

/// Folds `deltas` (applied in order) into `dataset` and `model` in place:
/// the dataset grows via ApplyNetworkDelta, the model gains fold-in Theta
/// rows for new nodes, and every touched row is refined with
/// options.rounds Jacobi rounds. The model's objective field is left at
/// its last fitted value (stale until the next Refit). Requires
/// model->num_nodes() == dataset->network.num_nodes() on entry and the
/// model's attribute/link-type metadata to match the dataset's schema.
/// On error the dataset may have grown by a prefix of the deltas, but the
/// model is only ever mutated after every delta validated and applied.
Result<UpdateReport> ApplyUpdates(Dataset* dataset, Model* model,
                                  std::span<const NetworkDelta> deltas,
                                  const UpdateOptions& options = {});

}  // namespace genclus
