// GenClus (Algorithm 1): the public entry point of the library. Alternates
// cluster optimization (EM over Theta, beta with gamma fixed) and link-type
// strength learning (Newton-Raphson over gamma with Theta fixed) until the
// outer iteration budget or gamma convergence.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/components.h"
#include "core/config.h"
#include "hin/dataset.h"
#include "linalg/matrix.h"

namespace genclus {

/// Snapshot of one outer iteration, for convergence traces (Fig. 10).
struct OuterIterationRecord {
  size_t iteration = 0;
  std::vector<double> gamma;     // strengths after this iteration
  double em_objective = 0.0;     // g1 after the EM step
  double strength_objective = 0.0;  // g2' after the Newton step
  size_t em_iterations = 0;
  double em_seconds = 0.0;
  double strength_seconds = 0.0;
  /// Block sweeps skipped by convergence-aware skipping during this
  /// iteration's EM phase, out of `em_block_sweeps` total (iterations x
  /// reduction blocks). Both 0 when block_convergence_tol == 0.
  size_t em_blocks_skipped = 0;
  size_t em_block_sweeps = 0;
};

/// Full output of a GenClus run.
struct GenClusResult {
  /// Soft clustering: row v is theta_v on the K-simplex.
  Matrix theta;
  /// Learned strength per link type (indexed by LinkTypeId).
  std::vector<double> gamma;
  /// Mixture components per specified attribute (same order as the input).
  std::vector<AttributeComponents> components;
  /// g1 objective at the final iterate.
  double objective = 0.0;
  /// True if the outer loop hit the gamma-change tolerance.
  bool converged = false;
  /// Per-outer-iteration records, including the initial gamma at index 0.
  std::vector<OuterIterationRecord> trace;
  /// Total block sweeps skipped across every EM phase (sum of the trace's
  /// em_blocks_skipped).
  size_t em_blocks_skipped = 0;
  /// Per-block max |Theta| change at the last EM iteration of the final
  /// outer iteration (frozen values for blocks skipped there).
  std::vector<double> em_final_block_deltas;

  /// Hard labels: argmax_k theta(v, k).
  std::vector<uint32_t> HardLabels() const;
};

/// Observer notified after every outer iteration of a training run with
/// the iteration record and the current memberships. Implementations must
/// not retain the Matrix reference beyond the call. Replaces the old
/// ad-hoc SetIterationCallback; pass via FitOptions::observer
/// (core/engine.h) or GenClus::SetProgressObserver.
class ProgressObserver {
 public:
  virtual ~ProgressObserver() = default;

  virtual void OnOuterIteration(const OuterIterationRecord& record,
                                const Matrix& theta) = 0;
};

/// The GenClus algorithm over a network and a user-specified attribute
/// subset. The network and attributes must outlive the instance.
class GenClus {
 public:
  /// `attributes` is the user-specified subset X (may be empty: pure
  /// link-based clustering with strength learning).
  GenClus(const Network* network, std::vector<const Attribute*> attributes,
          GenClusConfig config);
  ~GenClus();

  GenClus(const GenClus&) = delete;
  GenClus& operator=(const GenClus&) = delete;

  /// Observer notified after every outer iteration (may be null). Not
  /// owned; must outlive Run().
  void SetProgressObserver(ProgressObserver* observer);

  /// Cooperative cancellation: Run() polls the token before every outer
  /// iteration and returns StatusCode::kCancelled once it is set. Not
  /// owned; must outlive Run().
  void SetCancellationToken(const CancellationToken* token);

  /// Warm start: Run() begins from this Theta / these components instead
  /// of the best-of-seeds initialization (the refit path, Engine::Refit).
  /// `theta` must be num_nodes x num_clusters with rows on the simplex;
  /// `components` must match the attribute subset in order and shape —
  /// Run() fails with InvalidArgument otherwise. config.warm_start should
  /// stay true, or later outer iterations re-initialize from seeds.
  void SetWarmStart(Matrix theta,
                    std::vector<AttributeComponents> components);

  /// Runs Algorithm 1 and returns the clustering, strengths and trace.
  Result<GenClusResult> Run();

 private:
  const Network* network_;
  std::vector<const Attribute*> attributes_;
  GenClusConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  ProgressObserver* observer_ = nullptr;
  const CancellationToken* cancellation_ = nullptr;
  bool has_warm_start_ = false;
  Matrix warm_theta_;
  std::vector<AttributeComponents> warm_components_;
};

/// Compatibility shim over the Engine/Model API (core/engine.h): resolves
/// attribute names against `dataset` and runs one full training pass,
/// returning the legacy GenClusResult. Prefer Engine::Fit for new code —
/// it returns a persistable Model plus a structured FitReport and supports
/// progress observation and cancellation. Unknown attribute names fail
/// with NotFound.
Result<GenClusResult> RunGenClus(const Dataset& dataset,
                                 const std::vector<std::string>& attributes,
                                 const GenClusConfig& config);

}  // namespace genclus
