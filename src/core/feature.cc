#include "core/feature.h"

#include <cmath>

#include "common/check.h"
#include "prob/simplex.h"

namespace genclus {

double CrossEntropyScore(std::span<const double> theta_i,
                         std::span<const double> theta_j) {
  GENCLUS_DCHECK(theta_i.size() == theta_j.size());
  double acc = 0.0;
  for (size_t k = 0; k < theta_i.size(); ++k) {
    if (theta_j[k] == 0.0) continue;
    const double ti =
        theta_i[k] < kDefaultThetaFloor ? kDefaultThetaFloor : theta_i[k];
    acc += theta_j[k] * std::log(ti);
  }
  return acc;
}

double LinkFeature(std::span<const double> theta_i,
                   std::span<const double> theta_j, double gamma_r,
                   double weight) {
  return gamma_r * weight * CrossEntropyScore(theta_i, theta_j);
}

double StructuralScore(const Network& network, const Matrix& theta,
                       const std::vector<double>& gamma) {
  GENCLUS_CHECK_EQ(theta.rows(), network.num_nodes());
  GENCLUS_CHECK_EQ(gamma.size(), network.schema().num_link_types());
  const size_t k = theta.cols();
  double total = 0.0;
  for (NodeId v = 0; v < network.num_nodes(); ++v) {
    std::span<const double> theta_v(theta.Row(v), k);
    for (const LinkEntry& e : network.OutLinks(v)) {
      std::span<const double> theta_u(theta.Row(e.neighbor), k);
      total += LinkFeature(theta_v, theta_u, gamma[e.type], e.weight);
    }
  }
  return total;
}

double PerRelationScore(const Network& network, const Matrix& theta,
                        LinkTypeId relation) {
  GENCLUS_CHECK_EQ(theta.rows(), network.num_nodes());
  GENCLUS_CHECK(network.schema().ValidLinkType(relation));
  const size_t k = theta.cols();
  double total = 0.0;
  for (NodeId v = 0; v < network.num_nodes(); ++v) {
    std::span<const double> theta_v(theta.Row(v), k);
    for (const LinkEntry& e : network.OutLinks(v)) {
      if (e.type != relation) continue;
      std::span<const double> theta_u(theta.Row(e.neighbor), k);
      total += e.weight * CrossEntropyScore(theta_v, theta_u);
    }
  }
  return total;
}

}  // namespace genclus
