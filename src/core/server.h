// The serving tier: a Server owns the Plan/Execute pipeline behind a
// bounded MPMC request queue with backpressure and micro-batching.
//
//   Submit(query)  --TryPush-->  BoundedQueue  --PopBatch-->  N workers
//     (never blocks;               (bounded,       (coalesce up to
//      queue full =>                backpressure)   max_batch queries,
//      kResourceExhausted)                          linger max_wait_us)
//
// Each worker thread owns its own InferSession (and therefore its own
// ServeWorkspace), so micro-batches execute concurrently — no global
// execution mutex. The admission loop coalesces queued single queries
// into micro-batches sized to the SpMM sweet spot (serve_bench maps the
// batch-size curve; max_batch defaults into its knee). Because every
// query's sweep depends only on its own links and observations, the
// per-query answers are bitwise identical to Engine::InferBatch no matter
// how the admission loop happens to batch them — the contract
// tests/core/server_test.cc pins under concurrency.
//
// Results are delivered per query through promises: Submit hands back a
// std::future<QueryResult> that becomes ready when some worker finishes
// the query's micro-batch. SubmitBatch enqueues a whole batch and returns
// one future for the assembled InferenceResult. Stop() closes the queue
// and — by default — drains it: every admitted request is executed before the
// workers join, so pending futures always complete and nothing dangles
// (the fix for the old Submit's use-after-free on Engine destruction).
// With drain_on_stop = false, requests still queued at Stop() fail fast
// with kCancelled instead of executing.
//
// Deadline-aware robustness (tests/core/server_deadline_test.cc):
//
//   * Every Request carries a Deadline (common/deadline.h) — set per
//     query through the Submit/SubmitBatch overloads or defaulted from
//     ServerOptions::default_timeout_us. Infinite by default: a
//     deadline-free caller pays one is_infinite() branch and nothing else.
//   * Shed at dequeue: a worker drops requests whose deadline has expired
//     (or would expire during the predicted execution) instead of doing
//     work nobody can use. Shed futures resolve with kDeadlineExceeded.
//   * Linger cap: a tight-deadline request caps its micro-batch's
//     coalescing linger so the batch starts executing while that request
//     can still meet its budget.
//   * Cost-based early rejection: when queue-wait + execution EWMAs
//     predict an arriving request cannot meet its deadline, Submit
//     rejects it immediately with kDeadlineExceeded — the cheapest
//     possible shed, before the queue ever holds it.
//   * Graceful degradation: under sustained overload (queue-wait EWMA
//     above degrade_queue_wait_us) workers step inference_iterations down
//     toward min_inference_iterations, trading per-answer sweep count for
//     throughput; answers computed with fewer sweeps are flagged
//     (QueryResult::degraded, ServerStats::degraded) and the tier steps
//     back up once the queue-wait EWMA falls below the recovery threshold.
//
// Every admitted request resolves with a definite outcome — completed,
// kDeadlineExceeded, kCancelled, or kInternal (a worker that caught an
// execution exception fails that batch's futures and keeps serving); the
// accounting invariant `accepted == completed + cancelled + deadline_shed`
// (and `submissions == accepted + rejected + deadline_rejected`) is gated
// by bench/server_bench.cc under 3x overload.
//
// Zero-downtime model hot-swap (tests/core/server_swap_test.cc):
//
//   * The served model lives behind SwapModel() as an RCU-style versioned
//     snapshot: a shared_ptr<const VersionedModel> bundling the model,
//     its BatchPlanner, a monotonically increasing version and the
//     model's content Fingerprint(). SwapModel validates the replacement
//     (ValidateForServing — it may cover MORE nodes than the network,
//     e.g. a Refit on a grown dataset; K must not change) and publishes
//     it under a short mutex; readers take shared_ptr snapshots.
//   * Each worker pins the current snapshot for the duration of one
//     micro-batch: in-flight batches finish (and are attributed) on the
//     model they started with, batches dequeued after the swap plan and
//     execute against the new one. No request is ever dropped or
//     mis-attributed by a swap.
//   * A worker's InferSession/ServeWorkspace is rebuilt lazily on the
//     first batch it runs after a swap (snapshot identity change). A
//     rebuild failure (exercised via the "server.swap_model" failpoint)
//     fails only that batch with kInternal and keeps the worker's old
//     session — the tier keeps serving.
//   * QueryResult::model_version, InferenceResult::model_versions and
//     ServerStats::{model_version, model_fingerprint, model_swaps} stamp
//     exactly which model answered what.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/deadline.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/inference.h"
#include "core/model.h"
#include "hin/network.h"

namespace genclus {

/// Admission and execution knobs of the serving tier.
struct ServerOptions {
  /// Worker threads, each owning one InferSession + ServeWorkspace.
  /// 0 = hardware concurrency.
  size_t num_workers = 2;
  /// Request-queue bound: admissions beyond this many queued queries are
  /// rejected with kResourceExhausted (never queued unboundedly).
  size_t queue_capacity = 1024;
  /// Largest micro-batch a worker coalesces per dequeue. 64 sits at the
  /// knee of serve_bench's batch-size curve: most of the SpMM win of
  /// batch 256 without its queueing delay.
  size_t max_batch = 64;
  /// How long a worker lingers after the first dequeued query for more
  /// arrivals to coalesce. 0 = take only what is already queued. A
  /// request's deadline caps its batch's linger below this.
  size_t max_wait_us = 200;
  /// Stop()/destructor policy: true executes every queued request before
  /// the workers join (pending futures complete with real answers);
  /// false fails still-queued requests fast with kCancelled.
  bool drain_on_stop = true;
  /// Fixed-point sweeps per query (see InferMembership).
  size_t inference_iterations = ServeDefaults::kInferenceIterations;
  /// Floor applied to inferred membership probabilities.
  double theta_floor = ServeDefaults::kThetaFloor;
  /// Θ column-shard count for the batch link term. 0 (default) adopts the
  /// model's stamped `theta_shards`; any other value overrides it
  /// (clamped like ShardPartition::Resolve). Served memberships are
  /// bitwise identical for every choice.
  size_t theta_shards = 0;
  /// Default per-request deadline budget in microseconds, applied to
  /// submissions that do not carry an explicit Deadline. 0 = no default
  /// (deadline-free requests never expire).
  int64_t default_timeout_us = 0;
  /// Reject a deadline-carrying request at Submit when the queue-wait +
  /// execution EWMAs predict it cannot meet its deadline. The cheapest
  /// shed: the request never occupies a queue slot.
  bool cost_based_rejection = true;
  /// Graceful degradation entry threshold: once the queue-wait EWMA
  /// exceeds this many microseconds, workers step their fixed-point
  /// sweep count down (one per micro-batch) toward
  /// min_inference_iterations. 0 = degradation disabled.
  int64_t degrade_queue_wait_us = 0;
  /// Recovery threshold: once the queue-wait EWMA falls below this,
  /// workers step the sweep count back up toward inference_iterations.
  /// 0 = degrade_queue_wait_us / 4. Must be below the entry threshold —
  /// the hysteresis gap prevents oscillation at the boundary.
  int64_t recover_queue_wait_us = 0;
  /// Sweep-count floor degradation never goes below.
  size_t min_inference_iterations = 2;

  Status Validate() const;
};

/// One served query's answer, delivered through Submit's future.
struct QueryResult {
  /// Validation/admission outcome; membership is meaningful only when ok.
  Status status;
  /// Membership over the model's clusters — bitwise identical to what
  /// Engine::InferBatch returns for the same query, unless `degraded`.
  std::vector<double> membership;
  uint32_t hard_label = kNoHardLabel;
  /// True when the answer was computed with fewer fixed-point sweeps
  /// than ServerOptions::inference_iterations because the tier was in
  /// graceful-degradation mode.
  bool degraded = false;
  /// Seconds the query waited in the queue before a worker dequeued it.
  double queue_seconds = 0.0;
  /// Seconds from admission to completion (queue + plan + execute).
  double total_seconds = 0.0;
  /// Version of the model that answered this query (1 for the model the
  /// server was created with, incremented per SwapModel). 0 when the
  /// request failed before execution (rejected, shed, cancelled).
  uint64_t model_version = 0;

  bool ok() const { return status.ok(); }
};

/// Percentiles over the most recent samples of one latency metric
/// (microseconds). Zero count = no samples yet.
struct LatencySummary {
  size_t count = 0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// Observability snapshot of a running Server (Server::Stats()).
struct ServerStats {
  /// Requests admitted into the queue (including not-yet-executed ones).
  size_t accepted = 0;
  /// Requests rejected at admission because the queue was full or the
  /// server was stopping.
  size_t rejected = 0;
  /// Requests rejected at admission because their deadline had already
  /// expired or cost-based rejection predicted they could not meet it.
  size_t deadline_rejected = 0;
  /// Requests whose result has been delivered (including kInternal
  /// failures from a caught execution exception).
  size_t completed = 0;
  /// Requests failed with kCancelled by a non-draining Stop().
  size_t cancelled = 0;
  /// Admitted requests shed at dequeue with kDeadlineExceeded because
  /// their deadline had expired (or would expire during execution).
  size_t deadline_shed = 0;
  /// Queries answered in graceful-degradation mode (fewer sweeps).
  size_t degraded = 0;
  /// Micro-batches executed.
  size_t batches = 0;
  /// Fixed-point sweep count workers are currently using — equals
  /// ServerOptions::inference_iterations except in degradation mode.
  size_t current_inference_iterations = 0;
  /// Admission-control predictions (EWMAs, microseconds): what cost-based
  /// rejection currently assumes a new request will wait / cost.
  double predicted_queue_wait_us = 0.0;
  double predicted_exec_us = 0.0;
  /// Queue depth right now and the highest depth ever observed.
  size_t queue_depth = 0;
  size_t queue_high_water = 0;
  /// Version of the currently served model (1 = the model the server was
  /// created with) and its content fingerprint (Model::Fingerprint).
  uint64_t model_version = 0;
  uint64_t model_fingerprint = 0;
  /// Successful SwapModel calls so far.
  size_t model_swaps = 0;
  /// batch_size_histogram[s] = micro-batches that executed exactly s
  /// queries (index 0 unused; size max_batch + 1).
  std::vector<size_t> batch_size_histogram;
  /// Latency percentiles over the most recent samples: time spent queued,
  /// per-micro-batch plan and execute phases, and admission-to-delivery.
  LatencySummary queue_wait;
  LatencySummary plan;
  LatencySummary exec;
  LatencySummary end_to_end;
};

/// Micro-batching fold-in server over a (network, model) pair. Create it
/// once, Submit from any number of threads, Stop (or destroy) to shut
/// down. The network must outlive the server; the model is either owned
/// (Model / shared_ptr overloads) or borrowed (const Model* overload —
/// must outlive the server and stay unmutated, the contract Engine relies
/// on). SwapModel replaces the served model at runtime with zero dropped
/// requests (see the header comment).
class Server {
 public:
  /// Validates options and model-vs-network consistency, then starts the
  /// worker threads. The returned server is ready to Submit to.
  static Result<std::unique_ptr<Server>> Create(const Network* network,
                                                Model model,
                                                ServerOptions options = {});
  static Result<std::unique_ptr<Server>> Create(const Network* network,
                                                const Model* model,
                                                ServerOptions options = {});
  static Result<std::unique_ptr<Server>> Create(
      const Network* network, std::shared_ptr<const Model> model,
      ServerOptions options = {});

  /// Stops (draining per options) and joins the workers.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admits one query. Returns the future carrying its eventual answer,
  /// or — immediately, never blocking — kResourceExhausted when the queue
  /// is at capacity / kFailedPrecondition when the server is stopped /
  /// kDeadlineExceeded when the deadline has expired or cost-based
  /// rejection predicts it cannot be met. The no-deadline overload
  /// applies ServerOptions::default_timeout_us (infinite when 0).
  Result<std::future<QueryResult>> Submit(NewObjectQuery query);
  Result<std::future<QueryResult>> Submit(NewObjectQuery query,
                                          Deadline deadline);

  /// Admits a whole batch and returns one future for the assembled
  /// InferenceResult: slot i holds query i's status/membership/hard
  /// label, bitwise identical to Engine::InferBatch on the same queries.
  /// Queries that do not fit the queue (or fail deadline admission) fail
  /// their slot with kResourceExhausted / kDeadlineExceeded — the batch
  /// future still completes. Never blocks. `deadline` applies to every
  /// query of the batch.
  std::future<InferenceResult> SubmitBatch(
      std::vector<NewObjectQuery> queries);
  std::future<InferenceResult> SubmitBatch(
      std::vector<NewObjectQuery> queries, Deadline deadline);

  /// Closes the queue (further Submits are rejected) and joins the
  /// workers; pending requests drain or cancel per
  /// ServerOptions::drain_on_stop. Idempotent and thread-safe.
  void Stop() GENCLUS_EXCLUDES(stop_mutex_);

  /// Observability snapshot; callable from any thread at any time. The
  /// stats mutex is held only long enough to copy the rings/histogram —
  /// percentile extraction happens after release, so Stats() never
  /// stalls the workers' per-batch recording.
  ServerStats Stats() const GENCLUS_EXCLUDES(stats_mutex_);

  /// Replaces the served model. Validates the replacement with
  /// Model::ValidateForServing (it may cover more nodes than the network,
  /// never fewer; K must equal the current model's — SubmitBatch
  /// preallocates K-wide result rows at admission, before knowing which
  /// model will answer). On success the new model is published
  /// immediately: micro-batches already dequeued finish on the model they
  /// pinned, every batch dequeued afterwards plans against the new one.
  /// Never blocks request execution; callable from any thread, including
  /// concurrently with Submit/SubmitBatch/Stats.
  Status SwapModel(std::shared_ptr<const Model> model)
      GENCLUS_EXCLUDES(model_mutex_);
  Status SwapModel(Model model) GENCLUS_EXCLUDES(model_mutex_);

  /// Snapshot of the currently served model (keeps it alive even across
  /// a concurrent swap) and its version (1 = creation model).
  std::shared_ptr<const Model> model() const GENCLUS_EXCLUDES(model_mutex_);
  uint64_t model_version() const GENCLUS_EXCLUDES(model_mutex_);
  size_t num_workers() const { return workers_.size(); }
  const ServerOptions& options() const { return options_; }

 private:
  // A whole-batch submission being reassembled from its scattered
  // per-query completions; the last completion fulfills the promise.
  struct BatchCollector;

  // One published model snapshot: the model, the planner built against it
  // (Plan is const — one planner is shared by every worker on that
  // version), the monotonically increasing version and the content
  // fingerprint. Immutable after publication; lifetime managed by
  // shared_ptr so in-flight batches outlive a swap safely.
  struct VersionedModel;

  // One admitted query in flight: delivered either through its own
  // promise (Submit) or into a collector slot (SubmitBatch).
  struct Request {
    NewObjectQuery query;
    std::promise<QueryResult> promise;
    std::shared_ptr<BatchCollector> collector;
    size_t slot = 0;
    size_t num_links = 0;
    size_t num_observations = 0;
    Deadline deadline;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  Server(const Network* network, std::shared_ptr<const VersionedModel> first,
         ServerOptions options);

  // The model snapshot a worker pins for one micro-batch.
  std::shared_ptr<const VersionedModel> CurrentModel() const
      GENCLUS_EXCLUDES(model_mutex_);

  // The deadline a submission actually carries: the explicit one, or the
  // options default when the explicit one is infinite.
  Deadline EffectiveDeadline(Deadline deadline) const;
  // Deadline admission: kDeadlineExceeded when already expired, or when
  // cost_based_rejection's EWMA prediction says the budget cannot be met.
  Status CheckDeadlineAdmissible(
      const Deadline& deadline,
      std::chrono::steady_clock::time_point now) const;
  // Lock-free reads of the admission-prediction EWMAs (microseconds).
  double PredictedQueueWaitMicros() const;
  double PredictedExecMicros() const;
  // Steps current_iterations_ one sweep down (overload) or up (recovery)
  // per executed micro-batch, between min_inference_iterations and
  // inference_iterations, with the configured hysteresis gap.
  void UpdateDegradation(double queue_wait_ewma_us);

  bool Enqueue(Request request, Status* rejection);
  void WorkerLoop();
  void Deliver(Request& request, const InferenceResult& result, size_t row,
               bool degraded, uint64_t model_version,
               double plan_share_seconds, double exec_share_seconds,
               std::chrono::steady_clock::time_point dequeued_at,
               std::chrono::steady_clock::time_point now);
  // Fails one dequeued-but-expired request with kDeadlineExceeded.
  void Shed(Request& request,
            std::chrono::steady_clock::time_point dequeued_at);
  // Fails one live request with `status` (non-draining Stop's kCancelled,
  // or kInternal after a caught execution exception), counting it in
  // `counter` before the promise is fulfilled.
  void Fail(Request& request, Status status, std::atomic<size_t>* counter);
  static void CompleteCollectorSlot(BatchCollector& collector, size_t slot,
                                    Status status, const double* membership,
                                    size_t num_clusters, uint32_t hard_label,
                                    bool degraded, uint64_t model_version,
                                    size_t num_links, size_t num_observations,
                                    double plan_share_seconds,
                                    double exec_share_seconds);

  // options_, network_ and num_clusters_ are written only during
  // construction, before the worker threads start; they need no guard.
  // (num_clusters_ is cached because rejection/shed paths need K without
  // taking the model snapshot, and SwapModel pins it anyway.)
  ServerOptions options_;
  const Network* network_;
  size_t num_clusters_;
  BoundedQueue<Request> queue_;  // internally synchronized
  std::vector<std::thread> workers_;

  // The served model, behind a short mutex: writers (SwapModel) publish a
  // new snapshot, readers (workers, Stats, SubmitBatch) copy the
  // shared_ptr and release. Never held across plan/execute.
  mutable Mutex model_mutex_;
  std::shared_ptr<const VersionedModel> current_model_
      GENCLUS_GUARDED_BY(model_mutex_);
  std::atomic<size_t> swaps_{0};

  // Stop() coordination: set before Close() so a non-draining stop makes
  // workers cancel instead of executing what they pop.
  std::atomic<bool> cancel_pending_{false};
  Mutex stop_mutex_;
  bool stopped_ GENCLUS_GUARDED_BY(stop_mutex_) = false;

  // Stats: counters are atomics (hot, touched per request); the latency
  // sample rings and histogram are guarded by stats_mutex_ and touched
  // once per micro-batch.
  std::atomic<size_t> accepted_{0};
  std::atomic<size_t> rejected_{0};
  std::atomic<size_t> deadline_rejected_{0};
  std::atomic<size_t> completed_{0};
  std::atomic<size_t> cancelled_{0};
  std::atomic<size_t> deadline_shed_{0};
  std::atomic<size_t> degraded_{0};
  std::atomic<size_t> batches_{0};
  // Degradation controller state: the sweep count workers use right now.
  std::atomic<size_t> current_iterations_;
  // Admission-prediction EWMAs, published as bit-cast doubles so Submit
  // reads them lock-free; written by workers under stats_mutex_ (the
  // mutex serializes read-modify-write, the atomic publishes the value).
  std::atomic<uint64_t> queue_wait_ewma_bits_{0};
  std::atomic<uint64_t> exec_ewma_bits_{0};
  struct SampleRing {
    std::vector<double> samples;  // microseconds
    size_t next = 0;
    void Add(double us);
  };
  mutable Mutex stats_mutex_;
  SampleRing queue_wait_us_ GENCLUS_GUARDED_BY(stats_mutex_);
  SampleRing plan_us_ GENCLUS_GUARDED_BY(stats_mutex_);
  SampleRing exec_us_ GENCLUS_GUARDED_BY(stats_mutex_);
  SampleRing end_to_end_us_ GENCLUS_GUARDED_BY(stats_mutex_);
  std::vector<size_t> batch_size_histogram_ GENCLUS_GUARDED_BY(stats_mutex_);
};

}  // namespace genclus
