#include "core/strength.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/feature.h"
#include "linalg/solve.h"
#include "prob/simplex.h"
#include "prob/special_functions.h"

namespace genclus {

StrengthLearner::StrengthLearner(const Network* network, const Matrix* theta,
                                 const GenClusConfig* config)
    : network_(network), theta_(theta), config_(config) {
  GENCLUS_CHECK(network_ != nullptr && theta_ != nullptr &&
                config_ != nullptr);
  GENCLUS_CHECK_EQ(theta_->rows(), network_->num_nodes());
  num_relations_ = network_->schema().num_link_types();
  num_clusters_ = theta_->cols();

  // Precompute per-node sufficient statistics grouped by relation. Out-link
  // spans are sorted by relation, so each node's groups are contiguous.
  node_stats_.reserve(network_->num_nodes());
  for (NodeId v = 0; v < network_->num_nodes(); ++v) {
    auto links = network_->OutLinks(v);
    if (links.empty()) continue;
    NodeStats ns;
    std::span<const double> theta_v(theta_->Row(v), num_clusters_);
    size_t pos = 0;
    while (pos < links.size()) {
      const LinkTypeId r = links[pos].type;
      std::vector<double> s(num_clusters_, 0.0);
      double total_weight = 0.0;
      double f_coeff = 0.0;
      while (pos < links.size() && links[pos].type == r) {
        const LinkEntry& e = links[pos];
        const double* theta_u = theta_->Row(e.neighbor);
        for (size_t k = 0; k < num_clusters_; ++k) {
          s[k] += e.weight * theta_u[k];
        }
        total_weight += e.weight;
        f_coeff += e.weight *
                   CrossEntropyScore(theta_v, {theta_u, num_clusters_});
        ++pos;
      }
      ns.relations.push_back(r);
      ns.s.push_back(std::move(s));
      ns.total_weight.push_back(total_weight);
      ns.f_coeff.push_back(f_coeff);
    }
    node_stats_.push_back(std::move(ns));
  }
}

void StrengthLearner::ComputeAlpha(const NodeStats& ns,
                                   const std::vector<double>& gamma,
                                   std::vector<double>* alpha) const {
  alpha->assign(num_clusters_, 1.0);
  for (size_t j = 0; j < ns.relations.size(); ++j) {
    const double g = gamma[ns.relations[j]];
    if (g == 0.0) continue;
    const std::vector<double>& s = ns.s[j];
    for (size_t k = 0; k < num_clusters_; ++k) {
      (*alpha)[k] += g * s[k];
    }
  }
}

double StrengthLearner::Objective(const std::vector<double>& gamma) const {
  GENCLUS_CHECK_EQ(gamma.size(), num_relations_);
  double total = 0.0;
  std::vector<double> alpha;
  for (const NodeStats& ns : node_stats_) {
    for (size_t j = 0; j < ns.relations.size(); ++j) {
      total += gamma[ns.relations[j]] * ns.f_coeff[j];
    }
    ComputeAlpha(ns, gamma, &alpha);
    total -= LogMultivariateBeta(alpha);
  }
  const double sigma2 =
      config_->gamma_prior_sigma * config_->gamma_prior_sigma;
  for (double g : gamma) total -= g * g / (2.0 * sigma2);
  return total;
}

std::vector<double> StrengthLearner::Gradient(
    const std::vector<double>& gamma) const {
  GENCLUS_CHECK_EQ(gamma.size(), num_relations_);
  std::vector<double> grad(num_relations_, 0.0);
  std::vector<double> alpha;
  for (const NodeStats& ns : node_stats_) {
    ComputeAlpha(ns, gamma, &alpha);
    double alpha0 = 0.0;
    for (double a : alpha) alpha0 += a;
    const double psi_alpha0 = Digamma(alpha0);
    for (size_t j = 0; j < ns.relations.size(); ++j) {
      const LinkTypeId r = ns.relations[j];
      // d logB(alpha)/d gamma(r) = sum_k psi(alpha_k) s_k
      //                            - psi(alpha_0) * W    (Eq. 16).
      double dlogb = 0.0;
      for (size_t k = 0; k < num_clusters_; ++k) {
        dlogb += Digamma(alpha[k]) * ns.s[j][k];
      }
      dlogb -= psi_alpha0 * ns.total_weight[j];
      grad[r] += ns.f_coeff[j] - dlogb;
    }
  }
  const double sigma2 =
      config_->gamma_prior_sigma * config_->gamma_prior_sigma;
  for (size_t r = 0; r < num_relations_; ++r) {
    grad[r] -= gamma[r] / sigma2;
  }
  return grad;
}

Matrix StrengthLearner::Hessian(const std::vector<double>& gamma) const {
  GENCLUS_CHECK_EQ(gamma.size(), num_relations_);
  Matrix h(num_relations_, num_relations_);
  std::vector<double> alpha;
  for (const NodeStats& ns : node_stats_) {
    ComputeAlpha(ns, gamma, &alpha);
    double alpha0 = 0.0;
    for (double a : alpha) alpha0 += a;
    const double psi1_alpha0 = Trigamma(alpha0);
    std::vector<double> psi1(num_clusters_);
    for (size_t k = 0; k < num_clusters_; ++k) psi1[k] = Trigamma(alpha[k]);

    for (size_t j1 = 0; j1 < ns.relations.size(); ++j1) {
      for (size_t j2 = j1; j2 < ns.relations.size(); ++j2) {
        // Eq. 17 per node: -sum_k psi'(alpha_k) s1_k s2_k
        //                  + psi'(alpha_0) W1 W2.
        double val = 0.0;
        for (size_t k = 0; k < num_clusters_; ++k) {
          val -= psi1[k] * ns.s[j1][k] * ns.s[j2][k];
        }
        val += psi1_alpha0 * ns.total_weight[j1] * ns.total_weight[j2];
        const LinkTypeId r1 = ns.relations[j1];
        const LinkTypeId r2 = ns.relations[j2];
        h(r1, r2) += val;
        if (r1 != r2) h(r2, r1) += val;
      }
    }
  }
  const double sigma2 =
      config_->gamma_prior_sigma * config_->gamma_prior_sigma;
  for (size_t r = 0; r < num_relations_; ++r) {
    h(r, r) -= 1.0 / sigma2;
  }
  return h;
}

std::vector<double> StrengthLearner::Learn(const std::vector<double>& gamma,
                                           StrengthStats* stats) const {
  GENCLUS_CHECK_EQ(gamma.size(), num_relations_);
  std::vector<double> current = gamma;
  for (double& g : current) g = std::max(0.0, g);

  StrengthStats local;
  double current_obj = Objective(current);

  for (size_t iter = 0; iter < config_->newton_iterations; ++iter) {
    local.iterations = iter + 1;
    const std::vector<double> grad = Gradient(current);
    const Matrix hess = Hessian(current);

    // Newton direction: solve H * delta = grad, step gamma - delta.
    // H is negative definite, so -delta is an ascent direction.
    std::vector<double> next;
    bool have_newton = false;
    auto solve = SolveLinearSystem(hess, grad);
    if (solve.ok()) {
      next = current;
      bool finite = true;
      for (size_t r = 0; r < num_relations_; ++r) {
        next[r] -= (*solve)[r];
        if (!std::isfinite(next[r])) finite = false;
      }
      have_newton = finite;
    }
    if (!have_newton) {
      // Fallback: projected gradient ascent with a conservative step.
      local.used_gradient_fallback = true;
      double gnorm = Norm2(grad);
      const double step = gnorm > 0.0 ? 1.0 / (1.0 + gnorm) : 0.0;
      next = current;
      for (size_t r = 0; r < num_relations_; ++r) {
        next[r] += step * grad[r];
      }
    }
    for (double& g : next) g = std::max(0.0, g);  // projection (§4.2 step 2)

    // Damping: the projected Newton step is not guaranteed to ascend, so
    // backtrack toward the current iterate until the objective improves.
    double next_obj = Objective(next);
    double shrink = 0.5;
    size_t backtracks = 0;
    while (next_obj < current_obj - 1e-12 && backtracks < 40) {
      for (size_t r = 0; r < num_relations_; ++r) {
        next[r] = current[r] + shrink * (next[r] - current[r]);
      }
      next_obj = Objective(next);
      ++backtracks;
    }
    if (next_obj < current_obj - 1e-12) {
      // No ascent possible along this direction: accept the current point.
      local.converged = true;
      break;
    }

    double delta = 0.0;
    for (size_t r = 0; r < num_relations_; ++r) {
      delta = std::max(delta, std::fabs(next[r] - current[r]));
    }
    current = std::move(next);
    current_obj = next_obj;
    if (delta < config_->newton_tolerance) {
      local.converged = true;
      break;
    }
  }
  local.objective = current_obj;
  if (stats != nullptr) *stats = local;
  return current;
}

}  // namespace genclus
