#include "core/strength.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "core/feature.h"
#include "linalg/solve.h"
#include "prob/simplex.h"
#include "prob/special_functions.h"

namespace genclus {

namespace {

// Nodes per reduction block. Fixed (independent of the thread count) so
// block boundaries — and therefore the merged floating-point result — are
// invariant to how many workers execute them.
constexpr size_t kReduceGrain = 64;

}  // namespace

StrengthLearner::StrengthLearner(const Network* network, const Matrix* theta,
                                 const GenClusConfig* config,
                                 ThreadPool* pool)
    : network_(network), theta_(theta), config_(config), pool_(pool) {
  GENCLUS_CHECK(network_ != nullptr && theta_ != nullptr &&
                config_ != nullptr);
  GENCLUS_CHECK_EQ(theta_->rows(), network_->num_nodes());
  num_relations_ = network_->schema().num_link_types();
  num_clusters_ = theta_->cols();

  // Pass 1 (serial, O(|E|)): find nodes with out-links and count each
  // one's relation groups. The grouping below assumes the out-link span
  // is sorted by relation (network.h builds it that way); verify the
  // invariant in debug builds since a violation would silently split one
  // relation into several groups.
  std::vector<NodeId> stat_nodes;
  node_group_offsets_.push_back(0);
  size_t total_groups = 0;
  for (NodeId v = 0; v < network_->num_nodes(); ++v) {
    auto links = network_->OutLinks(v);
    if (links.empty()) continue;
    size_t groups = 1;
    for (size_t i = 1; i < links.size(); ++i) {
      GENCLUS_DCHECK(links[i - 1].type <= links[i].type);
      if (links[i].type != links[i - 1].type) ++groups;
    }
    stat_nodes.push_back(v);
    total_groups += groups;
    node_group_offsets_.push_back(total_groups);
  }

  // Pass 2 (parallel, O(|E| K)): fill the flat arenas. Each node writes
  // only its own group range, so shards never overlap and the result is
  // independent of the sharding.
  group_relation_.assign(total_groups, kInvalidLinkType);
  group_weight_.assign(total_groups, 0.0);
  group_f_coeff_.assign(total_groups, 0.0);
  group_s_.assign(total_groups * num_clusters_, 0.0);
  const auto fill = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const NodeId v = stat_nodes[i];
      auto links = network_->OutLinks(v);
      std::span<const double> theta_v(theta_->Row(v), num_clusters_);
      size_t g = node_group_offsets_[i];
      size_t pos = 0;
      while (pos < links.size()) {
        const LinkTypeId r = links[pos].type;
        double* s = group_s_.data() + g * num_clusters_;
        double total_weight = 0.0;
        double f_coeff = 0.0;
        while (pos < links.size() && links[pos].type == r) {
          const LinkEntry& e = links[pos];
          const double* theta_u = theta_->Row(e.neighbor);
          for (size_t k = 0; k < num_clusters_; ++k) {
            s[k] += e.weight * theta_u[k];
          }
          total_weight += e.weight;
          f_coeff += e.weight *
                     CrossEntropyScore(theta_v, {theta_u, num_clusters_});
          ++pos;
        }
        group_relation_[g] = r;
        group_weight_[g] = total_weight;
        group_f_coeff_[g] = f_coeff;
        ++g;
      }
      GENCLUS_DCHECK(g == node_group_offsets_[i + 1]);
    }
  };
  if (pool_ != nullptr && pool_->num_threads() > 1) {
    pool_->ParallelFor(stat_nodes.size(),
                       [&](size_t /*shard*/, size_t begin, size_t end) {
                         fill(begin, end);
                       });
  } else {
    fill(0, stat_nodes.size());
  }
}

void StrengthLearner::AccumulateRange(size_t begin, size_t end,
                                      const std::vector<double>& gamma,
                                      bool derivatives,
                                      Evaluation* out) const {
  std::vector<double> alpha(num_clusters_);
  std::vector<double> psi(num_clusters_);
  std::vector<double> psi1(num_clusters_);
  for (size_t i = begin; i < end; ++i) {
    const size_t gbegin = node_group_offsets_[i];
    const size_t gend = node_group_offsets_[i + 1];

    // alpha_k = 1 + sum_j gamma(r_j) s_j[k] (Eq. 15); the feature part of
    // the objective rides along in the same sweep.
    std::fill(alpha.begin(), alpha.end(), 1.0);
    for (size_t g = gbegin; g < gend; ++g) {
      const double gm = gamma[group_relation_[g]];
      out->objective += gm * group_f_coeff_[g];
      if (gm == 0.0) continue;
      const double* s = group_s_.data() + g * num_clusters_;
      for (size_t k = 0; k < num_clusters_; ++k) alpha[k] += gm * s[k];
    }
    double alpha0 = 0.0;
    double log_gamma_sum = 0.0;
    for (size_t k = 0; k < num_clusters_; ++k) {
      alpha0 += alpha[k];
      log_gamma_sum += LogGamma(alpha[k]);
    }
    // - log Z_i = - log B(alpha_i).
    out->objective -= log_gamma_sum - LogGamma(alpha0);

    if (!derivatives) continue;

    // Each special function exactly once per (node, k): shared between
    // the gradient's digamma terms and the Hessian's trigamma terms.
    const double psi_alpha0 = Digamma(alpha0);
    const double psi1_alpha0 = Trigamma(alpha0);
    for (size_t k = 0; k < num_clusters_; ++k) {
      psi[k] = Digamma(alpha[k]);
      psi1[k] = Trigamma(alpha[k]);
    }
    for (size_t j1 = gbegin; j1 < gend; ++j1) {
      const LinkTypeId r1 = group_relation_[j1];
      const double* s1 = group_s_.data() + j1 * num_clusters_;
      // d logB(alpha)/d gamma(r) = sum_k psi(alpha_k) s_k
      //                            - psi(alpha_0) * W    (Eq. 16).
      double dlogb = 0.0;
      for (size_t k = 0; k < num_clusters_; ++k) {
        dlogb += psi[k] * s1[k];
      }
      dlogb -= psi_alpha0 * group_weight_[j1];
      out->gradient[r1] += group_f_coeff_[j1] - dlogb;

      for (size_t j2 = j1; j2 < gend; ++j2) {
        // Eq. 17 per node: -sum_k psi'(alpha_k) s1_k s2_k
        //                  + psi'(alpha_0) W1 W2.
        const double* s2 = group_s_.data() + j2 * num_clusters_;
        double val = 0.0;
        for (size_t k = 0; k < num_clusters_; ++k) {
          val -= psi1[k] * s1[k] * s2[k];
        }
        val += psi1_alpha0 * group_weight_[j1] * group_weight_[j2];
        const LinkTypeId r2 = group_relation_[j2];
        out->hessian(r1, r2) += val;
        if (r1 != r2) out->hessian(r2, r1) += val;
      }
    }
  }
}

StrengthLearner::Evaluation StrengthLearner::Reduce(
    const std::vector<double>& gamma, bool derivatives) const {
  GENCLUS_CHECK_EQ(gamma.size(), num_relations_);
  const auto make = [this, derivatives] {
    Evaluation e;
    if (derivatives) {
      e.gradient.assign(num_relations_, 0.0);
      e.hessian = Matrix(num_relations_, num_relations_);
    }
    return e;
  };
  Evaluation total = ParallelForReduce<Evaluation>(
      pool_, num_stat_nodes(), kReduceGrain, make,
      [&](Evaluation& state, size_t begin, size_t end) {
        AccumulateRange(begin, end, gamma, derivatives, &state);
      },
      [this, derivatives](Evaluation& into, Evaluation&& from) {
        into.objective += from.objective;
        if (derivatives) {
          for (size_t r = 0; r < num_relations_; ++r) {
            into.gradient[r] += from.gradient[r];
          }
          into.hessian.AddScaled(from.hessian, 1.0);
        }
      });

  const double sigma2 =
      config_->gamma_prior_sigma * config_->gamma_prior_sigma;
  for (double g : gamma) total.objective -= g * g / (2.0 * sigma2);
  if (derivatives) {
    for (size_t r = 0; r < num_relations_; ++r) {
      total.gradient[r] -= gamma[r] / sigma2;
      total.hessian(r, r) -= 1.0 / sigma2;
    }
  }
  return total;
}

StrengthLearner::Evaluation StrengthLearner::EvalAll(
    const std::vector<double>& gamma) const {
  return Reduce(gamma, /*derivatives=*/true);
}

double StrengthLearner::FusedObjective(
    const std::vector<double>& gamma) const {
  return Reduce(gamma, /*derivatives=*/false).objective;
}

// The reference implementations below are deliberately NOT built on
// AccumulateRange: each is its own traversal with its own arithmetic
// (alpha recomputed per pass, digamma evaluated inside the inner loops,
// LogMultivariateBeta for the partition function), so the tests comparing
// them against EvalAll genuinely cross-check the fused path.

void StrengthLearner::ComputeAlpha(size_t node,
                                   const std::vector<double>& gamma,
                                   std::vector<double>* alpha) const {
  alpha->assign(num_clusters_, 1.0);
  for (size_t g = node_group_offsets_[node];
       g < node_group_offsets_[node + 1]; ++g) {
    const double gm = gamma[group_relation_[g]];
    if (gm == 0.0) continue;
    const double* s = group_s_.data() + g * num_clusters_;
    for (size_t k = 0; k < num_clusters_; ++k) {
      (*alpha)[k] += gm * s[k];
    }
  }
}

double StrengthLearner::Objective(const std::vector<double>& gamma) const {
  GENCLUS_CHECK_EQ(gamma.size(), num_relations_);
  double total = 0.0;
  std::vector<double> alpha;
  for (size_t i = 0; i < num_stat_nodes(); ++i) {
    for (size_t g = node_group_offsets_[i]; g < node_group_offsets_[i + 1];
         ++g) {
      total += gamma[group_relation_[g]] * group_f_coeff_[g];
    }
    ComputeAlpha(i, gamma, &alpha);
    total -= LogMultivariateBeta(alpha);
  }
  const double sigma2 =
      config_->gamma_prior_sigma * config_->gamma_prior_sigma;
  for (double g : gamma) total -= g * g / (2.0 * sigma2);
  return total;
}

std::vector<double> StrengthLearner::Gradient(
    const std::vector<double>& gamma) const {
  GENCLUS_CHECK_EQ(gamma.size(), num_relations_);
  std::vector<double> grad(num_relations_, 0.0);
  std::vector<double> alpha;
  for (size_t i = 0; i < num_stat_nodes(); ++i) {
    ComputeAlpha(i, gamma, &alpha);
    double alpha0 = 0.0;
    for (double a : alpha) alpha0 += a;
    const double psi_alpha0 = Digamma(alpha0);
    for (size_t j = node_group_offsets_[i]; j < node_group_offsets_[i + 1];
         ++j) {
      const double* s = group_s_.data() + j * num_clusters_;
      double dlogb = 0.0;
      for (size_t k = 0; k < num_clusters_; ++k) {
        dlogb += Digamma(alpha[k]) * s[k];
      }
      dlogb -= psi_alpha0 * group_weight_[j];
      grad[group_relation_[j]] += group_f_coeff_[j] - dlogb;
    }
  }
  const double sigma2 =
      config_->gamma_prior_sigma * config_->gamma_prior_sigma;
  for (size_t r = 0; r < num_relations_; ++r) {
    grad[r] -= gamma[r] / sigma2;
  }
  return grad;
}

Matrix StrengthLearner::Hessian(const std::vector<double>& gamma) const {
  GENCLUS_CHECK_EQ(gamma.size(), num_relations_);
  Matrix h(num_relations_, num_relations_);
  std::vector<double> alpha;
  std::vector<double> psi1(num_clusters_);
  for (size_t i = 0; i < num_stat_nodes(); ++i) {
    ComputeAlpha(i, gamma, &alpha);
    double alpha0 = 0.0;
    for (double a : alpha) alpha0 += a;
    const double psi1_alpha0 = Trigamma(alpha0);
    for (size_t k = 0; k < num_clusters_; ++k) psi1[k] = Trigamma(alpha[k]);

    for (size_t j1 = node_group_offsets_[i];
         j1 < node_group_offsets_[i + 1]; ++j1) {
      const double* s1 = group_s_.data() + j1 * num_clusters_;
      for (size_t j2 = j1; j2 < node_group_offsets_[i + 1]; ++j2) {
        const double* s2 = group_s_.data() + j2 * num_clusters_;
        double val = 0.0;
        for (size_t k = 0; k < num_clusters_; ++k) {
          val -= psi1[k] * s1[k] * s2[k];
        }
        val += psi1_alpha0 * group_weight_[j1] * group_weight_[j2];
        const LinkTypeId r1 = group_relation_[j1];
        const LinkTypeId r2 = group_relation_[j2];
        h(r1, r2) += val;
        if (r1 != r2) h(r2, r1) += val;
      }
    }
  }
  const double sigma2 =
      config_->gamma_prior_sigma * config_->gamma_prior_sigma;
  for (size_t r = 0; r < num_relations_; ++r) {
    h(r, r) -= 1.0 / sigma2;
  }
  return h;
}

std::vector<double> StrengthLearner::Learn(const std::vector<double>& gamma,
                                           StrengthStats* stats) const {
  GENCLUS_CHECK_EQ(gamma.size(), num_relations_);
  std::vector<double> current = gamma;
  for (double& g : current) g = std::max(0.0, g);

  StrengthStats local;
  double current_obj = FusedObjective(current);

  for (size_t iter = 0; iter < config_->newton_iterations; ++iter) {
    local.iterations = iter + 1;
    const Evaluation eval = EvalAll(current);

    // Newton direction: solve H * delta = grad, step gamma - delta.
    // H is negative definite, so -delta is an ascent direction.
    std::vector<double> next;
    bool have_newton = false;
    auto solve = SolveLinearSystem(eval.hessian, eval.gradient);
    if (solve.ok()) {
      next = current;
      bool finite = true;
      for (size_t r = 0; r < num_relations_; ++r) {
        next[r] -= (*solve)[r];
        if (!std::isfinite(next[r])) finite = false;
      }
      have_newton = finite;
    }
    if (!have_newton) {
      // Fallback: projected gradient ascent with a conservative step.
      local.used_gradient_fallback = true;
      double gnorm = Norm2(eval.gradient);
      const double step = gnorm > 0.0 ? 1.0 / (1.0 + gnorm) : 0.0;
      next = current;
      for (size_t r = 0; r < num_relations_; ++r) {
        next[r] += step * eval.gradient[r];
      }
    }
    for (double& g : next) g = std::max(0.0, g);  // projection (§4.2 step 2)

    // Damping: the projected Newton step is not guaranteed to ascend, so
    // backtrack toward the current iterate until the objective improves.
    double next_obj = FusedObjective(next);
    double shrink = 0.5;
    size_t backtracks = 0;
    while (next_obj < current_obj - 1e-12 && backtracks < 40) {
      for (size_t r = 0; r < num_relations_; ++r) {
        next[r] = current[r] + shrink * (next[r] - current[r]);
      }
      next_obj = FusedObjective(next);
      ++backtracks;
    }
    if (next_obj < current_obj - 1e-12) {
      // No ascent possible along this direction: accept the current point.
      local.converged = true;
      break;
    }

    double delta = 0.0;
    for (size_t r = 0; r < num_relations_; ++r) {
      delta = std::max(delta, std::fabs(next[r] - current[r]));
    }
    current = std::move(next);
    current_obj = next_obj;
    if (delta < config_->newton_tolerance) {
      local.converged = true;
      break;
    }
  }
  local.objective = current_obj;
  if (stats != nullptr) *stats = local;
  return current;
}

}  // namespace genclus
