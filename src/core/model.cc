#include "core/model.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace genclus {

std::vector<uint32_t> Model::HardLabels() const { return RowArgMax(theta); }

Status Model::Validate() const {
  if (theta.cols() < 2) {
    return Status::FailedPrecondition("model has no clustering (K < 2)");
  }
  for (double t : theta.data()) {
    if (!std::isfinite(t)) {
      return Status::InvalidArgument("model theta must be finite");
    }
  }
  if (gamma.size() != link_types.size()) {
    return Status::InvalidArgument(StrFormat(
        "model has %zu gamma entries but %zu link-type names", gamma.size(),
        link_types.size()));
  }
  for (double g : gamma) {
    if (!std::isfinite(g) || g < 0.0) {
      return Status::InvalidArgument("model gamma must be finite and >= 0");
    }
  }
  if (theta_shards < 1 ||
      theta_shards > std::max<size_t>(1, num_nodes())) {
    return Status::InvalidArgument(StrFormat(
        "model declares %zu theta shards for %zu nodes", theta_shards,
        num_nodes()));
  }
  if (components.size() != attributes.size()) {
    return Status::InvalidArgument(StrFormat(
        "model has %zu components but %zu attribute records",
        components.size(), attributes.size()));
  }
  for (size_t a = 0; a < components.size(); ++a) {
    const AttributeComponents& comp = components[a];
    const ModelAttributeInfo& info = attributes[a];
    if (comp.kind() != info.kind) {
      return Status::InvalidArgument(StrFormat(
          "attribute '%s': component kind does not match metadata",
          info.name.c_str()));
    }
    if (comp.num_clusters() != num_clusters()) {
      return Status::InvalidArgument(StrFormat(
          "attribute '%s': components for %zu clusters, model has %zu",
          info.name.c_str(), comp.num_clusters(), num_clusters()));
    }
    if (info.kind == AttributeKind::kCategorical &&
        comp.beta().cols() != info.vocab_size) {
      return Status::InvalidArgument(StrFormat(
          "attribute '%s': beta vocabulary %zu does not match declared %zu",
          info.name.c_str(), comp.beta().cols(), info.vocab_size));
    }
  }
  return Status::OK();
}

namespace {

// Link-type name check shared by both network-compatibility validators.
Status CheckSchemaLinkTypes(const std::vector<std::string>& link_types,
                            const Schema& schema) {
  if (link_types.size() != schema.num_link_types()) {
    return Status::InvalidArgument(StrFormat(
        "model trained with %zu link types, schema declares %zu",
        link_types.size(), schema.num_link_types()));
  }
  for (LinkTypeId r = 0; r < link_types.size(); ++r) {
    if (schema.link_type(r).name != link_types[r]) {
      return Status::InvalidArgument(StrFormat(
          "link type %u is '%s' in the model but '%s' in the schema",
          r, link_types[r].c_str(), schema.link_type(r).name.c_str()));
    }
  }
  return Status::OK();
}

}  // namespace

Status Model::ValidateAgainst(const Network& network) const {
  GENCLUS_RETURN_IF_ERROR(Validate());
  if (num_nodes() != network.num_nodes()) {
    return Status::InvalidArgument(StrFormat(
        "model trained on %zu nodes, network has %zu", num_nodes(),
        network.num_nodes()));
  }
  return CheckSchemaLinkTypes(link_types, network.schema());
}

Status Model::ValidateForServing(const Network& network) const {
  GENCLUS_RETURN_IF_ERROR(Validate());
  if (num_nodes() < network.num_nodes()) {
    return Status::InvalidArgument(StrFormat(
        "model covers %zu nodes, network has %zu", num_nodes(),
        network.num_nodes()));
  }
  return CheckSchemaLinkTypes(link_types, network.schema());
}

}  // namespace genclus
