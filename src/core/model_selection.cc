#include "core/model_selection.h"

#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "core/objective.h"

namespace genclus {

double CountModelParameters(const Dataset& dataset,
                            const std::vector<std::string>& attributes,
                            size_t num_clusters) {
  const double k = static_cast<double>(num_clusters);
  double params =
      static_cast<double>(dataset.network.num_nodes()) * (k - 1.0);
  for (const std::string& name : attributes) {
    AttributeId id = dataset.FindAttribute(name);
    if (id == kInvalidAttribute) continue;
    const Attribute& attr = dataset.attributes[id];
    if (attr.kind() == AttributeKind::kCategorical) {
      params += k * (static_cast<double>(attr.vocab_size()) - 1.0);
    } else {
      params += 2.0 * k;  // mean and variance per component
    }
  }
  params += static_cast<double>(dataset.network.schema().num_link_types());
  return params;
}

Result<ModelSelectionResult> SelectNumClusters(
    const Dataset& dataset, const std::vector<std::string>& attributes,
    const GenClusConfig& config, size_t min_clusters, size_t max_clusters,
    SelectionCriterion criterion) {
  if (min_clusters < 2 || min_clusters > max_clusters) {
    return Status::InvalidArgument(
        StrFormat("bad K range [%zu, %zu]", min_clusters, max_clusters));
  }

  // Sample size for BIC: total observations across specified attributes.
  double sample_size = 0.0;
  for (const std::string& name : attributes) {
    AttributeId id = dataset.FindAttribute(name);
    if (id == kInvalidAttribute) {
      return Status::NotFound(
          StrFormat("attribute '%s' not in dataset", name.c_str()));
    }
    sample_size += dataset.attributes[id].TotalObservations();
  }
  if (sample_size <= 0.0) {
    return Status::FailedPrecondition(
        "model selection needs at least one attribute observation");
  }

  ModelSelectionResult result;
  double best_score = std::numeric_limits<double>::infinity();
  for (size_t k = min_clusters; k <= max_clusters; ++k) {
    GenClusConfig k_config = config;
    k_config.num_clusters = k;
    GENCLUS_ASSIGN_OR_RETURN(GenClusResult fit,
                             RunGenClus(dataset, attributes, k_config));
    // Attribute log-likelihood at the fit.
    std::vector<const Attribute*> attrs;
    for (const std::string& name : attributes) {
      attrs.push_back(&dataset.attributes[dataset.FindAttribute(name)]);
    }
    const double log_likelihood =
        TotalAttributeLogLikelihood(attrs, fit.components, fit.theta);

    ModelSelectionEntry entry;
    entry.num_clusters = k;
    entry.log_likelihood = log_likelihood;
    entry.num_parameters = CountModelParameters(dataset, attributes, k);
    entry.score =
        criterion == SelectionCriterion::kAic
            ? 2.0 * entry.num_parameters - 2.0 * log_likelihood
            : entry.num_parameters * std::log(sample_size) -
                  2.0 * log_likelihood;
    if (entry.score < best_score) {
      best_score = entry.score;
      result.best_num_clusters = k;
    }
    result.entries.push_back(entry);
  }
  return result;
}

}  // namespace genclus
