// The cross entropy-based feature function of §3.3 (Eq. 6) and the
// structural-consistency score it induces. For a link e = <v_i, v_j> of
// relation r:
//
//   f(theta_i, theta_j, e, gamma) = gamma(r) * w(e) * sum_k theta_jk log theta_ik
//                                 = -gamma(r) * w(e) * H(theta_j, theta_i)
//
// Desiderata (verified by tests/core/feature_test.cc):
//   1. f increases as theta_i and theta_j become more similar;
//   2. f decreases as gamma(r) or w(e) grow (stronger relations demand
//      more similarity for the same consistency level);
//   3. f is asymmetric in (theta_i, theta_j).
#pragma once

#include <span>
#include <vector>

#include "hin/network.h"
#include "linalg/matrix.h"

namespace genclus {

/// f for a single link given membership rows of the source (theta_i) and
/// target (theta_j). Components of theta_i are floored at
/// kDefaultThetaFloor before the log.
double LinkFeature(std::span<const double> theta_i,
                   std::span<const double> theta_j, double gamma_r,
                   double weight);

/// Unweighted core of the feature: sum_k theta_jk log theta_ik (<= 0).
double CrossEntropyScore(std::span<const double> theta_i,
                         std::span<const double> theta_j);

/// Sum of f over every link of the network: the exponent of the log-linear
/// structural model (Eq. 7) up to the partition function.
double StructuralScore(const Network& network, const Matrix& theta,
                       const std::vector<double>& gamma);

/// Structural score restricted to one relation, with gamma(r) factored out:
/// sum over links of type r of w(e) * sum_k theta_jk log theta_ik. The full
/// score is sum_r gamma(r) * PerRelationScore(r).
double PerRelationScore(const Network& network, const Matrix& theta,
                        LinkTypeId relation);

}  // namespace genclus
