// The persistable trained artifact of a GenClus fit: memberships Theta,
// learned link-type strengths gamma, the per-attribute mixture components
// beta, and enough schema/attribute metadata to validate serving queries
// against the model without the original Dataset. A Model is produced by
// Engine::Fit, serialized with SaveModel/LoadModel (core/model_io.h), and
// served through an Engine (core/engine.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/components.h"
#include "hin/attributes.h"
#include "hin/network.h"
#include "linalg/matrix.h"
#include "linalg/sharding.h"

namespace genclus {

/// Metadata of one attribute the model was trained on, aligned with
/// Model::components. Lets the serving layer reject queries referencing
/// attributes or terms the model has never seen.
struct ModelAttributeInfo {
  std::string name;
  AttributeKind kind = AttributeKind::kCategorical;
  /// Vocabulary size (categorical); 0 for numerical attributes.
  size_t vocab_size = 0;
};

/// Self-contained trained clustering model. Plain data: copy, move and
/// serialize freely. Invariants are checked by Validate(), compatibility
/// with a serving network by ValidateAgainst().
struct Model {
  /// Soft clustering: row v is theta_v on the K-simplex.
  Matrix theta;
  /// Learned strength per link type (indexed by LinkTypeId).
  std::vector<double> gamma;
  /// Link-type names in LinkTypeId order — the schema fingerprint used to
  /// check that a loaded model matches the serving network.
  std::vector<std::string> link_types;
  /// Mixture components per trained attribute (AttributeId order of the
  /// training call).
  std::vector<AttributeComponents> components;
  /// Attribute metadata aligned with `components`.
  std::vector<ModelAttributeInfo> attributes;
  /// g1 objective at the final training iterate.
  double objective = 0.0;
  /// Number of contiguous column (node-range) shards Θ is logically
  /// partitioned into. The storage stays one dense row-major allocation —
  /// shard s is the row block [ThetaPartition().begin(s), end(s)) — so
  /// every dense accessor is unchanged and 1 shard ≡ the monolithic
  /// layout. Stamped by Engine::Fit, persisted by both model formats.
  size_t theta_shards = 1;

  size_t num_clusters() const { return theta.cols(); }
  size_t num_nodes() const { return theta.rows(); }

  /// The node-range partition implied by `theta_shards`.
  ShardPartition ThetaPartition() const {
    return ShardPartition(num_nodes(), theta_shards);
  }
  /// First Θ row of shard `s` (may point one-past-the-end for empty
  /// trailing shards; never dereference beyond the shard's extent).
  const double* ShardThetaData(size_t s) const {
    return theta.data().data() + ThetaPartition().begin(s) * num_clusters();
  }

  /// Hard labels: argmax_k theta(v, k).
  std::vector<uint32_t> HardLabels() const;

  /// Internal consistency: non-degenerate clustering, gamma/link_types
  /// aligned, components matching their attribute metadata and K.
  Status Validate() const;

  /// Validate() plus compatibility with `network`: node count and
  /// link-type names must match the schema the model was trained on.
  Status ValidateAgainst(const Network& network) const;

  /// ValidateAgainst relaxed for the serving/swap path: the model may
  /// cover MORE nodes than the network (a refreshed model trained on a
  /// grown dataset swapped into a server still planning against the old
  /// network — fold-in queries only ever read rows the network can
  /// address), never fewer.
  Status ValidateForServing(const Network& network) const;

  /// Content fingerprint: the FNV-1a64 checksum of the binary container's
  /// payload (core/model_io.h), computed without touching the filesystem.
  /// Two models fingerprint equal iff SaveModel would write byte-equal
  /// payloads — the identity Server stamps on swapped models and the
  /// bench drift gates compare. Defined in model_io.cc.
  uint64_t Fingerprint() const;
};

}  // namespace genclus
