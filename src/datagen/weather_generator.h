// Synthetic weather sensor network generator (paper Appendix C).
//
// K weather patterns, each a Gaussian over (temperature, precipitation).
// Sensors are placed uniformly in the unit disk; the disk is partitioned
// into K equal-width rings and a sensor's soft cluster membership is
// proportional to the reciprocal of its distance to each ring's center
// radius. Temperature sensors mix over the 2 nearest rings (less noisy),
// precipitation sensors over the 3 nearest (more noisy) — matching §5.1's
// description. Out-links connect each sensor to its k nearest neighbors of
// each type, giving four binary-weighted relations <T,T>, <T,P>, <P,T>,
// <P,P>. Observations are drawn from the sensor's mixture: pick a pattern
// by membership, then sample the sensor's own attribute from that
// pattern's marginal.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hin/dataset.h"
#include "linalg/matrix.h"

namespace genclus {

/// Mean (temperature, precipitation) of one weather pattern.
struct WeatherPattern {
  double temperature_mean = 0.0;
  double precipitation_mean = 0.0;
};

struct WeatherConfig {
  size_t num_temperature_sensors = 1000;
  size_t num_precipitation_sensors = 250;
  /// k in the kNN link construction (per neighbor type; the paper uses 5,
  /// i.e. 10 out-links per sensor).
  size_t k_nearest = 5;
  /// Observations drawn per sensor (paper sweeps 1 / 5 / 20).
  size_t observations_per_sensor = 5;
  /// Pattern means; size defines K. Defaults to Setting 1.
  std::vector<WeatherPattern> patterns;
  /// Shared standard deviation of every pattern's attributes (paper: 0.2).
  double pattern_stddev = 0.2;
  /// Rings a temperature sensor softly mixes over.
  size_t temperature_mixing_rings = 2;
  /// Rings a precipitation sensor softly mixes over.
  size_t precipitation_mixing_rings = 3;
  /// Exponent on the reciprocal-distance membership weights. 1.0 is the
  /// literal Appendix C construction; larger values concentrate sensors on
  /// their nearest ring (less label noise at ring boundaries).
  double membership_sharpness = 2.0;
  uint64_t seed = 7;

  /// Paper Setting 1: means (1,1), (2,2), (3,3), (4,4).
  static WeatherConfig Setting1();
  /// Paper Setting 2: means (1,1), (-1,1), (-1,-1), (1,-1) — resolvable
  /// only with both attributes.
  static WeatherConfig Setting2();
};

/// Generated network plus ground truth.
struct WeatherData {
  Dataset dataset;
  /// Ground-truth soft membership used for sampling (num_sensors x K).
  Matrix true_membership;
  /// argmax of true_membership (also in dataset.labels).
  std::vector<uint32_t> true_labels;
  /// Sensor positions in the unit disk, for inspection.
  std::vector<std::array<double, 2>> locations;
  /// Object/link/attribute ids for convenient lookups.
  ObjectTypeId temperature_type = kInvalidObjectType;
  ObjectTypeId precipitation_type = kInvalidObjectType;
  LinkTypeId tt_link = kInvalidLinkType;
  LinkTypeId tp_link = kInvalidLinkType;
  LinkTypeId pt_link = kInvalidLinkType;
  LinkTypeId pp_link = kInvalidLinkType;
  AttributeId temperature_attr = kInvalidAttribute;
  AttributeId precipitation_attr = kInvalidAttribute;
};

/// Generates a weather sensor network. Deterministic given config.seed.
Result<WeatherData> GenerateWeatherNetwork(const WeatherConfig& config);

}  // namespace genclus
