#include "datagen/dblp_generator.h"

#include <algorithm>
#include <map>

#include "common/random.h"
#include "common/string_util.h"

namespace genclus {
namespace {

Status ValidateConfig(const DblpConfig& config) {
  if (config.num_areas < 2) {
    return Status::InvalidArgument("need at least 2 areas");
  }
  if (config.num_conferences < config.num_areas) {
    return Status::InvalidArgument("need at least one conference per area");
  }
  if (config.num_authors == 0 || config.num_papers == 0) {
    return Status::InvalidArgument("need authors and papers");
  }
  if (config.vocab_size <= config.num_areas * config.terms_per_area) {
    return Status::InvalidArgument(
        "vocab_size must exceed num_areas * terms_per_area");
  }
  if (config.title_min_terms == 0 ||
      config.title_min_terms > config.title_max_terms) {
    return Status::InvalidArgument("bad title length range");
  }
  return Status::OK();
}

}  // namespace

Result<DblpCorpus> GenerateDblpCorpus(const DblpConfig& config) {
  GENCLUS_RETURN_IF_ERROR(ValidateConfig(config));
  Rng rng(config.seed);
  DblpCorpus corpus;
  corpus.num_areas = config.num_areas;

  // Conferences cycle through the areas so each area gets an equal share.
  // The last `broad_conference_fraction` of them are broad-spectrum venues
  // drawing papers from every area (the CIKM phenomenon).
  corpus.conference_area.resize(config.num_conferences);
  corpus.conference_is_broad.assign(config.num_conferences, false);
  const size_t num_broad = std::min(
      config.num_conferences - 1,
      static_cast<size_t>(config.broad_conference_fraction *
                          static_cast<double>(config.num_conferences)));
  for (size_t c = 0; c < config.num_conferences; ++c) {
    corpus.conference_area[c] =
        static_cast<uint32_t>(c % config.num_areas);
    if (c >= config.num_conferences - num_broad) {
      corpus.conference_is_broad[c] = true;
    }
  }
  // Pure conferences of each area and the broad pool, for fast sampling.
  std::vector<std::vector<size_t>> confs_by_area(config.num_areas);
  std::vector<size_t> broad_confs;
  for (size_t c = 0; c < config.num_conferences; ++c) {
    if (corpus.conference_is_broad[c]) {
      broad_confs.push_back(c);
    } else {
      confs_by_area[corpus.conference_area[c]].push_back(c);
    }
  }
  // Degenerate configs (e.g. all venues broad in one area): fall back to
  // area pools that include broad venues.
  for (size_t area = 0; area < config.num_areas; ++area) {
    if (confs_by_area[area].empty()) {
      for (size_t c = 0; c < config.num_conferences; ++c) {
        if (corpus.conference_area[c] == area) {
          confs_by_area[area].push_back(c);
        }
      }
    }
  }

  // Authors get a uniform primary area.
  corpus.author_area.resize(config.num_authors);
  std::vector<std::vector<size_t>> authors_by_area(config.num_areas);
  for (size_t a = 0; a < config.num_authors; ++a) {
    corpus.author_area[a] =
        static_cast<uint32_t>(rng.UniformIndex(config.num_areas));
    authors_by_area[corpus.author_area[a]].push_back(a);
  }
  // Guarantee every area has at least one author (tiny configs).
  for (size_t area = 0; area < config.num_areas; ++area) {
    if (authors_by_area[area].empty()) {
      const size_t a = rng.UniformIndex(config.num_authors);
      authors_by_area[corpus.author_area[a]].erase(
          std::find(authors_by_area[corpus.author_area[a]].begin(),
                    authors_by_area[corpus.author_area[a]].end(), a));
      corpus.author_area[a] = static_cast<uint32_t>(area);
      authors_by_area[area].push_back(a);
    }
  }

  const size_t background_begin = config.num_areas * config.terms_per_area;
  corpus.papers.reserve(config.num_papers);
  for (size_t p = 0; p < config.num_papers; ++p) {
    DblpCorpus::Paper paper;
    // Lead author, then the paper's area.
    const size_t lead = rng.UniformIndex(config.num_authors);
    paper.authors.push_back(lead);
    paper.area = rng.Uniform() < config.author_area_fidelity
                     ? corpus.author_area[lead]
                     : static_cast<uint32_t>(
                           rng.UniformIndex(config.num_areas));
    // Coauthors, preferring the paper's area.
    const size_t extra = rng.UniformIndex(config.max_coauthors + 1);
    for (size_t j = 0; j < extra; ++j) {
      size_t candidate;
      if (rng.Uniform() < config.coauthor_same_area_prob &&
          !authors_by_area[paper.area].empty()) {
        const auto& pool = authors_by_area[paper.area];
        candidate = pool[rng.UniformIndex(pool.size())];
      } else {
        candidate = rng.UniformIndex(config.num_authors);
      }
      if (std::find(paper.authors.begin(), paper.authors.end(), candidate) ==
          paper.authors.end()) {
        paper.authors.push_back(candidate);
      }
    }
    // Venue: broad-spectrum venues attract papers from every area; pure
    // venues draw (almost) exclusively from their own area.
    if (!broad_confs.empty() && rng.Uniform() < config.broad_venue_prob) {
      paper.conference = broad_confs[rng.UniformIndex(broad_confs.size())];
    } else if (rng.Uniform() < config.conference_area_fidelity) {
      const auto& pool = confs_by_area[paper.area];
      paper.conference = pool[rng.UniformIndex(pool.size())];
    } else {
      paper.conference = rng.UniformIndex(config.num_conferences);
    }
    // Title terms: area-specific unless a background draw.
    const size_t len = config.title_min_terms +
                       rng.UniformIndex(config.title_max_terms -
                                        config.title_min_terms + 1);
    paper.title.reserve(len);
    for (size_t t = 0; t < len; ++t) {
      uint32_t term;
      if (rng.Uniform() < config.background_term_prob) {
        term = static_cast<uint32_t>(
            background_begin +
            rng.UniformIndex(config.vocab_size - background_begin));
      } else {
        term = static_cast<uint32_t>(paper.area * config.terms_per_area +
                                     rng.UniformIndex(config.terms_per_area));
      }
      paper.title.push_back(term);
    }
    corpus.papers.push_back(std::move(paper));
  }
  return corpus;
}

Result<AcNetworkData> BuildAcNetwork(const DblpCorpus& corpus,
                                     const DblpConfig& config) {
  AcNetworkData data;
  Schema schema;
  GENCLUS_ASSIGN_OR_RETURN(data.author_type, schema.AddObjectType("author"));
  GENCLUS_ASSIGN_OR_RETURN(data.conference_type,
                           schema.AddObjectType("conference"));
  GENCLUS_ASSIGN_OR_RETURN(
      data.publish_in,
      schema.AddLinkType("publish_in", data.author_type,
                         data.conference_type));
  GENCLUS_ASSIGN_OR_RETURN(
      data.published_by,
      schema.AddLinkType("published_by", data.conference_type,
                         data.author_type));
  GENCLUS_ASSIGN_OR_RETURN(
      data.coauthor,
      schema.AddLinkType("coauthor", data.author_type, data.author_type));
  GENCLUS_RETURN_IF_ERROR(
      schema.SetInverse(data.publish_in, data.published_by));

  NetworkBuilder builder(schema);
  const size_t num_authors = corpus.author_area.size();
  const size_t num_confs = corpus.conference_area.size();
  data.author_nodes.resize(num_authors);
  data.conference_nodes.resize(num_confs);
  for (size_t a = 0; a < num_authors; ++a) {
    GENCLUS_ASSIGN_OR_RETURN(
        data.author_nodes[a],
        builder.AddNode(data.author_type, StrFormat("author%zu", a)));
  }
  for (size_t c = 0; c < num_confs; ++c) {
    GENCLUS_ASSIGN_OR_RETURN(
        data.conference_nodes[c],
        builder.AddNode(data.conference_type, StrFormat("conf%zu", c)));
  }

  // Count-weighted links.
  std::map<std::pair<size_t, size_t>, double> ac_weight;   // author, conf
  std::map<std::pair<size_t, size_t>, double> coauth_weight;
  for (const DblpCorpus::Paper& paper : corpus.papers) {
    for (size_t a : paper.authors) {
      ac_weight[{a, paper.conference}] += 1.0;
    }
    for (size_t i = 0; i < paper.authors.size(); ++i) {
      for (size_t j = i + 1; j < paper.authors.size(); ++j) {
        const size_t lo = std::min(paper.authors[i], paper.authors[j]);
        const size_t hi = std::max(paper.authors[i], paper.authors[j]);
        coauth_weight[{lo, hi}] += 1.0;
      }
    }
  }
  for (const auto& [key, weight] : ac_weight) {
    GENCLUS_RETURN_IF_ERROR(builder.AddLink(data.author_nodes[key.first],
                                            data.conference_nodes[key.second],
                                            data.publish_in, weight));
    GENCLUS_RETURN_IF_ERROR(builder.AddLink(data.conference_nodes[key.second],
                                            data.author_nodes[key.first],
                                            data.published_by, weight));
  }
  for (const auto& [key, weight] : coauth_weight) {
    GENCLUS_RETURN_IF_ERROR(builder.AddLink(data.author_nodes[key.first],
                                            data.author_nodes[key.second],
                                            data.coauthor, weight));
    GENCLUS_RETURN_IF_ERROR(builder.AddLink(data.author_nodes[key.second],
                                            data.author_nodes[key.first],
                                            data.coauthor, weight));
  }
  GENCLUS_ASSIGN_OR_RETURN(Network network, std::move(builder).Build());
  const size_t n = network.num_nodes();

  // Text attribute: every object aggregates the titles of its papers.
  Attribute text = Attribute::Categorical("text", config.vocab_size, n);
  for (const DblpCorpus::Paper& paper : corpus.papers) {
    for (uint32_t term : paper.title) {
      for (size_t a : paper.authors) {
        GENCLUS_RETURN_IF_ERROR(
            text.AddTermCount(data.author_nodes[a], term, 1.0));
      }
      GENCLUS_RETURN_IF_ERROR(text.AddTermCount(
          data.conference_nodes[paper.conference], term, 1.0));
    }
  }

  data.dataset.network = std::move(network);
  data.dataset.attributes.push_back(std::move(text));
  data.text_attr = 0;
  data.dataset.labels = Labels(n);
  for (size_t a = 0; a < num_authors; ++a) {
    data.dataset.labels.Set(data.author_nodes[a], corpus.author_area[a]);
  }
  for (size_t c = 0; c < num_confs; ++c) {
    data.dataset.labels.Set(data.conference_nodes[c],
                            corpus.conference_area[c]);
  }
  GENCLUS_RETURN_IF_ERROR(data.dataset.Validate());
  return data;
}

Result<AcpNetworkData> BuildAcpNetwork(const DblpCorpus& corpus,
                                       const DblpConfig& config) {
  AcpNetworkData data;
  Schema schema;
  GENCLUS_ASSIGN_OR_RETURN(data.author_type, schema.AddObjectType("author"));
  GENCLUS_ASSIGN_OR_RETURN(data.conference_type,
                           schema.AddObjectType("conference"));
  GENCLUS_ASSIGN_OR_RETURN(data.paper_type, schema.AddObjectType("paper"));
  GENCLUS_ASSIGN_OR_RETURN(
      data.write,
      schema.AddLinkType("write", data.author_type, data.paper_type));
  GENCLUS_ASSIGN_OR_RETURN(
      data.written_by,
      schema.AddLinkType("written_by", data.paper_type, data.author_type));
  GENCLUS_ASSIGN_OR_RETURN(
      data.publish,
      schema.AddLinkType("publish", data.conference_type, data.paper_type));
  GENCLUS_ASSIGN_OR_RETURN(
      data.published_by,
      schema.AddLinkType("published_by", data.paper_type,
                         data.conference_type));
  GENCLUS_RETURN_IF_ERROR(schema.SetInverse(data.write, data.written_by));
  GENCLUS_RETURN_IF_ERROR(
      schema.SetInverse(data.publish, data.published_by));

  NetworkBuilder builder(schema);
  const size_t num_authors = corpus.author_area.size();
  const size_t num_confs = corpus.conference_area.size();
  const size_t num_papers = corpus.papers.size();
  data.author_nodes.resize(num_authors);
  data.conference_nodes.resize(num_confs);
  data.paper_nodes.resize(num_papers);
  for (size_t a = 0; a < num_authors; ++a) {
    GENCLUS_ASSIGN_OR_RETURN(
        data.author_nodes[a],
        builder.AddNode(data.author_type, StrFormat("author%zu", a)));
  }
  for (size_t c = 0; c < num_confs; ++c) {
    GENCLUS_ASSIGN_OR_RETURN(
        data.conference_nodes[c],
        builder.AddNode(data.conference_type, StrFormat("conf%zu", c)));
  }
  for (size_t p = 0; p < num_papers; ++p) {
    GENCLUS_ASSIGN_OR_RETURN(
        data.paper_nodes[p],
        builder.AddNode(data.paper_type, StrFormat("paper%zu", p)));
  }

  for (size_t p = 0; p < num_papers; ++p) {
    const DblpCorpus::Paper& paper = corpus.papers[p];
    for (size_t a : paper.authors) {
      GENCLUS_RETURN_IF_ERROR(builder.AddLink(
          data.author_nodes[a], data.paper_nodes[p], data.write, 1.0));
      GENCLUS_RETURN_IF_ERROR(builder.AddLink(
          data.paper_nodes[p], data.author_nodes[a], data.written_by, 1.0));
    }
    GENCLUS_RETURN_IF_ERROR(builder.AddLink(
        data.conference_nodes[paper.conference], data.paper_nodes[p],
        data.publish, 1.0));
    GENCLUS_RETURN_IF_ERROR(builder.AddLink(
        data.paper_nodes[p], data.conference_nodes[paper.conference],
        data.published_by, 1.0));
  }
  GENCLUS_ASSIGN_OR_RETURN(Network network, std::move(builder).Build());
  const size_t n = network.num_nodes();

  // Text only on papers: the incomplete-attribute configuration.
  Attribute text = Attribute::Categorical("text", config.vocab_size, n);
  for (size_t p = 0; p < num_papers; ++p) {
    for (uint32_t term : corpus.papers[p].title) {
      GENCLUS_RETURN_IF_ERROR(
          text.AddTermCount(data.paper_nodes[p], term, 1.0));
    }
  }

  data.dataset.network = std::move(network);
  data.dataset.attributes.push_back(std::move(text));
  data.text_attr = 0;
  data.dataset.labels = Labels(n);
  for (size_t a = 0; a < num_authors; ++a) {
    data.dataset.labels.Set(data.author_nodes[a], corpus.author_area[a]);
  }
  for (size_t c = 0; c < num_confs; ++c) {
    data.dataset.labels.Set(data.conference_nodes[c],
                            corpus.conference_area[c]);
  }
  for (size_t p = 0; p < num_papers; ++p) {
    data.dataset.labels.Set(data.paper_nodes[p], corpus.papers[p].area);
  }
  GENCLUS_RETURN_IF_ERROR(data.dataset.Validate());
  return data;
}

}  // namespace genclus
