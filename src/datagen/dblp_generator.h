// Synthetic DBLP "four-area" bibliographic corpus and the two networks the
// paper extracts from it (§5.1):
//
//  * AC network  — authors (A) and conferences (C); relations
//    publish_in(A,C), published_by(C,A), coauthor(A,A) with count weights;
//    both object types carry the text attribute (complete attributes).
//  * ACP network — authors, conferences and papers (P); binary relations
//    write(A,P), written_by(P,A), publish(C,P), published_by(P,C); ONLY
//    papers carry text (incomplete attributes).
//
// Substitution note (see DESIGN.md): the real DBLP four-area snapshot is
// not redistributable; this generator plants the same structure — four
// research areas with area-specific vocabularies, conferences bound to
// areas, authors with a primary area, papers written by mostly same-area
// coauthors and published in mostly same-area venues — so the algorithms
// exercise identical code paths against a known ground truth.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hin/dataset.h"

namespace genclus {

struct DblpConfig {
  size_t num_areas = 4;
  size_t num_conferences = 20;
  size_t num_authors = 1000;
  size_t num_papers = 2500;
  /// Total vocabulary; must exceed num_areas * terms_per_area (the
  /// remainder is the shared background vocabulary).
  size_t vocab_size = 400;
  /// Area-specific terms per area.
  size_t terms_per_area = 60;
  size_t title_min_terms = 6;
  size_t title_max_terms = 12;
  /// Probability a title term is drawn from the shared background.
  double background_term_prob = 0.3;
  /// Probability a paper stays in its lead author's primary area.
  double author_area_fidelity = 0.85;
  /// Probability a paper is published in a conference of its own area,
  /// used for the residual off-area noise of PURE venues.
  double conference_area_fidelity = 0.95;
  /// Fraction of conferences that are "broad-spectrum" venues (the paper's
  /// CIKM example, §5.2.3): they draw papers from every area. Real venues
  /// differ in purity; this is what makes written_by(P,A) more reliable
  /// than published_by(P,C) and gives strength learning something to find.
  double broad_conference_fraction = 0.25;
  /// Probability a paper goes to a broad venue instead of a pure venue of
  /// its own area.
  double broad_venue_prob = 0.3;
  /// Probability each coauthor is drawn from the paper's area; the rest
  /// are uniform ("the spectrum of co-authors may often be quite broad").
  double coauthor_same_area_prob = 0.5;
  /// Extra authors per paper beyond the lead (0..max, uniform).
  size_t max_coauthors = 2;
  uint64_t seed = 13;
};

/// The generated corpus: entities, ground-truth areas and paper contents.
struct DblpCorpus {
  size_t num_areas = 0;
  std::vector<uint32_t> conference_area;  // [num_conferences]
  /// True for broad-spectrum venues (drawing papers from every area).
  std::vector<bool> conference_is_broad;  // [num_conferences]
  std::vector<uint32_t> author_area;      // [num_authors]
  struct Paper {
    std::vector<size_t> authors;  // author indices; [0] is the lead
    size_t conference = 0;
    uint32_t area = 0;
    std::vector<uint32_t> title;  // term ids
  };
  std::vector<Paper> papers;
};

/// The AC network with node-id maps and schema handles.
struct AcNetworkData {
  Dataset dataset;
  ObjectTypeId author_type = kInvalidObjectType;
  ObjectTypeId conference_type = kInvalidObjectType;
  LinkTypeId publish_in = kInvalidLinkType;     // <A,C>
  LinkTypeId published_by = kInvalidLinkType;   // <C,A>
  LinkTypeId coauthor = kInvalidLinkType;       // <A,A>
  AttributeId text_attr = kInvalidAttribute;
  std::vector<NodeId> author_nodes;
  std::vector<NodeId> conference_nodes;
};

/// The ACP network with node-id maps and schema handles.
struct AcpNetworkData {
  Dataset dataset;
  ObjectTypeId author_type = kInvalidObjectType;
  ObjectTypeId conference_type = kInvalidObjectType;
  ObjectTypeId paper_type = kInvalidObjectType;
  LinkTypeId write = kInvalidLinkType;          // <A,P>
  LinkTypeId written_by = kInvalidLinkType;     // <P,A>
  LinkTypeId publish = kInvalidLinkType;        // <C,P>
  LinkTypeId published_by = kInvalidLinkType;   // <P,C>
  AttributeId text_attr = kInvalidAttribute;
  std::vector<NodeId> author_nodes;
  std::vector<NodeId> conference_nodes;
  std::vector<NodeId> paper_nodes;
};

/// Generates the corpus. Deterministic given config.seed.
Result<DblpCorpus> GenerateDblpCorpus(const DblpConfig& config);

/// Builds the AC network from a corpus (author/conference text = bag sum
/// of their papers' titles; count-weighted links).
Result<AcNetworkData> BuildAcNetwork(const DblpCorpus& corpus,
                                     const DblpConfig& config);

/// Builds the ACP network (text on papers only; binary links).
Result<AcpNetworkData> BuildAcpNetwork(const DblpCorpus& corpus,
                                       const DblpConfig& config);

}  // namespace genclus
