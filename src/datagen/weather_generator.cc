#include "datagen/weather_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/random.h"
#include "common/string_util.h"
#include "prob/simplex.h"

namespace genclus {

WeatherConfig WeatherConfig::Setting1() {
  WeatherConfig config;
  config.patterns = {{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}, {4.0, 4.0}};
  return config;
}

WeatherConfig WeatherConfig::Setting2() {
  WeatherConfig config;
  config.patterns = {{1.0, 1.0}, {-1.0, 1.0}, {-1.0, -1.0}, {1.0, -1.0}};
  return config;
}

namespace {

// Soft ring membership: reciprocal distance to each ring's center radius,
// truncated to the `mixing` nearest rings, normalized. The disk is
// "partitioned equally into K rings" (Appendix C); with sensors uniform in
// the disk we use equal-AREA rings so the K weather patterns have balanced
// populations — ring k spans radii [sqrt(k/K), sqrt((k+1)/K)) and its
// center radius is the one that halves its area.
std::vector<double> RingMembership(double radius, size_t num_rings,
                                   size_t mixing, double sharpness) {
  std::vector<double> weight(num_rings, 0.0);
  std::vector<std::pair<double, size_t>> by_distance(num_rings);
  for (size_t k = 0; k < num_rings; ++k) {
    const double center =
        std::sqrt((static_cast<double>(k) + 0.5) /
                  static_cast<double>(num_rings));
    const double d = std::fabs(radius - center);
    by_distance[k] = {d, k};
  }
  std::sort(by_distance.begin(), by_distance.end());
  const size_t keep = std::min(mixing, num_rings);
  double total = 0.0;
  for (size_t j = 0; j < keep; ++j) {
    const double w =
        std::pow(1.0 / (by_distance[j].first + 1e-3), sharpness);
    weight[by_distance[j].second] = w;
    total += w;
  }
  for (double& w : weight) w /= total;
  return weight;
}

}  // namespace

Result<WeatherData> GenerateWeatherNetwork(const WeatherConfig& config_in) {
  WeatherConfig config = config_in;
  if (config.patterns.empty()) {
    config.patterns = WeatherConfig::Setting1().patterns;
  }
  const size_t num_clusters = config.patterns.size();
  const size_t num_t = config.num_temperature_sensors;
  const size_t num_p = config.num_precipitation_sensors;
  const size_t n = num_t + num_p;
  if (num_clusters < 2) {
    return Status::InvalidArgument("need at least 2 weather patterns");
  }
  if (num_t == 0 || num_p == 0) {
    return Status::InvalidArgument("need sensors of both types");
  }
  if (config.k_nearest == 0 ||
      config.k_nearest >= std::min(num_t, num_p)) {
    return Status::InvalidArgument("k_nearest out of range");
  }
  if (!(config.pattern_stddev > 0.0)) {
    return Status::InvalidArgument("pattern_stddev must be positive");
  }

  Rng rng(config.seed);
  WeatherData data;

  // --- schema ---
  Schema schema;
  GENCLUS_ASSIGN_OR_RETURN(ObjectTypeId t_type, schema.AddObjectType("T"));
  GENCLUS_ASSIGN_OR_RETURN(ObjectTypeId p_type, schema.AddObjectType("P"));
  GENCLUS_ASSIGN_OR_RETURN(LinkTypeId tt,
                           schema.AddLinkType("TT", t_type, t_type));
  GENCLUS_ASSIGN_OR_RETURN(LinkTypeId tp,
                           schema.AddLinkType("TP", t_type, p_type));
  GENCLUS_ASSIGN_OR_RETURN(LinkTypeId pt,
                           schema.AddLinkType("PT", p_type, t_type));
  GENCLUS_ASSIGN_OR_RETURN(LinkTypeId pp,
                           schema.AddLinkType("PP", p_type, p_type));
  GENCLUS_RETURN_IF_ERROR(schema.SetInverse(tp, pt));
  data.temperature_type = t_type;
  data.precipitation_type = p_type;
  data.tt_link = tt;
  data.tp_link = tp;
  data.pt_link = pt;
  data.pp_link = pp;

  // --- nodes and locations (uniform in the unit disk) ---
  NetworkBuilder builder(schema);
  data.locations.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool is_temp = i < num_t;
    GENCLUS_ASSIGN_OR_RETURN(
        NodeId v,
        builder.AddNode(is_temp ? t_type : p_type,
                        StrFormat("%s%zu", is_temp ? "t" : "p",
                                  is_temp ? i : i - num_t)));
    (void)v;
    const double r = std::sqrt(rng.Uniform());
    const double angle = rng.Uniform(0.0, 2.0 * M_PI);
    data.locations[i] = {r * std::cos(angle), r * std::sin(angle)};
  }

  // --- ground-truth membership from ring geometry ---
  data.true_membership = Matrix(n, num_clusters);
  data.true_labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double radius = std::hypot(data.locations[i][0],
                                     data.locations[i][1]);
    const size_t mixing = i < num_t ? config.temperature_mixing_rings
                                    : config.precipitation_mixing_rings;
    std::vector<double> member = RingMembership(radius, num_clusters, mixing,
                                                config.membership_sharpness);
    data.true_membership.SetRow(i, member);
    data.true_labels[i] = static_cast<uint32_t>(ArgMax(member));
  }

  // --- kNN out-links per neighbor type ---
  // Brute-force neighbor search; n <= a few thousand in every experiment.
  std::vector<std::pair<double, size_t>> dist;
  dist.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    for (int target_is_temp = 1; target_is_temp >= 0; --target_is_temp) {
      dist.clear();
      const size_t lo = target_is_temp ? 0 : num_t;
      const size_t hi = target_is_temp ? num_t : n;
      for (size_t j = lo; j < hi; ++j) {
        if (j == i) continue;
        const double dx = data.locations[i][0] - data.locations[j][0];
        const double dy = data.locations[i][1] - data.locations[j][1];
        dist.emplace_back(dx * dx + dy * dy, j);
      }
      std::partial_sort(dist.begin(), dist.begin() + config.k_nearest,
                        dist.end());
      const bool src_is_temp = i < num_t;
      LinkTypeId link_type;
      if (src_is_temp) {
        link_type = target_is_temp ? tt : tp;
      } else {
        link_type = target_is_temp ? pt : pp;
      }
      for (size_t j = 0; j < config.k_nearest; ++j) {
        GENCLUS_RETURN_IF_ERROR(builder.AddLink(
            static_cast<NodeId>(i), static_cast<NodeId>(dist[j].second),
            link_type, 1.0));
      }
    }
  }

  GENCLUS_ASSIGN_OR_RETURN(Network network, std::move(builder).Build());

  // --- attributes: each sensor observes only its own attribute ---
  Attribute temperature = Attribute::Numerical("temperature", n);
  Attribute precipitation = Attribute::Numerical("precipitation", n);
  for (size_t i = 0; i < n; ++i) {
    const bool is_temp = i < num_t;
    std::vector<double> member = data.true_membership.RowVector(i);
    for (size_t o = 0; o < config.observations_per_sensor; ++o) {
      const size_t k = rng.Categorical(member);
      const double mean = is_temp ? config.patterns[k].temperature_mean
                                  : config.patterns[k].precipitation_mean;
      const double x = rng.Gaussian(mean, config.pattern_stddev);
      if (is_temp) {
        GENCLUS_RETURN_IF_ERROR(
            temperature.AddValue(static_cast<NodeId>(i), x));
      } else {
        GENCLUS_RETURN_IF_ERROR(
            precipitation.AddValue(static_cast<NodeId>(i), x));
      }
    }
  }

  data.dataset.network = std::move(network);
  data.dataset.attributes.push_back(std::move(temperature));
  data.dataset.attributes.push_back(std::move(precipitation));
  data.temperature_attr = 0;
  data.precipitation_attr = 1;
  data.dataset.labels = Labels(n);
  for (size_t i = 0; i < n; ++i) {
    data.dataset.labels.Set(static_cast<NodeId>(i), data.true_labels[i]);
  }
  GENCLUS_RETURN_IF_ERROR(data.dataset.Validate());
  return data;
}

}  // namespace genclus
