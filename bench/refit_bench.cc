// Incremental-maintenance bench: warm-start Engine::Refit vs
// from-scratch Engine::Fit on a grown weather network, written to
// BENCH_refit.json so the maintenance-path trajectory is machine-readable
// PR over PR.
//
// Growth scenario: the base model is fitted with only part of the
// precipitation sensors deployed; the remainder arrives as a
// NetworkDelta (SliceDatasetPrefix produces exactly that delta), and the
// grown network is re-solved two ways — cold Fit, and Refit warm-started
// from the base model with convergence-aware EM sweeps on.
//
// Correctness gates (non-zero exit, CI treats as broken build):
//   * warm Refit must reach the cold fit's NMI minus at most 0.01;
//   * warm Refit must spend at most 50% of the cold fit's EM sweeps;
//   * the convergence-aware Refit iterate must be bitwise invariant to
//     thread count x shard count (Model::Fingerprint equality).
//
// Flags: --out FILE (default BENCH_refit.json), --small (CI fixture),
//        --data-seed N, --seed N.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "core/update.h"
#include "datagen/weather_generator.h"
#include "hin/delta.h"

namespace {

using namespace genclus;
using namespace genclus::bench;

struct Cell {
  size_t base_nodes = 0;
  size_t full_nodes = 0;
  double full_nmi = 0.0;
  double refit_nmi = 0.0;
  size_t full_em_sweeps = 0;
  size_t refit_em_sweeps = 0;
  double sweep_ratio = 0.0;  // refit / full
  size_t refit_blocks_skipped = 0;
  double full_seconds = 0.0;
  double refit_seconds = 0.0;
  uint64_t refit_fingerprint = 0;
  bool fingerprint_invariant = false;
};

size_t TraceEmSweeps(const FitReport& report) {
  size_t sweeps = 0;
  for (const OuterIterationRecord& record : report.trace) {
    sweeps += record.em_iterations;
  }
  return sweeps;
}

// Total EM sweeps a cold fit paid: the traced per-outer-iteration sweeps
// plus the best-of-seeds initialization (num_init_seeds x init_em_steps
// EM sweeps over the same dataset) that a warm-started refit never runs.
size_t ColdFitEmSweeps(const FitReport& report, const GenClusConfig& config) {
  return TraceEmSweeps(report) +
         config.num_init_seeds * config.init_em_steps;
}

GenClusConfig MakeConfig(uint64_t seed) {
  GenClusConfig config;
  config.num_clusters = 4;
  // Paper §5.2.1 weather settings: 5 outer iterations, best tentative
  // seed as the starting point.
  config.outer_iterations = 5;
  config.em_iterations = 40;
  config.num_init_seeds = 5;
  config.init_em_steps = 5;
  config.seed = seed;
  return config;
}

void WriteJson(const std::string& path, const std::string& fixture,
               const std::vector<Cell>& cells) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"refit\",\n");
  std::fprintf(f, "  \"fixture\": \"%s\",\n", fixture.c_str());
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"base_nodes\": %zu, \"full_nodes\": %zu, "
        "\"full_nmi\": %.4f, \"refit_nmi\": %.4f, "
        "\"full_em_sweeps\": %zu, \"refit_em_sweeps\": %zu, "
        "\"sweep_ratio\": %.3f, \"refit_blocks_skipped\": %zu, "
        "\"full_seconds\": %.3f, \"refit_seconds\": %.3f, "
        "\"refit_fingerprint\": \"%016llx\", "
        "\"fingerprint_invariant\": %s}%s\n",
        c.base_nodes, c.full_nodes, c.full_nmi, c.refit_nmi,
        c.full_em_sweeps, c.refit_em_sweeps, c.sweep_ratio,
        c.refit_blocks_skipped, c.full_seconds, c.refit_seconds,
        static_cast<unsigned long long>(c.refit_fingerprint),
        c.fingerprint_invariant ? "true" : "false",
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const bool small = flags.GetBool("small", false);
  const std::string out = flags.GetString("out", "BENCH_refit.json");
  const uint64_t data_seed =
      static_cast<uint64_t>(flags.GetInt("data-seed", 11));
  const uint64_t fit_seed = static_cast<uint64_t>(flags.GetInt("seed", 17));

  const size_t num_temperature = small ? 250 : 1000;
  const std::vector<size_t> precipitation_sizes =
      small ? std::vector<size_t>{120} : std::vector<size_t>{250, 500};
  // The base network has every temperature sensor but only this share of
  // the precipitation sensors; the rest arrives as the delta (a nightly
  // deployment batch, not a re-bootstrap).
  const double deployed_fraction = 0.8;

  PrintHeader("refit: warm-start maintenance vs from-scratch fit");
  PrintRow({"nodes", "nmi_full", "nmi_refit", "sweeps", "ratio", "skip",
            "speedup"});

  std::vector<Cell> cells;
  bool gates_ok = true;
  for (size_t num_p : precipitation_sizes) {
    WeatherConfig wconfig = WeatherConfig::Setting1();
    wconfig.num_temperature_sensors = num_temperature;
    wconfig.num_precipitation_sensors = num_p;
    wconfig.observations_per_sensor = 5;
    wconfig.seed = data_seed;
    auto data = GenerateWeatherNetwork(wconfig);
    if (!data.ok()) {
      std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    const size_t full_nodes = data->dataset.network.num_nodes();
    const size_t base_nodes =
        num_temperature +
        static_cast<size_t>(static_cast<double>(num_p) * deployed_fraction);

    NetworkDelta deployment;
    auto base = SliceDatasetPrefix(data->dataset, base_nodes, &deployment);
    if (!base.ok()) {
      std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
      return 1;
    }

    FitOptions fit_options;
    fit_options.attributes = {"temperature", "precipitation"};
    fit_options.config = MakeConfig(fit_seed);

    auto base_fit = Engine::Fit(*base, fit_options);
    if (!base_fit.ok()) {
      std::fprintf(stderr, "%s\n", base_fit.status().ToString().c_str());
      return 1;
    }
    auto full_fit = Engine::Fit(data->dataset, fit_options);
    if (!full_fit.ok()) {
      std::fprintf(stderr, "%s\n", full_fit.status().ToString().c_str());
      return 1;
    }

    RefitOptions refit_options;
    refit_options.config = fit_options.config;
    // A warm refresh does not repeat the from-scratch schedule: the base
    // model already carries the converged gamma and most Theta rows, so
    // two outer iterations absorb the delta. The NMI gate below verifies
    // the short schedule is actually enough.
    refit_options.config.outer_iterations = 2;
    refit_options.config.block_convergence_tol =
        refit_options.config.em_tolerance;
    auto refit = Engine::Refit(data->dataset, base_fit->model,
                               refit_options);
    if (!refit.ok()) {
      std::fprintf(stderr, "%s\n", refit.status().ToString().c_str());
      return 1;
    }

    Cell cell;
    cell.base_nodes = base_nodes;
    cell.full_nodes = full_nodes;
    cell.full_nmi =
        OverallNmi(full_fit->model.HardLabels(), data->dataset.labels);
    cell.refit_nmi =
        OverallNmi(refit->model.HardLabels(), data->dataset.labels);
    cell.full_em_sweeps =
        ColdFitEmSweeps(full_fit->report, fit_options.config);
    cell.refit_em_sweeps = TraceEmSweeps(refit->report);
    cell.sweep_ratio =
        cell.full_em_sweeps > 0
            ? static_cast<double>(cell.refit_em_sweeps) /
                  static_cast<double>(cell.full_em_sweeps)
            : 0.0;
    cell.refit_blocks_skipped = refit->report.em_blocks_skipped;
    cell.full_seconds = full_fit->report.total_seconds;
    cell.refit_seconds = refit->report.total_seconds;
    cell.refit_fingerprint = refit->model.Fingerprint();

    // Convergence-aware warm refit must not depend on the execution
    // geometry: same fingerprint for every thread x shard combination.
    cell.fingerprint_invariant = true;
    for (size_t threads : {1u, 2u}) {
      for (size_t shards : {1u, 2u}) {
        RefitOptions sharded = refit_options;
        sharded.config.num_threads = threads;
        sharded.config.theta_shards = shards;
        auto again = Engine::Refit(data->dataset, base_fit->model, sharded);
        if (!again.ok()) {
          std::fprintf(stderr, "%s\n", again.status().ToString().c_str());
          return 1;
        }
        // theta_shards is serving metadata stamped from the config;
        // normalize it so the fingerprint compares only learned state.
        Model normalized = std::move(again->model);
        normalized.theta_shards = refit->model.theta_shards;
        if (normalized.Fingerprint() != cell.refit_fingerprint) {
          std::fprintf(stderr,
                       "FAIL: refit fingerprint drifts at %zu threads x "
                       "%zu shards\n",
                       threads, shards);
          cell.fingerprint_invariant = false;
        }
      }
    }

    if (cell.refit_nmi < cell.full_nmi - 0.01) {
      std::fprintf(stderr,
                   "FAIL: warm refit NMI %.4f below cold fit %.4f - 0.01 "
                   "at %zu nodes\n",
                   cell.refit_nmi, cell.full_nmi, full_nodes);
      gates_ok = false;
    }
    if (cell.refit_em_sweeps * 2 > cell.full_em_sweeps) {
      std::fprintf(stderr,
                   "FAIL: warm refit spent %zu EM sweeps, more than 50%% "
                   "of the cold fit's %zu at %zu nodes\n",
                   cell.refit_em_sweeps, cell.full_em_sweeps, full_nodes);
      gates_ok = false;
    }
    if (!cell.fingerprint_invariant) gates_ok = false;

    PrintRow({StrFormat("%zu->%zu", base_nodes, full_nodes),
              Fmt(cell.full_nmi), Fmt(cell.refit_nmi),
              StrFormat("%zu/%zu", cell.refit_em_sweeps,
                        cell.full_em_sweeps),
              StrFormat("%.2f", cell.sweep_ratio),
              StrFormat("%zu", cell.refit_blocks_skipped),
              StrFormat("%.1fx", cell.refit_seconds > 0.0
                                     ? cell.full_seconds /
                                           cell.refit_seconds
                                     : 0.0)});
    cells.push_back(cell);
  }

  WriteJson(out, small ? "weather_s1_small" : "weather_s1", cells);
  std::printf("\nwrote %s\n", out.c_str());
  if (!gates_ok) return 1;
  return 0;
}
