#include "bench/weather_bench_common.h"

#include <cstdio>

#include "baselines/interpolation.h"
#include "baselines/kmeans.h"
#include "baselines/spectral.h"
#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/engine.h"

namespace genclus::bench {
namespace {

GenClusConfig MakeGenClusConfig(uint64_t seed, bool fixed_gamma) {
  GenClusConfig config;
  config.num_clusters = 4;
  // Paper §5.2.1: iteration number 5 for the weather networks, best
  // tentative seed as the starting point.
  config.outer_iterations = 5;
  config.em_iterations = 40;
  config.num_init_seeds = 5;
  config.init_em_steps = 5;
  config.seed = seed;
  config.learn_strengths = !fixed_gamma;
  return config;
}

}  // namespace

void RunWeatherAccuracyBench(int setting,
                             const WeatherBenchOptions& options) {
  WallTimer total_timer;
  for (size_t num_p : options.precipitation_sizes) {
    std::printf("\n--- T:%zu; P:%zu (setting %d) ---\n",
                options.num_temperature_sensors, num_p, setting);
    PrintRow({"nobs", "KMeans", "SpectralComb",
              options.fixed_gamma ? "GenClus(g=1)" : "GenClus"});
    for (size_t nobs : options.observation_counts) {
      std::vector<double> km_nmi;
      std::vector<double> sp_nmi;
      std::vector<double> gen_nmi;
      for (size_t run = 0; run < options.runs; ++run) {
        WeatherConfig wconfig = setting == 1 ? WeatherConfig::Setting1()
                                             : WeatherConfig::Setting2();
        wconfig.num_temperature_sensors = options.num_temperature_sensors;
        wconfig.num_precipitation_sensors = num_p;
        wconfig.observations_per_sensor = nobs;
        wconfig.seed = options.data_seed + run;
        auto data = GenerateWeatherNetwork(wconfig);
        if (!data.ok()) {
          std::fprintf(stderr, "generator failed: %s\n",
                       data.status().ToString().c_str());
          return;
        }
        const uint64_t seed = 31 * (run + 1);

        // k-means on interpolated, standardized attributes.
        const Attribute& temp = data->dataset.attributes[0];
        const Attribute& precip = data->dataset.attributes[1];
        auto features = InterpolateNumericalAttributes(
            data->dataset.network, {&temp, &precip});
        if (features.ok()) {
          Matrix standardized = *features;
          StandardizeColumns(&standardized);
          KMeansConfig kconfig;
          kconfig.num_clusters = 4;
          kconfig.num_restarts = 10;
          kconfig.seed = seed;
          auto km = RunKMeans(standardized, kconfig);
          if (km.ok()) {
            km_nmi.push_back(OverallNmi(km->labels, data->dataset.labels));
          }
          // SpectralCombine on the same features.
          SpectralCombineConfig sconfig;
          sconfig.num_clusters = 4;
          sconfig.seed = seed;
          auto sp = RunSpectralCombine(data->dataset.network, standardized,
                                       sconfig);
          if (sp.ok()) {
            sp_nmi.push_back(OverallNmi(sp->labels, data->dataset.labels));
          }
        }

        FitOptions fit_options;
        fit_options.attributes = {"temperature", "precipitation"};
        fit_options.config = MakeGenClusConfig(seed, options.fixed_gamma);
        auto gen = Engine::Fit(data->dataset, fit_options);
        if (gen.ok()) {
          gen_nmi.push_back(
              OverallNmi(gen->model.HardLabels(), data->dataset.labels));
        }
      }
      PrintRow({StrFormat("%zu", nobs), FmtMeanStd(Summarize(km_nmi)),
                FmtMeanStd(Summarize(sp_nmi)),
                FmtMeanStd(Summarize(gen_nmi))});
    }
  }
  std::printf("\ntotal time: %.1fs\n", total_timer.Seconds());
}

}  // namespace genclus::bench
