// Figure 9: learned link-type strengths on the two DBLP four-area
// networks.
//
// Paper values:
//   AC network:  publish_in<A,C> = 14.46, published_by<C,A> = 10.96,
//                coauthor<A,A> = 0.01.
//   ACP network: write<A,P> = 13.99, written_by<P,A> = 13.30,
//                publish<C,P> = 0.54, published_by<P,C> = 3.13.
// Shape: author-paper/author-conference relations dominate; the coauthor
// relation is learned to be nearly useless for area clustering, and
// written_by(P,A) >> published_by(P,C) (an author predicts a paper's area
// far better than its venue).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "core/genclus.h"
#include "datagen/dblp_generator.h"

int main(int argc, char** argv) {
  using namespace genclus;
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);

  DblpConfig data_config;
  data_config.num_authors =
      static_cast<size_t>(flags.GetInt("authors", 1000));
  data_config.num_papers = static_cast<size_t>(flags.GetInt("papers", 2500));
  data_config.seed = static_cast<uint64_t>(flags.GetInt("data-seed", 21));
  auto corpus = GenerateDblpCorpus(data_config);
  if (!corpus.ok()) return 1;

  GenClusConfig config;
  config.num_clusters = 4;
  config.outer_iterations = 10;
  config.em_iterations = 40;
  config.num_init_seeds = 5;
  config.init_em_steps = 3;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  PrintHeader("Fig. 9(a) — Strengths in the AC network");
  auto ac = BuildAcNetwork(*corpus, data_config);
  if (!ac.ok()) return 1;
  auto gen_ac = RunGenClus(ac->dataset, {"text"}, config);
  if (!gen_ac.ok()) return 1;
  PrintRow({"relation", "measured", "paper"});
  PrintRow({"publish_in<A,C>", Fmt(gen_ac->gamma[ac->publish_in]),
            Fmt(14.46)});
  PrintRow({"published_by<C,A>", Fmt(gen_ac->gamma[ac->published_by]),
            Fmt(10.96)});
  PrintRow({"coauthor<A,A>", Fmt(gen_ac->gamma[ac->coauthor]), Fmt(0.01)});

  PrintHeader("Fig. 9(b) — Strengths in the ACP network");
  auto acp = BuildAcpNetwork(*corpus, data_config);
  if (!acp.ok()) return 1;
  auto gen_acp = RunGenClus(acp->dataset, {"text"}, config);
  if (!gen_acp.ok()) return 1;
  PrintRow({"relation", "measured", "paper"});
  PrintRow({"write<A,P>", Fmt(gen_acp->gamma[acp->write]), Fmt(13.99)});
  PrintRow({"written_by<P,A>", Fmt(gen_acp->gamma[acp->written_by]),
            Fmt(13.30)});
  PrintRow({"publish<C,P>", Fmt(gen_acp->gamma[acp->publish]), Fmt(0.54)});
  PrintRow({"published_by<P,C>", Fmt(gen_acp->gamma[acp->published_by]),
            Fmt(3.13)});

  std::printf(
      "\npaper shape: <A,C> >> <A,A> in the AC network; written_by<P,A> >>\n"
      "published_by<P,C> in the ACP network (absolute scales depend on the\n"
      "network's size and weight mass; orderings are the claim).\n");
  return 0;
}
