// EM cluster-optimization (Step 1) scalability bench on fig11-style
// weather fixtures, companion to strength_bench in the machine-readable
// perf trajectory: sweeps network size and thread count over the
// typed-CSR/SpMM kernel sweep and writes BENCH_em.json (nodes, threads,
// per-phase ms, speedups) so every future PR has numbers to beat.
//
// Phases timed per (size, threads) cell, best of --reps runs:
//   step_ms          one fused E+M sweep (kernel path, warm workspace)
//   run_ms           --em-iterations fused sweeps (one Step-1 EM phase)
//   ref_step_ms      one sweep of the pre-kernel per-link AoS reference
//                    path (EmOptimizer::ReferenceStep), threads == 1 only
//   fit_em_seconds   FitReport.em_seconds of a short Engine::Fit at this
//                    thread count (the end-to-end Step-1 cost)
//
// Correctness gates (non-zero exit, CI treats as broken build):
//   * Theta after the kernel-path run must stay within 1e-12 of the
//     reference path at every thread count;
//   * the kernel path must be bitwise identical across thread counts
//     (the deterministic blocked reduction's contract).
//
// Flags: --out FILE (default BENCH_em.json), --small (CI fixture),
//        --reps N (default 3), --em-iterations N (default 10).
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/em.h"
#include "core/engine.h"
#include "core/init.h"
#include "datagen/weather_generator.h"

namespace {

using namespace genclus;

struct Cell {
  size_t nodes = 0;
  size_t links = 0;
  size_t threads = 0;
  double step_ms = 0.0;
  double run_ms = 0.0;
  double ref_step_ms = 0.0;           // threads == 1 only
  double speedup_vs_reference = 0.0;  // ref_step_ms / step_ms, threads == 1
  double speedup_vs_serial = 0.0;     // serial run_ms / this run_ms
  double fit_em_seconds = 0.0;
  double max_theta_diff_vs_reference = 0.0;
};

struct SizeFixture {
  WeatherData data;
  GenClusConfig config;
  std::vector<const Attribute*> attrs;
  Matrix theta0;
  std::vector<AttributeComponents> comps0;
  // Steady-state iterate (two sweeps past theta0): the first sweep from
  // the planted ground truth hits pathological logits (exact zeros in
  // Theta), so per-step timings are taken from here instead.
  Matrix theta_warm;
  std::vector<AttributeComponents> comps_warm;
  Matrix theta_reference;  // after em-iterations reference sweeps
};

// Best-of-reps wall times of the EM phases for one thread count.
Cell MeasureCell(const SizeFixture& fx, size_t threads, size_t reps,
                 size_t em_iterations, Matrix* final_theta) {
  Cell cell;
  cell.nodes = fx.data.dataset.network.num_nodes();
  cell.links = fx.data.dataset.network.num_links();
  cell.threads = threads;
  cell.step_ms = 1e300;
  cell.run_ms = 1e300;
  cell.ref_step_ms = 1e300;

  ThreadPool pool(threads);
  ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
  GenClusConfig config = fx.config;
  config.em_iterations = em_iterations;
  config.em_tolerance = 0.0;  // fixed sweep count for comparable timings
  EmOptimizer optimizer(&fx.data.dataset.network, fx.attrs, &config,
                        pool_ptr);
  const std::vector<double> gamma(
      fx.data.dataset.network.schema().num_link_types(), 1.0);

  EmWorkspace workspace;
  for (size_t rep = 0; rep < reps; ++rep) {
    {
      Matrix theta = fx.theta_warm;
      auto comps = fx.comps_warm;
      WallTimer timer;
      optimizer.Step(gamma, &theta, &comps, &workspace);
      cell.step_ms = std::min(cell.step_ms, timer.Millis());
    }
    {
      Matrix theta = fx.theta0;
      auto comps = fx.comps0;
      WallTimer timer;
      optimizer.Run(gamma, &theta, &comps);
      cell.run_ms = std::min(cell.run_ms, timer.Millis());
      *final_theta = std::move(theta);
    }
    if (threads == 1) {
      Matrix theta = fx.theta_warm;
      auto comps = fx.comps_warm;
      WallTimer timer;
      optimizer.ReferenceStep(gamma, &theta, &comps);
      cell.ref_step_ms = std::min(cell.ref_step_ms, timer.Millis());
    }
  }
  if (threads == 1 && cell.step_ms > 0.0) {
    cell.speedup_vs_reference = cell.ref_step_ms / cell.step_ms;
  } else {
    cell.ref_step_ms = 0.0;
  }
  cell.max_theta_diff_vs_reference =
      Matrix::MaxAbsDiff(*final_theta, fx.theta_reference);

  // End-to-end Step-1 cost: a short full fit at this thread count.
  FitOptions options;
  options.attributes = {"temperature", "precipitation"};
  options.config = fx.config;
  options.config.num_threads = threads;
  options.config.outer_iterations = 2;
  options.config.em_iterations = em_iterations;
  auto fit = Engine::Fit(fx.data.dataset, options);
  if (!fit.ok()) {
    // A failed fit would silently poison the perf trajectory with zero
    // timings; surface it as a broken bench instead.
    std::fprintf(stderr, "Engine::Fit failed: %s\n",
                 fit.status().ToString().c_str());
    std::exit(1);
  }
  cell.fit_em_seconds = fit->report.em_seconds;
  return cell;
}

void WriteJson(const std::string& path, const std::string& fixture,
               size_t em_iterations, const std::vector<Cell>& cells) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"em_scalability\",\n");
  std::fprintf(f, "  \"fixture\": \"%s\",\n", fixture.c_str());
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"em_iterations\": %zu,\n", em_iterations);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"nodes\": %zu, \"links\": %zu, \"threads\": %zu, "
        "\"step_ms\": %.4f, \"run_ms\": %.4f, \"ref_step_ms\": %.4f, "
        "\"speedup_vs_reference\": %.3f, \"speedup_vs_serial\": %.3f, "
        "\"fit_em_seconds\": %.6f, "
        "\"max_theta_diff_vs_reference\": %.3e}%s\n",
        c.nodes, c.links, c.threads, c.step_ms, c.run_ms, c.ref_step_ms,
        c.speedup_vs_reference, c.speedup_vs_serial, c.fit_em_seconds,
        c.max_theta_diff_vs_reference,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);
  const bool small = flags.GetBool("small", false);
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 3));
  const size_t em_iterations =
      static_cast<size_t>(flags.GetInt("em-iterations", 10));
  const std::string out = flags.GetString("out", "BENCH_em.json");

  // Fig. 11 sweep: temperature sensors fixed, precipitation sensors in
  // {250, 500, 1000} -> 1250/1500/2000 objects. --small is the CI fixture.
  std::vector<size_t> precipitation_sizes =
      small ? std::vector<size_t>{60} : std::vector<size_t>{250, 500, 1000};
  const size_t num_temperature = small ? 250 : 1000;
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  PrintHeader("EM step scalability (typed-CSR/SpMM kernel sweep)");
  std::printf("host hardware threads: %u\n",
              std::thread::hardware_concurrency());
  PrintRow({"nodes", "threads", "step", "run", "ref_step", "vs_ref",
            "vs_serial"});

  std::vector<Cell> cells;
  bool gates_ok = true;
  for (size_t num_p : precipitation_sizes) {
    WeatherConfig wconfig = WeatherConfig::Setting1();
    wconfig.num_temperature_sensors = num_temperature;
    wconfig.num_precipitation_sensors = num_p;
    wconfig.observations_per_sensor = 5;
    wconfig.seed = 11;
    auto data = GenerateWeatherNetwork(wconfig);
    if (!data.ok()) {
      std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }

    SizeFixture fx;
    fx.data = std::move(data).value();
    fx.config.num_clusters = fx.data.true_membership.cols();
    fx.attrs = {
        &fx.data.dataset.attributes[fx.data.temperature_attr],
        &fx.data.dataset.attributes[fx.data.precipitation_attr]};
    // The ground-truth soft membership is a realistic converged Theta;
    // estimate matching components so the sweep starts from a sane state.
    fx.theta0 = fx.data.true_membership;
    {
      GenClusConfig config = fx.config;
      EmOptimizer estimator(&fx.data.dataset.network, fx.attrs, &config,
                            nullptr);
      Rng rng(13);
      fx.comps0 = InitialComponents(fx.attrs, fx.config, &rng);
      estimator.EstimateComponents(fx.theta0, &fx.comps0);
    }

    // Warm iterate for the per-step timings: two kernel sweeps past the
    // planted start (deterministic, so every thread count measures from
    // the identical state).
    {
      GenClusConfig config = fx.config;
      EmOptimizer warmup(&fx.data.dataset.network, fx.attrs, &config,
                         nullptr);
      const std::vector<double> gamma(
          fx.data.dataset.network.schema().num_link_types(), 1.0);
      fx.theta_warm = fx.theta0;
      fx.comps_warm = fx.comps0;
      EmWorkspace workspace;
      for (int i = 0; i < 2; ++i) {
        warmup.Step(gamma, &fx.theta_warm, &fx.comps_warm, &workspace);
      }
    }

    // Reference final iterate: em-iterations sweeps of the pre-kernel
    // path; the kernel path at every thread count is gated against it.
    {
      GenClusConfig config = fx.config;
      EmOptimizer reference(&fx.data.dataset.network, fx.attrs, &config,
                            nullptr);
      const std::vector<double> gamma(
          fx.data.dataset.network.schema().num_link_types(), 1.0);
      fx.theta_reference = fx.theta0;
      auto comps = fx.comps0;
      for (size_t i = 0; i < em_iterations; ++i) {
        reference.ReferenceStep(gamma, &fx.theta_reference, &comps);
      }
    }

    double serial_run_ms = 0.0;
    Matrix serial_theta;
    for (size_t threads : thread_counts) {
      Matrix final_theta;
      Cell cell =
          MeasureCell(fx, threads, reps, em_iterations, &final_theta);
      if (threads == 1) {
        serial_run_ms = cell.run_ms;
        serial_theta = final_theta;
      } else if (final_theta.data() != serial_theta.data()) {
        std::fprintf(stderr,
                     "FAIL: kernel path not bitwise thread-invariant at "
                     "%zu threads (nodes=%zu)\n",
                     threads, cell.nodes);
        gates_ok = false;
      }
      cell.speedup_vs_serial =
          cell.run_ms > 0.0 ? serial_run_ms / cell.run_ms : 0.0;
      if (cell.max_theta_diff_vs_reference > 1e-12) {
        std::fprintf(stderr,
                     "FAIL: Theta drifted %.3e (> 1e-12) from the "
                     "reference path at %zu threads (nodes=%zu)\n",
                     cell.max_theta_diff_vs_reference, threads, cell.nodes);
        gates_ok = false;
      }
      PrintRow({StrFormat("%zu", cell.nodes),
                StrFormat("%zu", cell.threads),
                StrFormat("%.2fms", cell.step_ms),
                StrFormat("%.2fms", cell.run_ms),
                cell.threads == 1 ? StrFormat("%.2fms", cell.ref_step_ms)
                                  : std::string("-"),
                cell.threads == 1
                    ? StrFormat("%.2fx", cell.speedup_vs_reference)
                    : std::string("-"),
                StrFormat("%.2fx", cell.speedup_vs_serial)});
      cells.push_back(cell);
    }

    // Sharded-Θ gate: a pooled run with two Θ column shards must
    // reproduce the serial un-sharded iterate bit for bit (the per-shard
    // link terms merge in ascending shard order).
    {
      ThreadPool pool(2);
      GenClusConfig config = fx.config;
      config.em_iterations = em_iterations;
      config.em_tolerance = 0.0;
      config.theta_shards = 2;
      EmOptimizer optimizer(&fx.data.dataset.network, fx.attrs, &config,
                            &pool);
      const std::vector<double> gamma(
          fx.data.dataset.network.schema().num_link_types(), 1.0);
      Matrix theta = fx.theta0;
      auto comps = fx.comps0;
      optimizer.Run(gamma, &theta, &comps);
      if (theta.data() != serial_theta.data()) {
        std::fprintf(stderr,
                     "FAIL: sharded EM (theta_shards=2) not bitwise equal "
                     "to the un-sharded run (nodes=%zu)\n",
                     fx.data.dataset.network.num_nodes());
        gates_ok = false;
      }
    }
  }

  WriteJson(out, small ? "weather_s1_small" : "weather_s1_fig11",
            em_iterations, cells);
  std::printf("\nwrote %s\n", out.c_str());
  if (!gates_ok) return 1;
  return 0;
}
