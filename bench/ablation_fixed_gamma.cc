// Ablation: learned relation strengths vs all-ones strengths (gamma = 1,
// i.e. Algorithm 1 without Step 2). This isolates the paper's headline
// mechanism — everything else (model, EM, init) identical.
//
// Expected: learned gamma matches or beats fixed gamma, with the margin
// widening when relations differ in quality (the ACP network's broad
// venues; the weather network's unreliable P-typed neighbors).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "core/genclus.h"
#include "datagen/dblp_generator.h"
#include "datagen/weather_generator.h"

int main(int argc, char** argv) {
  using namespace genclus;
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);
  const size_t runs = static_cast<size_t>(flags.GetInt("runs", 2));

  PrintHeader("Ablation — learned gamma vs fixed gamma = 1");
  PrintRow({"workload", "fixed", "learned", "delta"});

  auto summarize = [&](const char* name, auto run_once) {
    std::vector<double> fixed;
    std::vector<double> learned;
    for (size_t run = 0; run < runs; ++run) {
      auto [f, l] = run_once(1000 + 77 * run);
      fixed.push_back(f);
      learned.push_back(l);
    }
    const MeanStd f = Summarize(fixed);
    const MeanStd l = Summarize(learned);
    PrintRow({name, FmtMeanStd(f), FmtMeanStd(l), Fmt(l.mean - f.mean)});
  };

  // ACP network.
  DblpConfig dconfig;
  dconfig.num_authors = 1000;
  dconfig.num_papers = 2500;
  dconfig.seed = 21;
  auto corpus = GenerateDblpCorpus(dconfig);
  if (!corpus.ok()) return 1;
  auto acp = BuildAcpNetwork(*corpus, dconfig);
  if (!acp.ok()) return 1;
  summarize("DBLP ACP (NMI)", [&](uint64_t seed) {
    GenClusConfig config;
    config.num_clusters = 4;
    config.outer_iterations = 10;
    config.em_iterations = 40;
    config.num_init_seeds = 3;
    config.init_em_steps = 3;
    config.seed = seed;
    config.learn_strengths = false;
    auto fixed = RunGenClus(acp->dataset, {"text"}, config);
    config.learn_strengths = true;
    auto learned = RunGenClus(acp->dataset, {"text"}, config);
    return std::pair<double, double>(
        fixed.ok() ? OverallNmi(fixed->HardLabels(), acp->dataset.labels)
                   : 0.0,
        learned.ok()
            ? OverallNmi(learned->HardLabels(), acp->dataset.labels)
            : 0.0);
  });

  // ACP network with sparse titles: when the attribute signal is weak,
  // clustering hinges on propagating through the RIGHT relations, and
  // learning gamma pays off — the regime the paper's contribution targets.
  DblpConfig sparse_config = dconfig;
  sparse_config.title_min_terms = 3;
  sparse_config.title_max_terms = 6;
  sparse_config.background_term_prob = 0.5;
  sparse_config.broad_venue_prob = 0.4;
  auto sparse_corpus = GenerateDblpCorpus(sparse_config);
  if (!sparse_corpus.ok()) return 1;
  auto sparse_acp = BuildAcpNetwork(*sparse_corpus, sparse_config);
  if (!sparse_acp.ok()) return 1;
  summarize("DBLP ACP sparse text", [&](uint64_t seed) {
    GenClusConfig config;
    config.num_clusters = 4;
    config.outer_iterations = 10;
    config.em_iterations = 40;
    config.num_init_seeds = 3;
    config.init_em_steps = 3;
    config.seed = seed;
    config.learn_strengths = false;
    auto fixed = RunGenClus(sparse_acp->dataset, {"text"}, config);
    config.learn_strengths = true;
    auto learned = RunGenClus(sparse_acp->dataset, {"text"}, config);
    return std::pair<double, double>(
        fixed.ok()
            ? OverallNmi(fixed->HardLabels(), sparse_acp->dataset.labels)
            : 0.0,
        learned.ok()
            ? OverallNmi(learned->HardLabels(), sparse_acp->dataset.labels)
            : 0.0);
  });

  // Weather network, Setting 1.
  WeatherConfig wconfig = WeatherConfig::Setting1();
  wconfig.num_precipitation_sensors = 250;
  wconfig.observations_per_sensor = 5;
  wconfig.seed = 11;
  auto weather = GenerateWeatherNetwork(wconfig);
  if (!weather.ok()) return 1;
  summarize("Weather S1 (NMI)", [&](uint64_t seed) {
    GenClusConfig config;
    config.num_clusters = 4;
    config.outer_iterations = 5;
    config.em_iterations = 40;
    config.num_init_seeds = 5;
    config.init_em_steps = 5;
    config.seed = seed;
    config.learn_strengths = false;
    auto fixed = RunGenClus(weather->dataset,
                            {"temperature", "precipitation"}, config);
    config.learn_strengths = true;
    auto learned = RunGenClus(weather->dataset,
                              {"temperature", "precipitation"}, config);
    return std::pair<double, double>(
        fixed.ok()
            ? OverallNmi(fixed->HardLabels(), weather->dataset.labels)
            : 0.0,
        learned.ok()
            ? OverallNmi(learned->HardLabels(), weather->dataset.labels)
            : 0.0);
  });
  return 0;
}
