// Figure 7: clustering accuracy on the synthetic weather sensor networks,
// pattern Setting 1 (means (1,1), (2,2), (3,3), (4,4), sigma = 0.2):
// NMI of k-means, SpectralCombine and GenClus across P in {250, 500, 1000}
// and nobs in {1, 5, 20}, T fixed at 1000.
//
// Paper reference (Fig. 7): GenClus best in nearly all configurations and
// far more stable than k-means across observation counts; SpectralCombine
// lowest. Note: on our generator, interpolated k-means is a stronger
// baseline than in the paper (geometric averaging recovers the radius);
// see EXPERIMENTS.md for the discussion.
//
// Flags: --runs N, --quick, --fixed-gamma, --data-seed N.
#include "bench/weather_bench_common.h"
#include "bench/bench_util.h"
#include "common/flags.h"

int main(int argc, char** argv) {
  using namespace genclus;
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);
  WeatherBenchOptions options = WeatherBenchOptions::FromFlags(flags);
  PrintHeader("Fig. 7 — Weather network accuracy, Setting 1");
  RunWeatherAccuracyBench(1, options);
  return 0;
}
