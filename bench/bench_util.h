// Shared helpers for the paper-reproduction bench binaries: per-type NMI
// masking, method runners, and aligned table printing. Every bench prints
// a "paper" column next to the measured one where the paper reports a
// number, so EXPERIMENTS.md can be regenerated from bench output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/topic_models.h"
#include "core/genclus.h"
#include "eval/nmi.h"
#include "hin/dataset.h"
#include "linalg/matrix.h"

namespace genclus::bench {

/// Hard labels from a soft membership matrix.
std::vector<uint32_t> HardLabels(const Matrix& theta);

/// NMI restricted to one node subset: other positions are masked to
/// kUnlabeled on both sides.
double SubsetNmi(const std::vector<uint32_t>& pred, const Labels& truth,
                 const std::vector<NodeId>& subset);

/// NMI over every labeled node.
double OverallNmi(const std::vector<uint32_t>& pred, const Labels& truth);

/// Mean and standard deviation of a sample.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd Summarize(const std::vector<double>& values);

/// Prints a horizontal rule and a centered title.
void PrintHeader(const std::string& title);

/// Prints one row of right-aligned cells (first cell left-aligned, width
/// 24; remaining width 12).
void PrintRow(const std::vector<std::string>& cells);

/// Formats a double with 4 decimals ("-" for NaN).
std::string Fmt(double value);

/// Formats "mean +- std".
std::string FmtMeanStd(const MeanStd& ms);

}  // namespace genclus::bench
