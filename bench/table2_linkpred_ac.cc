// Table 2: link prediction accuracy (MAP) for the <A,C> relation in the
// AC network — predicting which conferences an author publishes in from
// the learned membership vectors, under three similarity functions.
//
// Paper values:
//                NetPLSA   iTopicModel   GenClus
//   cos          0.4351    0.5117        0.7627
//   -||.||       0.4312    0.5010        0.7539
//   -H(tj,ti)    0.4323    0.5088        0.7753
// Shape: GenClus best for every similarity; the asymmetric cross entropy
// gives GenClus its best score.
#include <cstdio>

#include "baselines/topic_models.h"
#include "bench/bench_util.h"
#include "common/flags.h"
#include "core/genclus.h"
#include "datagen/dblp_generator.h"
#include "eval/link_prediction.h"

int main(int argc, char** argv) {
  using namespace genclus;
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);

  DblpConfig data_config;
  data_config.num_authors =
      static_cast<size_t>(flags.GetInt("authors", 1000));
  data_config.num_papers = static_cast<size_t>(flags.GetInt("papers", 2500));
  data_config.seed = static_cast<uint64_t>(flags.GetInt("data-seed", 21));
  auto corpus = GenerateDblpCorpus(data_config);
  if (!corpus.ok()) return 1;
  auto ac = BuildAcNetwork(*corpus, data_config);
  if (!ac.ok()) return 1;
  const Dataset& dataset = ac->dataset;
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  NetPlsaConfig np_config;
  np_config.num_clusters = 4;
  np_config.seed = seed;
  auto np = RunNetPlsa(dataset.network, dataset.attributes[0], np_config);
  ITopicModelConfig it_config;
  it_config.num_clusters = 4;
  it_config.seed = seed;
  auto it = RunITopicModel(dataset.network, dataset.attributes[0],
                           it_config);
  GenClusConfig gconfig;
  gconfig.num_clusters = 4;
  gconfig.outer_iterations = 10;
  gconfig.em_iterations = 40;
  gconfig.num_init_seeds = 5;
  gconfig.init_em_steps = 3;
  gconfig.seed = seed;
  auto gen = RunGenClus(dataset, {"text"}, gconfig);
  if (!np.ok() || !it.ok() || !gen.ok()) {
    std::fprintf(stderr, "a method failed\n");
    return 1;
  }

  PrintHeader("Table 2 — MAP for <A,C> prediction in the AC network");
  PrintRow({"similarity", "NetPLSA", "iTopicModel", "GenClus", "paper-Gen"});
  const double paper_gen[] = {0.7627, 0.7539, 0.7753};
  const SimilarityKind kinds[] = {SimilarityKind::kCosine,
                                  SimilarityKind::kNegativeEuclidean,
                                  SimilarityKind::kNegativeCrossEntropy};
  for (int i = 0; i < 3; ++i) {
    auto map_np = EvaluateLinkPrediction(dataset.network, np->theta,
                                         ac->publish_in, kinds[i]);
    auto map_it = EvaluateLinkPrediction(dataset.network, it->theta,
                                         ac->publish_in, kinds[i]);
    auto map_gen = EvaluateLinkPrediction(dataset.network, gen->theta,
                                          ac->publish_in, kinds[i]);
    PrintRow({SimilarityKindName(kinds[i]),
              Fmt(map_np.ok() ? map_np->map : NAN),
              Fmt(map_it.ok() ? map_it->map : NAN),
              Fmt(map_gen.ok() ? map_gen->map : NAN), Fmt(paper_gen[i])});
  }
  std::printf("\npaper shape: GenClus > iTopicModel > NetPLSA under every\n"
              "similarity; -H(tj,ti) best for GenClus.\n");
  return 0;
}
