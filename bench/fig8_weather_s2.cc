// Figure 8: clustering accuracy on the synthetic weather sensor networks,
// pattern Setting 2 (means (1,1), (-1,1), (-1,-1), (1,-1)): the harder
// configuration where a cluster is identifiable only from BOTH attributes,
// which no single sensor observes — cross-type links must combine them.
//
// Paper reference (Fig. 8): GenClus clearly best; k-means very sensitive
// to the observation count.
//
// Flags: --runs N, --quick, --fixed-gamma, --data-seed N.
#include "bench/weather_bench_common.h"
#include "bench/bench_util.h"
#include "common/flags.h"

int main(int argc, char** argv) {
  using namespace genclus;
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);
  WeatherBenchOptions options = WeatherBenchOptions::FromFlags(flags);
  PrintHeader("Fig. 8 — Weather network accuracy, Setting 2");
  RunWeatherAccuracyBench(2, options);
  return 0;
}
