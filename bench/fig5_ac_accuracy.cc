// Figure 5: clustering accuracy (NMI mean and std over repeated runs) on
// the DBLP four-area AC network — NetPLSA vs iTopicModel vs GenClus,
// reported Overall / per conference (C) / per author (A).
//
// Paper reference values (read from Fig. 5's bars): GenClus mean NMI
// ~0.85 overall with near-zero std; NetPLSA and iTopicModel lower with
// visibly larger std; ordering GenClus > iTopicModel ~ NetPLSA.
//
// Flags: --runs N, --authors N, --papers N, --full, --fixed-gamma.
#include <cstdio>

#include "bench/dblp_bench_common.h"
#include "common/flags.h"
#include "datagen/dblp_generator.h"

int main(int argc, char** argv) {
  using namespace genclus;
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);
  DblpBenchOptions options = DblpBenchOptions::FromFlags(flags);

  auto corpus = GenerateDblpCorpus(options.MakeDataConfig());
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  auto ac = BuildAcNetwork(*corpus, options.MakeDataConfig());
  if (!ac.ok()) {
    std::fprintf(stderr, "%s\n", ac.status().ToString().c_str());
    return 1;
  }

  PrintHeader("Fig. 5 — Clustering accuracy, DBLP four-area AC network");
  std::printf("authors=%zu conferences=%zu links=%zu runs=%zu\n",
              ac->author_nodes.size(), ac->conference_nodes.size(),
              ac->dataset.network.num_links(), options.runs);

  RunDblpAccuracyBench(
      ac->dataset,
      {{"Overall", {}},
       {"C", ac->conference_nodes},
       {"A", ac->author_nodes}},
      options,
      {"publish_in<A,C>", "published_by<C,A>", "coauthor<A,A>"});

  std::printf(
      "\npaper (Fig. 5): GenClus mean NMI highest in every group with the\n"
      "smallest std; NetPLSA/iTopicModel lower and less stable.\n");
  return 0;
}
