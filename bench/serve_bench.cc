// Batch-planned serving scalability bench on fig11-style weather
// fixtures, companion to em_bench/strength_bench in the machine-readable
// perf trajectory: sweeps batch size (1/16/256) and thread count over the
// Plan/Execute pipeline and writes BENCH_serve.json so every future PR
// has serving numbers to beat.
//
// Phases timed per (batch, threads) cell, best of --reps rounds:
//   plan_us_per_query   Engine::Plan (validation + query x node CSR)
//   exec_us_per_query   Engine::Execute (SpMM link term + blocked sweeps)
//   us_per_query        Plan + Execute end to end
//   ref_us_per_query    the per-query InferMembership reference path,
//                       measured once per batch size (thread-independent)
//
// Correctness gates (non-zero exit, CI treats as broken build):
//   * planned memberships must stay within 1e-12 of the per-query
//     reference for every query (they are in fact bitwise identical);
//   * the planned path must be bitwise identical across thread counts
//     (the fixed-grain blocked execution's contract).
//
// Flags: --out FILE (default BENCH_serve.json), --small (CI fixture),
//        --reps N (default 7).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/engine.h"
#include "datagen/weather_generator.h"

namespace {

using namespace genclus;

struct Cell {
  size_t nodes = 0;
  size_t batch = 0;
  size_t threads = 0;
  double plan_us_per_query = 0.0;
  double exec_us_per_query = 0.0;
  double us_per_query = 0.0;
  double ref_us_per_query = 0.0;
  double speedup_vs_reference = 0.0;
  double max_drift_vs_reference = 0.0;
};

// Deterministic fold-in queries mirroring the generator's construction:
// each freshly deployed sensor belongs to a weather pattern, links to
// 2 * k nearest "neighbors" (tt + tp relations) and reports
// observations_per_sensor readings of its own attribute drawn from its
// pattern's marginal — the workload a weather serving tier folds in.
std::vector<NewObjectQuery> MakeQueries(const WeatherData& data,
                                        const WeatherConfig& config,
                                        size_t count) {
  Rng rng(29);
  const size_t num_nodes = data.dataset.network.num_nodes();
  std::vector<NewObjectQuery> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    NewObjectQuery q;
    for (size_t j = 0; j < config.k_nearest; ++j) {
      q.links.push_back({static_cast<NodeId>(rng.UniformIndex(num_nodes)),
                         data.tt_link, 1.0});
      q.links.push_back({static_cast<NodeId>(rng.UniformIndex(num_nodes)),
                         data.tp_link, 1.0});
    }
    // A new sensor of pattern i mod K: observations_per_sensor - 1
    // readings of its own attribute plus one of the other, so serving
    // touches both of the model's Gaussian tables (model attribute 0 =
    // temperature, 1 = precipitation; FitOptions order below).
    const WeatherPattern& pattern =
        config.patterns[i % config.patterns.size()];
    for (size_t j = 0; j + 1 < config.observations_per_sensor; ++j) {
      q.observations.push_back(NewObjectObservation::Numerical(
          0, rng.Gaussian(pattern.temperature_mean,
                          config.pattern_stddev)));
    }
    q.observations.push_back(NewObjectObservation::Numerical(
        1, rng.Gaussian(pattern.precipitation_mean,
                        config.pattern_stddev)));
    queries.push_back(std::move(q));
  }
  return queries;
}

size_t RoundsFor(size_t batch) { return std::max<size_t>(2, 512 / batch); }

}  // namespace

int main(int argc, char** argv) {
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);
  const bool small = flags.GetBool("small", false);
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 7));
  const std::string out_path = flags.GetString("out", "BENCH_serve.json");

  WeatherConfig wconfig = WeatherConfig::Setting1();
  wconfig.num_temperature_sensors = small ? 250 : 1000;
  wconfig.num_precipitation_sensors = small ? 60 : 250;
  wconfig.observations_per_sensor = 5;
  wconfig.seed = 11;
  auto data = GenerateWeatherNetwork(wconfig);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  FitOptions fit_options;
  fit_options.attributes = {"temperature", "precipitation"};
  fit_options.config.num_clusters = data->true_membership.cols();
  fit_options.config.outer_iterations = 2;
  fit_options.config.em_iterations = 10;
  fit_options.config.num_threads = 4;
  fit_options.config.seed = 5;
  auto fit = Engine::Fit(data->dataset, fit_options);
  if (!fit.ok()) {
    std::fprintf(stderr, "Engine::Fit failed: %s\n",
                 fit.status().ToString().c_str());
    return 1;
  }
  const Model model = std::move(fit).value().model;

  const std::vector<size_t> batch_sizes = {1, 16, 256};
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  const size_t num_nodes = data->dataset.network.num_nodes();
  const std::vector<NewObjectQuery> all_queries =
      MakeQueries(*data, wconfig, 256);

  PrintHeader("batch-planned serving (Plan/Execute over the SpMM kernel)");
  std::printf("host hardware threads: %u\n",
              std::thread::hardware_concurrency());
  PrintRow({"batch", "threads", "plan", "exec", "per_query", "reference",
            "speedup"});

  std::vector<Cell> cells;
  bool gates_ok = true;
  for (size_t batch : batch_sizes) {
    const std::span<const NewObjectQuery> queries(all_queries.data(), batch);
    const size_t rounds = RoundsFor(batch);

    // Reference path: the kept per-query InferMembership loop. Thread
    // independent, so measured once per batch size. One untimed warmup
    // round keeps cold caches out of the best-of window.
    std::vector<std::vector<double>> reference(batch);
    for (size_t i = 0; i < batch; ++i) {
      auto warm = InferMembership(data->dataset.network, model,
                                  queries[i].links, queries[i].observations);
      if (!warm.ok()) {
        std::fprintf(stderr, "InferMembership failed: %s\n",
                     warm.status().ToString().c_str());
        return 1;
      }
    }
    double ref_ms = 1e300;
    for (size_t rep = 0; rep < reps; ++rep) {
      WallTimer timer;
      for (size_t round = 0; round < rounds; ++round) {
        for (size_t i = 0; i < batch; ++i) {
          auto direct =
              InferMembership(data->dataset.network, model,
                              queries[i].links, queries[i].observations);
          if (!direct.ok()) {
            std::fprintf(stderr, "InferMembership failed: %s\n",
                         direct.status().ToString().c_str());
            return 1;
          }
          reference[i] = *std::move(direct);
        }
      }
      ref_ms = std::min(ref_ms, timer.Millis());
    }
    const double ref_us_per_query =
        ref_ms * 1e3 / static_cast<double>(rounds * batch);

    Matrix serial_memberships;
    for (size_t threads : thread_counts) {
      EngineOptions options;
      options.num_threads = threads;
      auto engine = Engine::Create(&data->dataset.network, model, options);
      if (!engine.ok()) {
        std::fprintf(stderr, "Engine::Create failed: %s\n",
                     engine.status().ToString().c_str());
        return 1;
      }

      Cell cell;
      cell.nodes = num_nodes;
      cell.batch = batch;
      cell.threads = threads;
      cell.ref_us_per_query = ref_us_per_query;
      double plan_ms = 1e300;
      double total_ms = 1e300;
      InferenceResult result;
      result = engine->Execute(engine->Plan(queries));  // untimed warmup
      for (size_t rep = 0; rep < reps; ++rep) {
        WallTimer total_timer;
        double rep_plan_ms = 0.0;
        for (size_t round = 0; round < rounds; ++round) {
          WallTimer plan_timer;
          InferPlan plan = engine->Plan(queries);
          rep_plan_ms += plan_timer.Millis();
          result = engine->Execute(plan);
        }
        total_ms = std::min(total_ms, total_timer.Millis());
        plan_ms = std::min(plan_ms, rep_plan_ms);
      }
      const double denom = static_cast<double>(rounds * batch);
      cell.plan_us_per_query = plan_ms * 1e3 / denom;
      cell.us_per_query = total_ms * 1e3 / denom;
      cell.exec_us_per_query = cell.us_per_query - cell.plan_us_per_query;
      cell.speedup_vs_reference =
          cell.us_per_query > 0.0 ? ref_us_per_query / cell.us_per_query
                                  : 0.0;

      // Gate 1: membership drift vs the reference path.
      for (size_t i = 0; i < batch; ++i) {
        if (!result.ok(i)) {
          std::fprintf(stderr, "FAIL: query %zu failed: %s\n", i,
                       result.statuses[i].ToString().c_str());
          return 1;
        }
        for (size_t k = 0; k < reference[i].size(); ++k) {
          cell.max_drift_vs_reference =
              std::max(cell.max_drift_vs_reference,
                       std::fabs(result.memberships(i, k) -
                                 reference[i][k]));
        }
      }
      if (cell.max_drift_vs_reference > 1e-12) {
        std::fprintf(stderr,
                     "FAIL: planned membership drifted %.3e (> 1e-12) "
                     "from InferMembership (batch=%zu, threads=%zu)\n",
                     cell.max_drift_vs_reference, batch, threads);
        gates_ok = false;
      }
      // Gate 2: bitwise identical across thread counts.
      if (threads == thread_counts.front()) {
        serial_memberships = result.memberships;
      } else if (result.memberships.data() != serial_memberships.data()) {
        std::fprintf(stderr,
                     "FAIL: planned path not bitwise thread-invariant "
                     "(batch=%zu, threads=%zu)\n",
                     batch, threads);
        gates_ok = false;
      }

      PrintRow({StrFormat("%zu", batch), StrFormat("%zu", threads),
                StrFormat("%.2fus", cell.plan_us_per_query),
                StrFormat("%.2fus", cell.exec_us_per_query),
                StrFormat("%.2fus", cell.us_per_query),
                StrFormat("%.2fus", cell.ref_us_per_query),
                StrFormat("%.2fx", cell.speedup_vs_reference)});
      cells.push_back(cell);
    }

    // Gate 3: serving through two Θ column shards stays bitwise equal to
    // the un-sharded memberships (ascending shard-order merge).
    {
      EngineOptions options;
      options.num_threads = 2;
      options.theta_shards = 2;
      auto engine = Engine::Create(&data->dataset.network, model, options);
      if (!engine.ok()) {
        std::fprintf(stderr, "Engine::Create failed: %s\n",
                     engine.status().ToString().c_str());
        return 1;
      }
      const InferenceResult sharded =
          engine->Execute(engine->Plan(queries));
      if (sharded.memberships.data() != serial_memberships.data()) {
        std::fprintf(stderr,
                     "FAIL: sharded serving (theta_shards=2) not bitwise "
                     "equal to un-sharded (batch=%zu)\n",
                     batch);
        gates_ok = false;
      }
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"serve_batch_planned\",\n");
  std::fprintf(f, "  \"fixture\": \"%s\",\n",
               small ? "weather_s1_small" : "weather_s1_fig11");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"nodes\": %zu, \"batch\": %zu, \"threads\": %zu, "
        "\"plan_us_per_query\": %.4f, \"exec_us_per_query\": %.4f, "
        "\"us_per_query\": %.4f, \"ref_us_per_query\": %.4f, "
        "\"speedup_vs_reference\": %.3f, "
        "\"max_drift_vs_reference\": %.3e}%s\n",
        c.nodes, c.batch, c.threads, c.plan_us_per_query,
        c.exec_us_per_query, c.us_per_query, c.ref_us_per_query,
        c.speedup_vs_reference, c.max_drift_vs_reference,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!gates_ok) return 1;
  return 0;
}
