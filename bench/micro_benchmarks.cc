// google-benchmark microbenches for the hot kernels: one EM sweep, the
// strength learner's gradient/Hessian/Newton step, network construction,
// and the special functions the learner leans on.
#include <benchmark/benchmark.h>

#include "core/em.h"
#include "core/init.h"
#include "core/strength.h"
#include "datagen/weather_generator.h"
#include "prob/special_functions.h"

namespace genclus {
namespace {

// Shared medium weather network (T:500, P:250, nobs=5).
const WeatherData& SharedWeather() {
  static const WeatherData data = [] {
    WeatherConfig config = WeatherConfig::Setting1();
    config.num_temperature_sensors = 500;
    config.num_precipitation_sensors = 250;
    config.observations_per_sensor = 5;
    config.seed = 11;
    return *GenerateWeatherNetwork(config);
  }();
  return data;
}

void BM_EmStep(benchmark::State& state) {
  const WeatherData& data = SharedWeather();
  GenClusConfig config;
  config.num_clusters = 4;
  std::vector<const Attribute*> attrs = {&data.dataset.attributes[0],
                                         &data.dataset.attributes[1]};
  EmOptimizer optimizer(&data.dataset.network, attrs, &config, nullptr);
  Rng rng(3);
  Matrix theta = RandomTheta(data.dataset.network.num_nodes(), 4, &rng);
  auto components = InitialComponents(attrs, config, &rng);
  std::vector<double> gamma(4, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        optimizer.Step(gamma, &theta, &components));
  }
  state.SetItemsProcessed(state.iterations() *
                          data.dataset.network.num_nodes());
}
BENCHMARK(BM_EmStep);

void BM_StrengthGradient(benchmark::State& state) {
  const WeatherData& data = SharedWeather();
  GenClusConfig config;
  config.num_clusters = 4;
  Rng rng(3);
  Matrix theta = RandomTheta(data.dataset.network.num_nodes(), 4, &rng);
  StrengthLearner learner(&data.dataset.network, &theta, &config);
  std::vector<double> gamma(4, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(learner.Gradient(gamma));
  }
}
BENCHMARK(BM_StrengthGradient);

void BM_StrengthHessian(benchmark::State& state) {
  const WeatherData& data = SharedWeather();
  GenClusConfig config;
  config.num_clusters = 4;
  Rng rng(3);
  Matrix theta = RandomTheta(data.dataset.network.num_nodes(), 4, &rng);
  StrengthLearner learner(&data.dataset.network, &theta, &config);
  std::vector<double> gamma(4, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(learner.Hessian(gamma));
  }
}
BENCHMARK(BM_StrengthHessian);

void BM_StrengthLearn(benchmark::State& state) {
  const WeatherData& data = SharedWeather();
  GenClusConfig config;
  config.num_clusters = 4;
  config.newton_iterations = 20;
  Rng rng(3);
  Matrix theta = RandomTheta(data.dataset.network.num_nodes(), 4, &rng);
  StrengthLearner learner(&data.dataset.network, &theta, &config);
  std::vector<double> gamma(4, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(learner.Learn(gamma, nullptr));
  }
}
BENCHMARK(BM_StrengthLearn);

void BM_WeatherGeneration(benchmark::State& state) {
  WeatherConfig config = WeatherConfig::Setting1();
  config.num_temperature_sensors = static_cast<size_t>(state.range(0));
  config.num_precipitation_sensors = config.num_temperature_sensors / 4;
  config.seed = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateWeatherNetwork(config));
  }
}
BENCHMARK(BM_WeatherGeneration)->Arg(200)->Arg(800);

void BM_Digamma(benchmark::State& state) {
  double x = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Digamma(x));
    x += 0.1;
    if (x > 50.0) x = 0.3;
  }
}
BENCHMARK(BM_Digamma);

void BM_Trigamma(benchmark::State& state) {
  double x = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Trigamma(x));
    x += 0.1;
    if (x > 50.0) x = 0.3;
  }
}
BENCHMARK(BM_Trigamma);

}  // namespace
}  // namespace genclus

BENCHMARK_MAIN();
