// Strength-learning (γ-step) scalability bench on fig11-style weather
// fixtures, the repo's machine-readable perf trajectory: sweeps network
// size and thread count over the fused StrengthLearner hot path and writes
// BENCH_strength.json (nodes, threads, ms per phase) so every future PR
// has numbers to beat.
//
// Phases timed per (size, threads) cell, best of --reps runs:
//   construct_ms  sufficient-statistics arena build (O(|E| K))
//   eval_all_ms   one fused objective+gradient+Hessian pass
//   learn_ms      full Newton ascent (γ-step of one outer iteration)
//
// Correctness gate: learned γ must match the serial (no-pool) path within
// 1e-12 at every thread count — the fused reduction is designed to be
// bitwise thread-count-invariant, so any drift fails the bench (non-zero
// exit), which CI treats as a broken build.
//
// Flags: --out FILE (default BENCH_strength.json), --small (CI fixture),
//        --reps N (default 3), --newton-iterations N (default 25).
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/strength.h"
#include "datagen/weather_generator.h"

namespace {

using namespace genclus;

struct Cell {
  size_t nodes = 0;
  size_t links = 0;
  size_t threads = 0;
  double construct_ms = 0.0;
  double eval_all_ms = 0.0;
  double learn_ms = 0.0;
  double speedup_vs_serial = 0.0;
  double max_gamma_diff_vs_serial = 0.0;
};

// Best-of-reps wall time of one γ-step phase set for a fixed thread count.
Cell MeasureCell(const WeatherData& data, const Matrix& theta,
                 const GenClusConfig& config, size_t threads, size_t reps,
                 const std::vector<double>& serial_gamma) {
  Cell cell;
  cell.nodes = data.dataset.network.num_nodes();
  cell.links = data.dataset.network.num_links();
  cell.threads = threads;
  cell.construct_ms = 1e300;
  cell.eval_all_ms = 1e300;
  cell.learn_ms = 1e300;

  ThreadPool pool(threads);
  ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
  const std::vector<double> start(
      data.dataset.network.schema().num_link_types(), 1.0);
  std::vector<double> learned;
  for (size_t rep = 0; rep < reps; ++rep) {
    WallTimer timer;
    StrengthLearner learner(&data.dataset.network, &theta, &config,
                            pool_ptr);
    cell.construct_ms = std::min(cell.construct_ms, timer.Millis());

    timer.Restart();
    StrengthLearner::Evaluation eval = learner.EvalAll(start);
    cell.eval_all_ms = std::min(cell.eval_all_ms, timer.Millis());
    (void)eval;

    timer.Restart();
    learned = learner.Learn(start, nullptr);
    cell.learn_ms = std::min(cell.learn_ms, timer.Millis());
  }
  for (size_t r = 0; r < learned.size(); ++r) {
    cell.max_gamma_diff_vs_serial =
        std::max(cell.max_gamma_diff_vs_serial,
                 std::fabs(learned[r] - serial_gamma[r]));
  }
  return cell;
}

void WriteJson(const std::string& path, const std::string& fixture,
               size_t newton_iterations, const std::vector<Cell>& cells) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"strength_scalability\",\n");
  std::fprintf(f, "  \"fixture\": \"%s\",\n", fixture.c_str());
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"newton_iterations\": %zu,\n", newton_iterations);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"nodes\": %zu, \"links\": %zu, \"threads\": %zu, "
        "\"construct_ms\": %.4f, \"eval_all_ms\": %.4f, "
        "\"learn_ms\": %.4f, \"speedup_vs_serial\": %.3f, "
        "\"max_gamma_diff_vs_serial\": %.3e}%s\n",
        c.nodes, c.links, c.threads, c.construct_ms, c.eval_all_ms,
        c.learn_ms, c.speedup_vs_serial, c.max_gamma_diff_vs_serial,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);
  const bool small = flags.GetBool("small", false);
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 3));
  const size_t newton_iterations =
      static_cast<size_t>(flags.GetInt("newton-iterations", 25));
  const std::string out =
      flags.GetString("out", "BENCH_strength.json");

  // Fig. 11 sweep: temperature sensors fixed, precipitation sensors in
  // {250, 500, 1000} -> 1250/1500/2000 objects. --small is the CI fixture.
  std::vector<size_t> precipitation_sizes =
      small ? std::vector<size_t>{60} : std::vector<size_t>{250, 500, 1000};
  const size_t num_temperature = small ? 250 : 1000;
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  PrintHeader("γ-step scalability (fused StrengthLearner)");
  std::printf("host hardware threads: %u\n",
              std::thread::hardware_concurrency());
  PrintRow({"nodes", "threads", "construct", "eval_all", "learn",
            "speedup"});

  std::vector<Cell> cells;
  bool determinism_ok = true;
  for (size_t num_p : precipitation_sizes) {
    WeatherConfig wconfig = WeatherConfig::Setting1();
    wconfig.num_temperature_sensors = num_temperature;
    wconfig.num_precipitation_sensors = num_p;
    wconfig.observations_per_sensor = 5;
    wconfig.seed = 11;
    auto data = GenerateWeatherNetwork(wconfig);
    if (!data.ok()) {
      std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    // The ground-truth soft membership is a realistic converged Theta.
    const Matrix& theta = data->true_membership;

    GenClusConfig config;
    config.num_clusters = theta.cols();
    config.newton_iterations = newton_iterations;
    config.gamma_prior_sigma = 0.5;

    // Serial baseline first: its γ is the reference the parallel runs
    // must reproduce, and its learn_ms anchors the speedup column.
    StrengthLearner serial(&data->dataset.network, &theta, &config,
                           nullptr);
    const std::vector<double> serial_gamma = serial.Learn(
        std::vector<double>(
            data->dataset.network.schema().num_link_types(), 1.0),
        nullptr);

    double serial_learn_ms = 0.0;
    for (size_t threads : thread_counts) {
      Cell cell = MeasureCell(*data, theta, config, threads, reps,
                              serial_gamma);
      if (threads == 1) serial_learn_ms = cell.learn_ms;
      cell.speedup_vs_serial =
          cell.learn_ms > 0.0 ? serial_learn_ms / cell.learn_ms : 0.0;
      if (cell.max_gamma_diff_vs_serial > 1e-12) determinism_ok = false;
      PrintRow({StrFormat("%zu", cell.nodes),
                StrFormat("%zu", cell.threads),
                StrFormat("%.2fms", cell.construct_ms),
                StrFormat("%.2fms", cell.eval_all_ms),
                StrFormat("%.2fms", cell.learn_ms),
                StrFormat("%.2fx", cell.speedup_vs_serial)});
      cells.push_back(cell);
    }
  }

  WriteJson(out, small ? "weather_s1_small" : "weather_s1_fig11",
            newton_iterations, cells);
  std::printf("\nwrote %s\n", out.c_str());
  if (!determinism_ok) {
    std::fprintf(stderr,
                 "FAIL: learned gamma diverged from the serial path by "
                 "more than 1e-12 at some thread count\n");
    return 1;
  }
  return 0;
}
