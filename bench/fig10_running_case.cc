// Figure 10: a typical running case on the AC network — per-outer-
// iteration clustering accuracy (NMI for conferences and authors) and
// link-type strengths, demonstrating the mutual enhancement of the
// clustering and the learned strengths.
//
// Paper reference (Fig. 10): conference NMI ~1.0 quickly; author NMI rises
// over iterations; gamma trajectories separate — publish_in<A,C> and
// published_by<C,A> rise while coauthor<A,A> collapses toward 0 —
// converging within ~10 iterations.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "datagen/dblp_generator.h"

int main(int argc, char** argv) {
  using namespace genclus;
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);

  DblpConfig data_config;
  data_config.num_authors =
      static_cast<size_t>(flags.GetInt("authors", 1000));
  data_config.num_papers = static_cast<size_t>(flags.GetInt("papers", 2500));
  data_config.seed = static_cast<uint64_t>(flags.GetInt("data-seed", 21));
  auto corpus = GenerateDblpCorpus(data_config);
  if (!corpus.ok()) return 1;
  auto ac = BuildAcNetwork(*corpus, data_config);
  if (!ac.ok()) return 1;

  FitOptions options;
  options.attributes = {"text"};
  options.config.num_clusters = 4;
  options.config.outer_iterations =
      static_cast<size_t>(flags.GetInt("iterations", 10));
  options.config.outer_tolerance = 0.0;  // show every iteration
  options.config.em_iterations = 40;
  options.config.num_init_seeds = 5;
  options.config.init_em_steps = 3;
  options.config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  // 0 (the default) reproduces the paper run exactly; > 0 turns on
  // convergence-aware EM sweeps and the "skip" column shows how many
  // block sweeps each outer iteration saved.
  options.config.block_convergence_tol = flags.GetDouble("block-tol", 0.0);

  PrintHeader("Fig. 10 — Running case on the AC network");
  PrintRow({"iter", "NMI(C)", "NMI(A)", "g<A,C>", "g<C,A>", "g<A,A>",
            "skip", "g1-objective"});

  // Streams one table row per outer iteration as training progresses.
  class RowPrinter : public ProgressObserver {
   public:
    explicit RowPrinter(const AcNetworkData* ac) : ac_(ac) {}
    void OnOuterIteration(const OuterIterationRecord& record,
                          const Matrix& theta) override {
      const auto pred = HardLabels(theta);
      PrintRow(
          {StrFormat("%zu", record.iteration),
           Fmt(SubsetNmi(pred, ac_->dataset.labels, ac_->conference_nodes)),
           Fmt(SubsetNmi(pred, ac_->dataset.labels, ac_->author_nodes)),
           Fmt(record.gamma[ac_->publish_in]),
           Fmt(record.gamma[ac_->published_by]),
           Fmt(record.gamma[ac_->coauthor]),
           StrFormat("%zu/%zu", record.em_blocks_skipped,
                     record.em_block_sweeps),
           StrFormat("%.1f", record.em_objective)});
    }

   private:
    const AcNetworkData* ac_;
  };
  RowPrinter printer(&*ac);
  options.observer = &printer;
  auto fit = Engine::Fit(ac->dataset, options);
  if (!fit.ok()) {
    std::fprintf(stderr, "%s\n", fit.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\npaper shape (Fig. 10): accuracy and strengths co-evolve; gamma\n"
      "starts all-ones, the informative relations rise, coauthor falls,\n"
      "both converge within ~10 iterations.\n");
  return 0;
}
