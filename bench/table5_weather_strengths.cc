// Table 5: learned link-type strengths on the weather networks, Setting 1,
// nobs = 5, P in {250, 500, 1000}.
//
// Paper values:
//                 <T,T>   <T,P>   <P,T>   <P,P>
//   T:1000 P:250   3.14    2.88    1.60    1.32
//   T:1000 P:500   3.16    3.05    2.38    1.98
//   T:1000 P:1000  3.14    3.03    3.34    2.78
// Shape: T-typed neighbors more trusted than P-typed; the strengths of
// <T,P>/<P,P> (and especially <P,T>) grow as P densifies.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "core/genclus.h"
#include "datagen/weather_generator.h"

int main(int argc, char** argv) {
  using namespace genclus;
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);
  const size_t nobs = static_cast<size_t>(flags.GetInt("nobs", 5));

  PrintHeader("Table 5 — Learned strengths, weather Setting 1, nobs=5");
  PrintRow({"network", "<T,T>", "<T,P>", "<P,T>", "<P,P>"});
  const double paper[3][4] = {{3.14, 2.88, 1.60, 1.32},
                              {3.16, 3.05, 2.38, 1.98},
                              {3.14, 3.03, 3.34, 2.78}};
  const size_t sizes[] = {250, 500, 1000};
  for (int row = 0; row < 3; ++row) {
    WeatherConfig wconfig = WeatherConfig::Setting1();
    wconfig.num_temperature_sensors = 1000;
    wconfig.num_precipitation_sensors = sizes[row];
    wconfig.observations_per_sensor = nobs;
    wconfig.seed = static_cast<uint64_t>(flags.GetInt("data-seed", 11));
    auto data = GenerateWeatherNetwork(wconfig);
    if (!data.ok()) return 1;

    GenClusConfig config;
    config.num_clusters = 4;
    config.outer_iterations = 5;
    config.em_iterations = 40;
    config.num_init_seeds = 5;
    config.init_em_steps = 5;
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 3));
    auto gen = RunGenClus(data->dataset, {"temperature", "precipitation"},
                          config);
    if (!gen.ok()) return 1;

    PrintRow({StrFormat("T:1000; P:%zu", sizes[row]),
              Fmt(gen->gamma[data->tt_link]), Fmt(gen->gamma[data->tp_link]),
              Fmt(gen->gamma[data->pt_link]),
              Fmt(gen->gamma[data->pp_link])});
    PrintRow({"  (paper)", Fmt(paper[row][0]), Fmt(paper[row][1]),
              Fmt(paper[row][2]), Fmt(paper[row][3])});
  }
  std::printf(
      "\npaper shape: gamma(T,*) > gamma(P,*) throughout; P-sourced\n"
      "strengths increase with P density.\n");
  return 0;
}
