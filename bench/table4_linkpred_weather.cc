// Table 4: link prediction accuracy (MAP) for the <T,P> relation in the
// weather network (Setting 1, T=1000, P=250): predicting a temperature
// sensor's precipitation-typed kNN neighbors from membership similarity.
// GenClus only — the hard-clustering baselines produce no membership
// probabilities to rank with.
//
// Paper values: cos 0.7285, -||.|| 0.7690, -H(tj,ti) 0.8073 — the
// asymmetric cross entropy is the best ranker.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "core/genclus.h"
#include "datagen/weather_generator.h"
#include "eval/link_prediction.h"

int main(int argc, char** argv) {
  using namespace genclus;
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);

  WeatherConfig wconfig = WeatherConfig::Setting1();
  wconfig.num_temperature_sensors =
      static_cast<size_t>(flags.GetInt("temperature-sensors", 1000));
  wconfig.num_precipitation_sensors =
      static_cast<size_t>(flags.GetInt("precipitation-sensors", 250));
  wconfig.observations_per_sensor =
      static_cast<size_t>(flags.GetInt("nobs", 5));
  wconfig.seed = static_cast<uint64_t>(flags.GetInt("data-seed", 11));
  auto data = GenerateWeatherNetwork(wconfig);
  if (!data.ok()) return 1;

  GenClusConfig config;
  config.num_clusters = 4;
  config.outer_iterations = 5;
  config.em_iterations = 40;
  config.num_init_seeds = 5;
  config.init_em_steps = 5;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 3));
  auto gen = RunGenClus(data->dataset, {"temperature", "precipitation"},
                        config);
  if (!gen.ok()) {
    std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
    return 1;
  }

  PrintHeader("Table 4 — MAP for <T,P> prediction in the weather network");
  PrintRow({"similarity", "GenClus", "paper"});
  const double paper[] = {0.7285, 0.7690, 0.8073};
  const SimilarityKind kinds[] = {SimilarityKind::kCosine,
                                  SimilarityKind::kNegativeEuclidean,
                                  SimilarityKind::kNegativeCrossEntropy};
  for (int i = 0; i < 3; ++i) {
    auto map = EvaluateLinkPrediction(data->dataset.network, gen->theta,
                                      data->tp_link, kinds[i]);
    PrintRow({SimilarityKindName(kinds[i]),
              Fmt(map.ok() ? map->map : NAN), Fmt(paper[i])});
  }
  std::printf("\npaper shape: the asymmetric -H(tj,ti) ranks best.\n");
  return 0;
}
