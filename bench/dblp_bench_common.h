// Shared driver for the DBLP clustering-accuracy benches (Figs. 5 and 6):
// runs NetPLSA, iTopicModel and GenClus `runs` times each with different
// seeds on a four-area network and prints mean/std NMI per object type —
// the quantities plotted in the paper's bar charts.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/topic_models.h"
#include "bench/bench_util.h"
#include "common/flags.h"
#include "core/engine.h"
#include "datagen/dblp_generator.h"

namespace genclus::bench {

struct DblpBenchOptions {
  size_t runs = 5;
  size_t num_authors = 1000;
  size_t num_papers = 2500;
  size_t num_conferences = 20;
  size_t outer_iterations = 10;
  uint64_t data_seed = 21;
  bool fixed_gamma = false;  // ablation: skip strength learning

  static DblpBenchOptions FromFlags(const Flags& flags) {
    DblpBenchOptions opt;
    opt.runs = static_cast<size_t>(flags.GetInt("runs", 5));
    if (flags.GetBool("full", false)) {
      // Paper-scale-ish sizes (the real snapshot has 14.4k papers).
      opt.num_authors = 4000;
      opt.num_papers = 12000;
      opt.runs = static_cast<size_t>(flags.GetInt("runs", 20));
    }
    opt.num_authors = static_cast<size_t>(
        flags.GetInt("authors", static_cast<int64_t>(opt.num_authors)));
    opt.num_papers = static_cast<size_t>(
        flags.GetInt("papers", static_cast<int64_t>(opt.num_papers)));
    opt.data_seed = static_cast<uint64_t>(flags.GetInt("data-seed", 21));
    opt.fixed_gamma = flags.GetBool("fixed-gamma", false);
    return opt;
  }

  DblpConfig MakeDataConfig() const {
    DblpConfig config;
    config.num_authors = num_authors;
    config.num_papers = num_papers;
    config.num_conferences = num_conferences;
    config.seed = data_seed;
    return config;
  }

  GenClusConfig MakeGenClusConfig(uint64_t seed) const {
    GenClusConfig config;
    config.num_clusters = 4;
    config.outer_iterations = outer_iterations;
    config.em_iterations = 40;
    config.num_init_seeds = 3;
    config.init_em_steps = 3;
    config.seed = seed;
    config.learn_strengths = !fixed_gamma;
    return config;
  }
};

/// Per-type NMI samples over runs for one method.
struct MethodSamples {
  std::string name;
  std::vector<std::vector<double>> per_group;  // [group][run]
};

/// Runs the three methods on `dataset`; groups[g] is a (label, node-subset)
/// pair — the first group must be the overall set (empty subset = all).
/// Prints the Fig. 5 / Fig. 6 style table and the mean learned strengths.
void RunDblpAccuracyBench(
    const Dataset& dataset,
    const std::vector<std::pair<std::string, std::vector<NodeId>>>& groups,
    const DblpBenchOptions& options,
    const std::vector<std::string>& relation_names);

}  // namespace genclus::bench
