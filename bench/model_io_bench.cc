// Model persistence bench: text (SaveModel/LoadModel) vs binary
// (SaveModelBinary/LoadModelBinary) wall time on a fig11-style weather
// fixture, written to BENCH_model_io.json so the load-path trajectory is
// machine-readable PR over PR.
//
// The model is synthesized from the generator's planted membership (Θ),
// the schema's link types (γ), Gaussian components for the two weather
// attributes and one bulky categorical vocabulary, so file sizes are
// realistic without paying for a training run. Timings are best of
// --reps.
//
// Correctness gates (non-zero exit, CI treats as broken build):
//   * the binary round trip must reproduce the model bit for bit;
//   * LoadModelBinary must be at least 5x faster than LoadModel.
//
// Flags: --out FILE (default BENCH_model_io.json), --small (CI fixture),
//        --reps N (default 5).
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/model.h"
#include "core/model_io.h"
#include "datagen/weather_generator.h"

namespace {

using namespace genclus;

struct Cell {
  size_t nodes = 0;
  size_t clusters = 0;
  size_t vocab = 0;
  size_t text_bytes = 0;
  size_t binary_bytes = 0;
  double text_save_ms = 0.0;
  double binary_save_ms = 0.0;
  double text_load_ms = 0.0;
  double binary_load_ms = 0.0;
  double load_speedup = 0.0;  // text_load_ms / binary_load_ms
  bool roundtrip_bitwise = false;
};

// A trained-shaped model over the weather fixture: planted Θ, schema γ,
// Gaussians for the weather attributes, one wide categorical vocabulary.
Model SynthesizeModel(const WeatherData& data, size_t vocab) {
  Model model;
  model.theta = data.true_membership;
  model.theta_shards = 2;  // exercise the multi-block shard table
  const Schema& schema = data.dataset.network.schema();
  Rng rng(29);
  for (LinkTypeId r = 0; r < schema.num_link_types(); ++r) {
    model.link_types.push_back(schema.link_type(r).name);
    model.gamma.push_back(0.5 + rng.Uniform());
  }
  const size_t num_clusters = model.num_clusters();
  for (const char* name : {"temperature", "precipitation"}) {
    model.attributes.push_back({name, AttributeKind::kNumerical, 0});
    std::vector<GaussianDistribution> gaussians;
    for (size_t k = 0; k < num_clusters; ++k) {
      gaussians.emplace_back(rng.Gaussian(0.0, 3.0), 0.25 + rng.Uniform());
    }
    model.components.push_back(
        AttributeComponents::Numerical(std::move(gaussians)));
  }
  model.attributes.push_back({"terms", AttributeKind::kCategorical, vocab});
  AttributeComponents comp =
      AttributeComponents::CategoricalUniform(num_clusters, vocab);
  for (double& value : comp.mutable_beta()->data()) {
    value = rng.Uniform();
  }
  model.components.push_back(std::move(comp));
  model.objective = -4321.0987654321;
  return model;
}

bool ModelsBitwiseEqual(const Model& a, const Model& b) {
  if (a.theta.data() != b.theta.data() || a.gamma != b.gamma ||
      a.link_types != b.link_types || a.objective != b.objective ||
      a.theta_shards != b.theta_shards ||
      a.components.size() != b.components.size()) {
    return false;
  }
  for (size_t i = 0; i < a.components.size(); ++i) {
    if (a.components[i].kind() != b.components[i].kind()) return false;
    if (a.components[i].kind() == AttributeKind::kCategorical) {
      if (a.components[i].beta().data() != b.components[i].beta().data()) {
        return false;
      }
    } else {
      for (size_t k = 0; k < a.num_clusters(); ++k) {
        const auto& ga = a.components[i].gaussian(static_cast<ClusterId>(k));
        const auto& gb = b.components[i].gaussian(static_cast<ClusterId>(k));
        if (ga.mean() != gb.mean() || ga.variance() != gb.variance()) {
          return false;
        }
      }
    }
  }
  return true;
}

size_t FileBytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<size_t>(size);
}

void WriteJson(const std::string& path, const std::string& fixture,
               const std::vector<Cell>& cells) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"model_io\",\n");
  std::fprintf(f, "  \"fixture\": \"%s\",\n", fixture.c_str());
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"nodes\": %zu, \"clusters\": %zu, \"vocab\": %zu, "
        "\"text_bytes\": %zu, \"binary_bytes\": %zu, "
        "\"text_save_ms\": %.4f, \"binary_save_ms\": %.4f, "
        "\"text_load_ms\": %.4f, \"binary_load_ms\": %.4f, "
        "\"load_speedup\": %.2f, \"roundtrip_bitwise\": %s}%s\n",
        c.nodes, c.clusters, c.vocab, c.text_bytes, c.binary_bytes,
        c.text_save_ms, c.binary_save_ms, c.text_load_ms, c.binary_load_ms,
        c.load_speedup, c.roundtrip_bitwise ? "true" : "false",
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);
  const bool small = flags.GetBool("small", false);
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 5));
  const std::string out = flags.GetString("out", "BENCH_model_io.json");

  // Fig. 11 sweep shape: precipitation sensor counts scale the node
  // range; the categorical vocabulary supplies text-format bulk.
  std::vector<size_t> precipitation_sizes =
      small ? std::vector<size_t>{60} : std::vector<size_t>{250, 500, 1000};
  const size_t num_temperature = small ? 250 : 1000;
  const size_t vocab = small ? 1000 : 4000;

  PrintHeader("model I/O: text vs binary persistence");
  PrintRow({"nodes", "text_kb", "bin_kb", "t_load", "b_load", "speedup"});

  const std::string text_path =
      (std::filesystem::temp_directory_path() / "genclus_io_bench.model")
          .string();
  const std::string binary_path =
      (std::filesystem::temp_directory_path() / "genclus_io_bench.bin")
          .string();

  std::vector<Cell> cells;
  bool gates_ok = true;
  for (size_t num_p : precipitation_sizes) {
    WeatherConfig wconfig = WeatherConfig::Setting1();
    wconfig.num_temperature_sensors = num_temperature;
    wconfig.num_precipitation_sensors = num_p;
    wconfig.observations_per_sensor = 5;
    wconfig.seed = 11;
    auto data = GenerateWeatherNetwork(wconfig);
    if (!data.ok()) {
      std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    const Model model = SynthesizeModel(*data, vocab);

    Cell cell;
    cell.nodes = model.num_nodes();
    cell.clusters = model.num_clusters();
    cell.vocab = vocab;
    cell.text_save_ms = 1e300;
    cell.binary_save_ms = 1e300;
    cell.text_load_ms = 1e300;
    cell.binary_load_ms = 1e300;
    cell.roundtrip_bitwise = true;
    for (size_t rep = 0; rep < reps; ++rep) {
      {
        WallTimer timer;
        const Status saved = SaveModel(model, text_path);
        cell.text_save_ms = std::min(cell.text_save_ms, timer.Millis());
        if (!saved.ok()) {
          std::fprintf(stderr, "%s\n", saved.ToString().c_str());
          return 1;
        }
      }
      {
        WallTimer timer;
        const Status saved = SaveModelBinary(model, binary_path);
        cell.binary_save_ms = std::min(cell.binary_save_ms, timer.Millis());
        if (!saved.ok()) {
          std::fprintf(stderr, "%s\n", saved.ToString().c_str());
          return 1;
        }
      }
      {
        WallTimer timer;
        auto loaded = LoadModel(text_path);
        cell.text_load_ms = std::min(cell.text_load_ms, timer.Millis());
        if (!loaded.ok()) {
          std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
          return 1;
        }
        cell.roundtrip_bitwise =
            cell.roundtrip_bitwise && ModelsBitwiseEqual(model, *loaded);
      }
      {
        WallTimer timer;
        auto loaded = LoadModelBinary(binary_path);
        cell.binary_load_ms = std::min(cell.binary_load_ms, timer.Millis());
        if (!loaded.ok()) {
          std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
          return 1;
        }
        cell.roundtrip_bitwise =
            cell.roundtrip_bitwise && ModelsBitwiseEqual(model, *loaded);
      }
    }
    cell.text_bytes = FileBytes(text_path);
    cell.binary_bytes = FileBytes(binary_path);
    cell.load_speedup = cell.binary_load_ms > 0.0
                            ? cell.text_load_ms / cell.binary_load_ms
                            : 0.0;

    if (!cell.roundtrip_bitwise) {
      std::fprintf(stderr,
                   "FAIL: persistence round trip not bitwise at %zu nodes\n",
                   cell.nodes);
      gates_ok = false;
    }
    if (cell.load_speedup < 5.0) {
      std::fprintf(stderr,
                   "FAIL: binary load only %.2fx faster than text "
                   "(gate: 5x) at %zu nodes\n",
                   cell.load_speedup, cell.nodes);
      gates_ok = false;
    }

    PrintRow({StrFormat("%zu", cell.nodes),
              StrFormat("%.1f", cell.text_bytes / 1024.0),
              StrFormat("%.1f", cell.binary_bytes / 1024.0),
              StrFormat("%.2fms", cell.text_load_ms),
              StrFormat("%.3fms", cell.binary_load_ms),
              StrFormat("%.1fx", cell.load_speedup)});
    cells.push_back(cell);
  }
  std::remove(text_path.c_str());
  std::remove(binary_path.c_str());

  WriteJson(out, small ? "weather_s1_small" : "weather_s1_fig11", cells);
  std::printf("\nwrote %s\n", out.c_str());
  if (!gates_ok) return 1;
  return 0;
}
