// Figure 6: clustering accuracy (NMI mean and std) on the DBLP four-area
// ACP network — text on papers only, so authors and conferences must be
// clustered purely through links (the incomplete-attribute case).
//
// Paper reference values (read from Fig. 6's bars): GenClus best overall;
// NetPLSA nearly random on authors (A); iTopicModel better than NetPLSA
// and best on C, but below GenClus overall.
//
// Flags: --runs N, --authors N, --papers N, --full, --fixed-gamma.
#include <cstdio>

#include "bench/dblp_bench_common.h"
#include "common/flags.h"
#include "datagen/dblp_generator.h"

int main(int argc, char** argv) {
  using namespace genclus;
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);
  DblpBenchOptions options = DblpBenchOptions::FromFlags(flags);

  auto corpus = GenerateDblpCorpus(options.MakeDataConfig());
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  auto acp = BuildAcpNetwork(*corpus, options.MakeDataConfig());
  if (!acp.ok()) {
    std::fprintf(stderr, "%s\n", acp.status().ToString().c_str());
    return 1;
  }

  PrintHeader("Fig. 6 — Clustering accuracy, DBLP four-area ACP network");
  std::printf("authors=%zu conferences=%zu papers=%zu links=%zu runs=%zu\n",
              acp->author_nodes.size(), acp->conference_nodes.size(),
              acp->paper_nodes.size(), acp->dataset.network.num_links(),
              options.runs);

  RunDblpAccuracyBench(
      acp->dataset,
      {{"Overall", {}},
       {"C", acp->conference_nodes},
       {"A", acp->author_nodes},
       {"P", acp->paper_nodes}},
      options,
      {"write<A,P>", "written_by<P,A>", "publish<C,P>",
       "published_by<P,C>"});

  std::printf(
      "\npaper (Fig. 6): GenClus best overall; NetPLSA near-random for A;\n"
      "iTopicModel competitive on C but below GenClus overall.\n");
  return 0;
}
