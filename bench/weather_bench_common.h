// Shared driver for the weather-network accuracy benches (Figs. 7 and 8):
// for each network size (#P) and observation count, run k-means,
// SpectralCombine and GenClus and print NMI against the planted weather
// patterns — the paper's 3x3 panels per setting.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flags.h"
#include "datagen/weather_generator.h"

namespace genclus::bench {

struct WeatherBenchOptions {
  std::vector<size_t> precipitation_sizes = {250, 500, 1000};
  std::vector<size_t> observation_counts = {1, 5, 20};
  size_t num_temperature_sensors = 1000;
  size_t runs = 3;
  uint64_t data_seed = 11;
  bool fixed_gamma = false;

  static WeatherBenchOptions FromFlags(const Flags& flags) {
    WeatherBenchOptions opt;
    opt.runs = static_cast<size_t>(flags.GetInt("runs", 1));
    opt.num_temperature_sensors =
        static_cast<size_t>(flags.GetInt("temperature-sensors", 1000));
    opt.data_seed = static_cast<uint64_t>(flags.GetInt("data-seed", 11));
    opt.fixed_gamma = flags.GetBool("fixed-gamma", false);
    if (flags.Has("quick")) {
      opt.precipitation_sizes = {250};
      opt.observation_counts = {5};
      opt.runs = 1;
    }
    return opt;
  }
};

/// Runs the full grid for one pattern setting (1 or 2) and prints the
/// Fig. 7 / Fig. 8 style table.
void RunWeatherAccuracyBench(int setting, const WeatherBenchOptions& options);

}  // namespace genclus::bench
