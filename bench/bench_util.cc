#include "bench/bench_util.h"

#include <cmath>
#include <cstdio>

#include "common/string_util.h"
#include "prob/simplex.h"

namespace genclus::bench {

std::vector<uint32_t> HardLabels(const Matrix& theta) {
  return RowArgMax(theta);
}

double SubsetNmi(const std::vector<uint32_t>& pred, const Labels& truth,
                 const std::vector<NodeId>& subset) {
  std::vector<uint32_t> p(pred.size(), kUnlabeled);
  std::vector<uint32_t> t(pred.size(), kUnlabeled);
  for (NodeId v : subset) {
    p[v] = pred[v];
    t[v] = truth.Get(v);
  }
  return NormalizedMutualInformation(p, t);
}

double OverallNmi(const std::vector<uint32_t>& pred, const Labels& truth) {
  return NormalizedMutualInformation(pred, truth.raw());
}

MeanStd Summarize(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  for (double v : values) out.mean += v;
  out.mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - out.mean) * (v - out.mean);
  out.std = std::sqrt(var / static_cast<double>(values.size()));
  return out;
}

void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i == 0) {
      std::printf("%-26s", cells[i].c_str());
    } else {
      std::printf("%14s", cells[i].c_str());
    }
  }
  std::printf("\n");
}

std::string Fmt(double value) {
  if (std::isnan(value)) return "-";
  return StrFormat("%.4f", value);
}

std::string FmtMeanStd(const MeanStd& ms) {
  return StrFormat("%.3f+-%.3f", ms.mean, ms.std);
}

}  // namespace genclus::bench
