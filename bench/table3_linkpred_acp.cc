// Table 3: link prediction accuracy (MAP) for the <P,C> relation in the
// ACP network — predicting the conference a paper is published in.
//
// Paper values:
//                NetPLSA   iTopicModel   GenClus
//   cos          0.2762    0.4609        0.5170
//   -||.||       0.2759    0.4600        0.5142
//   -H(tj,ti)    0.2760    0.4683        0.5183
#include <cstdio>

#include "baselines/topic_models.h"
#include "bench/bench_util.h"
#include "common/flags.h"
#include "core/genclus.h"
#include "datagen/dblp_generator.h"
#include "eval/link_prediction.h"

int main(int argc, char** argv) {
  using namespace genclus;
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);

  DblpConfig data_config;
  data_config.num_authors =
      static_cast<size_t>(flags.GetInt("authors", 1000));
  data_config.num_papers = static_cast<size_t>(flags.GetInt("papers", 2500));
  data_config.seed = static_cast<uint64_t>(flags.GetInt("data-seed", 21));
  auto corpus = GenerateDblpCorpus(data_config);
  if (!corpus.ok()) return 1;
  auto acp = BuildAcpNetwork(*corpus, data_config);
  if (!acp.ok()) return 1;
  const Dataset& dataset = acp->dataset;
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  NetPlsaConfig np_config;
  np_config.num_clusters = 4;
  np_config.seed = seed;
  auto np = RunNetPlsa(dataset.network, dataset.attributes[0], np_config);
  ITopicModelConfig it_config;
  it_config.num_clusters = 4;
  it_config.seed = seed;
  auto it = RunITopicModel(dataset.network, dataset.attributes[0],
                           it_config);
  GenClusConfig gconfig;
  gconfig.num_clusters = 4;
  gconfig.outer_iterations = 10;
  gconfig.em_iterations = 40;
  gconfig.num_init_seeds = 5;
  gconfig.init_em_steps = 3;
  gconfig.seed = seed;
  auto gen = RunGenClus(dataset, {"text"}, gconfig);
  if (!np.ok() || !it.ok() || !gen.ok()) {
    std::fprintf(stderr, "a method failed\n");
    return 1;
  }

  PrintHeader("Table 3 — MAP for <P,C> prediction in the ACP network");
  PrintRow({"similarity", "NetPLSA", "iTopicModel", "GenClus", "paper-Gen"});
  const double paper_gen[] = {0.5170, 0.5142, 0.5183};
  const SimilarityKind kinds[] = {SimilarityKind::kCosine,
                                  SimilarityKind::kNegativeEuclidean,
                                  SimilarityKind::kNegativeCrossEntropy};
  for (int i = 0; i < 3; ++i) {
    auto map_np = EvaluateLinkPrediction(dataset.network, np->theta,
                                         acp->published_by, kinds[i]);
    auto map_it = EvaluateLinkPrediction(dataset.network, it->theta,
                                         acp->published_by, kinds[i]);
    auto map_gen = EvaluateLinkPrediction(dataset.network, gen->theta,
                                          acp->published_by, kinds[i]);
    PrintRow({SimilarityKindName(kinds[i]),
              Fmt(map_np.ok() ? map_np->map : NAN),
              Fmt(map_it.ok() ? map_it->map : NAN),
              Fmt(map_gen.ok() ? map_gen->map : NAN), Fmt(paper_gen[i])});
  }
  std::printf("\npaper shape: GenClus > iTopicModel >> NetPLSA.\n");
  return 0;
}
