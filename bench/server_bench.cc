// Serving-tier throughput/latency bench for core/server.h, companion to
// serve_bench in the machine-readable perf trajectory. serve_bench
// measures the raw Plan/Execute pipeline; this bench measures the tier
// wrapped around it — bounded queue, micro-batching admission loop and
// per-worker sessions — and writes BENCH_server.json.
//
// Phases (weather fixture, same construction as serve_bench):
//   serial     one query at a time through Plan/Execute on one thread —
//              the old per-request Submit behavior under its global
//              execution mutex; the baseline qps.
//   saturated  closed-loop flood from 4 producers through a Server with
//              --workers workers; micro-batching + concurrent sessions
//              give the tier its throughput. Best-of --reps.
//   poisson    open-loop arrivals at 0.6x the saturated rate; per-query
//              enqueue-to-delivery latency percentiles (p50/p90/p99).
//   overload   open-loop arrivals at 3x the saturated rate against a
//              fresh deadline-carrying server (default_timeout_us set,
//              cost-based rejection + graceful degradation on): the
//              robustness scenario. The tier must shed/reject the excess
//              it cannot serve and keep the answers it does deliver
//              within budget.
//
// Gates (non-zero exit, CI treats as broken build):
//   * zero drift: every membership the server returns is bitwise equal
//     to the per-query InferMembership reference;
//   * speedup: saturated qps >= 2x serial qps — enforced only when the
//     host has >= 4 hardware threads and --workers >= 4 (elsewhere the
//     ratio is printed but not gated);
//   * p99 budget: poisson p99 latency <= max(20ms, 200x the serial
//     per-query time) — generous, but catches lost wakeups and
//     admission-loop stalls outright;
//   * overload p99: among requests that completed under 3x overload,
//     p99 enqueue-to-delivery latency <= the deadline budget — load
//     shedding must protect the served tail, not just drop traffic;
//   * overload accounting: every submission resolves with a definite
//     outcome and the client-side tallies reconcile exactly with
//     ServerStats (submissions == accepted + rejected + deadline_rejected,
//     accepted == completed + cancelled + deadline_shed) — no lost
//     futures under sustained overload;
//   * overload drift: every non-degraded answer stays bitwise equal to
//     the reference even while the tier is shedding and degrading.
//
// Flags: --out FILE (default BENCH_server.json), --small (CI fixture),
//        --reps N (default 5), --workers N (default 4).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/engine.h"
#include "core/server.h"
#include "datagen/weather_generator.h"

namespace {

using namespace genclus;

// Fold-in queries mirroring serve_bench: each new sensor links to 2 * k
// neighbors over both relations and reports readings of both attributes.
std::vector<NewObjectQuery> MakeQueries(const WeatherData& data,
                                        const WeatherConfig& config,
                                        size_t count) {
  Rng rng(29);
  const size_t num_nodes = data.dataset.network.num_nodes();
  std::vector<NewObjectQuery> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    NewObjectQuery q;
    for (size_t j = 0; j < config.k_nearest; ++j) {
      q.links.push_back({static_cast<NodeId>(rng.UniformIndex(num_nodes)),
                         data.tt_link, 1.0});
      q.links.push_back({static_cast<NodeId>(rng.UniformIndex(num_nodes)),
                         data.tp_link, 1.0});
    }
    const WeatherPattern& pattern =
        config.patterns[i % config.patterns.size()];
    for (size_t j = 0; j + 1 < config.observations_per_sensor; ++j) {
      q.observations.push_back(NewObjectObservation::Numerical(
          0, rng.Gaussian(pattern.temperature_mean,
                          config.pattern_stddev)));
    }
    q.observations.push_back(NewObjectObservation::Numerical(
        1, rng.Gaussian(pattern.precipitation_mean,
                        config.pattern_stddev)));
    queries.push_back(std::move(q));
  }
  return queries;
}

// Bitwise comparison against the precomputed reference; returns false and
// reports on the first mismatch (zero drift is a gate, not a tolerance).
bool BitwiseEqualsReference(const QueryResult& answer,
                            const std::vector<double>& reference,
                            const char* phase) {
  if (!answer.ok()) {
    std::fprintf(stderr, "FAIL(%s): query errored: %s\n", phase,
                 answer.status.ToString().c_str());
    return false;
  }
  if (answer.membership.size() != reference.size()) {
    std::fprintf(stderr, "FAIL(%s): membership size mismatch\n", phase);
    return false;
  }
  for (size_t k = 0; k < reference.size(); ++k) {
    if (answer.membership[k] != reference[k]) {
      std::fprintf(stderr,
                   "FAIL(%s): membership drifted from InferMembership "
                   "(k=%zu, got %.17g want %.17g)\n",
                   phase, k, answer.membership[k], reference[k]);
      return false;
    }
  }
  return true;
}

double PercentileUs(std::vector<double>* sorted_us, double p) {
  if (sorted_us->empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted_us->size())));
  return (*sorted_us)[std::min(sorted_us->size(), std::max<size_t>(rank, 1)) -
                      1];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);
  const bool small = flags.GetBool("small", false);
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 5));
  const size_t workers = static_cast<size_t>(flags.GetInt("workers", 4));
  const std::string out_path = flags.GetString("out", "BENCH_server.json");

  WeatherConfig wconfig = WeatherConfig::Setting1();
  wconfig.num_temperature_sensors = small ? 250 : 1000;
  wconfig.num_precipitation_sensors = small ? 60 : 250;
  wconfig.observations_per_sensor = 5;
  wconfig.seed = 11;
  auto data = GenerateWeatherNetwork(wconfig);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  FitOptions fit_options;
  fit_options.attributes = {"temperature", "precipitation"};
  fit_options.config.num_clusters = data->true_membership.cols();
  fit_options.config.outer_iterations = 2;
  fit_options.config.em_iterations = 10;
  fit_options.config.num_threads = 4;
  fit_options.config.seed = 5;
  auto fit = Engine::Fit(data->dataset, fit_options);
  if (!fit.ok()) {
    std::fprintf(stderr, "Engine::Fit failed: %s\n",
                 fit.status().ToString().c_str());
    return 1;
  }
  const Model model = std::move(fit).value().model;

  constexpr size_t kPoolSize = 64;
  const std::vector<NewObjectQuery> pool =
      MakeQueries(*data, wconfig, kPoolSize);
  std::vector<std::vector<double>> reference(kPoolSize);
  for (size_t i = 0; i < kPoolSize; ++i) {
    auto direct = InferMembership(data->dataset.network, model,
                                  pool[i].links, pool[i].observations);
    if (!direct.ok()) {
      std::fprintf(stderr, "InferMembership failed: %s\n",
                   direct.status().ToString().c_str());
      return 1;
    }
    reference[i] = *std::move(direct);
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  PrintHeader("micro-batching serving tier (Server over Plan/Execute)");
  std::printf("host hardware threads: %u, server workers: %zu\n", hardware,
              workers);

  // --- Phase 1: serial baseline -------------------------------------
  // One query per plan, one thread, strictly sequential: what the old
  // per-request Submit path delivered once its std::async thread hit the
  // engine's global execution mutex.
  const size_t serial_queries = small ? 512 : 2048;
  double serial_qps = 0.0;
  double serial_us_per_query = 0.0;
  {
    EngineOptions options;
    options.num_threads = 1;
    auto engine = Engine::Create(&data->dataset.network, model, options);
    if (!engine.ok()) {
      std::fprintf(stderr, "Engine::Create failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    double best_ms = 1e300;
    for (size_t rep = 0; rep < reps + 1; ++rep) {  // first rep = warmup
      WallTimer timer;
      for (size_t i = 0; i < serial_queries; ++i) {
        const NewObjectQuery& q = pool[i % kPoolSize];
        const InferenceResult result =
            engine->Execute(engine->Plan(std::span(&q, 1)));
        if (!result.ok(0)) {
          std::fprintf(stderr, "serial query failed: %s\n",
                       result.statuses[0].ToString().c_str());
          return 1;
        }
      }
      if (rep > 0) best_ms = std::min(best_ms, timer.Millis());
    }
    serial_us_per_query =
        best_ms * 1e3 / static_cast<double>(serial_queries);
    serial_qps = 1e6 / serial_us_per_query;
  }

  // --- Phase 2: saturated server ------------------------------------
  ServerOptions server_options;
  server_options.num_workers = workers;
  server_options.queue_capacity = 4096;
  server_options.max_batch = 64;
  server_options.max_wait_us = 200;
  auto server_or =
      Server::Create(&data->dataset.network, &model, server_options);
  if (!server_or.ok()) {
    std::fprintf(stderr, "Server::Create failed: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  Server& server = *server_or.value();

  bool gates_ok = true;
  const size_t saturation_queries = small ? 2048 : 8192;
  constexpr size_t kProducers = 4;
  double server_qps = 0.0;
  {
    double best_ms = 1e300;
    for (size_t rep = 0; rep < reps; ++rep) {
      std::vector<std::vector<std::pair<size_t, std::future<QueryResult>>>>
          futures(kProducers);
      WallTimer timer;
      std::vector<std::thread> producers;
      for (size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
          const size_t share = saturation_queries / kProducers;
          futures[p].reserve(share);
          for (size_t i = 0; i < share; ++i) {
            const size_t index = (p * share + i) % kPoolSize;
            for (;;) {
              auto submitted = server.Submit(pool[index]);
              if (submitted.ok()) {
                futures[p].emplace_back(index,
                                        std::move(submitted).value());
                break;
              }
              std::this_thread::yield();  // backpressure: retry
            }
          }
        });
      }
      for (std::thread& t : producers) t.join();
      bool rep_ok = true;
      for (auto& produced : futures) {
        for (auto& [index, future] : produced) {
          QueryResult answer = future.get();
          // Zero-drift gate on every completion, every rep.
          rep_ok &= BitwiseEqualsReference(answer, reference[index],
                                           "saturated");
        }
      }
      gates_ok &= rep_ok;
      best_ms = std::min(best_ms, timer.Millis());
    }
    server_qps = static_cast<double>(saturation_queries) / best_ms * 1e3;
  }
  const double speedup = serial_qps > 0.0 ? server_qps / serial_qps : 0.0;
  if (hardware >= 4 && workers >= 4 && speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: saturated server qps %.0f < 2x serial qps %.0f "
                 "(speedup %.2fx) with %u hardware threads\n",
                 server_qps, serial_qps, speedup, hardware);
    gates_ok = false;
  }

  // --- Phase 3: open-loop Poisson arrivals --------------------------
  // 0.6x the saturated rate keeps the queue stable, so the latency
  // distribution reflects service + micro-batch linger, not backlog.
  const size_t poisson_arrivals = small ? 1024 : 4096;
  const double lambda_qps = 0.6 * server_qps;
  std::vector<double> latency_us;
  size_t poisson_rejected = 0;
  {
    Rng rng(83);
    std::vector<std::pair<size_t, std::future<QueryResult>>> futures;
    futures.reserve(poisson_arrivals);
    auto next_arrival = std::chrono::steady_clock::now();
    for (size_t i = 0; i < poisson_arrivals; ++i) {
      const double gap_seconds =
          -std::log(1.0 - rng.Uniform()) / lambda_qps;
      next_arrival += std::chrono::nanoseconds(
          static_cast<int64_t>(gap_seconds * 1e9));
      std::this_thread::sleep_until(next_arrival);
      const size_t index = i % kPoolSize;
      auto submitted = server.Submit(pool[index]);
      if (!submitted.ok()) {
        ++poisson_rejected;  // should not happen at 0.6x capacity
        continue;
      }
      futures.emplace_back(index, std::move(submitted).value());
    }
    for (auto& [index, future] : futures) {
      QueryResult answer = future.get();
      gates_ok &=
          BitwiseEqualsReference(answer, reference[index], "poisson");
      latency_us.push_back(answer.total_seconds * 1e6);
    }
    std::sort(latency_us.begin(), latency_us.end());
  }
  const double p50 = PercentileUs(&latency_us, 50.0);
  const double p90 = PercentileUs(&latency_us, 90.0);
  const double p99 = PercentileUs(&latency_us, 99.0);
  const double p99_budget_us = std::max(20000.0, 200.0 * serial_us_per_query);
  if (p99 > p99_budget_us) {
    std::fprintf(stderr,
                 "FAIL: poisson p99 latency %.0fus exceeds budget %.0fus\n",
                 p99, p99_budget_us);
    gates_ok = false;
  }

  // --- Phase 4: 3x overload with deadlines --------------------------
  // A fresh server (clean stats) that every request enters with a
  // deadline budget, cost-based rejection and graceful degradation
  // armed. Offered load is 3x the measured saturated rate: the tier
  // cannot serve it all, so the gates are about HOW it fails — served
  // tail within budget, exact accounting, no drift on full-sweep
  // answers.
  const double deadline_budget_us = p99_budget_us;
  const size_t overload_arrivals = small ? 2048 : 8192;
  const double overload_lambda_qps = 3.0 * server_qps;
  size_t overload_submissions = 0;
  size_t overload_admitted = 0;
  size_t overload_rejected_full = 0;
  size_t overload_rejected_deadline = 0;
  size_t overload_completed = 0;
  size_t overload_shed = 0;
  size_t overload_degraded = 0;
  std::vector<double> overload_latency_us;
  ServerStats overload_stats;
  {
    ServerOptions overload_options = server_options;
    overload_options.default_timeout_us =
        static_cast<int64_t>(deadline_budget_us);
    overload_options.cost_based_rejection = true;
    overload_options.degrade_queue_wait_us =
        static_cast<int64_t>(deadline_budget_us / 2.0);
    overload_options.recover_queue_wait_us =
        static_cast<int64_t>(deadline_budget_us / 8.0);
    overload_options.min_inference_iterations = 2;
    auto overload_server_or =
        Server::Create(&data->dataset.network, &model, overload_options);
    if (!overload_server_or.ok()) {
      std::fprintf(stderr, "Server::Create (overload) failed: %s\n",
                   overload_server_or.status().ToString().c_str());
      return 1;
    }
    Server& overload_server = *overload_server_or.value();

    Rng rng(97);
    std::vector<std::pair<size_t, std::future<QueryResult>>> futures;
    futures.reserve(overload_arrivals);
    auto next_arrival = std::chrono::steady_clock::now();
    for (size_t i = 0; i < overload_arrivals; ++i) {
      const double gap_seconds =
          -std::log(1.0 - rng.Uniform()) / overload_lambda_qps;
      next_arrival += std::chrono::nanoseconds(
          static_cast<int64_t>(gap_seconds * 1e9));
      // A next_arrival already in the past returns immediately, so the
      // offered rate self-corrects toward 3x instead of drifting down.
      std::this_thread::sleep_until(next_arrival);
      const size_t index = i % kPoolSize;
      ++overload_submissions;
      auto submitted = overload_server.Submit(pool[index]);
      if (submitted.ok()) {
        ++overload_admitted;
        futures.emplace_back(index, std::move(submitted).value());
      } else if (submitted.status().code() ==
                 StatusCode::kDeadlineExceeded) {
        ++overload_rejected_deadline;  // cost-based early rejection
      } else if (submitted.status().code() ==
                 StatusCode::kResourceExhausted) {
        ++overload_rejected_full;  // queue at capacity
      } else {
        std::fprintf(stderr, "FAIL(overload): unexpected rejection: %s\n",
                     submitted.status().ToString().c_str());
        gates_ok = false;
      }
    }
    for (auto& [index, future] : futures) {
      QueryResult answer = future.get();  // every admitted future resolves
      if (answer.ok()) {
        ++overload_completed;
        overload_latency_us.push_back(answer.total_seconds * 1e6);
        if (answer.degraded) {
          ++overload_degraded;  // fewer sweeps: exempt from bitwise gate
        } else {
          gates_ok &=
              BitwiseEqualsReference(answer, reference[index], "overload");
        }
      } else if (answer.status.code() == StatusCode::kDeadlineExceeded) {
        ++overload_shed;
      } else {
        std::fprintf(stderr, "FAIL(overload): unexpected outcome: %s\n",
                     answer.status.ToString().c_str());
        gates_ok = false;
      }
    }
    overload_server.Stop();
    overload_stats = overload_server.Stats();
  }
  std::sort(overload_latency_us.begin(), overload_latency_us.end());
  const double overload_p50 = PercentileUs(&overload_latency_us, 50.0);
  const double overload_p99 = PercentileUs(&overload_latency_us, 99.0);
  // Gate: the tail of what the tier chose to serve stays within the
  // deadline budget. (Shedding protects the served requests; a p99 past
  // the budget means it served work nobody could use.)
  if (overload_completed > 0 && overload_p99 > deadline_budget_us) {
    std::fprintf(stderr,
                 "FAIL: overload p99 of completed requests %.0fus exceeds "
                 "the deadline budget %.0fus\n",
                 overload_p99, deadline_budget_us);
    gates_ok = false;
  }
  // Gate: exact accounting — client-side tallies reconcile with the
  // server's own counters and nothing is unaccounted for.
  if (overload_submissions != overload_stats.accepted +
                                  overload_stats.rejected +
                                  overload_stats.deadline_rejected ||
      overload_admitted != overload_stats.accepted ||
      overload_rejected_full != overload_stats.rejected ||
      overload_rejected_deadline != overload_stats.deadline_rejected) {
    std::fprintf(stderr,
                 "FAIL: overload admission accounting mismatch "
                 "(client %zu/%zu/%zu vs stats %zu/%zu/%zu)\n",
                 overload_admitted, overload_rejected_full,
                 overload_rejected_deadline, overload_stats.accepted,
                 overload_stats.rejected, overload_stats.deadline_rejected);
    gates_ok = false;
  }
  if (overload_stats.accepted != overload_stats.completed +
                                     overload_stats.cancelled +
                                     overload_stats.deadline_shed ||
      overload_completed != overload_stats.completed ||
      overload_shed != overload_stats.deadline_shed) {
    std::fprintf(stderr,
                 "FAIL: overload resolution accounting mismatch "
                 "(client %zu/%zu vs stats %zu/%zu, cancelled %zu)\n",
                 overload_completed, overload_shed,
                 overload_stats.completed, overload_stats.deadline_shed,
                 overload_stats.cancelled);
    gates_ok = false;
  }

  const ServerStats stats = server.Stats();
  // Mean executed micro-batch size: how well the admission loop coalesces.
  double mean_batch = 0.0;
  if (stats.batches > 0) {
    size_t total = 0;
    for (size_t s = 0; s < stats.batch_size_histogram.size(); ++s) {
      total += s * stats.batch_size_histogram[s];
    }
    mean_batch = static_cast<double>(total) /
                 static_cast<double>(stats.batches);
  }

  PrintRow({"phase", "qps", "p50", "p90", "p99"});
  PrintRow({"serial", StrFormat("%.0f", serial_qps),
            StrFormat("%.1fus", serial_us_per_query), "-", "-"});
  PrintRow({"saturated", StrFormat("%.0f", server_qps),
            StrFormat("%.2fx", speedup), "-", "-"});
  PrintRow({"poisson", StrFormat("%.0f", lambda_qps),
            StrFormat("%.1fus", p50), StrFormat("%.1fus", p90),
            StrFormat("%.1fus", p99)});
  PrintRow({"overload", StrFormat("%.0f", overload_lambda_qps),
            StrFormat("%.1fus", overload_p50), "-",
            StrFormat("%.1fus", overload_p99)});
  std::printf("mean micro-batch %.1f, queue high-water %zu, "
              "poisson rejected %zu\n",
              mean_batch, stats.queue_high_water, poisson_rejected);
  std::printf("overload (3x, budget %.0fus): %zu submitted = "
              "%zu completed + %zu shed + %zu early-rejected + %zu full; "
              "%zu degraded answers, floor sweeps %zu\n",
              deadline_budget_us, overload_submissions, overload_completed,
              overload_shed, overload_rejected_deadline,
              overload_rejected_full, overload_degraded,
              overload_stats.current_inference_iterations);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"server_tier\",\n");
  std::fprintf(f, "  \"fixture\": \"%s\",\n",
               small ? "weather_s1_small" : "weather_s1_fig11");
  std::fprintf(f, "  \"hardware_threads\": %u,\n", hardware);
  std::fprintf(f, "  \"workers\": %zu,\n", workers);
  std::fprintf(f, "  \"serial_qps\": %.1f,\n", serial_qps);
  std::fprintf(f, "  \"serial_us_per_query\": %.3f,\n", serial_us_per_query);
  std::fprintf(f, "  \"saturated_qps\": %.1f,\n", server_qps);
  std::fprintf(f, "  \"speedup_vs_serial\": %.3f,\n", speedup);
  std::fprintf(f, "  \"speedup_gated\": %s,\n",
               hardware >= 4 && workers >= 4 ? "true" : "false");
  std::fprintf(f, "  \"poisson_lambda_qps\": %.1f,\n", lambda_qps);
  std::fprintf(f, "  \"poisson_p50_us\": %.1f,\n", p50);
  std::fprintf(f, "  \"poisson_p90_us\": %.1f,\n", p90);
  std::fprintf(f, "  \"poisson_p99_us\": %.1f,\n", p99);
  std::fprintf(f, "  \"poisson_p99_budget_us\": %.1f,\n", p99_budget_us);
  std::fprintf(f, "  \"mean_micro_batch\": %.2f,\n", mean_batch);
  std::fprintf(f, "  \"queue_high_water\": %zu,\n", stats.queue_high_water);
  std::fprintf(f, "  \"poisson_rejected\": %zu,\n", poisson_rejected);
  std::fprintf(f, "  \"overload_lambda_qps\": %.1f,\n", overload_lambda_qps);
  std::fprintf(f, "  \"overload_deadline_budget_us\": %.1f,\n",
               deadline_budget_us);
  std::fprintf(f, "  \"overload_submissions\": %zu,\n", overload_submissions);
  std::fprintf(f, "  \"overload_completed\": %zu,\n", overload_completed);
  std::fprintf(f, "  \"overload_shed\": %zu,\n", overload_shed);
  std::fprintf(f, "  \"overload_rejected_deadline\": %zu,\n",
               overload_rejected_deadline);
  std::fprintf(f, "  \"overload_rejected_full\": %zu,\n",
               overload_rejected_full);
  std::fprintf(f, "  \"overload_degraded\": %zu,\n", overload_degraded);
  std::fprintf(f, "  \"overload_p50_us\": %.1f,\n", overload_p50);
  std::fprintf(f, "  \"overload_p99_us\": %.1f\n", overload_p99);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return gates_ok ? 0 : 1;
}
