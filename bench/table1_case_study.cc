// Table 1: case study of cluster membership vectors on the AC network.
// The paper lists SIGMOD (DB-pure), KDD (DM-pure), CIKM (broad) and three
// authors; the qualitative signature is that pure venues concentrate on
// one cluster while broad venues (CIKM: 0.28/0.14/0.48/0.10) and
// multi-area authors (Faloutsos: 0.43/0.31/0.14/0.13) spread.
//
// We report the learned memberships of: one pure conference per area, one
// broad conference, one single-area author, and one author with papers in
// several areas. Clusters are aligned to areas with the Hungarian match on
// conference labels.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "core/genclus.h"
#include "datagen/dblp_generator.h"
#include "eval/hungarian.h"

int main(int argc, char** argv) {
  using namespace genclus;
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);

  DblpConfig data_config;
  data_config.num_authors =
      static_cast<size_t>(flags.GetInt("authors", 1000));
  data_config.num_papers = static_cast<size_t>(flags.GetInt("papers", 2500));
  data_config.seed = static_cast<uint64_t>(flags.GetInt("data-seed", 21));
  auto corpus = GenerateDblpCorpus(data_config);
  if (!corpus.ok()) return 1;
  auto ac = BuildAcNetwork(*corpus, data_config);
  if (!ac.ok()) return 1;

  GenClusConfig config;
  config.num_clusters = 4;
  config.outer_iterations = 10;
  config.em_iterations = 40;
  config.num_init_seeds = 5;
  config.init_em_steps = 3;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  auto result = RunGenClus(ac->dataset, {"text"}, config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // Align cluster ids to areas using the pure conferences' ground truth.
  const size_t k = 4;
  Matrix votes(k, k);
  for (size_t c = 0; c < ac->conference_nodes.size(); ++c) {
    if (corpus->conference_is_broad[c]) continue;
    const NodeId v = ac->conference_nodes[c];
    const double* row = result->theta.Row(v);
    for (size_t j = 0; j < k; ++j) {
      votes(corpus->conference_area[c], j) += row[j];
    }
  }
  HungarianResult match = SolveMaxAssignment(votes);  // area -> cluster

  PrintHeader("Table 1 — Case studies of cluster membership (AC network)");
  PrintRow({"object", "area1", "area2", "area3", "area4"});
  auto print_membership = [&](const std::string& name, NodeId v) {
    std::vector<std::string> row = {name};
    const double* theta = result->theta.Row(v);
    for (size_t area = 0; area < k; ++area) {
      row.push_back(Fmt(theta[match.assignment[area]]));
    }
    PrintRow(row);
  };

  // One pure conference per area.
  for (size_t area = 0; area < k; ++area) {
    for (size_t c = 0; c < ac->conference_nodes.size(); ++c) {
      if (!corpus->conference_is_broad[c] &&
          corpus->conference_area[c] == area) {
        print_membership(StrFormat("pure_conf%zu(area%zu)", c, area),
                         ac->conference_nodes[c]);
        break;
      }
    }
  }
  // Broad conferences: the paper's "CIKM" rows.
  for (size_t c = 0; c < ac->conference_nodes.size(); ++c) {
    if (corpus->conference_is_broad[c]) {
      print_membership(StrFormat("broad_conf%zu(CIKM-like)", c),
                       ac->conference_nodes[c]);
    }
  }
  // A prolific single-area author and the author with the most diverse
  // paper-area profile (the paper's Faloutsos row).
  std::vector<std::vector<double>> author_area_counts(
      corpus->author_area.size(), std::vector<double>(k, 0.0));
  for (const auto& paper : corpus->papers) {
    for (size_t a : paper.authors) author_area_counts[a][paper.area] += 1.0;
  }
  size_t focused = 0;
  double best_focus = -1.0;
  size_t diverse = 0;
  double best_entropy = -1.0;
  for (size_t a = 0; a < author_area_counts.size(); ++a) {
    double total = 0.0;
    for (double c : author_area_counts[a]) total += c;
    if (total < 4.0) continue;
    double max_share = 0.0;
    double entropy = 0.0;
    for (double c : author_area_counts[a]) {
      const double p = c / total;
      max_share = std::max(max_share, p);
      if (p > 0.0) entropy -= p * std::log(p);
    }
    if (max_share * total > best_focus) {
      best_focus = max_share * total;
      focused = a;
    }
    if (entropy > best_entropy) {
      best_entropy = entropy;
      diverse = a;
    }
  }
  print_membership(StrFormat("author%zu(single-area)", focused),
                   ac->author_nodes[focused]);
  print_membership(StrFormat("author%zu(multi-area)", diverse),
                   ac->author_nodes[diverse]);

  std::printf(
      "\npaper (Table 1): SIGMOD 0.86 in DB; KDD 0.70 in DM; CIKM spread\n"
      "0.28/0.14/0.48/0.10; Widom/Gray concentrated; Faloutsos spread.\n"
      "Expected shape: pure venues/authors concentrate on one area, broad\n"
      "venues and multi-area authors spread across several.\n");
  return 0;
}
