#include "bench/dblp_bench_common.h"

#include "common/timer.h"
#include "core/engine.h"

namespace genclus::bench {

void RunDblpAccuracyBench(
    const Dataset& dataset,
    const std::vector<std::pair<std::string, std::vector<NodeId>>>& groups,
    const DblpBenchOptions& options,
    const std::vector<std::string>& relation_names) {
  const size_t num_groups = groups.size();
  std::vector<MethodSamples> methods(3);
  methods[0].name = "NetPLSA";
  methods[1].name = "iTopicModel";
  methods[2].name = options.fixed_gamma ? "GenClus(gamma=1)" : "GenClus";
  for (auto& m : methods) m.per_group.resize(num_groups);

  std::vector<double> gamma_mean(relation_names.size(), 0.0);
  size_t gamma_samples = 0;

  WallTimer timer;
  for (size_t run = 0; run < options.runs; ++run) {
    const uint64_t seed = 1000 + 77 * run;

    NetPlsaConfig np_config;
    np_config.num_clusters = 4;
    np_config.seed = seed;
    auto np = RunNetPlsa(dataset.network, dataset.attributes[0], np_config);
    if (!np.ok()) {
      std::fprintf(stderr, "NetPLSA failed: %s\n",
                   np.status().ToString().c_str());
      continue;
    }
    ITopicModelConfig it_config;
    it_config.num_clusters = 4;
    it_config.seed = seed;
    auto it = RunITopicModel(dataset.network, dataset.attributes[0],
                             it_config);
    if (!it.ok()) {
      std::fprintf(stderr, "iTopicModel failed: %s\n",
                   it.status().ToString().c_str());
      continue;
    }
    FitOptions fit_options;
    fit_options.attributes = {"text"};
    fit_options.config = options.MakeGenClusConfig(seed);
    auto gen = Engine::Fit(dataset, fit_options);
    if (!gen.ok()) {
      std::fprintf(stderr, "GenClus failed: %s\n",
                   gen.status().ToString().c_str());
      continue;
    }

    const std::vector<std::vector<uint32_t>> preds = {
        HardLabels(np->theta), HardLabels(it->theta),
        gen->model.HardLabels()};
    for (size_t m = 0; m < methods.size(); ++m) {
      for (size_t g = 0; g < num_groups; ++g) {
        const double nmi =
            groups[g].second.empty()
                ? OverallNmi(preds[m], dataset.labels)
                : SubsetNmi(preds[m], dataset.labels, groups[g].second);
        methods[m].per_group[g].push_back(nmi);
      }
    }
    for (size_t r = 0; r < relation_names.size(); ++r) {
      gamma_mean[r] += gen->model.gamma[r];
    }
    ++gamma_samples;
  }

  // Mean NMI table.
  std::vector<std::string> header = {"method (mean NMI)"};
  for (const auto& [name, subset] : groups) header.push_back(name);
  PrintRow(header);
  for (const auto& m : methods) {
    std::vector<std::string> row = {m.name};
    for (size_t g = 0; g < num_groups; ++g) {
      row.push_back(Fmt(Summarize(m.per_group[g]).mean));
    }
    PrintRow(row);
  }
  // Std table (the paper's right-hand panels).
  std::vector<std::string> std_header = {"method (std NMI)"};
  for (const auto& [name, subset] : groups) std_header.push_back(name);
  PrintRow(std_header);
  for (const auto& m : methods) {
    std::vector<std::string> row = {m.name};
    for (size_t g = 0; g < num_groups; ++g) {
      row.push_back(Fmt(Summarize(m.per_group[g]).std));
    }
    PrintRow(row);
  }

  if (gamma_samples > 0) {
    std::printf("\nmean learned strengths over %zu runs:\n", gamma_samples);
    for (size_t r = 0; r < relation_names.size(); ++r) {
      std::printf("  gamma(%s) = %.3f\n", relation_names[r].c_str(),
                  gamma_mean[r] / static_cast<double>(gamma_samples));
    }
  }
  std::printf("total time: %.1fs (%zu runs x 3 methods)\n", timer.Seconds(),
              options.runs);
}

}  // namespace genclus::bench
