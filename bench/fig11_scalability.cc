// Figure 11: efficiency — EM execution time per iteration on the weather
// networks for both pattern settings, #objects in {1250, 1500, 2000}
// (P in {250, 500, 1000}) and nobs in {1, 5, 20}. Also reproduces §5.4's
// parallel-EM note (the paper reports a 3.19x speedup on 4 threads).
//
// Runs through the Engine::Fit training surface: one outer iteration with
// a fixed EM budget and strength learning disabled, reading the EM wall
// time from the FitReport trace (which times exactly the EM loop, not the
// initialization).
//
// Paper shape: time/iteration grows ~linearly with the number of objects
// and with the observation count; absolute numbers were ~0.1-1.5 s on
// 2008-era hardware.
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "datagen/weather_generator.h"

namespace {

using namespace genclus;

double MeasureEmSecondsPerIteration(const Dataset& dataset,
                                    size_t num_threads, size_t iterations) {
  FitOptions options;
  options.attributes = {"temperature", "precipitation"};
  options.config.num_clusters = 4;
  options.config.seed = 3;
  options.config.num_threads = num_threads;
  options.config.outer_iterations = 1;
  options.config.em_iterations = iterations;
  options.config.em_tolerance = 0.0;       // run the full EM budget
  options.config.learn_strengths = false;  // time the EM step only
  options.config.num_init_seeds = 1;
  options.config.init_em_steps = 1;  // warm-up sweep, outside the EM timer
  auto fit = Engine::Fit(dataset, options);
  if (!fit.ok()) {
    std::fprintf(stderr, "%s\n", fit.status().ToString().c_str());
    return -1.0;
  }
  const OuterIterationRecord& record = fit->report.trace.back();
  return record.em_seconds / static_cast<double>(record.em_iterations);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace genclus::bench;
  Flags flags = Flags::Parse(argc, argv);
  const size_t iterations =
      static_cast<size_t>(flags.GetInt("iterations", 20));

  PrintHeader("Fig. 11 — EM execution time per iteration (seconds)");
  for (int setting = 1; setting <= 2; ++setting) {
    std::printf("\n--- pattern setting %d ---\n", setting);
    PrintRow({"#objects", "nobs=1", "nobs=5", "nobs=20"});
    for (size_t num_p : {250u, 500u, 1000u}) {
      std::vector<std::string> row = {
          StrFormat("%zu", 1000 + num_p)};
      for (size_t nobs : {1u, 5u, 20u}) {
        WeatherConfig wconfig = setting == 1 ? WeatherConfig::Setting1()
                                             : WeatherConfig::Setting2();
        wconfig.num_precipitation_sensors = num_p;
        wconfig.observations_per_sensor = nobs;
        wconfig.seed = 11;
        auto data = GenerateWeatherNetwork(wconfig);
        if (!data.ok()) return 1;
        row.push_back(StrFormat(
            "%.4f",
            MeasureEmSecondsPerIteration(data->dataset, 1, iterations)));
      }
      PrintRow(row);
    }
  }

  // §5.4 parallel note: measure the speedup of the parallel EM sweep.
  // Speedup is bounded by the host's core count, printed for context.
  std::printf("\n--- parallel EM speedup (T:1000, P:1000, nobs=20) ---\n");
  std::printf("host hardware threads: %u\n",
              std::thread::hardware_concurrency());
  WeatherConfig wconfig = WeatherConfig::Setting1();
  wconfig.num_precipitation_sensors = 1000;
  wconfig.observations_per_sensor = 20;
  wconfig.seed = 11;
  auto data = GenerateWeatherNetwork(wconfig);
  if (!data.ok()) return 1;
  const double serial =
      MeasureEmSecondsPerIteration(data->dataset, 1, iterations);
  PrintRow({"threads", "sec/iter", "speedup"});
  PrintRow({"1", StrFormat("%.4f", serial), "1.00"});
  for (size_t threads : {2u, 4u, 8u}) {
    const double t =
        MeasureEmSecondsPerIteration(data->dataset, threads, iterations);
    PrintRow({StrFormat("%zu", threads), StrFormat("%.4f", t),
              StrFormat("%.2f", serial / t)});
  }
  std::printf("\npaper: time/iteration ~linear in #objects; 3.19x speedup\n"
              "with 4 threads (2.13 GHz, 2012 hardware).\n");
  return 0;
}
