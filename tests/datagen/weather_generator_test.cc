#include "datagen/weather_generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "prob/simplex.h"

namespace genclus {
namespace {

WeatherConfig SmallConfig() {
  WeatherConfig config = WeatherConfig::Setting1();
  config.num_temperature_sensors = 60;
  config.num_precipitation_sensors = 30;
  config.k_nearest = 3;
  config.observations_per_sensor = 5;
  config.seed = 77;
  return config;
}

TEST(WeatherGenTest, NetworkShape) {
  auto data = GenerateWeatherNetwork(SmallConfig());
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  const Network& net = data->dataset.network;
  EXPECT_EQ(net.num_nodes(), 90u);
  // Every sensor has exactly k out-links per neighbor type.
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_EQ(net.OutDegree(v), 6u) << "node " << v;
  }
  EXPECT_EQ(net.num_links(), 90u * 6u);
  EXPECT_EQ(net.schema().num_link_types(), 4u);
}

TEST(WeatherGenTest, LinkTypesRespectEndpointTypes) {
  auto data = GenerateWeatherNetwork(SmallConfig());
  ASSERT_TRUE(data.ok());
  const Network& net = data->dataset.network;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    for (const LinkEntry& e : net.OutLinks(v)) {
      const LinkTypeInfo& info = net.schema().link_type(e.type);
      EXPECT_EQ(net.node_type(v), info.source_type);
      EXPECT_EQ(net.node_type(e.neighbor), info.target_type);
      EXPECT_DOUBLE_EQ(e.weight, 1.0);  // binary kNN links
      EXPECT_NE(e.neighbor, v);         // no self-links
    }
  }
}

TEST(WeatherGenTest, SensorsObserveOnlyOwnAttribute) {
  auto data = GenerateWeatherNetwork(SmallConfig());
  ASSERT_TRUE(data.ok());
  const Network& net = data->dataset.network;
  const Attribute& temp = data->dataset.attributes[data->temperature_attr];
  const Attribute& precip =
      data->dataset.attributes[data->precipitation_attr];
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (net.node_type(v) == data->temperature_type) {
      EXPECT_EQ(temp.Values(v).size(), 5u);
      EXPECT_TRUE(precip.Values(v).empty());
    } else {
      EXPECT_TRUE(temp.Values(v).empty());
      EXPECT_EQ(precip.Values(v).size(), 5u);
    }
  }
}

TEST(WeatherGenTest, TrueMembershipOnSimplexWithCorrectSupport) {
  auto data = GenerateWeatherNetwork(SmallConfig());
  ASSERT_TRUE(data.ok());
  const Network& net = data->dataset.network;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    auto member = data->true_membership.RowVector(v);
    EXPECT_TRUE(IsOnSimplex(member, 1e-9));
    // T sensors mix over 2 rings, P sensors over 3.
    size_t support = 0;
    for (double m : member) {
      if (m > 0.0) ++support;
    }
    if (net.node_type(v) == data->temperature_type) {
      EXPECT_LE(support, 2u);
    } else {
      EXPECT_LE(support, 3u);
    }
    EXPECT_EQ(data->true_labels[v], ArgMax(member));
    EXPECT_EQ(data->dataset.labels.Get(v), data->true_labels[v]);
  }
}

TEST(WeatherGenTest, LocationsInsideUnitDisk) {
  auto data = GenerateWeatherNetwork(SmallConfig());
  ASSERT_TRUE(data.ok());
  for (const auto& loc : data->locations) {
    EXPECT_LE(std::hypot(loc[0], loc[1]), 1.0 + 1e-12);
  }
}

TEST(WeatherGenTest, KnnLinksPointToGeometricNeighbors) {
  auto data = GenerateWeatherNetwork(SmallConfig());
  ASSERT_TRUE(data.ok());
  const Network& net = data->dataset.network;
  // For a sampled node, every linked neighbor of a type must be no farther
  // than the (k+1)-th nearest node of that type (ties aside, the k chosen
  // are the closest).
  const NodeId v = 5;
  for (const LinkEntry& e : net.OutLinks(v)) {
    const ObjectTypeId target_type = net.node_type(e.neighbor);
    const double link_dist =
        std::hypot(data->locations[v][0] - data->locations[e.neighbor][0],
                   data->locations[v][1] - data->locations[e.neighbor][1]);
    // Count how many same-type nodes are strictly closer than this one.
    size_t closer = 0;
    for (NodeId u : net.NodesOfType(target_type)) {
      if (u == v || u == e.neighbor) continue;
      const double d =
          std::hypot(data->locations[v][0] - data->locations[u][0],
                     data->locations[v][1] - data->locations[u][1]);
      if (d < link_dist) ++closer;
    }
    EXPECT_LT(closer, 3u);  // k = 3: at most 2 same-type nodes closer
  }
}

TEST(WeatherGenTest, ObservationsNearPatternMeans) {
  // With Setting 1 and small stddev, observed values must lie in the
  // convex region spanned by the pattern means (plus noise margin).
  auto data = GenerateWeatherNetwork(SmallConfig());
  ASSERT_TRUE(data.ok());
  const Attribute& temp = data->dataset.attributes[data->temperature_attr];
  for (NodeId v = 0; v < data->dataset.network.num_nodes(); ++v) {
    for (double x : temp.Values(v)) {
      EXPECT_GT(x, 1.0 - 1.5);
      EXPECT_LT(x, 4.0 + 1.5);
    }
  }
}

TEST(WeatherGenTest, DeterministicGivenSeed) {
  auto a = GenerateWeatherNetwork(SmallConfig());
  auto b = GenerateWeatherNetwork(SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->dataset.network.num_links(), b->dataset.network.num_links());
  EXPECT_DOUBLE_EQ(
      Matrix::MaxAbsDiff(a->true_membership, b->true_membership), 0.0);
  const Attribute& ta = a->dataset.attributes[0];
  const Attribute& tb = b->dataset.attributes[0];
  for (NodeId v = 0; v < 60; ++v) {
    ASSERT_EQ(ta.Values(v).size(), tb.Values(v).size());
    for (size_t i = 0; i < ta.Values(v).size(); ++i) {
      EXPECT_DOUBLE_EQ(ta.Values(v)[i], tb.Values(v)[i]);
    }
  }
}

TEST(WeatherGenTest, Setting2MeansAreUsed) {
  WeatherConfig config = WeatherConfig::Setting2();
  config.num_temperature_sensors = 40;
  config.num_precipitation_sensors = 20;
  config.k_nearest = 3;
  config.observations_per_sensor = 10;
  config.seed = 5;
  auto data = GenerateWeatherNetwork(config);
  ASSERT_TRUE(data.ok());
  // Setting 2 temperature means are +-1: all values within noise of that.
  const Attribute& temp = data->dataset.attributes[data->temperature_attr];
  for (NodeId v = 0; v < 40; ++v) {
    for (double x : temp.Values(v)) {
      EXPECT_LT(std::fabs(std::fabs(x) - 1.0), 1.5);
    }
  }
}

TEST(WeatherGenTest, RejectsBadConfig) {
  WeatherConfig config = SmallConfig();
  config.k_nearest = 0;
  EXPECT_FALSE(GenerateWeatherNetwork(config).ok());
  config = SmallConfig();
  config.k_nearest = 500;  // more neighbors than sensors
  EXPECT_FALSE(GenerateWeatherNetwork(config).ok());
  config = SmallConfig();
  config.num_precipitation_sensors = 0;
  EXPECT_FALSE(GenerateWeatherNetwork(config).ok());
  config = SmallConfig();
  config.pattern_stddev = 0.0;
  EXPECT_FALSE(GenerateWeatherNetwork(config).ok());
  config = SmallConfig();
  config.patterns = {{1.0, 1.0}};  // single pattern
  EXPECT_FALSE(GenerateWeatherNetwork(config).ok());
}

TEST(WeatherGenTest, InverseRelationDeclared) {
  auto data = GenerateWeatherNetwork(SmallConfig());
  ASSERT_TRUE(data.ok());
  const Schema& schema = data->dataset.network.schema();
  EXPECT_EQ(schema.link_type(data->tp_link).inverse, data->pt_link);
  EXPECT_EQ(schema.link_type(data->pt_link).inverse, data->tp_link);
}

}  // namespace
}  // namespace genclus
