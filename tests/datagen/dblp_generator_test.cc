#include "datagen/dblp_generator.h"

#include <gtest/gtest.h>

#include <map>

namespace genclus {
namespace {

DblpConfig SmallConfig() {
  DblpConfig config;
  config.num_conferences = 8;
  config.num_authors = 60;
  config.num_papers = 150;
  config.vocab_size = 120;
  config.terms_per_area = 20;
  config.seed = 55;
  return config;
}

TEST(DblpCorpusTest, ShapeAndRanges) {
  auto corpus = GenerateDblpCorpus(SmallConfig());
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_EQ(corpus->num_areas, 4u);
  EXPECT_EQ(corpus->conference_area.size(), 8u);
  EXPECT_EQ(corpus->author_area.size(), 60u);
  EXPECT_EQ(corpus->papers.size(), 150u);
  for (uint32_t a : corpus->conference_area) EXPECT_LT(a, 4u);
  for (uint32_t a : corpus->author_area) EXPECT_LT(a, 4u);
  for (const auto& paper : corpus->papers) {
    EXPECT_LT(paper.area, 4u);
    EXPECT_LT(paper.conference, 8u);
    EXPECT_FALSE(paper.authors.empty());
    EXPECT_LE(paper.authors.size(), 3u);  // lead + max_coauthors
    EXPECT_GE(paper.title.size(), 6u);
    EXPECT_LE(paper.title.size(), 12u);
    for (uint32_t t : paper.title) EXPECT_LT(t, 120u);
    // Authors are unique within a paper.
    for (size_t i = 0; i < paper.authors.size(); ++i) {
      for (size_t j = i + 1; j < paper.authors.size(); ++j) {
        EXPECT_NE(paper.authors[i], paper.authors[j]);
      }
    }
  }
}

TEST(DblpCorpusTest, ConferencesCycleThroughAreas) {
  auto corpus = GenerateDblpCorpus(SmallConfig());
  ASSERT_TRUE(corpus.ok());
  // 8 conferences, 4 areas: exactly 2 each.
  std::map<uint32_t, int> counts;
  for (uint32_t a : corpus->conference_area) counts[a]++;
  for (const auto& [area, count] : counts) EXPECT_EQ(count, 2) << area;
}

TEST(DblpCorpusTest, PapersMostlyInOwnAreaConference) {
  auto corpus = GenerateDblpCorpus(SmallConfig());
  ASSERT_TRUE(corpus.ok());
  size_t matched = 0;
  for (const auto& paper : corpus->papers) {
    if (corpus->conference_area[paper.conference] == paper.area) ++matched;
  }
  // conference_area_fidelity = 0.65 plus the 1/4 chance an off-area draw
  // lands in-area anyway: ~0.74 expected.
  EXPECT_GT(static_cast<double>(matched) / corpus->papers.size(), 0.6);
  EXPECT_LT(static_cast<double>(matched) / corpus->papers.size(), 0.9);
}

TEST(DblpCorpusTest, TitlesSkewTowardAreaTerms) {
  auto corpus = GenerateDblpCorpus(SmallConfig());
  ASSERT_TRUE(corpus.ok());
  size_t in_area = 0;
  size_t total = 0;
  for (const auto& paper : corpus->papers) {
    for (uint32_t term : paper.title) {
      ++total;
      if (term / 20 == paper.area) ++in_area;  // terms_per_area = 20
    }
  }
  // background_term_prob = 0.3, so ~70% of terms are area-specific.
  EXPECT_GT(static_cast<double>(in_area) / total, 0.6);
}

TEST(DblpCorpusTest, DeterministicGivenSeed) {
  auto a = GenerateDblpCorpus(SmallConfig());
  auto b = GenerateDblpCorpus(SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->papers.size(), b->papers.size());
  for (size_t p = 0; p < a->papers.size(); ++p) {
    EXPECT_EQ(a->papers[p].title, b->papers[p].title);
    EXPECT_EQ(a->papers[p].authors, b->papers[p].authors);
    EXPECT_EQ(a->papers[p].conference, b->papers[p].conference);
  }
}

TEST(DblpCorpusTest, RejectsBadConfig) {
  DblpConfig config = SmallConfig();
  config.vocab_size = 80;  // == num_areas * terms_per_area: no background
  EXPECT_FALSE(GenerateDblpCorpus(config).ok());
  config = SmallConfig();
  config.num_conferences = 2;  // fewer than areas
  EXPECT_FALSE(GenerateDblpCorpus(config).ok());
  config = SmallConfig();
  config.title_min_terms = 5;
  config.title_max_terms = 3;
  EXPECT_FALSE(GenerateDblpCorpus(config).ok());
}

TEST(AcNetworkTest, SchemaAndShape) {
  auto corpus = GenerateDblpCorpus(SmallConfig());
  ASSERT_TRUE(corpus.ok());
  auto ac = BuildAcNetwork(*corpus, SmallConfig());
  ASSERT_TRUE(ac.ok()) << ac.status().ToString();
  const Network& net = ac->dataset.network;
  EXPECT_EQ(net.num_nodes(), 68u);  // 60 authors + 8 conferences
  EXPECT_EQ(net.schema().num_link_types(), 3u);
  // publish_in and published_by are declared inverses.
  EXPECT_EQ(net.schema().link_type(ac->publish_in).inverse,
            ac->published_by);
}

TEST(AcNetworkTest, WeightsCountPapers) {
  auto config = SmallConfig();
  auto corpus = GenerateDblpCorpus(config);
  ASSERT_TRUE(corpus.ok());
  auto ac = BuildAcNetwork(*corpus, config);
  ASSERT_TRUE(ac.ok());
  const Network& net = ac->dataset.network;
  // Sum of publish_in weights equals the total number of (author, paper)
  // pairs grouped by conference — i.e. total authorships.
  size_t authorships = 0;
  for (const auto& paper : corpus->papers) {
    authorships += paper.authors.size();
  }
  EXPECT_DOUBLE_EQ(net.LinkWeightsByType()[ac->publish_in],
                   static_cast<double>(authorships));
  // publish_in and published_by mirror each other.
  EXPECT_DOUBLE_EQ(net.LinkWeightsByType()[ac->publish_in],
                   net.LinkWeightsByType()[ac->published_by]);
}

TEST(AcNetworkTest, EveryObjectHasText) {
  // The AC network is the paper's "complete attribute" case: authors and
  // conferences all aggregate their papers' titles.
  auto config = SmallConfig();
  auto corpus = GenerateDblpCorpus(config);
  auto ac = BuildAcNetwork(*corpus, config);
  ASSERT_TRUE(ac.ok());
  const Attribute& text = ac->dataset.attributes[ac->text_attr];
  // All conferences certainly publish something in a 150-paper corpus.
  for (NodeId c : ac->conference_nodes) {
    EXPECT_TRUE(text.HasObservations(c));
  }
  // Labels cover both types.
  EXPECT_EQ(ac->dataset.labels.NumLabeled(),
            ac->dataset.network.num_nodes());
}

TEST(AcpNetworkTest, OnlyPapersHaveText) {
  auto config = SmallConfig();
  auto corpus = GenerateDblpCorpus(config);
  auto acp = BuildAcpNetwork(*corpus, config);
  ASSERT_TRUE(acp.ok()) << acp.status().ToString();
  const Attribute& text = acp->dataset.attributes[acp->text_attr];
  for (NodeId a : acp->author_nodes) EXPECT_FALSE(text.HasObservations(a));
  for (NodeId c : acp->conference_nodes) {
    EXPECT_FALSE(text.HasObservations(c));
  }
  for (NodeId p : acp->paper_nodes) EXPECT_TRUE(text.HasObservations(p));
}

TEST(AcpNetworkTest, BinaryLinksAndInverses) {
  auto config = SmallConfig();
  auto corpus = GenerateDblpCorpus(config);
  auto acp = BuildAcpNetwork(*corpus, config);
  ASSERT_TRUE(acp.ok());
  const Network& net = acp->dataset.network;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    for (const LinkEntry& e : net.OutLinks(v)) {
      EXPECT_DOUBLE_EQ(e.weight, 1.0);
    }
  }
  // Every paper has exactly one conference (publish + published_by pair).
  EXPECT_EQ(net.LinkCountsByType()[acp->publish], corpus->papers.size());
  EXPECT_EQ(net.LinkCountsByType()[acp->published_by],
            corpus->papers.size());
  // write/written_by mirror.
  EXPECT_EQ(net.LinkCountsByType()[acp->write],
            net.LinkCountsByType()[acp->written_by]);
}

TEST(AcpNetworkTest, LabelsMatchCorpusGroundTruth) {
  auto config = SmallConfig();
  auto corpus = GenerateDblpCorpus(config);
  auto acp = BuildAcpNetwork(*corpus, config);
  ASSERT_TRUE(acp.ok());
  for (size_t p = 0; p < corpus->papers.size(); ++p) {
    EXPECT_EQ(acp->dataset.labels.Get(acp->paper_nodes[p]),
              corpus->papers[p].area);
  }
  for (size_t a = 0; a < corpus->author_area.size(); ++a) {
    EXPECT_EQ(acp->dataset.labels.Get(acp->author_nodes[a]),
              corpus->author_area[a]);
  }
}

}  // namespace
}  // namespace genclus
