// Parameterized sweeps over the weather generator: structural invariants
// must hold for every (size, k, nobs, setting) combination.
#include <gtest/gtest.h>

#include <cmath>

#include "datagen/weather_generator.h"
#include "prob/simplex.h"

namespace genclus {
namespace {

struct WeatherCase {
  size_t num_t;
  size_t num_p;
  size_t k;
  size_t nobs;
  int setting;
};

void PrintTo(const WeatherCase& c, std::ostream* os) {
  *os << "T" << c.num_t << "P" << c.num_p << "k" << c.k << "obs" << c.nobs
      << "s" << c.setting;
}

class WeatherSweep : public ::testing::TestWithParam<WeatherCase> {};

TEST_P(WeatherSweep, StructuralInvariants) {
  const WeatherCase c = GetParam();
  WeatherConfig config =
      c.setting == 1 ? WeatherConfig::Setting1() : WeatherConfig::Setting2();
  config.num_temperature_sensors = c.num_t;
  config.num_precipitation_sensors = c.num_p;
  config.k_nearest = c.k;
  config.observations_per_sensor = c.nobs;
  config.seed = 31 * c.num_t + c.nobs;
  auto data = GenerateWeatherNetwork(config);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  const Network& net = data->dataset.network;

  // Node and link counts.
  EXPECT_EQ(net.num_nodes(), c.num_t + c.num_p);
  EXPECT_EQ(net.num_links(), (c.num_t + c.num_p) * 2 * c.k);
  // Per-relation counts: every sensor emits k links per target type.
  const auto& counts = net.LinkCountsByType();
  EXPECT_EQ(counts[data->tt_link], c.num_t * c.k);
  EXPECT_EQ(counts[data->tp_link], c.num_t * c.k);
  EXPECT_EQ(counts[data->pt_link], c.num_p * c.k);
  EXPECT_EQ(counts[data->pp_link], c.num_p * c.k);

  // Memberships on the simplex; labels consistent; observations counted.
  double total_t_obs = 0.0;
  double total_p_obs = 0.0;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_TRUE(IsOnSimplex(data->true_membership.RowVector(v), 1e-9));
    EXPECT_EQ(data->true_labels[v],
              ArgMax(data->true_membership.RowVector(v)));
    total_t_obs += data->dataset.attributes[0].Values(v).size();
    total_p_obs += data->dataset.attributes[1].Values(v).size();
  }
  EXPECT_DOUBLE_EQ(total_t_obs, static_cast<double>(c.num_t * c.nobs));
  EXPECT_DOUBLE_EQ(total_p_obs, static_cast<double>(c.num_p * c.nobs));

  // Equal-area rings + uniform placement: every cluster gets a
  // substantial share of sensors (no degenerate tiny cluster).
  std::vector<size_t> per_cluster(4, 0);
  for (uint32_t l : data->true_labels) per_cluster[l]++;
  for (size_t k2 = 0; k2 < 4; ++k2) {
    EXPECT_GT(per_cluster[k2], (c.num_t + c.num_p) / 20)
        << "cluster " << k2;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeatherSweep,
    ::testing::Values(WeatherCase{40, 20, 2, 1, 1},
                      WeatherCase{60, 30, 3, 5, 1},
                      WeatherCase{80, 40, 5, 5, 1},
                      WeatherCase{60, 30, 3, 20, 1},
                      WeatherCase{40, 20, 2, 1, 2},
                      WeatherCase{60, 30, 3, 5, 2},
                      WeatherCase{100, 25, 4, 5, 2},
                      WeatherCase{50, 50, 3, 10, 2}));

}  // namespace
}  // namespace genclus
