#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace genclus {
namespace {

TEST(ThreadPoolTest, RespectsRequestedThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> touched(n);
  pool.ParallelFor(n, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForShardsAreDisjointContiguous) {
  ThreadPool pool(4);
  const size_t n = 997;  // not divisible by shard count
  std::vector<int> owner(n, -1);
  std::mutex m;
  pool.ParallelFor(n, [&](size_t shard, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(m);
    for (size_t i = begin; i < end; ++i) owner[i] = static_cast<int>(shard);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_NE(owner[i], -1);
  // Contiguity: owner ids are non-decreasing across the range.
  for (size_t i = 1; i < n; ++i) EXPECT_GE(owner[i], owner[i - 1]);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(8);
  std::vector<int> touched(3, 0);
  pool.ParallelFor(3, [&](size_t shard, size_t begin, size_t end) {
    EXPECT_EQ(shard, 0u);
    for (size_t i = begin; i < end; ++i) touched[i]++;
  });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 3);
}

TEST(ThreadPoolTest, ParallelForSumMatchesSerial) {
  ThreadPool pool(4);
  const size_t n = 100000;
  std::vector<double> partial(pool.num_threads(), 0.0);
  pool.ParallelFor(n, [&](size_t shard, size_t begin, size_t end) {
    double acc = 0.0;
    for (size_t i = begin; i < end; ++i) acc += static_cast<double>(i);
    partial[shard] += acc;
  });
  const double total =
      std::accumulate(partial.begin(), partial.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(100, [&](size_t, size_t begin, size_t end) {
      count.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(count.load(), 100);
  }
}

}  // namespace
}  // namespace genclus
