#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace genclus {
namespace {

TEST(ThreadPoolTest, RespectsRequestedThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> touched(n);
  pool.ParallelFor(n, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForShardsAreDisjointContiguous) {
  ThreadPool pool(4);
  const size_t n = 997;  // not divisible by shard count
  std::vector<int> owner(n, -1);
  std::mutex m;
  pool.ParallelFor(n, [&](size_t shard, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(m);
    for (size_t i = begin; i < end; ++i) owner[i] = static_cast<int>(shard);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_NE(owner[i], -1);
  // Contiguity: owner ids are non-decreasing across the range.
  for (size_t i = 1; i < n; ++i) EXPECT_GE(owner[i], owner[i - 1]);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(8);
  std::vector<int> touched(3, 0);
  pool.ParallelFor(3, [&](size_t shard, size_t begin, size_t end) {
    EXPECT_EQ(shard, 0u);
    for (size_t i = begin; i < end; ++i) touched[i]++;
  });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 3);
}

TEST(ThreadPoolTest, ParallelForSumMatchesSerial) {
  ThreadPool pool(4);
  const size_t n = 100000;
  std::vector<double> partial(pool.num_threads(), 0.0);
  pool.ParallelFor(n, [&](size_t shard, size_t begin, size_t end) {
    double acc = 0.0;
    for (size_t i = begin; i < end; ++i) acc += static_cast<double>(i);
    partial[shard] += acc;
  });
  const double total =
      std::accumulate(partial.begin(), partial.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasksBeforeJoining) {
  // The destructor must let workers finish every task already queued: it
  // sets shutdown_ first, but workers only exit once the queue is empty.
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1);
      });
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPoolTest, DestructorJoinsIdleWorkersPromptly) {
  // Shutdown of an idle pool must not deadlock on the condition variable:
  // notify_all after setting shutdown_ wakes every sleeping worker.
  const auto start = std::chrono::steady_clock::now();
  { ThreadPool pool(8); }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            5);
}

TEST(ThreadPoolTest, SingleWorkerExecutesSubmittedTasksInFifoOrder) {
  // With one worker the queue is strictly FIFO, so tasks queued before
  // shutdown observe every earlier task's effect — the ordering guarantee
  // the destructor's drain relies on.
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, SingleWorkerParallelForRunsInlineOnCaller) {
  // A 1-thread pool must take the inline fast path: the body runs on the
  // calling thread, in one shard covering the whole range.
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  size_t calls = 0;
  pool.ParallelFor(1000, [&](size_t shard, size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(shard, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1000u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPoolTest, TinyRangeRunsInlineEvenWithManyWorkers) {
  // n < 2 * shards skips dispatch entirely — same thread, single shard.
  ThreadPool pool(8);
  const std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(5, [&](size_t shard, size_t, size_t) {
    EXPECT_EQ(shard, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(100, [&](size_t, size_t begin, size_t end) {
      count.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(count.load(), 100);
  }
}

}  // namespace
}  // namespace genclus
