#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/failpoint.h"

namespace genclus {
namespace {

TEST(ThreadPoolTest, RespectsRequestedThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> touched(n);
  pool.ParallelFor(n, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForShardsAreDisjointContiguous) {
  ThreadPool pool(4);
  const size_t n = 997;  // not divisible by shard count
  std::vector<int> owner(n, -1);
  std::mutex m;
  pool.ParallelFor(n, [&](size_t shard, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(m);
    for (size_t i = begin; i < end; ++i) owner[i] = static_cast<int>(shard);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_NE(owner[i], -1);
  // Contiguity: owner ids are non-decreasing across the range.
  for (size_t i = 1; i < n; ++i) EXPECT_GE(owner[i], owner[i - 1]);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(8);
  std::vector<int> touched(3, 0);
  pool.ParallelFor(3, [&](size_t shard, size_t begin, size_t end) {
    EXPECT_EQ(shard, 0u);
    for (size_t i = begin; i < end; ++i) touched[i]++;
  });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 3);
}

TEST(ThreadPoolTest, ParallelForSumMatchesSerial) {
  ThreadPool pool(4);
  const size_t n = 100000;
  std::vector<double> partial(pool.num_threads(), 0.0);
  pool.ParallelFor(n, [&](size_t shard, size_t begin, size_t end) {
    double acc = 0.0;
    for (size_t i = begin; i < end; ++i) acc += static_cast<double>(i);
    partial[shard] += acc;
  });
  const double total =
      std::accumulate(partial.begin(), partial.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasksBeforeJoining) {
  // The destructor must let workers finish every task already queued: it
  // sets shutdown_ first, but workers only exit once the queue is empty.
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1);
      });
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPoolTest, DestructorJoinsIdleWorkersPromptly) {
  // Shutdown of an idle pool must not deadlock on the condition variable:
  // notify_all after setting shutdown_ wakes every sleeping worker.
  const auto start = std::chrono::steady_clock::now();
  { ThreadPool pool(8); }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            5);
}

TEST(ThreadPoolTest, SingleWorkerExecutesSubmittedTasksInFifoOrder) {
  // With one worker the queue is strictly FIFO, so tasks queued before
  // shutdown observe every earlier task's effect — the ordering guarantee
  // the destructor's drain relies on.
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, SingleWorkerParallelForRunsInlineOnCaller) {
  // A 1-thread pool must take the inline fast path: the body runs on the
  // calling thread, in one shard covering the whole range.
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  size_t calls = 0;
  pool.ParallelFor(1000, [&](size_t shard, size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(shard, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1000u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPoolTest, TinyRangeRunsInlineEvenWithManyWorkers) {
  // n < 2 * shards skips dispatch entirely — same thread, single shard.
  ThreadPool pool(8);
  const std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(5, [&](size_t shard, size_t, size_t) {
    EXPECT_EQ(shard, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, TaskExceptionRethrownFromWait) {
  // A throwing task must neither kill its worker (std::terminate) nor leak
  // the in-flight count (Wait would hang); the exception surfaces from the
  // next Wait.
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool stays fully usable afterwards.
  std::atomic<int> counter{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPoolTest, FirstOfSeveralTaskExceptionsWins) {
  ThreadPool pool(1);  // FIFO: the first submitted throw is the first seen
  pool.Submit([] { throw std::runtime_error("first"); });
  pool.Submit([] { throw std::logic_error("second"); });
  try {
    pool.Wait();
    FAIL() << "Wait() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  // The second exception was dropped; Wait is clean again.
  pool.Wait();
}

TEST(ThreadPoolTest, PoolUsableFromInsideWaitCatchHandler) {
  // Pin for the PR 7 restructure: Wait() and ParallelFor() now move the
  // stored exception out under the lock and rethrow only after the
  // MutexLock scope closes, making the lock release explicit rather than
  // a side effect of unwinding the lock guard. The observable contract:
  // the pool mutex is free inside the catch handler, so the handler can
  // immediately Submit/Wait/ParallelFor on the same pool.
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  bool caught = false;
  try {
    pool.Wait();
  } catch (const std::runtime_error&) {
    caught = true;
    std::atomic<int> counter{0};
    pool.Submit([&counter] { counter.fetch_add(1); });
    pool.Wait();  // re-entering Wait from the handler must not deadlock
    EXPECT_EQ(counter.load(), 1);
  }
  EXPECT_TRUE(caught);

  caught = false;
  try {
    pool.ParallelFor(1000, [](size_t shard, size_t, size_t) {
      if (shard == 0) throw std::logic_error("shard boom");
    });
  } catch (const std::logic_error&) {
    caught = true;
    std::atomic<int> count{0};
    pool.ParallelFor(64, [&](size_t, size_t begin, size_t end) {
      count.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(count.load(), 64);
  }
  EXPECT_TRUE(caught);
}

TEST(ThreadPoolTest, ParallelForRethrowsShardException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(1000,
                       [](size_t shard, size_t, size_t) {
                         if (shard == 1) throw std::runtime_error("shard");
                       }),
      std::runtime_error);
  // Other shards completed and the pool is reusable.
  std::atomic<int> count{0};
  pool.ParallelFor(100, [&](size_t, size_t begin, size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolReduceTest, MatchesSerialSum) {
  ThreadPool pool(4);
  const size_t n = 10000;
  const double total = ParallelForReduce<double>(
      &pool, n, 64, [] { return 0.0; },
      [](double& acc, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) acc += static_cast<double>(i);
      },
      [](double& into, double&& from) { into += from; });
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(ThreadPoolReduceTest, BitwiseInvariantToThreadCount) {
  // Summands of wildly different magnitudes make the result sensitive to
  // accumulation order; fixed blocks merged in block order must therefore
  // give bitwise identical results for every pool size (and no pool).
  const size_t n = 4099;
  const auto body = [](double& acc, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      acc += 1.0 / (1.0 + static_cast<double>((i * 2654435761u) % 9973));
    }
  };
  const auto merge = [](double& into, double&& from) { into += from; };
  const double serial = ParallelForReduce<double>(
      nullptr, n, 64, [] { return 0.0; }, body, merge);
  for (size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    const double parallel = ParallelForReduce<double>(
        &pool, n, 64, [] { return 0.0; }, body, merge);
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
}

TEST(ThreadPoolReduceTest, EmptyRangeReturnsIdentity) {
  ThreadPool pool(2);
  const double total = ParallelForReduce<double>(
      &pool, 0, 16, [] { return 42.0; },
      [](double&, size_t, size_t) { FAIL() << "body on empty range"; },
      [](double&, double&&) { FAIL() << "merge on empty range"; });
  EXPECT_EQ(total, 42.0);
}

TEST(ThreadPoolReduceTest, GrainLargerThanRangeIsSingleBlock) {
  ThreadPool pool(4);
  int body_calls = 0;
  const int total = ParallelForReduce<int>(
      &pool, 10, 1000, [] { return 0; },
      [&](int& acc, size_t begin, size_t end) {
        ++body_calls;
        acc += static_cast<int>(end - begin);
      },
      [](int& into, int&& from) { into += from; });
  EXPECT_EQ(total, 10);
  EXPECT_EQ(body_calls, 1);
}

TEST(ThreadPoolReduceTest, BodyExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelForReduce<int>(
                   &pool, 1000, 8, [] { return 0; },
                   [](int&, size_t begin, size_t) {
                     if (begin >= 500) throw std::runtime_error("boom");
                   },
                   [](int& into, int&& from) { into += from; }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ConcurrentParallelForBatchesStayIndependent) {
  // Multiple caller threads interleaving ParallelFor on ONE pool: each
  // call's completion tracking is batch-local, so every caller must see
  // exactly its own range covered (the old pool-global Wait could return
  // early or late when batches interleaved).
  ThreadPool pool(4);
  constexpr size_t kCallers = 6;
  constexpr size_t kRounds = 50;
  std::vector<std::thread> callers;
  std::atomic<bool> ok{true};
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &ok, c] {
      const size_t n = 1000 + 97 * c;  // distinct ranges per caller
      for (size_t round = 0; round < kRounds; ++round) {
        std::atomic<size_t> covered{0};
        pool.ParallelFor(n, [&covered](size_t, size_t begin, size_t end) {
          covered.fetch_add(end - begin);
        });
        if (covered.load() != n) ok.store(false);
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPoolTest, ConcurrentParallelForIsolatesExceptionsPerCall) {
  // A shard throwing in one caller's batch must surface in THAT call only;
  // concurrent clean batches on the same pool finish normally.
  ThreadPool pool(4);
  std::atomic<int> clean_failures{0};
  std::atomic<int> rethrown{0};
  std::thread thrower([&pool, &rethrown] {
    for (int round = 0; round < 20; ++round) {
      try {
        pool.ParallelFor(1000, [](size_t shard, size_t, size_t) {
          if (shard == 0) throw std::runtime_error("mine");
        });
      } catch (const std::runtime_error&) {
        rethrown.fetch_add(1);
      }
    }
  });
  std::thread clean([&pool, &clean_failures] {
    for (int round = 0; round < 20; ++round) {
      std::atomic<size_t> covered{0};
      try {
        pool.ParallelFor(1000, [&covered](size_t, size_t begin, size_t end) {
          covered.fetch_add(end - begin);
        });
      } catch (...) {
        clean_failures.fetch_add(1);
      }
      if (covered.load() != 1000) clean_failures.fetch_add(1);
    }
  });
  thrower.join();
  clean.join();
  EXPECT_EQ(rethrown.load(), 20);
  EXPECT_EQ(clean_failures.load(), 0);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(100, [&](size_t, size_t begin, size_t end) {
      count.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(count.load(), 100);
  }
}

#if defined(GENCLUS_FAILPOINTS)
TEST(ThreadPoolTest, TaskFailpointSurfacesFromWaitAndPoolKeepsServing) {
  // "thread_pool.task" throws inside the worker before the task body:
  // Wait() must rethrow it, and the pool must keep serving afterwards.
  ThreadPool pool(2);
  Failpoints::Arm("thread_pool.task", {.max_fires = 1});
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  Failpoints::DisarmAll();
  // The injected throw consumed exactly one task; the rest ran.
  EXPECT_EQ(ran.load(), 7);
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 8);
}
#endif

}  // namespace
}  // namespace genclus
