#include "common/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace genclus {
namespace {

Flags ParseArgs(std::vector<const char*> args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("prog"));
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, SpaceSeparatedValue) {
  Flags f = ParseArgs({"--clusters", "4"});
  EXPECT_TRUE(f.Has("clusters"));
  EXPECT_EQ(f.GetInt("clusters", 0), 4);
}

TEST(FlagsTest, EqualsSeparatedValue) {
  Flags f = ParseArgs({"--sigma=0.25"});
  EXPECT_DOUBLE_EQ(f.GetDouble("sigma", 0.0), 0.25);
}

TEST(FlagsTest, BareBooleanFlag) {
  Flags f = ParseArgs({"--full"});
  EXPECT_TRUE(f.GetBool("full", false));
}

TEST(FlagsTest, BooleanExplicitValues) {
  EXPECT_TRUE(ParseArgs({"--x", "true"}).GetBool("x", false));
  EXPECT_TRUE(ParseArgs({"--x=YES"}).GetBool("x", false));
  EXPECT_TRUE(ParseArgs({"--x", "1"}).GetBool("x", false));
  EXPECT_FALSE(ParseArgs({"--x", "0"}).GetBool("x", true));
  EXPECT_FALSE(ParseArgs({"--x=false"}).GetBool("x", true));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags f = ParseArgs({});
  EXPECT_FALSE(f.Has("missing"));
  EXPECT_EQ(f.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("missing", 2.5), 2.5);
  EXPECT_EQ(f.GetString("missing", "abc"), "abc");
  EXPECT_TRUE(f.GetBool("missing", true));
}

TEST(FlagsTest, BooleanFlagFollowedByFlag) {
  Flags f = ParseArgs({"--verbose", "--n", "3"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_EQ(f.GetInt("n", 0), 3);
}

TEST(FlagsTest, PositionalArgumentsKept) {
  Flags f = ParseArgs({"input.tsv", "--k", "2", "output.tsv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.tsv");
  EXPECT_EQ(f.positional()[1], "output.tsv");
}

TEST(FlagsTest, LastOccurrenceWins) {
  Flags f = ParseArgs({"--k", "2", "--k", "9"});
  EXPECT_EQ(f.GetInt("k", 0), 9);
}

}  // namespace
}  // namespace genclus
