#include "common/string_util.h"

#include <gtest/gtest.h>

namespace genclus {
namespace {

TEST(SplitTest, BasicDelimiter) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, EmptyString) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitWhitespaceTest, DropsRuns) {
  auto parts = SplitWhitespace("  alpha\t beta\n\ngamma ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "alpha");
  EXPECT_EQ(parts[1], "beta");
  EXPECT_EQ(parts[2], "gamma");
}

TEST(SplitWhitespaceTest, AllWhitespaceYieldsNothing) {
  EXPECT_TRUE(SplitWhitespace(" \t\n ").empty());
}

TEST(JoinTest, RoundTripWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "|"), "x|y|z");
  EXPECT_EQ(Join({}, "|"), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hello \t"), "hello");
  EXPECT_EQ(Trim("nothing"), "nothing");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("link_type foo", "link_type"));
  EXPECT_FALSE(StartsWith("link", "link_type"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  std::string long_arg(500, 'a');
  std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 502u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

}  // namespace
}  // namespace genclus
