// Deadline (common/deadline.h): the monotonic budget type every serving
// request carries. Pins the saturation semantics the admission loop
// relies on — an infinite deadline never expires, never caps a linger,
// and reports saturated budgets, while finite deadlines expire exactly
// at their instant and clamp remaining budgets at zero.
#include "common/deadline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>

namespace genclus {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

TEST(DeadlineTest, DefaultIsInfinite) {
  const Deadline deadline;
  EXPECT_TRUE(deadline.is_infinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_EQ(deadline.when(), Deadline::Clock::time_point::max());
  EXPECT_EQ(deadline, Deadline::Infinite());
}

TEST(DeadlineTest, InfiniteBudgetsSaturate) {
  const Deadline deadline = Deadline::Infinite();
  EXPECT_EQ(deadline.RemainingMicros(),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(deadline.RemainingSeconds(),
            std::numeric_limits<double>::infinity());
  // Even a "now" far in the future never expires an infinite deadline.
  EXPECT_FALSE(
      deadline.Expired(Deadline::Clock::now() + std::chrono::hours(24)));
}

TEST(DeadlineTest, ExpiresExactlyAtItsInstant) {
  const auto now = Deadline::Clock::now();
  const Deadline deadline = Deadline::At(now + milliseconds(10));
  EXPECT_FALSE(deadline.is_infinite());
  EXPECT_FALSE(deadline.Expired(now));
  EXPECT_FALSE(deadline.Expired(now + milliseconds(10) - microseconds(1)));
  EXPECT_TRUE(deadline.Expired(now + milliseconds(10)));  // inclusive
  EXPECT_TRUE(deadline.Expired(now + milliseconds(11)));
}

TEST(DeadlineTest, RemainingBudgetClampsAtZero) {
  const auto now = Deadline::Clock::now();
  const Deadline deadline = Deadline::At(now + microseconds(500));
  EXPECT_EQ(deadline.RemainingMicros(now), 500);
  EXPECT_DOUBLE_EQ(deadline.RemainingSeconds(now), 500e-6);
  EXPECT_EQ(deadline.RemainingMicros(now + microseconds(500)), 0);
  EXPECT_EQ(deadline.RemainingMicros(now + milliseconds(5)), 0);
  EXPECT_EQ(deadline.RemainingSeconds(now + milliseconds(5)), 0.0);
}

TEST(DeadlineTest, AfterAndAfterMicrosAnchorAtNow) {
  const auto before = Deadline::Clock::now();
  const Deadline deadline = Deadline::AfterMicros(50000);
  const auto after = Deadline::Clock::now();
  EXPECT_GE(deadline.when(), before + milliseconds(50));
  EXPECT_LE(deadline.when(), after + milliseconds(50));
  EXPECT_FALSE(deadline.Expired(after));
  EXPECT_TRUE(deadline.Expired(after + milliseconds(51)));
}

TEST(DeadlineTest, EqualityComparesInstants) {
  const auto now = Deadline::Clock::now();
  EXPECT_EQ(Deadline::At(now), Deadline::At(now));
  EXPECT_FALSE(Deadline::At(now) == Deadline::At(now + microseconds(1)));
  EXPECT_FALSE(Deadline::At(now) == Deadline::Infinite());
}

}  // namespace
}  // namespace genclus
