#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace genclus {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.Uniform() != b.Uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(7);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) counts[rng.UniformIndex(5)]++;
  for (int c : counts) EXPECT_GT(c, 800);  // ~1000 expected per bucket
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(2.0, 0.5);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) counts[rng.Categorical(weights)]++;
  EXPECT_EQ(counts[1], 0);
  // Index 2 should be drawn ~3x as often as index 0.
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(RngTest, CategoricalSingleOutcome) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 5.0, 0.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1u);
  }
}

TEST(RngTest, SimplexUniformIsOnSimplex) {
  Rng rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> p = rng.SimplexUniform(4);
    double total = std::accumulate(p.begin(), p.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-12);
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Split();
  // The child stream should differ from the parent's continued stream.
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) {
    if (a.Uniform() != child.Uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(29);
  std::vector<size_t> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<size_t> orig = v;
  rng.Shuffle(&v);
  std::vector<size_t> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);  // same multiset
  EXPECT_NE(v, orig);       // overwhelmingly likely to move something
}

}  // namespace
}  // namespace genclus
