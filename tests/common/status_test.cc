#include "common/status.h"

#include <gtest/gtest.h>

namespace genclus {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, ResourceExhaustedRendersItsName) {
  // The serving tier's backpressure rejection; callers match on the code
  // and log the rendered string.
  EXPECT_EQ(Status::ResourceExhausted("queue full").ToString(),
            "ResourceExhausted: queue full");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailingHelper() { return Status::IoError("disk"); }

Status PropagatingFunction() {
  GENCLUS_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();  // unreachable
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  Status s = PropagatingFunction();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

Result<int> ProducesValue() { return 5; }

Result<int> ConsumesValue() {
  GENCLUS_ASSIGN_OR_RETURN(int x, ProducesValue());
  return x * 2;
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto r = ConsumesValue();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 10);
}

Result<int> ProducesError() { return Status::OutOfRange("nope"); }

Result<int> ConsumesError() {
  GENCLUS_ASSIGN_OR_RETURN(int x, ProducesError());
  return x;
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto r = ConsumesError();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusTest, DeadlineExceededFactoryAndName) {
  const Status s = Status::DeadlineExceeded("budget spent");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.message(), "budget spent");
  EXPECT_EQ(s.ToString(), "DeadlineExceeded: budget spent");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

}  // namespace
}  // namespace genclus
