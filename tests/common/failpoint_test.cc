// Failpoints (common/failpoint.h): the registry's trigger semantics.
// Fire() is an always-linked function, so skip_hits / max_fires / fail /
// hit accounting are testable in every lane — only the GENCLUS_FAILPOINT
// macro (exercised by the armed-site tests in bounded_queue_test,
// thread_pool_test, model_io_test and server_deadline_test) needs the
// GENCLUS_FAILPOINTS build.
#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace genclus {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedSiteNeverTriggers) {
  EXPECT_FALSE(Failpoints::Fire("failpoint_test.unarmed"));
  EXPECT_EQ(Failpoints::HitCount("failpoint_test.unarmed"), 0u);
}

TEST_F(FailpointTest, ArmedSiteTriggersAndCountsHits) {
  Failpoints::Arm("failpoint_test.basic");
  EXPECT_TRUE(Failpoints::Fire("failpoint_test.basic"));
  EXPECT_TRUE(Failpoints::Fire("failpoint_test.basic"));
  EXPECT_EQ(Failpoints::HitCount("failpoint_test.basic"), 2u);
  Failpoints::Disarm("failpoint_test.basic");
  EXPECT_FALSE(Failpoints::Fire("failpoint_test.basic"));
  EXPECT_EQ(Failpoints::HitCount("failpoint_test.basic"), 0u);
}

TEST_F(FailpointTest, SkipHitsDelaysTheFirstTrigger) {
  // skip_hits = 2: the third hit is the first trigger.
  Failpoints::Arm("failpoint_test.nth", {.skip_hits = 2});
  EXPECT_FALSE(Failpoints::Fire("failpoint_test.nth"));
  EXPECT_FALSE(Failpoints::Fire("failpoint_test.nth"));
  EXPECT_TRUE(Failpoints::Fire("failpoint_test.nth"));
  EXPECT_EQ(Failpoints::HitCount("failpoint_test.nth"), 3u);
}

TEST_F(FailpointTest, MaxFiresQuietsTheSiteButKeepsCounting) {
  Failpoints::Arm("failpoint_test.once", {.max_fires = 1});
  EXPECT_TRUE(Failpoints::Fire("failpoint_test.once"));
  EXPECT_FALSE(Failpoints::Fire("failpoint_test.once"));
  EXPECT_FALSE(Failpoints::Fire("failpoint_test.once"));
  EXPECT_EQ(Failpoints::HitCount("failpoint_test.once"), 3u);
}

TEST_F(FailpointTest, FailFalseMakesADelayOnlySite) {
  // fail = false: the site triggers (delay applies) but the action body
  // must not run — Fire returns false.
  Failpoints::Arm("failpoint_test.delay",
                  {.delay_us = 2000, .fail = false});
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(Failpoints::Fire("failpoint_test.delay"));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::microseconds(2000));
  EXPECT_EQ(Failpoints::HitCount("failpoint_test.delay"), 1u);
}

TEST_F(FailpointTest, RearmResetsCounters) {
  Failpoints::Arm("failpoint_test.rearm", {.max_fires = 1});
  EXPECT_TRUE(Failpoints::Fire("failpoint_test.rearm"));
  EXPECT_FALSE(Failpoints::Fire("failpoint_test.rearm"));
  Failpoints::Arm("failpoint_test.rearm", {.max_fires = 1});
  EXPECT_EQ(Failpoints::HitCount("failpoint_test.rearm"), 0u);
  EXPECT_TRUE(Failpoints::Fire("failpoint_test.rearm"));
}

TEST_F(FailpointTest, DisarmAllClearsEverything) {
  Failpoints::Arm("failpoint_test.a");
  Failpoints::Arm("failpoint_test.b");
  Failpoints::DisarmAll();
  EXPECT_FALSE(Failpoints::Fire("failpoint_test.a"));
  EXPECT_FALSE(Failpoints::Fire("failpoint_test.b"));
}

TEST_F(FailpointTest, ConcurrentFiresRespectMaxFiresExactly) {
  // max_fires is a hard cap even under contention: exactly that many
  // Fire() calls may return true.
  Failpoints::Arm("failpoint_test.race", {.max_fires = 5});
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 200;
  std::atomic<size_t> triggers{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < kPerThread; ++i) {
        if (Failpoints::Fire("failpoint_test.race")) {
          triggers.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(triggers.load(), 5u);
  EXPECT_EQ(Failpoints::HitCount("failpoint_test.race"),
            kThreads * kPerThread);
}

TEST_F(FailpointTest, MacroCompiledStateMatchesBuildFlag) {
#if defined(GENCLUS_FAILPOINTS)
  EXPECT_TRUE(Failpoints::kEnabled);
#else
  EXPECT_FALSE(Failpoints::kEnabled);
#endif
}

}  // namespace
}  // namespace genclus
