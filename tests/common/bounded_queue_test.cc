// BoundedQueue: the serving tier's backpressure + micro-batching
// primitive. Covers non-blocking admission at capacity, batch coalescing
// (max_items cap, zero-linger greediness), close-then-drain semantics,
// the high-water mark, and a multi-producer/multi-consumer stress run
// that accounts for every item exactly once.
#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace genclus {
namespace {

using std::chrono::microseconds;

TEST(BoundedQueueTest, TryPushRejectsAtCapacityWithoutBlocking) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full — immediate rejection
  EXPECT_EQ(queue.size(), 2u);

  int item = 0;
  EXPECT_TRUE(queue.Pop(&item));
  EXPECT_EQ(item, 1);  // FIFO
  EXPECT_TRUE(queue.TryPush(3));  // capacity freed
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.TryPush(7));
  EXPECT_FALSE(queue.TryPush(8));
}

TEST(BoundedQueueTest, PopBatchTakesWhatIsQueuedUpToMaxItems) {
  BoundedQueue<int> queue(16);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.TryPush(i));
  std::vector<int> batch;
  // Zero linger: take only what is already there, capped at max_items.
  EXPECT_EQ(queue.PopBatch(&batch, 3, microseconds(0)), 3u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.PopBatch(&batch, 8, microseconds(0)), 2u);
  EXPECT_EQ(batch, (std::vector<int>{3, 4}));
}

TEST(BoundedQueueTest, PopBatchLingersForCoalescing) {
  BoundedQueue<int> queue(16);
  ASSERT_TRUE(queue.TryPush(1));
  std::thread late_producer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    queue.TryPush(2);
  });
  std::vector<int> batch;
  // A generous linger lets the second item join the first's batch.
  EXPECT_EQ(queue.PopBatch(&batch, 4, microseconds(500000)), 2u);
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));
  late_producer.join();
}

TEST(BoundedQueueTest, PopBatchReturnsAtMaxItemsWithoutWaiting) {
  BoundedQueue<int> queue(16);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.TryPush(i));
  std::vector<int> batch;
  const auto start = std::chrono::steady_clock::now();
  // max_items already queued: a huge linger must not be waited out.
  EXPECT_EQ(queue.PopBatch(&batch, 4, microseconds(60000000)), 4u);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumerAndDrains) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(3));  // no admissions after close
  std::vector<int> batch;
  // Items queued before close stay poppable...
  EXPECT_EQ(queue.PopBatch(&batch, 8, microseconds(1000)), 2u);
  // ...and a drained closed queue returns 0 instead of blocking.
  EXPECT_EQ(queue.PopBatch(&batch, 8, microseconds(1000)), 0u);
  int item = 0;
  EXPECT_FALSE(queue.Pop(&item));
}

TEST(BoundedQueueTest, CloseUnblocksWaitingConsumer) {
  BoundedQueue<int> queue(4);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    std::vector<int> batch;
    EXPECT_EQ(queue.PopBatch(&batch, 4, microseconds(0)), 0u);
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(returned.load());  // blocked on the empty queue
  queue.Close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(BoundedQueueTest, HighWaterTracksDeepestFill) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.TryPush(i));
  int item;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.Pop(&item));
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.high_water(), 5u);  // survives the drain
  ASSERT_TRUE(queue.TryPush(0));
  EXPECT_EQ(queue.high_water(), 5u);  // shallower refill does not lower it
}

TEST(BoundedQueueTest, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> queue(2);
  ASSERT_TRUE(queue.TryPush(std::make_unique<int>(42)));
  std::unique_ptr<int> item;
  ASSERT_TRUE(queue.Pop(&item));
  EXPECT_EQ(*item, 42);
}

TEST(BoundedQueueTest, MpmcStressAccountsForEveryItemOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(32);
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &accepted, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int item = p * kPerProducer + i;
        // Spin on backpressure: the stress wants every item through.
        while (!queue.TryPush(item)) std::this_thread::yield();
        accepted.fetch_add(1);
      }
    });
  }
  std::mutex seen_mutex;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&queue, &seen, &seen_mutex] {
      std::vector<int> batch;
      while (queue.PopBatch(&batch, 16, microseconds(100)) > 0) {
        std::lock_guard<std::mutex> lock(seen_mutex);
        for (int item : batch) {
          EXPECT_TRUE(seen.insert(item).second) << "duplicate " << item;
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(accepted.load(), kProducers * kPerProducer);
  EXPECT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
}

TEST(BoundedQueueTest, ItemCapTightensTheLinger) {
  // An item whose cap lies in the past must end the linger immediately:
  // the serving tier relies on this so a tight-deadline request starts
  // executing instead of coalescing past its budget.
  BoundedQueue<int> queue(16);
  ASSERT_TRUE(queue.TryPush(1));
  const auto start = std::chrono::steady_clock::now();
  std::vector<int> batch;
  const size_t popped = queue.PopBatch(
      &batch, 8, std::chrono::seconds(5), [&](const int&) {
        return start - std::chrono::milliseconds(1);  // already capped
      });
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(popped, 1u);
  EXPECT_LT(elapsed, std::chrono::seconds(1));
}

TEST(BoundedQueueTest, UncappedItemsKeepTheFullLinger) {
  // time_point::max() caps change nothing: the batch still lingers long
  // enough to coalesce a late producer's item.
  BoundedQueue<int> queue(16);
  ASSERT_TRUE(queue.TryPush(1));
  std::thread late_producer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    queue.TryPush(2);
  });
  std::vector<int> batch;
  const size_t popped = queue.PopBatch(
      &batch, 2, std::chrono::seconds(5), [](const int&) {
        return std::chrono::steady_clock::time_point::max();
      });
  late_producer.join();
  EXPECT_EQ(popped, 2u);
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));
}

#if defined(GENCLUS_FAILPOINTS)
TEST(BoundedQueueTest, PushFailpointSimulatesAQueueStorm) {
  // Armed "bounded_queue.push" makes admission behave as if the queue
  // were at capacity — the deterministic stand-in for a real storm.
  BoundedQueue<int> queue(16);
  Failpoints::Arm("bounded_queue.push", {.max_fires = 2});
  EXPECT_FALSE(queue.TryPush(1));
  EXPECT_FALSE(queue.TryPush(2));
  EXPECT_TRUE(queue.TryPush(3));  // max_fires exhausted
  EXPECT_EQ(queue.size(), 1u);
  Failpoints::DisarmAll();
}
#endif

}  // namespace
}  // namespace genclus
