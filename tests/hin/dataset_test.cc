#include "hin/dataset.h"

#include <gtest/gtest.h>

namespace genclus {
namespace {

Dataset MakeValidDataset() {
  Schema schema;
  auto a = schema.AddObjectType("A").value();
  auto aa = schema.AddLinkType("aa", a, a).value();
  NetworkBuilder builder(std::move(schema));
  NodeId n0 = builder.AddNode(a).value();
  NodeId n1 = builder.AddNode(a).value();
  EXPECT_TRUE(builder.AddLink(n0, n1, aa, 1.0).ok());
  Dataset dataset;
  dataset.network = std::move(builder).Build().value();
  dataset.attributes.push_back(Attribute::Numerical("x", 2));
  dataset.attributes.push_back(Attribute::Categorical("text", 5, 2));
  return dataset;
}

TEST(LabelsTest, DefaultUnlabeled) {
  Labels labels(4);
  EXPECT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels.NumLabeled(), 0u);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_FALSE(labels.IsLabeled(v));
    EXPECT_EQ(labels.Get(v), kUnlabeled);
  }
}

TEST(LabelsTest, SetAndCount) {
  Labels labels(3);
  labels.Set(0, 2);
  labels.Set(2, 0);
  EXPECT_EQ(labels.NumLabeled(), 2u);
  EXPECT_TRUE(labels.IsLabeled(0));
  EXPECT_FALSE(labels.IsLabeled(1));
  EXPECT_EQ(labels.Get(0), 2u);
  EXPECT_EQ(labels.raw().size(), 3u);
}

TEST(DatasetTest, ValidatesConsistentDataset) {
  Dataset dataset = MakeValidDataset();
  EXPECT_TRUE(dataset.Validate().ok());
  dataset.labels = Labels(2);
  EXPECT_TRUE(dataset.Validate().ok());
}

TEST(DatasetTest, RejectsAttributeSizeMismatch) {
  Dataset dataset = MakeValidDataset();
  dataset.attributes.push_back(Attribute::Numerical("bad", 7));
  Status s = dataset.Validate();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(DatasetTest, RejectsLabelSizeMismatch) {
  Dataset dataset = MakeValidDataset();
  dataset.labels = Labels(9);
  EXPECT_FALSE(dataset.Validate().ok());
}

TEST(DatasetTest, EmptyLabelsAreAllowed) {
  Dataset dataset = MakeValidDataset();
  dataset.labels = Labels();
  EXPECT_TRUE(dataset.Validate().ok());
}

TEST(DatasetTest, FindAttributeByName) {
  Dataset dataset = MakeValidDataset();
  EXPECT_EQ(dataset.FindAttribute("x"), 0u);
  EXPECT_EQ(dataset.FindAttribute("text"), 1u);
  EXPECT_EQ(dataset.FindAttribute("ghost"), kInvalidAttribute);
}

}  // namespace
}  // namespace genclus
