#include "hin/attributes.h"

#include <gtest/gtest.h>

#include <cmath>

namespace genclus {
namespace {

TEST(CategoricalAttributeTest, BasicObservations) {
  Attribute text = Attribute::Categorical("text", 10, 3);
  EXPECT_EQ(text.kind(), AttributeKind::kCategorical);
  EXPECT_EQ(text.vocab_size(), 10u);
  EXPECT_TRUE(text.AddTermCount(0, 2, 1.0).ok());
  EXPECT_TRUE(text.AddTermCount(0, 5, 3.0).ok());
  EXPECT_TRUE(text.HasObservations(0));
  EXPECT_FALSE(text.HasObservations(1));
  ASSERT_EQ(text.TermCounts(0).size(), 2u);
  EXPECT_EQ(text.TermCounts(1).size(), 0u);
}

TEST(CategoricalAttributeTest, AccumulatesRepeatedTerms) {
  Attribute text = Attribute::Categorical("text", 4, 1);
  EXPECT_TRUE(text.AddTermCount(0, 1, 1.0).ok());
  EXPECT_TRUE(text.AddTermCount(0, 1, 2.5).ok());
  ASSERT_EQ(text.TermCounts(0).size(), 1u);
  EXPECT_DOUBLE_EQ(text.TermCounts(0)[0].count, 3.5);
}

TEST(CategoricalAttributeTest, RejectsBadInput) {
  Attribute text = Attribute::Categorical("text", 4, 2);
  EXPECT_FALSE(text.AddTermCount(5, 0, 1.0).ok());   // node out of range
  EXPECT_FALSE(text.AddTermCount(0, 4, 1.0).ok());   // term out of vocab
  EXPECT_FALSE(text.AddTermCount(0, 0, 0.0).ok());   // non-positive count
  EXPECT_FALSE(text.AddTermCount(0, 0, -1.0).ok());
  EXPECT_FALSE(text.AddValue(0, 1.0).ok());          // wrong kind
}

TEST(NumericalAttributeTest, BasicObservations) {
  Attribute temp = Attribute::Numerical("temp", 3);
  EXPECT_EQ(temp.kind(), AttributeKind::kNumerical);
  EXPECT_TRUE(temp.AddValue(1, 20.5).ok());
  EXPECT_TRUE(temp.AddValue(1, 21.0).ok());
  EXPECT_FALSE(temp.HasObservations(0));
  EXPECT_TRUE(temp.HasObservations(1));
  ASSERT_EQ(temp.Values(1).size(), 2u);
  EXPECT_DOUBLE_EQ(temp.Values(1)[0], 20.5);
}

TEST(NumericalAttributeTest, RejectsBadInput) {
  Attribute temp = Attribute::Numerical("temp", 2);
  EXPECT_FALSE(temp.AddValue(5, 1.0).ok());
  EXPECT_FALSE(temp.AddValue(0, std::nan("")).ok());
  EXPECT_FALSE(temp.AddTermCount(0, 0, 1.0).ok());  // wrong kind
}

TEST(AttributeTest, TotalObservationsCategorical) {
  Attribute text = Attribute::Categorical("text", 8, 2);
  (void)text.AddTermCount(0, 1, 2.0);
  (void)text.AddTermCount(1, 3, 1.0);
  (void)text.AddTermCount(1, 4, 1.0);
  EXPECT_DOUBLE_EQ(text.TotalObservations(), 4.0);
  EXPECT_EQ(text.NumObservedNodes(), 2u);
}

TEST(AttributeTest, TotalObservationsNumerical) {
  Attribute temp = Attribute::Numerical("temp", 3);
  (void)temp.AddValue(0, 1.0);
  (void)temp.AddValue(0, 2.0);
  (void)temp.AddValue(2, 3.0);
  EXPECT_DOUBLE_EQ(temp.TotalObservations(), 3.0);
  EXPECT_EQ(temp.NumObservedNodes(), 2u);
}

TEST(AttributeTest, IncompletenessIsTheDefault) {
  // A fresh attribute has zero observations anywhere — this is the
  // incomplete-attribute configuration GenClus must handle.
  Attribute text = Attribute::Categorical("text", 5, 100);
  EXPECT_EQ(text.NumObservedNodes(), 0u);
  for (NodeId v = 0; v < 100; ++v) {
    EXPECT_FALSE(text.HasObservations(v));
  }
}

TEST(AttributeTest, TermNames) {
  Attribute text = Attribute::Categorical("text", 2, 1);
  text.SetTermNames({"database", "mining"});
  ASSERT_EQ(text.term_names().size(), 2u);
  EXPECT_EQ(text.term_names()[1], "mining");
}

}  // namespace
}  // namespace genclus
