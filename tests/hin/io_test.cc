#include "hin/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace genclus {
namespace {

// Builds a small two-type dataset with both attribute kinds and labels.
Dataset MakeDataset() {
  Schema schema;
  auto a = schema.AddObjectType("A").value();
  auto b = schema.AddObjectType("B").value();
  auto ab = schema.AddLinkType("ab", a, b).value();
  auto ba = schema.AddLinkType("ba", b, a).value();
  (void)schema.SetInverse(ab, ba);

  NetworkBuilder builder(schema);
  NodeId a0 = builder.AddNode(a, "a0").value();
  NodeId a1 = builder.AddNode(a, "a1").value();
  NodeId b0 = builder.AddNode(b, "b0").value();
  EXPECT_TRUE(builder.AddLink(a0, b0, ab, 2.5).ok());
  EXPECT_TRUE(builder.AddLink(b0, a1, ba, 1.0).ok());

  Dataset dataset;
  dataset.network = std::move(builder).Build().value();
  Attribute text = Attribute::Categorical("text", 6, 3);
  (void)text.AddTermCount(a0, 2, 3.0);
  (void)text.AddTermCount(a1, 5, 1.0);
  Attribute temp = Attribute::Numerical("temp", 3);
  (void)temp.AddValue(b0, 12.25);
  (void)temp.AddValue(b0, -3.5);
  dataset.attributes.push_back(std::move(text));
  dataset.attributes.push_back(std::move(temp));
  dataset.labels = Labels(3);
  dataset.labels.Set(a0, 0);
  dataset.labels.Set(b0, 1);
  return dataset;
}

class IoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/genclus_io_test.tsv";
};

TEST_F(IoTest, RoundTripPreservesEverything) {
  Dataset original = MakeDataset();
  ASSERT_TRUE(SaveDataset(original, path_).ok());
  auto loaded = LoadDataset(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const Network& net = loaded->network;
  EXPECT_EQ(net.num_nodes(), 3u);
  EXPECT_EQ(net.num_links(), 2u);
  EXPECT_EQ(net.schema().num_object_types(), 2u);
  EXPECT_EQ(net.schema().num_link_types(), 2u);
  // Inverse pairing survives.
  LinkTypeId ab = net.schema().FindLinkType("ab");
  LinkTypeId ba = net.schema().FindLinkType("ba");
  EXPECT_EQ(net.schema().link_type(ab).inverse, ba);
  // Link weight survives.
  EXPECT_DOUBLE_EQ(net.LinkWeight(0, 2, ab), 2.5);
  // Node names survive.
  EXPECT_EQ(net.node_name(1), "a1");

  ASSERT_EQ(loaded->attributes.size(), 2u);
  const Attribute& text = loaded->attributes[0];
  EXPECT_EQ(text.kind(), AttributeKind::kCategorical);
  EXPECT_EQ(text.vocab_size(), 6u);
  ASSERT_EQ(text.TermCounts(0).size(), 1u);
  EXPECT_EQ(text.TermCounts(0)[0].term, 2u);
  EXPECT_DOUBLE_EQ(text.TermCounts(0)[0].count, 3.0);
  const Attribute& temp = loaded->attributes[1];
  EXPECT_EQ(temp.kind(), AttributeKind::kNumerical);
  ASSERT_EQ(temp.Values(2).size(), 2u);
  EXPECT_DOUBLE_EQ(temp.Values(2)[1], -3.5);

  EXPECT_EQ(loaded->labels.Get(0), 0u);
  EXPECT_EQ(loaded->labels.Get(2), 1u);
  EXPECT_FALSE(loaded->labels.IsLabeled(1));
}

TEST_F(IoTest, LoadRejectsMissingFile) {
  auto r = LoadDataset("/nonexistent/path/file.tsv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, LoadRejectsGarbageRecord) {
  std::ofstream out(path_);
  out << "object_type A\nnonsense 1 2 3\n";
  out.close();
  auto r = LoadDataset(path_);
  EXPECT_FALSE(r.ok());
}

TEST_F(IoTest, LoadRejectsUnknownLinkType) {
  std::ofstream out(path_);
  out << "object_type A\nnode A x\nnode A y\nlink 0 1 ghost 1.0\n";
  out.close();
  auto r = LoadDataset(path_);
  EXPECT_FALSE(r.ok());
}

TEST_F(IoTest, CommentsAndBlankLinesIgnored) {
  std::ofstream out(path_);
  out << "# a comment\n\nobject_type A\n  \nnode A solo\n";
  out.close();
  auto r = LoadDataset(path_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->network.num_nodes(), 1u);
}

TEST_F(IoTest, SaveRejectsInvalidDataset) {
  Dataset broken = MakeDataset();
  // Attribute sized for the wrong node count.
  broken.attributes.push_back(Attribute::Numerical("bad", 99));
  EXPECT_FALSE(SaveDataset(broken, path_).ok());
}

}  // namespace
}  // namespace genclus
