#include "hin/schema.h"

#include <gtest/gtest.h>

namespace genclus {
namespace {

TEST(SchemaTest, AddAndLookupObjectTypes) {
  Schema s;
  auto author = s.AddObjectType("author");
  auto paper = s.AddObjectType("paper");
  ASSERT_TRUE(author.ok());
  ASSERT_TRUE(paper.ok());
  EXPECT_NE(author.value(), paper.value());
  EXPECT_EQ(s.num_object_types(), 2u);
  EXPECT_EQ(s.FindObjectType("author"), author.value());
  EXPECT_EQ(s.FindObjectType("paper"), paper.value());
  EXPECT_EQ(s.FindObjectType("venue"), kInvalidObjectType);
  EXPECT_EQ(s.object_type_name(author.value()), "author");
}

TEST(SchemaTest, RejectsDuplicateObjectType) {
  Schema s;
  ASSERT_TRUE(s.AddObjectType("x").ok());
  auto dup = s.AddObjectType("x");
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, RejectsEmptyNames) {
  Schema s;
  EXPECT_FALSE(s.AddObjectType("").ok());
  auto t = s.AddObjectType("t");
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(s.AddLinkType("", t.value(), t.value()).ok());
}

TEST(SchemaTest, AddLinkTypeRecordsEndpoints) {
  Schema s;
  auto a = s.AddObjectType("A");
  auto b = s.AddObjectType("B");
  auto r = s.AddLinkType("ab", a.value(), b.value());
  ASSERT_TRUE(r.ok());
  const LinkTypeInfo& info = s.link_type(r.value());
  EXPECT_EQ(info.name, "ab");
  EXPECT_EQ(info.source_type, a.value());
  EXPECT_EQ(info.target_type, b.value());
  EXPECT_EQ(info.inverse, kInvalidLinkType);
}

TEST(SchemaTest, LinkTypeRejectsUnknownEndpoints) {
  Schema s;
  auto a = s.AddObjectType("A");
  EXPECT_FALSE(s.AddLinkType("bad", a.value(), 42).ok());
  EXPECT_FALSE(s.AddLinkType("bad", 42, a.value()).ok());
}

TEST(SchemaTest, RejectsDuplicateLinkType) {
  Schema s;
  auto a = s.AddObjectType("A");
  ASSERT_TRUE(s.AddLinkType("r", a.value(), a.value()).ok());
  auto dup = s.AddLinkType("r", a.value(), a.value());
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, SetInverseLinksBothDirections) {
  Schema s;
  auto a = s.AddObjectType("A");
  auto b = s.AddObjectType("B");
  auto ab = s.AddLinkType("ab", a.value(), b.value());
  auto ba = s.AddLinkType("ba", b.value(), a.value());
  ASSERT_TRUE(s.SetInverse(ab.value(), ba.value()).ok());
  EXPECT_EQ(s.link_type(ab.value()).inverse, ba.value());
  EXPECT_EQ(s.link_type(ba.value()).inverse, ab.value());
}

TEST(SchemaTest, SetInverseRejectsMismatchedEndpoints) {
  Schema s;
  auto a = s.AddObjectType("A");
  auto b = s.AddObjectType("B");
  auto ab = s.AddLinkType("ab", a.value(), b.value());
  auto aa = s.AddLinkType("aa", a.value(), a.value());
  EXPECT_FALSE(s.SetInverse(ab.value(), aa.value()).ok());
}

TEST(SchemaTest, SetInverseRejectsUnknownIds) {
  Schema s;
  EXPECT_FALSE(s.SetInverse(0, 1).ok());
}

TEST(SchemaTest, FindLinkType) {
  Schema s;
  auto a = s.AddObjectType("A");
  auto r = s.AddLinkType("self", a.value(), a.value());
  EXPECT_EQ(s.FindLinkType("self"), r.value());
  EXPECT_EQ(s.FindLinkType("other"), kInvalidLinkType);
}

}  // namespace
}  // namespace genclus
