#include "hin/network.h"

#include <gtest/gtest.h>

#include <map>

namespace genclus {
namespace {

// Small bibliographic-flavoured fixture: 2 authors, 1 conference.
class NetworkFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema;
    author_ = schema.AddObjectType("author").value();
    conf_ = schema.AddObjectType("conf").value();
    ac_ = schema.AddLinkType("ac", author_, conf_).value();
    ca_ = schema.AddLinkType("ca", conf_, author_).value();
    aa_ = schema.AddLinkType("aa", author_, author_).value();

    NetworkBuilder builder(schema);
    a0_ = builder.AddNode(author_, "alice").value();
    a1_ = builder.AddNode(author_, "bob").value();
    c0_ = builder.AddNode(conf_, "vldb").value();
    EXPECT_TRUE(builder.AddLink(a0_, c0_, ac_, 2.0).ok());
    EXPECT_TRUE(builder.AddLink(a1_, c0_, ac_, 1.0).ok());
    EXPECT_TRUE(builder.AddLink(c0_, a0_, ca_, 2.0).ok());
    EXPECT_TRUE(builder.AddLink(a0_, a1_, aa_, 3.0).ok());
    net_ = std::move(builder).Build().value();
  }

  ObjectTypeId author_, conf_;
  LinkTypeId ac_, ca_, aa_;
  NodeId a0_, a1_, c0_;
  Network net_;
};

TEST_F(NetworkFixture, CountsAndTypes) {
  EXPECT_EQ(net_.num_nodes(), 3u);
  EXPECT_EQ(net_.num_links(), 4u);
  EXPECT_EQ(net_.node_type(a0_), author_);
  EXPECT_EQ(net_.node_type(c0_), conf_);
  EXPECT_EQ(net_.node_name(a1_), "bob");
}

TEST_F(NetworkFixture, NodesOfType) {
  const auto& authors = net_.NodesOfType(author_);
  ASSERT_EQ(authors.size(), 2u);
  EXPECT_EQ(authors[0], a0_);
  EXPECT_EQ(authors[1], a1_);
  EXPECT_EQ(net_.NodesOfType(conf_).size(), 1u);
}

TEST_F(NetworkFixture, OutLinksSortedByType) {
  auto links = net_.OutLinks(a0_);
  ASSERT_EQ(links.size(), 2u);
  // ac_ was declared before aa_, so ac entries come first.
  EXPECT_EQ(links[0].type, ac_);
  EXPECT_EQ(links[0].neighbor, c0_);
  EXPECT_DOUBLE_EQ(links[0].weight, 2.0);
  EXPECT_EQ(links[1].type, aa_);
  EXPECT_EQ(links[1].neighbor, a1_);
}

TEST_F(NetworkFixture, InLinks) {
  auto in = net_.InLinks(c0_);
  ASSERT_EQ(in.size(), 2u);
  // Both are ac links, sources a0 and a1 in id order.
  EXPECT_EQ(in[0].neighbor, a0_);
  EXPECT_EQ(in[1].neighbor, a1_);
  EXPECT_EQ(net_.InDegree(a1_), 1u);  // the coauthor link
  EXPECT_EQ(net_.OutDegree(c0_), 1u);
}

TEST_F(NetworkFixture, LinkCountsByType) {
  const auto& counts = net_.LinkCountsByType();
  EXPECT_EQ(counts[ac_], 2u);
  EXPECT_EQ(counts[ca_], 1u);
  EXPECT_EQ(counts[aa_], 1u);
  const auto& weights = net_.LinkWeightsByType();
  EXPECT_DOUBLE_EQ(weights[ac_], 3.0);
  EXPECT_DOUBLE_EQ(weights[aa_], 3.0);
}

TEST_F(NetworkFixture, LinkWeightLookup) {
  EXPECT_DOUBLE_EQ(net_.LinkWeight(a0_, c0_, ac_), 2.0);
  EXPECT_DOUBLE_EQ(net_.LinkWeight(a1_, c0_, ac_), 1.0);
  EXPECT_DOUBLE_EQ(net_.LinkWeight(a0_, c0_, aa_), 0.0);  // wrong type
  EXPECT_DOUBLE_EQ(net_.LinkWeight(a1_, a0_, aa_), 0.0);  // wrong direction
}

TEST(NetworkBuilderTest, RejectsUnknownObjectType) {
  Schema schema;
  (void)schema.AddObjectType("A");
  NetworkBuilder builder(std::move(schema));
  EXPECT_FALSE(builder.AddNode(9).ok());
}

TEST(NetworkBuilderTest, RejectsLinkTypeEndpointMismatch) {
  Schema schema;
  auto a = schema.AddObjectType("A").value();
  auto b = schema.AddObjectType("B").value();
  auto ab = schema.AddLinkType("ab", a, b).value();
  NetworkBuilder builder(std::move(schema));
  NodeId n_a = builder.AddNode(a).value();
  NodeId n_b = builder.AddNode(b).value();
  // Reversed endpoints must be rejected.
  Status s = builder.AddLink(n_b, n_a, ab, 1.0);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(builder.AddLink(n_a, n_b, ab, 1.0).ok());
}

TEST(NetworkBuilderTest, RejectsBadWeightsAndIds) {
  Schema schema;
  auto a = schema.AddObjectType("A").value();
  auto aa = schema.AddLinkType("aa", a, a).value();
  NetworkBuilder builder(std::move(schema));
  NodeId v = builder.AddNode(a).value();
  NodeId u = builder.AddNode(a).value();
  EXPECT_FALSE(builder.AddLink(v, u, aa, 0.0).ok());
  EXPECT_FALSE(builder.AddLink(v, u, aa, -1.0).ok());
  EXPECT_FALSE(builder.AddLink(v, 77, aa, 1.0).ok());
  EXPECT_FALSE(builder.AddLink(v, u, 9, 1.0).ok());
}

TEST(NetworkBuilderTest, EmptyNetworkBuilds) {
  Schema schema;
  (void)schema.AddObjectType("A");
  NetworkBuilder builder(std::move(schema));
  auto net = std::move(builder).Build();
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->num_nodes(), 0u);
  EXPECT_EQ(net->num_links(), 0u);
}

TEST(NetworkBuilderTest, ParallelLinksAreKept) {
  // Two links of the same type between the same pair: both stored.
  Schema schema;
  auto a = schema.AddObjectType("A").value();
  auto aa = schema.AddLinkType("aa", a, a).value();
  NetworkBuilder builder(std::move(schema));
  NodeId v = builder.AddNode(a).value();
  NodeId u = builder.AddNode(a).value();
  EXPECT_TRUE(builder.AddLink(v, u, aa, 1.0).ok());
  EXPECT_TRUE(builder.AddLink(v, u, aa, 2.0).ok());
  Network net = std::move(builder).Build().value();
  EXPECT_EQ(net.OutDegree(v), 2u);
  double total = 0.0;
  for (const LinkEntry& e : net.OutLinks(v)) total += e.weight;
  EXPECT_DOUBLE_EQ(total, 3.0);
}

TEST(NetworkBuilderTest, SelfLoopAllowed) {
  Schema schema;
  auto a = schema.AddObjectType("A").value();
  auto aa = schema.AddLinkType("aa", a, a).value();
  NetworkBuilder builder(std::move(schema));
  NodeId v = builder.AddNode(a).value();
  EXPECT_TRUE(builder.AddLink(v, v, aa, 1.0).ok());
  Network net = std::move(builder).Build().value();
  EXPECT_EQ(net.OutDegree(v), 1u);
  EXPECT_EQ(net.InDegree(v), 1u);
}

TEST(NetworkBuilderTest, LargeCsrConsistency) {
  // Randomized CSR check: in/out degrees must agree with the added links.
  Schema schema;
  auto a = schema.AddObjectType("A").value();
  auto r0 = schema.AddLinkType("r0", a, a).value();
  auto r1 = schema.AddLinkType("r1", a, a).value();
  NetworkBuilder builder(std::move(schema));
  const size_t n = 200;
  for (size_t i = 0; i < n; ++i) (void)builder.AddNode(a);
  std::map<NodeId, size_t> expected_out;
  std::map<NodeId, size_t> expected_in;
  size_t added = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 1; j <= 3; ++j) {
      NodeId dst = static_cast<NodeId>((i * 7 + j * 13) % n);
      LinkTypeId t = (i + j) % 2 == 0 ? r0 : r1;
      ASSERT_TRUE(builder
                      .AddLink(static_cast<NodeId>(i), dst, t,
                               1.0 + static_cast<double>(j))
                      .ok());
      expected_out[static_cast<NodeId>(i)]++;
      expected_in[dst]++;
      ++added;
    }
  }
  Network net = std::move(builder).Build().value();
  EXPECT_EQ(net.num_links(), added);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(net.OutDegree(v), expected_out[v]) << "node " << v;
    EXPECT_EQ(net.InDegree(v), expected_in[v]) << "node " << v;
    // Within each node, entries sorted by type.
    auto links = net.OutLinks(v);
    for (size_t i = 1; i < links.size(); ++i) {
      EXPECT_LE(links[i - 1].type, links[i].type);
    }
  }
}

TEST(NetworkBuilderTest, OutLinksGroupedByTypeRegardlessOfInsertionOrder) {
  // StrengthLearner's sufficient-statistics grouping assumes each node's
  // out-link span holds every link of a relation contiguously, in
  // non-decreasing type order (it DCHECKs this). Pin the invariant with
  // adversarial insertion order: types interleaved, neighbors descending.
  Schema schema;
  ObjectTypeId doc = schema.AddObjectType("doc").value();
  LinkTypeId r0 = schema.AddLinkType("r0", doc, doc).value();
  LinkTypeId r1 = schema.AddLinkType("r1", doc, doc).value();
  LinkTypeId r2 = schema.AddLinkType("r2", doc, doc).value();

  NetworkBuilder builder(schema);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 6; ++i) nodes.push_back(builder.AddNode(doc).value());
  const NodeId v = nodes[0];
  // Interleave relations and feed neighbors high-to-low.
  const std::vector<LinkTypeId> order = {r2, r0, r1, r0, r2, r1, r0};
  for (size_t i = 0; i < order.size(); ++i) {
    ASSERT_TRUE(builder.AddLink(v, nodes[5 - (i % 6)], order[i], 1.0).ok());
  }
  Network net = std::move(builder).Build().value();

  auto links = net.OutLinks(v);
  ASSERT_EQ(links.size(), 7u);
  std::map<LinkTypeId, size_t> counts;
  for (size_t i = 0; i < links.size(); ++i) {
    counts[links[i].type]++;
    if (i == 0) continue;
    // Sorted by (type, neighbor): type non-decreasing, neighbor ascending
    // within a type run — so every relation forms one contiguous group.
    EXPECT_LE(links[i - 1].type, links[i].type) << "position " << i;
    if (links[i - 1].type == links[i].type) {
      EXPECT_LE(links[i - 1].neighbor, links[i].neighbor)
          << "position " << i;
    }
  }
  EXPECT_EQ(counts[r0], 3u);
  EXPECT_EQ(counts[r1], 2u);
  EXPECT_EQ(counts[r2], 2u);
  // Contiguity directly: a type never reappears after its run ended.
  std::vector<LinkTypeId> seen;
  for (const LinkEntry& e : links) {
    if (seen.empty() || seen.back() != e.type) {
      for (LinkTypeId earlier : seen) EXPECT_NE(earlier, e.type);
      seen.push_back(e.type);
    }
  }
}

TEST(NetworkBuilderTest, OutCsrMatchesOutLinks) {
  // The per-relation SoA views must hold exactly the out-links of each
  // relation, row by row, neighbors ascending — the contract the EM SpMM
  // kernel consumes.
  Schema schema;
  ObjectTypeId doc = schema.AddObjectType("doc").value();
  LinkTypeId r0 = schema.AddLinkType("r0", doc, doc).value();
  LinkTypeId r1 = schema.AddLinkType("r1", doc, doc).value();

  NetworkBuilder builder(schema);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(builder.AddNode(doc).value());
  ASSERT_TRUE(builder.AddLink(nodes[0], nodes[3], r1, 2.0).ok());
  ASSERT_TRUE(builder.AddLink(nodes[0], nodes[1], r0, 0.5).ok());
  ASSERT_TRUE(builder.AddLink(nodes[0], nodes[4], r0, 1.5).ok());
  ASSERT_TRUE(builder.AddLink(nodes[2], nodes[0], r1, 3.0).ok());
  ASSERT_TRUE(builder.AddLink(nodes[4], nodes[2], r0, 4.0).ok());
  Network net = std::move(builder).Build().value();

  for (LinkTypeId r : {r0, r1}) {
    RelationCsr csr = net.OutCsr(r);
    ASSERT_EQ(csr.row_offsets.size(), net.num_nodes() + 1);
    ASSERT_EQ(csr.neighbors.size(), csr.weights.size());
    EXPECT_EQ(csr.nnz(), net.LinkCountsByType()[r]);
    size_t total = 0;
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      // Collect the reference grouping from the AoS span.
      std::vector<std::pair<NodeId, double>> want;
      for (const LinkEntry& e : net.OutLinks(v)) {
        if (e.type == r) want.emplace_back(e.neighbor, e.weight);
      }
      const size_t begin = csr.row_offsets[v];
      const size_t end = csr.row_offsets[v + 1];
      ASSERT_EQ(end - begin, want.size()) << "row " << v;
      for (size_t i = begin; i < end; ++i) {
        EXPECT_EQ(csr.neighbors[i], want[i - begin].first);
        EXPECT_EQ(csr.weights[i], want[i - begin].second);
        if (i > begin) {
          EXPECT_LE(csr.neighbors[i - 1], csr.neighbors[i]);  // ascending
        }
      }
      total += want.size();
    }
    EXPECT_EQ(total, csr.nnz());
  }
}

TEST(NetworkBuilderTest, OutCsrOfEmptyRelation) {
  Schema schema;
  ObjectTypeId doc = schema.AddObjectType("doc").value();
  LinkTypeId used = schema.AddLinkType("used", doc, doc).value();
  LinkTypeId unused = schema.AddLinkType("unused", doc, doc).value();
  NetworkBuilder builder(schema);
  NodeId a = builder.AddNode(doc).value();
  NodeId b = builder.AddNode(doc).value();
  ASSERT_TRUE(builder.AddLink(a, b, used, 1.0).ok());
  Network net = std::move(builder).Build().value();

  RelationCsr csr = net.OutCsr(unused);
  EXPECT_EQ(csr.nnz(), 0u);
  ASSERT_EQ(csr.row_offsets.size(), 3u);
  for (size_t offset : csr.row_offsets) EXPECT_EQ(offset, 0u);
}

}  // namespace
}  // namespace genclus
