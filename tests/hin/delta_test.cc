// Streaming dataset growth (hin/delta.h):
//   * ApplyNetworkDelta appends nodes in order (base ids survive), wires
//     links between any mix of old and new nodes, and applies late
//     attribute observations by kind;
//   * SliceDatasetPrefix o ApplyNetworkDelta is the identity: slicing a
//     dataset into a prefix plus remainder and replaying the remainder
//     reproduces the full dataset exactly — the contract the
//     incremental-maintenance fixtures (refit_bench, update_test) rely on;
//   * malformed deltas fail with InvalidArgument and leave nothing
//     half-applied (the base is const).
#include "hin/delta.h"

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

testing::TwoCommunityNetwork MakeFixture() {
  return MakeTwoCommunityNetwork(/*docs_per_side=*/4, /*text_fraction=*/1.0,
                                 /*seed=*/77);
}

// Structural equality of two datasets: types, names, per-node out-links
// (order included — Build sorts them deterministically), attribute
// observations, labels.
void ExpectDatasetsEqual(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.network.num_nodes(), b.network.num_nodes());
  ASSERT_EQ(a.network.num_links(), b.network.num_links());
  for (NodeId v = 0; v < a.network.num_nodes(); ++v) {
    EXPECT_EQ(a.network.node_type(v), b.network.node_type(v)) << "v=" << v;
    EXPECT_EQ(a.network.node_name(v), b.network.node_name(v)) << "v=" << v;
    const auto la = a.network.OutLinks(v);
    const auto lb = b.network.OutLinks(v);
    ASSERT_EQ(la.size(), lb.size()) << "v=" << v;
    for (size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i].neighbor, lb[i].neighbor) << "v=" << v;
      EXPECT_EQ(la[i].type, lb[i].type) << "v=" << v;
      EXPECT_EQ(la[i].weight, lb[i].weight) << "v=" << v;
    }
  }
  ASSERT_EQ(a.attributes.size(), b.attributes.size());
  for (size_t x = 0; x < a.attributes.size(); ++x) {
    const Attribute& xa = a.attributes[x];
    const Attribute& xb = b.attributes[x];
    ASSERT_EQ(xa.kind(), xb.kind());
    EXPECT_EQ(xa.name(), xb.name());
    for (NodeId v = 0; v < a.network.num_nodes(); ++v) {
      if (xa.kind() == AttributeKind::kCategorical) {
        const auto& ta = xa.TermCounts(v);
        const auto& tb = xb.TermCounts(v);
        ASSERT_EQ(ta.size(), tb.size()) << "x=" << x << " v=" << v;
        for (size_t i = 0; i < ta.size(); ++i) {
          EXPECT_EQ(ta[i].term, tb[i].term);
          EXPECT_EQ(ta[i].count, tb[i].count);
        }
      } else {
        EXPECT_EQ(xa.Values(v), xb.Values(v)) << "x=" << x << " v=" << v;
      }
    }
  }
  ASSERT_EQ(a.labels.size(), b.labels.size());
  for (NodeId v = 0; v < a.labels.size(); ++v) {
    EXPECT_EQ(a.labels.Get(v), b.labels.Get(v)) << "v=" << v;
  }
}

TEST(DeltaTest, ApplyGrowsNetworkAndAttributes) {
  const auto fx = MakeFixture();
  const size_t base_nodes = fx.dataset.network.num_nodes();

  NetworkDelta delta;
  delta.nodes.push_back({fx.doc_type, "new_doc"});
  const NodeId fresh = static_cast<NodeId>(base_nodes);
  // Old -> new and new -> old links, plus a late observation on an OLD
  // node (the trickle-in attribute case).
  delta.links.push_back({fresh, fx.docs[0], fx.doc_doc, 2.0});
  delta.links.push_back({fx.docs[1], fresh, fx.doc_doc, 1.0});
  delta.observations.push_back({/*attribute=*/0, fresh, /*term=*/1,
                                /*count=*/3.0});
  delta.observations.push_back({/*attribute=*/0, fx.docs[2], /*term=*/0,
                                /*count=*/1.0});
  delta.node_labels = {0};

  auto grown = ApplyNetworkDelta(fx.dataset, delta);
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();
  const Dataset& out = grown.value();
  EXPECT_EQ(out.network.num_nodes(), base_nodes + 1);
  EXPECT_EQ(out.network.num_links(), fx.dataset.network.num_links() + 2);
  EXPECT_EQ(out.network.node_type(fresh), fx.doc_type);
  EXPECT_EQ(out.network.node_name(fresh), "new_doc");
  ASSERT_EQ(out.network.OutLinks(fresh).size(), 1u);
  EXPECT_EQ(out.network.OutLinks(fresh)[0].neighbor, fx.docs[0]);
  EXPECT_EQ(out.network.OutLinks(fresh)[0].weight, 2.0);
  // New node's bag holds the delta observation; the old node's bag gained
  // one count of term 0 on top of whatever the fixture planted.
  ASSERT_EQ(out.attributes[0].TermCounts(fresh).size(), 1u);
  EXPECT_EQ(out.attributes[0].TermCounts(fresh)[0].term, 1u);
  EXPECT_EQ(out.attributes[0].TermCounts(fresh)[0].count, 3.0);
  EXPECT_EQ(out.attributes[0].TotalObservations(),
            fx.dataset.attributes[0].TotalObservations() + 4.0);
  EXPECT_EQ(out.labels.Get(fresh), 0u);
  // Base ids survive untouched.
  EXPECT_EQ(out.network.node_name(fx.docs[0]),
            fx.dataset.network.node_name(fx.docs[0]));
  EXPECT_TRUE(out.Validate().ok());
}

TEST(DeltaTest, EmptyDeltaIsIdentity) {
  const auto fx = MakeFixture();
  auto same = ApplyNetworkDelta(fx.dataset, NetworkDelta{});
  ASSERT_TRUE(same.ok()) << same.status().ToString();
  ExpectDatasetsEqual(fx.dataset, same.value());
}

TEST(DeltaTest, SliceThenApplyRoundTrips) {
  const auto fx = MakeFixture();
  const size_t total = fx.dataset.network.num_nodes();
  // Every split point, including the degenerate ones: empty prefix and
  // full prefix (empty remainder).
  for (size_t cut : {size_t{0}, size_t{1}, total / 2, total - 1, total}) {
    NetworkDelta remainder;
    auto prefix = SliceDatasetPrefix(fx.dataset, cut, &remainder);
    ASSERT_TRUE(prefix.ok()) << "cut=" << cut << ": "
                             << prefix.status().ToString();
    EXPECT_EQ(prefix.value().network.num_nodes(), cut);
    EXPECT_EQ(remainder.nodes.size(), total - cut);
    auto rebuilt = ApplyNetworkDelta(prefix.value(), remainder);
    ASSERT_TRUE(rebuilt.ok()) << "cut=" << cut << ": "
                              << rebuilt.status().ToString();
    ExpectDatasetsEqual(fx.dataset, rebuilt.value());
  }
}

TEST(DeltaTest, RejectsMalformedDeltas) {
  const auto fx = MakeFixture();
  const NodeId out_of_range =
      static_cast<NodeId>(fx.dataset.network.num_nodes());

  NetworkDelta bad_link;
  bad_link.links.push_back({fx.docs[0], out_of_range, fx.doc_doc, 1.0});
  EXPECT_EQ(ApplyNetworkDelta(fx.dataset, bad_link).status().code(),
            StatusCode::kInvalidArgument);

  NetworkDelta bad_attr;
  bad_attr.observations.push_back(
      {static_cast<AttributeId>(fx.dataset.attributes.size()), fx.docs[0],
       0, 1.0});
  EXPECT_EQ(ApplyNetworkDelta(fx.dataset, bad_attr).status().code(),
            StatusCode::kInvalidArgument);

  NetworkDelta bad_labels;
  bad_labels.nodes.push_back({fx.doc_type, "n"});
  bad_labels.node_labels = {0, 1};  // two labels, one node
  EXPECT_EQ(ApplyNetworkDelta(fx.dataset, bad_labels).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(SliceDatasetPrefix(fx.dataset,
                               fx.dataset.network.num_nodes() + 1, nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace genclus
