#include "baselines/topic_models.h"

#include <gtest/gtest.h>

#include "eval/nmi.h"
#include "prob/simplex.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

std::vector<uint32_t> HardLabels(const Matrix& theta) {
  std::vector<uint32_t> labels(theta.rows());
  for (size_t v = 0; v < theta.rows(); ++v) {
    labels[v] = static_cast<uint32_t>(ArgMax(theta.RowVector(v)));
  }
  return labels;
}

TEST(NetPlsaTest, RecoversCommunitiesWithFullText) {
  auto fixture = MakeTwoCommunityNetwork(8, 1.0, 91);
  NetPlsaConfig config;
  config.num_clusters = 2;
  config.seed = 3;
  auto r = RunNetPlsa(fixture.dataset.network,
                      fixture.dataset.attributes[0], config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const double nmi = NormalizedMutualInformation(
      HardLabels(r->theta), fixture.dataset.labels.raw());
  EXPECT_GT(nmi, 0.8);
}

TEST(NetPlsaTest, ThetaOnSimplexIncludingTextFreeNodes) {
  auto fixture = MakeTwoCommunityNetwork(5, 0.5, 93);
  NetPlsaConfig config;
  config.num_clusters = 2;
  config.seed = 5;
  auto r = RunNetPlsa(fixture.dataset.network,
                      fixture.dataset.attributes[0], config);
  ASSERT_TRUE(r.ok());
  for (size_t v = 0; v < r->theta.rows(); ++v) {
    EXPECT_TRUE(IsOnSimplex(r->theta.RowVector(v), 1e-6)) << "node " << v;
  }
}

TEST(NetPlsaTest, BetaRowsAreDistributions) {
  auto fixture = MakeTwoCommunityNetwork(5, 1.0, 95);
  NetPlsaConfig config;
  config.num_clusters = 2;
  config.seed = 7;
  auto r = RunNetPlsa(fixture.dataset.network,
                      fixture.dataset.attributes[0], config);
  ASSERT_TRUE(r.ok());
  for (size_t k = 0; k < r->beta.rows(); ++k) {
    double total = 0.0;
    for (size_t l = 0; l < r->beta.cols(); ++l) total += r->beta(k, l);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(NetPlsaTest, LambdaZeroIsPurePlsa) {
  // With lambda = 0 and no text, theta must stay flat for text-free nodes
  // only via their own (absent) signal — tags get the uniform fallback.
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 97);
  NetPlsaConfig config;
  config.num_clusters = 2;
  config.lambda = 0.0;
  config.seed = 9;
  auto r = RunNetPlsa(fixture.dataset.network,
                      fixture.dataset.attributes[0], config);
  ASSERT_TRUE(r.ok());
  // Tags carry no text; with lambda = 0 they still take neighbor averages
  // (the only defined fallback), so simply require valid rows.
  for (NodeId tag : fixture.tags) {
    EXPECT_TRUE(IsOnSimplex(r->theta.RowVector(tag), 1e-6));
  }
}

TEST(NetPlsaTest, RejectsBadInput) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 99);
  NetPlsaConfig config;
  config.num_clusters = 2;
  config.lambda = 1.0;  // out of range
  EXPECT_FALSE(RunNetPlsa(fixture.dataset.network,
                          fixture.dataset.attributes[0], config)
                   .ok());
  config.lambda = 0.5;
  config.num_clusters = 1;
  EXPECT_FALSE(RunNetPlsa(fixture.dataset.network,
                          fixture.dataset.attributes[0], config)
                   .ok());
  Attribute numerical = Attribute::Numerical("x",
      fixture.dataset.network.num_nodes());
  config.num_clusters = 2;
  EXPECT_FALSE(RunNetPlsa(fixture.dataset.network, numerical, config).ok());
}

TEST(ITopicModelTest, RecoversCommunitiesWithFullText) {
  auto fixture = MakeTwoCommunityNetwork(8, 1.0, 101);
  ITopicModelConfig config;
  config.num_clusters = 2;
  config.seed = 11;
  auto r = RunITopicModel(fixture.dataset.network,
                          fixture.dataset.attributes[0], config);
  ASSERT_TRUE(r.ok());
  const double nmi = NormalizedMutualInformation(
      HardLabels(r->theta), fixture.dataset.labels.raw());
  EXPECT_GT(nmi, 0.8);
}

TEST(ITopicModelTest, PropagatesToTextFreeNodes) {
  auto fixture = MakeTwoCommunityNetwork(6, 1.0, 103);
  ITopicModelConfig config;
  config.num_clusters = 2;
  config.seed = 13;
  auto r = RunITopicModel(fixture.dataset.network,
                          fixture.dataset.attributes[0], config);
  ASSERT_TRUE(r.ok());
  // Tags have no text but link to their community's docs: their argmax
  // should match their docs'.
  const auto labels = HardLabels(r->theta);
  EXPECT_EQ(labels[fixture.tags[0]], labels[fixture.docs[0]]);
  EXPECT_EQ(labels[fixture.tags[1]], labels[fixture.docs[6]]);
}

TEST(ITopicModelTest, DeterministicGivenSeed) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 105);
  ITopicModelConfig config;
  config.num_clusters = 2;
  config.seed = 15;
  auto a = RunITopicModel(fixture.dataset.network,
                          fixture.dataset.attributes[0], config);
  auto b = RunITopicModel(fixture.dataset.network,
                          fixture.dataset.attributes[0], config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(a->theta, b->theta), 0.0);
}

TEST(ITopicModelTest, RejectsNegativeNeighborWeight) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 107);
  ITopicModelConfig config;
  config.num_clusters = 2;
  config.neighbor_weight = -1.0;
  EXPECT_FALSE(RunITopicModel(fixture.dataset.network,
                              fixture.dataset.attributes[0], config)
                   .ok());
}

TEST(TopicModelsTest, LogLikelihoodIsFinite) {
  auto fixture = MakeTwoCommunityNetwork(5, 0.8, 109);
  NetPlsaConfig np_config;
  np_config.num_clusters = 2;
  np_config.seed = 17;
  auto np = RunNetPlsa(fixture.dataset.network,
                       fixture.dataset.attributes[0], np_config);
  ASSERT_TRUE(np.ok());
  EXPECT_TRUE(std::isfinite(np->log_likelihood));

  ITopicModelConfig it_config;
  it_config.num_clusters = 2;
  it_config.seed = 19;
  auto it = RunITopicModel(fixture.dataset.network,
                           fixture.dataset.attributes[0], it_config);
  ASSERT_TRUE(it.ok());
  EXPECT_TRUE(std::isfinite(it->log_likelihood));
}

}  // namespace
}  // namespace genclus
