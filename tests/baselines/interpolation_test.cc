#include "baselines/interpolation.h"

#include <gtest/gtest.h>

#include <cmath>

namespace genclus {
namespace {

// Chain network A0 -> A1 -> A2 with one numerical attribute.
struct ChainFixture {
  Network net;
  Attribute attr = Attribute::Numerical("x", 3);

  ChainFixture() {
    Schema schema;
    auto a = schema.AddObjectType("A").value();
    auto r = schema.AddLinkType("next", a, a).value();
    NetworkBuilder builder(std::move(schema));
    NodeId n0 = builder.AddNode(a).value();
    NodeId n1 = builder.AddNode(a).value();
    NodeId n2 = builder.AddNode(a).value();
    EXPECT_TRUE(builder.AddLink(n0, n1, r, 1.0).ok());
    EXPECT_TRUE(builder.AddLink(n1, n2, r, 1.0).ok());
    net = std::move(builder).Build().value();
  }
};

TEST(InterpolationTest, OwnObservationsAveraged) {
  ChainFixture f;
  (void)f.attr.AddValue(2, 4.0);
  (void)f.attr.AddValue(2, 6.0);
  auto features = InterpolateNumericalAttributes(f.net, {&f.attr});
  ASSERT_TRUE(features.ok());
  // Node 2 has no out-links; only its own values count: mean 5.
  EXPECT_DOUBLE_EQ((*features)(2, 0), 5.0);
}

TEST(InterpolationTest, NeighborsFillMissingValues) {
  ChainFixture f;
  (void)f.attr.AddValue(1, 10.0);
  auto features = InterpolateNumericalAttributes(f.net, {&f.attr});
  ASSERT_TRUE(features.ok());
  // Node 0 has no observations but out-links to node 1.
  EXPECT_DOUBLE_EQ((*features)(0, 0), 10.0);
}

TEST(InterpolationTest, OwnAndNeighborObservationsPooled) {
  ChainFixture f;
  (void)f.attr.AddValue(0, 2.0);
  (void)f.attr.AddValue(1, 4.0);
  auto features = InterpolateNumericalAttributes(f.net, {&f.attr});
  ASSERT_TRUE(features.ok());
  // Node 0 pools its own 2.0 with neighbor 1's 4.0.
  EXPECT_DOUBLE_EQ((*features)(0, 0), 3.0);
}

TEST(InterpolationTest, GlobalMeanAsLastResort) {
  ChainFixture f;
  (void)f.attr.AddValue(0, 8.0);  // node 2 and its neighborhood are empty
  auto features = InterpolateNumericalAttributes(f.net, {&f.attr});
  ASSERT_TRUE(features.ok());
  // Node 2: no own values, no out-neighbors with values -> global mean 8.
  EXPECT_DOUBLE_EQ((*features)(2, 0), 8.0);
}

TEST(InterpolationTest, MultipleAttributesAsColumns) {
  ChainFixture f;
  Attribute second = Attribute::Numerical("y", 3);
  (void)f.attr.AddValue(0, 1.0);
  (void)second.AddValue(0, -1.0);
  auto features = InterpolateNumericalAttributes(f.net, {&f.attr, &second});
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->cols(), 2u);
  EXPECT_DOUBLE_EQ((*features)(0, 0), 1.0);
  EXPECT_DOUBLE_EQ((*features)(0, 1), -1.0);
}

TEST(InterpolationTest, RejectsCategoricalAttribute) {
  ChainFixture f;
  Attribute text = Attribute::Categorical("text", 4, 3);
  EXPECT_FALSE(InterpolateNumericalAttributes(f.net, {&text}).ok());
}

TEST(InterpolationTest, RejectsSizeMismatch) {
  ChainFixture f;
  Attribute wrong = Attribute::Numerical("w", 7);
  EXPECT_FALSE(InterpolateNumericalAttributes(f.net, {&wrong}).ok());
}

TEST(StandardizeTest, ColumnsBecomeZeroMeanUnitVariance) {
  Matrix m = {{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}};
  StandardizeColumns(&m);
  for (size_t c = 0; c < 2; ++c) {
    double mean = 0.0;
    double var = 0.0;
    for (size_t r = 0; r < 3; ++r) mean += m(r, c);
    mean /= 3.0;
    for (size_t r = 0; r < 3; ++r) {
      var += (m(r, c) - mean) * (m(r, c) - mean);
    }
    var /= 3.0;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

TEST(StandardizeTest, ConstantColumnBecomesZero) {
  Matrix m = {{5.0}, {5.0}, {5.0}};
  StandardizeColumns(&m);
  for (size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(m(r, 0), 0.0);
}

}  // namespace
}  // namespace genclus
