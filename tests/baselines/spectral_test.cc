#include "baselines/spectral.h"

#include <gtest/gtest.h>

#include "baselines/interpolation.h"
#include "common/random.h"
#include "eval/nmi.h"

namespace genclus {
namespace {

// Two cliques of size `m` joined by a single bridge edge; every node has a
// 1-D feature separated by community.
struct TwoCliqueFixture {
  Network net;
  Matrix features;
  std::vector<uint32_t> truth;

  explicit TwoCliqueFixture(size_t m, double feature_gap = 4.0,
                            uint64_t seed = 3) {
    Schema schema;
    auto a = schema.AddObjectType("A").value();
    auto r = schema.AddLinkType("edge", a, a).value();
    NetworkBuilder builder(std::move(schema));
    const size_t n = 2 * m;
    for (size_t i = 0; i < n; ++i) (void)builder.AddNode(a);
    auto add_both = [&](NodeId u, NodeId v) {
      EXPECT_TRUE(builder.AddLink(u, v, r, 1.0).ok());
      EXPECT_TRUE(builder.AddLink(v, u, r, 1.0).ok());
    };
    for (size_t side = 0; side < 2; ++side) {
      const size_t base = side * m;
      for (size_t i = 0; i < m; ++i) {
        for (size_t j = i + 1; j < m; ++j) {
          add_both(static_cast<NodeId>(base + i),
                   static_cast<NodeId>(base + j));
        }
      }
    }
    add_both(0, static_cast<NodeId>(m));  // bridge
    net = std::move(builder).Build().value();

    Rng rng(seed);
    features = Matrix(n, 1);
    truth.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
      const bool second = i >= m;
      truth[i] = second ? 1 : 0;
      features(i, 0) = rng.Gaussian(second ? feature_gap : 0.0, 0.3);
    }
    StandardizeColumns(&features);
  }
};

TEST(SpectralTest, SymmetrizedAdjacencyIsSymmetric) {
  TwoCliqueFixture f(4);
  Matrix w = SymmetrizedAdjacency(f.net);
  for (size_t i = 0; i < w.rows(); ++i) {
    for (size_t j = 0; j < w.cols(); ++j) {
      EXPECT_DOUBLE_EQ(w(i, j), w(j, i));
    }
  }
}

TEST(SpectralTest, ModularityRowSumsVanish) {
  // Rows of B = W - d d^T / 2m sum to zero.
  TwoCliqueFixture f(4);
  Matrix b = ModularityMatrix(SymmetrizedAdjacency(f.net));
  for (size_t i = 0; i < b.rows(); ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < b.cols(); ++j) row_sum += b(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-9);
  }
}

TEST(SpectralTest, SeparatesTwoCliquesWithFeatures) {
  TwoCliqueFixture f(8);
  SpectralCombineConfig config;
  config.num_clusters = 2;
  config.seed = 7;
  auto r = RunSpectralCombine(f.net, f.features, config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(NormalizedMutualInformation(r->labels, f.truth), 0.9);
}

TEST(SpectralTest, NetworkOnlyStillSeparatesCliques) {
  TwoCliqueFixture f(8, /*feature_gap=*/0.0);
  SpectralCombineConfig config;
  config.num_clusters = 2;
  config.network_weight = 1.0;  // ignore (uninformative) features
  config.seed = 9;
  auto r = RunSpectralCombine(f.net, f.features, config);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(NormalizedMutualInformation(r->labels, f.truth), 0.9);
}

TEST(SpectralTest, FeaturesOnlyStillSeparateBlobs) {
  TwoCliqueFixture f(8, /*feature_gap=*/6.0);
  SpectralCombineConfig config;
  config.num_clusters = 2;
  config.network_weight = 0.0;  // ignore links
  config.seed = 11;
  auto r = RunSpectralCombine(f.net, f.features, config);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(NormalizedMutualInformation(r->labels, f.truth), 0.9);
}

TEST(SpectralTest, EmbeddingShape) {
  TwoCliqueFixture f(5);
  SpectralCombineConfig config;
  config.num_clusters = 2;
  config.seed = 13;
  auto r = RunSpectralCombine(f.net, f.features, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->embedding.rows(), f.net.num_nodes());
  EXPECT_EQ(r->embedding.cols(), 2u);
  EXPECT_EQ(r->eigenvalues.size(), 2u);
  EXPECT_GE(r->eigenvalues[0], r->eigenvalues[1]);
}

TEST(SpectralTest, RejectsBadConfig) {
  TwoCliqueFixture f(4);
  SpectralCombineConfig config;
  config.num_clusters = 2;
  config.network_weight = 1.5;
  EXPECT_FALSE(RunSpectralCombine(f.net, f.features, config).ok());
  config.network_weight = 0.5;
  config.num_clusters = 1;
  EXPECT_FALSE(RunSpectralCombine(f.net, f.features, config).ok());
  Matrix wrong_rows(3, 1);
  config.num_clusters = 2;
  EXPECT_FALSE(RunSpectralCombine(f.net, wrong_rows, config).ok());
}

}  // namespace
}  // namespace genclus
