#include "baselines/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "eval/nmi.h"

namespace genclus {
namespace {

// Two well-separated blobs of `per_blob` points each in 2-D.
Matrix TwoBlobs(size_t per_blob, double separation, Rng* rng,
                std::vector<uint32_t>* truth) {
  Matrix points(per_blob * 2, 2);
  truth->assign(per_blob * 2, 0);
  for (size_t i = 0; i < per_blob * 2; ++i) {
    const bool second = i >= per_blob;
    (*truth)[i] = second ? 1 : 0;
    points(i, 0) = rng->Gaussian(second ? separation : 0.0, 0.3);
    points(i, 1) = rng->Gaussian(second ? separation : 0.0, 0.3);
  }
  return points;
}

TEST(KMeansTest, SeparatesTwoBlobs) {
  Rng rng(5);
  std::vector<uint32_t> truth;
  Matrix points = TwoBlobs(50, 10.0, &rng, &truth);
  KMeansConfig config;
  config.num_clusters = 2;
  config.seed = 3;
  auto r = RunKMeans(points, config);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(NormalizedMutualInformation(r->labels, truth), 1.0, 1e-9);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Rng rng(7);
  std::vector<uint32_t> truth;
  Matrix points = TwoBlobs(40, 5.0, &rng, &truth);
  double prev = std::numeric_limits<double>::infinity();
  for (size_t k = 1; k <= 4; ++k) {
    KMeansConfig config;
    config.num_clusters = k;
    config.num_restarts = 5;
    config.seed = 11;
    auto r = RunKMeans(points, config);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r->inertia, prev + 1e-9) << "k=" << k;
    prev = r->inertia;
  }
}

TEST(KMeansTest, LabelsInRangeAndCentersFinite) {
  Rng rng(9);
  std::vector<uint32_t> truth;
  Matrix points = TwoBlobs(30, 3.0, &rng, &truth);
  KMeansConfig config;
  config.num_clusters = 3;
  config.seed = 13;
  auto r = RunKMeans(points, config);
  ASSERT_TRUE(r.ok());
  for (uint32_t l : r->labels) EXPECT_LT(l, 3u);
  for (size_t c = 0; c < 3; ++c) {
    for (size_t d = 0; d < 2; ++d) {
      EXPECT_TRUE(std::isfinite(r->centers(c, d)));
    }
  }
}

TEST(KMeansTest, DeterministicGivenSeed) {
  Rng rng(15);
  std::vector<uint32_t> truth;
  Matrix points = TwoBlobs(25, 4.0, &rng, &truth);
  KMeansConfig config;
  config.num_clusters = 2;
  config.seed = 21;
  auto a = RunKMeans(points, config);
  auto b = RunKMeans(points, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->labels, b->labels);
}

TEST(KMeansTest, RestartsNeverHurt) {
  Rng rng(17);
  std::vector<uint32_t> truth;
  Matrix points = TwoBlobs(30, 2.0, &rng, &truth);
  KMeansConfig one;
  one.num_clusters = 4;
  one.num_restarts = 1;
  one.seed = 23;
  KMeansConfig many = one;
  many.num_restarts = 10;
  auto r1 = RunKMeans(points, one);
  auto r10 = RunKMeans(points, many);
  ASSERT_TRUE(r1.ok() && r10.ok());
  EXPECT_LE(r10->inertia, r1->inertia + 1e-9);
}

TEST(KMeansTest, RejectsBadInput) {
  Matrix points(3, 2);
  KMeansConfig config;
  config.num_clusters = 5;  // more clusters than points
  EXPECT_FALSE(RunKMeans(points, config).ok());
  config.num_clusters = 0;
  EXPECT_FALSE(RunKMeans(points, config).ok());
  Matrix empty_dim(3, 0);
  config.num_clusters = 2;
  EXPECT_FALSE(RunKMeans(empty_dim, config).ok());
}

TEST(KMeansTest, ExactClusterCountIsValid) {
  // n == k: every point its own cluster; inertia 0.
  Matrix points = {{0.0, 0.0}, {5.0, 0.0}, {0.0, 5.0}};
  KMeansConfig config;
  config.num_clusters = 3;
  config.seed = 29;
  auto r = RunKMeans(points, config);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->inertia, 0.0, 1e-12);
}

TEST(KMeansTest, DuplicatePointsHandled) {
  Matrix points(10, 2, 1.0);  // all identical
  KMeansConfig config;
  config.num_clusters = 2;
  config.seed = 31;
  auto r = RunKMeans(points, config);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->inertia, 0.0, 1e-12);
}

}  // namespace
}  // namespace genclus
