#include "prob/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "prob/special_functions.h"

namespace genclus {
namespace {

TEST(CategoricalTest, UniformConstruction) {
  CategoricalDistribution d(4);
  for (size_t t = 0; t < 4; ++t) EXPECT_DOUBLE_EQ(d.prob(t), 0.25);
}

TEST(CategoricalTest, FromProbabilitiesNormalizes) {
  auto d = CategoricalDistribution::FromProbabilities({2.0, 6.0});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->prob(0), 0.25);
  EXPECT_DOUBLE_EQ(d->prob(1), 0.75);
}

TEST(CategoricalTest, FromProbabilitiesRejectsBadInput) {
  EXPECT_FALSE(CategoricalDistribution::FromProbabilities({}).ok());
  EXPECT_FALSE(CategoricalDistribution::FromProbabilities({-1.0, 2.0}).ok());
  EXPECT_FALSE(CategoricalDistribution::FromProbabilities({0.0, 0.0}).ok());
}

TEST(CategoricalTest, FromCountsWithSmoothing) {
  auto d = CategoricalDistribution::FromCounts({3.0, 0.0, 1.0}, 1.0);
  ASSERT_TRUE(d.ok());
  // (3+1)/(4+3), (0+1)/7, (1+1)/7.
  EXPECT_NEAR(d->prob(0), 4.0 / 7.0, 1e-12);
  EXPECT_NEAR(d->prob(1), 1.0 / 7.0, 1e-12);
  EXPECT_NEAR(d->prob(2), 2.0 / 7.0, 1e-12);
}

TEST(CategoricalTest, ZeroCountsNeedSmoothing) {
  EXPECT_FALSE(CategoricalDistribution::FromCounts({0.0, 0.0}, 0.0).ok());
  EXPECT_TRUE(CategoricalDistribution::FromCounts({0.0, 0.0}, 0.5).ok());
}

TEST(CategoricalTest, LogProbConsistent) {
  auto d = CategoricalDistribution::FromProbabilities({0.25, 0.75});
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->LogProb(1), std::log(0.75), 1e-12);
}

TEST(CategoricalTest, ZeroProbabilityTermIsNegInf) {
  auto d = CategoricalDistribution::FromProbabilities({1.0, 0.0});
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(std::isinf(d->LogProb(1)));
  EXPECT_LT(d->LogProb(1), 0.0);
}

TEST(CategoricalTest, SampleFrequenciesMatch) {
  auto d = CategoricalDistribution::FromProbabilities({0.2, 0.8});
  ASSERT_TRUE(d.ok());
  Rng rng(31);
  int count1 = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (d->Sample(&rng) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.8, 0.02);
}

TEST(GaussianTest, PdfMatchesClosedForm) {
  GaussianDistribution g(0.0, 1.0);
  EXPECT_NEAR(g.Pdf(0.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-12);
  EXPECT_NEAR(g.LogPdf(0.0), -0.5 * std::log(2.0 * M_PI), 1e-12);
}

TEST(GaussianTest, NonUnitParameters) {
  GaussianDistribution g(2.0, 4.0);  // mean 2, variance 4
  EXPECT_DOUBLE_EQ(g.stddev(), 2.0);
  // Pdf at the mean = 1/(sqrt(2 pi) sigma).
  EXPECT_NEAR(g.Pdf(2.0), 1.0 / (std::sqrt(2.0 * M_PI) * 2.0), 1e-12);
  // Symmetry.
  EXPECT_NEAR(g.Pdf(1.0), g.Pdf(3.0), 1e-15);
}

TEST(GaussianTest, SampleMoments) {
  GaussianDistribution g(-1.0, 0.25);
  Rng rng(37);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = g.Sample(&rng);
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, -1.0, 0.02);
  EXPECT_NEAR(sum2 / n - (sum / n) * (sum / n), 0.25, 0.02);
}

TEST(GaussianTest, FitWeightedRecoversMoments) {
  std::vector<double> values = {1.0, 2.0, 3.0};
  std::vector<double> weights = {1.0, 1.0, 1.0};
  auto g = GaussianDistribution::FitWeighted(values, weights);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g->mean(), 2.0, 1e-12);
  EXPECT_NEAR(g->variance(), 2.0 / 3.0, 1e-12);
}

TEST(GaussianTest, FitWeightedRespectsWeights) {
  // All the mass on the last value.
  auto g = GaussianDistribution::FitWeighted({1.0, 5.0}, {0.0, 2.0}, 1e-8);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g->mean(), 5.0, 1e-12);
  EXPECT_NEAR(g->variance(), 1e-8, 1e-15);  // floored
}

TEST(GaussianTest, FitWeightedRejectsBadInput) {
  EXPECT_FALSE(GaussianDistribution::FitWeighted({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(GaussianDistribution::FitWeighted({1.0}, {-1.0}).ok());
  EXPECT_FALSE(GaussianDistribution::FitWeighted({1.0}, {0.0}).ok());
}

TEST(DirichletTest, CreateValidation) {
  EXPECT_TRUE(DirichletDistribution::Create({1.0, 2.0}).ok());
  EXPECT_FALSE(DirichletDistribution::Create({}).ok());
  EXPECT_FALSE(DirichletDistribution::Create({1.0, 0.0}).ok());
  EXPECT_FALSE(DirichletDistribution::Create({1.0, -2.0}).ok());
}

TEST(DirichletTest, LogNormalizerMatchesBeta) {
  auto d = DirichletDistribution::Create({2.0, 3.0, 4.0});
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->LogNormalizer(), LogMultivariateBeta({2.0, 3.0, 4.0}),
              1e-12);
}

TEST(DirichletTest, UniformDirichletPdfIsConstant) {
  auto d = DirichletDistribution::Create({1.0, 1.0, 1.0});
  ASSERT_TRUE(d.ok());
  // Density = 1/B(1,1,1) = Gamma(3) = 2 everywhere on the simplex.
  EXPECT_NEAR(std::exp(d->LogPdf({0.3, 0.3, 0.4})), 2.0, 1e-10);
  EXPECT_NEAR(std::exp(d->LogPdf({0.8, 0.1, 0.1})), 2.0, 1e-10);
}

TEST(DirichletTest, MeanIsNormalizedAlpha) {
  auto d = DirichletDistribution::Create({1.0, 3.0});
  ASSERT_TRUE(d.ok());
  auto mean = d->Mean();
  EXPECT_NEAR(mean[0], 0.25, 1e-12);
  EXPECT_NEAR(mean[1], 0.75, 1e-12);
}

TEST(DirichletTest, SamplesOnSimplexWithRightMean) {
  auto d = DirichletDistribution::Create({2.0, 5.0, 3.0});
  ASSERT_TRUE(d.ok());
  Rng rng(41);
  std::vector<double> avg(3, 0.0);
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    auto s = d->Sample(&rng);
    double total = std::accumulate(s.begin(), s.end(), 0.0);
    ASSERT_NEAR(total, 1.0, 1e-9);
    for (size_t k = 0; k < 3; ++k) avg[k] += s[k];
  }
  for (size_t k = 0; k < 3; ++k) avg[k] /= n;
  EXPECT_NEAR(avg[0], 0.2, 0.02);
  EXPECT_NEAR(avg[1], 0.5, 0.02);
  EXPECT_NEAR(avg[2], 0.3, 0.02);
}

TEST(DirichletTest, PdfIntegratesToOneOnCoarseGrid) {
  // 2-simplex: integrate over theta_1 on [0,1] with theta_2 = 1 - theta_1.
  auto d = DirichletDistribution::Create({2.0, 3.0});
  ASSERT_TRUE(d.ok());
  const int steps = 20000;
  double acc = 0.0;
  for (int i = 1; i < steps; ++i) {
    const double t = static_cast<double>(i) / steps;
    acc += std::exp(d->LogPdf({t, 1.0 - t})) / steps;
  }
  EXPECT_NEAR(acc, 1.0, 1e-3);
}

}  // namespace
}  // namespace genclus
