#include "prob/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

namespace genclus {
namespace {

TEST(NormalizeTest, BasicNormalization) {
  std::vector<double> v = {1.0, 3.0};
  NormalizeToSimplex(&v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(NormalizeTest, ZeroVectorBecomesUniform) {
  std::vector<double> v = {0.0, 0.0, 0.0, 0.0};
  NormalizeToSimplex(&v);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.25);
}

TEST(NormalizeTest, NegativeOrNanBecomesUniform) {
  std::vector<double> v = {1.0, -0.5};
  NormalizeToSimplex(&v);
  EXPECT_DOUBLE_EQ(v[0], 0.5);
  std::vector<double> w = {std::nan(""), 1.0};
  NormalizeToSimplex(&w);
  EXPECT_DOUBLE_EQ(w[0], 0.5);
}

TEST(ClampTest, FloorsTinyComponents) {
  std::vector<double> v = {1.0, 0.0};
  ClampToSimplex(&v, 1e-6);
  EXPECT_GT(v[1], 0.0);
  EXPECT_NEAR(v[0] + v[1], 1.0, 1e-15);
  EXPECT_TRUE(IsOnSimplex(v));
}

TEST(ClampTest, NoopWhenAlreadyAboveFloor) {
  std::vector<double> v = {0.4, 0.6};
  ClampToSimplex(&v, 1e-6);
  EXPECT_DOUBLE_EQ(v[0], 0.4);
  EXPECT_DOUBLE_EQ(v[1], 0.6);
}

TEST(IsOnSimplexTest, AcceptsAndRejects) {
  EXPECT_TRUE(IsOnSimplex({0.5, 0.5}));
  EXPECT_TRUE(IsOnSimplex({1.0, 0.0}));
  EXPECT_FALSE(IsOnSimplex({0.6, 0.6}));
  EXPECT_FALSE(IsOnSimplex({1.2, -0.2}));
}

TEST(EntropyTest, UniformIsLogK) {
  EXPECT_NEAR(Entropy({0.25, 0.25, 0.25, 0.25}), std::log(4.0), 1e-12);
}

TEST(EntropyTest, PointMassIsZero) {
  EXPECT_DOUBLE_EQ(Entropy({1.0, 0.0, 0.0}), 0.0);
}

TEST(CrossEntropyTest, EqualsEntropyWhenIdentical) {
  std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_NEAR(CrossEntropy(p, p), Entropy(p), 1e-12);
}

TEST(CrossEntropyTest, ExceedsEntropyOtherwise) {
  // Gibbs inequality: H(q,p) >= H(q).
  std::vector<double> q = {0.7, 0.2, 0.1};
  std::vector<double> p = {0.1, 0.2, 0.7};
  EXPECT_GT(CrossEntropy(q, p), Entropy(q));
}

TEST(CrossEntropyTest, AsymmetricInArguments) {
  std::vector<double> q = {0.9, 0.1};
  std::vector<double> p = {0.5, 0.5};
  EXPECT_NE(CrossEntropy(q, p), CrossEntropy(p, q));
}

TEST(CrossEntropyTest, FiniteWhenPHasZeros) {
  std::vector<double> q = {0.5, 0.5};
  std::vector<double> p = {1.0, 0.0};
  EXPECT_TRUE(std::isfinite(CrossEntropy(q, p)));
}

TEST(PaperExampleTest, FeatureFunctionValuesFromFigure4) {
  // The paper's Fig. 4 worked example: membership vectors of objects 1, 3,
  // 4, 5 and the cross entropies behind f(<1,3>), f(<1,4>), f(<1,5>).
  // Object 1 (the paper node whose out-links are drawn) carries
  // (5/6, 1/12, 1/12); object 3 carries (7/8, 1/16, 1/16).
  std::vector<double> theta1 = {5.0 / 6, 1.0 / 12, 1.0 / 12};
  std::vector<double> theta3 = {7.0 / 8, 1.0 / 16, 1.0 / 16};
  std::vector<double> theta4 = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  std::vector<double> theta5 = {1.0 / 16, 1.0 / 16, 7.0 / 8};
  // f(<1,j>) = -gamma * H(theta_j, theta_1); the paper reports
  // 0.4701, 1.7174, 2.3410 for j = 3, 4, 5.
  EXPECT_NEAR(CrossEntropy(theta3, theta1), 0.4701, 5e-4);
  EXPECT_NEAR(CrossEntropy(theta4, theta1), 1.7174, 5e-4);
  EXPECT_NEAR(CrossEntropy(theta5, theta1), 2.3410, 5e-4);
  // And f(<4,1>) uses H(theta_1, theta_4) = 1.0986 (= log 3).
  EXPECT_NEAR(CrossEntropy(theta1, theta4), 1.0986, 5e-4);
}

TEST(KlDivergenceTest, NonNegativeAndZeroIffEqual) {
  std::vector<double> p = {0.3, 0.7};
  std::vector<double> q = {0.6, 0.4};
  EXPECT_GT(KlDivergence(q, p), 0.0);
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-12);
}

TEST(CosineTest, IdenticalAndOrthogonal) {
  EXPECT_NEAR(CosineSimilarity({1.0, 0.0}, {2.0, 0.0}), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1.0, 0.0}, {0.0, 1.0}), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0.0, 0.0}, {1.0, 0.0}), 0.0);
}

TEST(EuclideanTest, KnownDistance) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0.0, 0.0}, {3.0, 4.0}), 5.0);
}

TEST(ArgMaxTest, FirstOfTiesWins) {
  EXPECT_EQ(ArgMax({0.1, 0.5, 0.4}), 1u);
  EXPECT_EQ(ArgMax({0.5, 0.5}), 0u);
  EXPECT_EQ(ArgMax({2.0}), 0u);
}

}  // namespace
}  // namespace genclus
