#include "prob/special_functions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace genclus {
namespace {

// Euler-Mascheroni constant.
constexpr double kEulerGamma = 0.57721566490153286;

TEST(DigammaTest, KnownValues) {
  // psi(1) = -gamma.
  EXPECT_NEAR(Digamma(1.0), -kEulerGamma, 1e-12);
  // psi(2) = 1 - gamma.
  EXPECT_NEAR(Digamma(2.0), 1.0 - kEulerGamma, 1e-12);
  // psi(1/2) = -gamma - 2 ln 2.
  EXPECT_NEAR(Digamma(0.5), -kEulerGamma - 2.0 * std::log(2.0), 1e-12);
}

TEST(DigammaTest, ReferenceValuePins) {
  // High-precision anchors so the strength learner's fused gradient path
  // cannot silently drift: psi(n) = -gamma + H_{n-1} (exact harmonic
  // numbers), and Gauss's theorem for psi(1/4).
  EXPECT_NEAR(Digamma(3.0), -kEulerGamma + 1.5, 1e-13);
  EXPECT_NEAR(Digamma(4.0), -kEulerGamma + 11.0 / 6.0, 1e-13);
  EXPECT_NEAR(Digamma(10.0), -kEulerGamma + 7129.0 / 2520.0, 1e-13);
  EXPECT_NEAR(Digamma(0.25),
              -kEulerGamma - 3.0 * std::log(2.0) - M_PI / 2.0, 1e-12);
}

TEST(DigammaTest, RecurrenceHolds) {
  // psi(x+1) = psi(x) + 1/x across a range of x.
  for (double x : {0.1, 0.7, 1.3, 2.9, 5.5, 10.0, 42.0}) {
    EXPECT_NEAR(Digamma(x + 1.0), Digamma(x) + 1.0 / x, 1e-11) << "x=" << x;
  }
}

TEST(DigammaTest, MatchesNumericalDerivativeOfLogGamma) {
  const double h = 1e-6;
  for (double x : {0.5, 1.0, 2.5, 7.0, 20.0}) {
    const double numeric = (LogGamma(x + h) - LogGamma(x - h)) / (2.0 * h);
    EXPECT_NEAR(Digamma(x), numeric, 1e-6) << "x=" << x;
  }
}

TEST(DigammaTest, AsymptoticallyLogX) {
  const double x = 1e6;
  EXPECT_NEAR(Digamma(x), std::log(x), 1e-6);
}

TEST(TrigammaTest, KnownValues) {
  // psi'(1) = pi^2/6.
  EXPECT_NEAR(Trigamma(1.0), M_PI * M_PI / 6.0, 1e-11);
  // psi'(1/2) = pi^2/2.
  EXPECT_NEAR(Trigamma(0.5), M_PI * M_PI / 2.0, 1e-11);
}

TEST(TrigammaTest, ReferenceValuePins) {
  // psi'(n) = pi^2/6 - sum_{k=1}^{n-1} 1/k^2, and psi'(1/4) = pi^2 + 8G
  // (G = Catalan's constant). Anchors for the fused Hessian path.
  constexpr double kCatalan = 0.91596559417721901505;
  EXPECT_NEAR(Trigamma(2.0), M_PI * M_PI / 6.0 - 1.0, 1e-12);
  EXPECT_NEAR(Trigamma(3.0), M_PI * M_PI / 6.0 - 1.25, 1e-12);
  double inverse_squares = 0.0;
  for (int k = 1; k <= 9; ++k) inverse_squares += 1.0 / (k * k);
  EXPECT_NEAR(Trigamma(10.0), M_PI * M_PI / 6.0 - inverse_squares, 1e-12);
  EXPECT_NEAR(Trigamma(0.25), M_PI * M_PI + 8.0 * kCatalan, 1e-10);
}

TEST(TrigammaTest, RecurrenceHolds) {
  // psi'(x+1) = psi'(x) - 1/x^2.
  for (double x : {0.2, 1.1, 3.3, 8.0, 25.0}) {
    EXPECT_NEAR(Trigamma(x + 1.0), Trigamma(x) - 1.0 / (x * x), 1e-11)
        << "x=" << x;
  }
}

TEST(TrigammaTest, MatchesNumericalDerivativeOfDigamma) {
  const double h = 1e-6;
  for (double x : {0.8, 2.0, 6.0, 15.0}) {
    const double numeric = (Digamma(x + h) - Digamma(x - h)) / (2.0 * h);
    EXPECT_NEAR(Trigamma(x), numeric, 1e-5) << "x=" << x;
  }
}

TEST(TrigammaTest, PositiveEverywhere) {
  for (double x : {0.01, 0.5, 1.0, 10.0, 1000.0}) {
    EXPECT_GT(Trigamma(x), 0.0) << "x=" << x;
  }
}

TEST(LogMultivariateBetaTest, MatchesBetaFunctionForTwo) {
  // B(a, b) = Gamma(a) Gamma(b) / Gamma(a + b).
  const double a = 2.5;
  const double b = 3.5;
  const double expected =
      std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
  EXPECT_NEAR(LogMultivariateBeta({a, b}), expected, 1e-12);
}

TEST(LogMultivariateBetaTest, UniformDirichletNormalizer) {
  // B(1,...,1) over K dims = 1 / Gamma(K) ... actually = Gamma(1)^K /
  // Gamma(K) = 1 / (K-1)!.
  EXPECT_NEAR(LogMultivariateBeta({1.0, 1.0, 1.0, 1.0}),
              -std::lgamma(4.0), 1e-12);
}

TEST(LogSumExpTest, BasicValues) {
  EXPECT_NEAR(LogSumExp({0.0, 0.0}), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogSumExp({1.0}), 1.0, 1e-12);
}

TEST(LogSumExpTest, StableForLargeMagnitudes) {
  // Without max-shifting these would overflow / underflow.
  EXPECT_NEAR(LogSumExp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogSumExp({-1000.0, -1000.0}), -1000.0 + std::log(2.0), 1e-9);
  // A dominated term contributes nothing measurable.
  EXPECT_NEAR(LogSumExp({0.0, -1000.0}), 0.0, 1e-12);
}

TEST(LogSumExpTest, EmptyIsNegativeInfinity) {
  EXPECT_EQ(LogSumExp({}), -std::numeric_limits<double>::infinity());
}

TEST(LogAddExpTest, MatchesLogSumExp) {
  EXPECT_NEAR(LogAddExp(1.0, 2.0), LogSumExp({1.0, 2.0}), 1e-12);
  EXPECT_NEAR(LogAddExp(-50.0, -51.0), LogSumExp({-50.0, -51.0}), 1e-12);
}

TEST(LogAddExpTest, InfinityHandling) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(LogAddExp(-inf, 3.0), 3.0);
  EXPECT_EQ(LogAddExp(-inf, -inf), -inf);
}

// Property sweep: LogSumExp equals the naive sum where the naive sum is
// representable.
class LogSumExpPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(LogSumExpPropertyTest, AgreesWithNaive) {
  const double shift = GetParam();
  std::vector<double> x = {shift, shift - 1.0, shift + 0.5, shift - 3.0};
  double naive = 0.0;
  for (double v : x) naive += std::exp(v);
  EXPECT_NEAR(LogSumExp(x), std::log(naive), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shifts, LogSumExpPropertyTest,
                         ::testing::Values(-5.0, -1.0, 0.0, 1.0, 5.0, 20.0));

}  // namespace
}  // namespace genclus
