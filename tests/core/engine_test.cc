// Engine serving surface: Create validation, Infer/InferBatch equivalence
// with the per-object InferMembership path, determinism across thread
// counts, per-query error isolation, and the full train → save → load →
// serve round trip reproducing post-fit inference byte-for-byte.
#include "core/engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/model_io.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = MakeTwoCommunityNetwork(8, 1.0, 401);
    FitOptions options;
    options.attributes = {"text"};
    options.config = testing::PlantedFixtureConfig(402);
    auto fit = Engine::Fit(fixture_.dataset, options);
    ASSERT_TRUE(fit.ok()) << fit.status().ToString();
    model_ = std::move(fit).value().model;
  }

  Result<Engine> MakeEngine(size_t num_threads) {
    EngineOptions options;
    options.num_threads = num_threads;
    return Engine::Create(&fixture_.dataset.network, model_, options);
  }

  // A batch mixing link-only, text-only and combined queries for both
  // communities.
  std::vector<NewObjectQuery> MixedBatch() const {
    std::vector<NewObjectQuery> queries;
    {
      NewObjectQuery q;  // links into community 0
      for (int i = 0; i < 3; ++i) {
        q.links.push_back({fixture_.docs[i], fixture_.doc_doc, 1.0});
      }
      queries.push_back(std::move(q));
    }
    {
      NewObjectQuery q;  // community-1 text only
      q.observations.push_back(
          NewObjectObservation::Categorical(0, /*term=*/2, /*count=*/3.0));
      q.observations.push_back(
          NewObjectObservation::Categorical(0, /*term=*/3));
      queries.push_back(std::move(q));
    }
    {
      NewObjectQuery q;  // combined evidence
      q.links.push_back({fixture_.docs[0], fixture_.doc_doc, 2.0});
      q.observations.push_back(
          NewObjectObservation::Categorical(0, /*term=*/0, /*count=*/2.0));
      queries.push_back(std::move(q));
    }
    {
      NewObjectQuery q;  // no evidence: uniform
      queries.push_back(std::move(q));
    }
    return queries;
  }

  testing::TwoCommunityNetwork fixture_;
  Model model_;
};

TEST_F(EngineFixture, FitReportSplitsTimeByPhase) {
  FitOptions options;
  options.attributes = {"text"};
  options.config = testing::PlantedFixtureConfig(402);
  options.config.num_threads = 2;  // exercise the pooled γ-step wiring
  auto fit = Engine::Fit(fixture_.dataset, options);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  const FitReport& report = fit->report;
  // The per-phase totals are the sums over the trace, and the phases are
  // contained in the total wall-clock.
  double em = 0.0;
  double strength = 0.0;
  for (const OuterIterationRecord& record : report.trace) {
    em += record.em_seconds;
    strength += record.strength_seconds;
  }
  EXPECT_DOUBLE_EQ(report.em_seconds, em);
  EXPECT_DOUBLE_EQ(report.strength_seconds, strength);
  EXPECT_GT(report.em_seconds, 0.0);
  EXPECT_GT(report.strength_seconds, 0.0);
  EXPECT_LE(report.em_seconds + report.strength_seconds,
            report.total_seconds);
}

TEST_F(EngineFixture, CreateRejectsMismatchedModel) {
  EXPECT_FALSE(Engine::Create(nullptr, model_).ok());

  Model wrong_nodes = model_;
  wrong_nodes.theta = Matrix(3, model_.num_clusters(), 0.5);
  EXPECT_FALSE(
      Engine::Create(&fixture_.dataset.network, wrong_nodes).ok());

  Model wrong_links = model_;
  wrong_links.link_types[0] = "renamed";
  EXPECT_FALSE(
      Engine::Create(&fixture_.dataset.network, wrong_links).ok());

  Model missing_gamma = model_;
  missing_gamma.gamma.pop_back();
  missing_gamma.link_types.pop_back();
  EXPECT_FALSE(
      Engine::Create(&fixture_.dataset.network, missing_gamma).ok());
}

TEST_F(EngineFixture, CreateRejectsBadOptions) {
  EngineOptions options;
  options.inference_iterations = 0;
  EXPECT_FALSE(
      Engine::Create(&fixture_.dataset.network, model_, options).ok());
  options = EngineOptions();
  options.theta_floor = 0.0;
  EXPECT_FALSE(
      Engine::Create(&fixture_.dataset.network, model_, options).ok());
}

TEST_F(EngineFixture, InferBatchMatchesPerObjectInferMembership) {
  auto engine = MakeEngine(2);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const auto queries = MixedBatch();
  const auto batch = engine->InferBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << "query " << i;
    auto direct = InferMembership(fixture_.dataset.network, model_,
                                  queries[i].links,
                                  queries[i].observations);
    ASSERT_TRUE(direct.ok());
    // Exact equality: the batch path runs the identical fold-in update.
    EXPECT_EQ(*batch[i], *direct) << "query " << i;
  }
}

TEST_F(EngineFixture, InferBatchDeterministicAcrossThreadCounts) {
  const auto queries = MixedBatch();
  std::vector<std::vector<double>> reference;
  for (size_t num_threads : {1u, 2u, 4u, 8u}) {
    auto engine = MakeEngine(num_threads);
    ASSERT_TRUE(engine.ok());
    EXPECT_EQ(engine->num_threads(), num_threads);
    const auto batch = engine->InferBatch(queries);
    ASSERT_EQ(batch.size(), queries.size());
    if (reference.empty()) {
      for (const auto& r : batch) {
        ASSERT_TRUE(r.ok());
        reference.push_back(*r);
      }
      continue;
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(batch[i].ok());
      EXPECT_EQ(*batch[i], reference[i])
          << "thread count " << num_threads << " changed query " << i;
    }
  }
}

TEST_F(EngineFixture, InvalidQueriesFailAloneWithoutPoisoningTheBatch) {
  auto engine = MakeEngine(4);
  ASSERT_TRUE(engine.ok());
  std::vector<NewObjectQuery> queries = MixedBatch();  // 4 valid queries
  {
    NewObjectQuery q;  // out-of-range target node
    q.links.push_back({static_cast<NodeId>(999999), fixture_.doc_doc, 1.0});
    queries.insert(queries.begin() + 1, std::move(q));
  }
  {
    NewObjectQuery q;  // unknown attribute id
    q.observations.push_back(NewObjectObservation::Categorical(42, 0));
    queries.push_back(std::move(q));
  }
  {
    NewObjectQuery q;  // unknown link type
    q.links.push_back({fixture_.docs[0], 99, 1.0});
    queries.push_back(std::move(q));
  }
  {
    NewObjectQuery q;  // term outside the trained vocabulary
    q.observations.push_back(NewObjectObservation::Categorical(0, 77));
    queries.push_back(std::move(q));
  }

  const auto batch = engine->InferBatch(queries);
  ASSERT_EQ(batch.size(), 8u);
  EXPECT_FALSE(batch[1].ok());
  EXPECT_EQ(batch[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(batch[5].ok());
  EXPECT_FALSE(batch[6].ok());
  EXPECT_FALSE(batch[7].ok());
  // The valid queries still answer, identically to a clean batch.
  const std::vector<NewObjectQuery> clean = MixedBatch();
  const auto clean_batch = engine->InferBatch(clean);
  for (size_t i : {0u, 2u, 3u, 4u}) {
    ASSERT_TRUE(batch[i].ok()) << "query " << i;
  }
  EXPECT_EQ(*batch[0], *clean_batch[0]);
  EXPECT_EQ(*batch[2], *clean_batch[1]);
  EXPECT_EQ(*batch[3], *clean_batch[2]);
  EXPECT_EQ(*batch[4], *clean_batch[3]);
}

TEST_F(EngineFixture, SaveLoadServeReproducesPostFitInferenceExactly) {
  // The acceptance path: SaveModel → LoadModel → InferBatch must equal a
  // direct post-Fit InferBatch byte-for-byte.
  const std::string path =
      (std::filesystem::temp_directory_path() / "engine_roundtrip.model")
          .string();
  ASSERT_TRUE(SaveModel(model_, path).ok());
  auto reloaded = LoadModel(path);
  std::remove(path.c_str());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  auto direct = MakeEngine(2);
  auto served = Engine::Create(&fixture_.dataset.network,
                               std::move(reloaded).value());
  ASSERT_TRUE(direct.ok() && served.ok());

  const auto queries = MixedBatch();
  const auto expected = direct->InferBatch(queries);
  const auto actual = served->InferBatch(queries);
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(expected[i].ok() && actual[i].ok());
    EXPECT_EQ(*expected[i], *actual[i]) << "query " << i;
  }
}

TEST_F(EngineFixture, SingleQueryInferMatchesBatch) {
  auto engine = MakeEngine(1);
  ASSERT_TRUE(engine.ok());
  const auto queries = MixedBatch();
  const auto batch = engine->InferBatch(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto single = engine->Infer(queries[i]);
    ASSERT_TRUE(single.ok() && batch[i].ok());
    EXPECT_EQ(*single, *batch[i]);
  }
}

}  // namespace
}  // namespace genclus
