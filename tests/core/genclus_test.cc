// End-to-end training through the Engine::Fit surface: recovery of planted
// structure, strength learning behaviour, determinism, tracing, progress
// observation, cancellation, and input validation. The RunGenClus
// compatibility shim is covered at the bottom.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "core/genclus.h"
#include "eval/nmi.h"
#include "prob/simplex.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

FitOptions SmallOptions() {
  FitOptions options;
  options.attributes = {"text"};
  options.config = testing::PlantedFixtureConfig(123);
  return options;
}

TEST(EngineFitTest, RecoversPlantedCommunitiesWithFullText) {
  auto fixture = MakeTwoCommunityNetwork(8, 1.0, 51);
  auto fit = Engine::Fit(fixture.dataset, SmallOptions());
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  const double nmi = NormalizedMutualInformation(
      fit->model.HardLabels(), fixture.dataset.labels.raw());
  EXPECT_GT(nmi, 0.9);
}

TEST(EngineFitTest, RecoversPlantedCommunitiesWithSparseText) {
  auto fixture = MakeTwoCommunityNetwork(10, 0.3, 53);
  auto fit = Engine::Fit(fixture.dataset, SmallOptions());
  ASSERT_TRUE(fit.ok());
  const double nmi = NormalizedMutualInformation(
      fit->model.HardLabels(), fixture.dataset.labels.raw());
  EXPECT_GT(nmi, 0.8);
}

TEST(EngineFitTest, ThetaRowsOnSimplexAndGammaNonNegative) {
  auto fixture = MakeTwoCommunityNetwork(6, 0.8, 55);
  auto fit = Engine::Fit(fixture.dataset, SmallOptions());
  ASSERT_TRUE(fit.ok());
  const Model& model = fit->model;
  for (size_t v = 0; v < model.theta.rows(); ++v) {
    EXPECT_TRUE(IsOnSimplex(model.theta.RowVector(v), 1e-9));
  }
  ASSERT_EQ(model.gamma.size(), 3u);
  for (double g : model.gamma) EXPECT_GE(g, 0.0);
  // The model passes its own validation and matches the training network.
  EXPECT_TRUE(model.Validate().ok());
  EXPECT_TRUE(model.ValidateAgainst(fixture.dataset.network).ok());
}

TEST(EngineFitTest, DeterministicGivenSeed) {
  auto fixture = MakeTwoCommunityNetwork(5, 1.0, 57);
  auto a = Engine::Fit(fixture.dataset, SmallOptions());
  auto b = Engine::Fit(fixture.dataset, SmallOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(a->model.theta, b->model.theta), 0.0);
  for (size_t r = 0; r < a->model.gamma.size(); ++r) {
    EXPECT_DOUBLE_EQ(a->model.gamma[r], b->model.gamma[r]);
  }
}

TEST(EngineFitTest, DifferentSeedsBothRecover) {
  auto fixture = MakeTwoCommunityNetwork(8, 1.0, 59);
  for (uint64_t seed : {1ULL, 7ULL, 1234ULL}) {
    FitOptions options = SmallOptions();
    options.config.seed = seed;
    auto fit = Engine::Fit(fixture.dataset, options);
    ASSERT_TRUE(fit.ok());
    const double nmi = NormalizedMutualInformation(
        fit->model.HardLabels(), fixture.dataset.labels.raw());
    EXPECT_GT(nmi, 0.9) << "seed " << seed;
  }
}

TEST(EngineFitTest, ReportRecordsEveryOuterIteration) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 61);
  FitOptions options = SmallOptions();
  options.config.outer_iterations = 4;
  options.config.outer_tolerance = 0.0;  // never early-stop
  auto fit = Engine::Fit(fixture.dataset, options);
  ASSERT_TRUE(fit.ok());
  const FitReport& report = fit->report;
  // Initial record + 4 iterations.
  EXPECT_EQ(report.trace.size(), 5u);
  EXPECT_EQ(report.outer_iterations, 4u);
  EXPECT_EQ(report.trace[0].iteration, 0u);
  EXPECT_FALSE(report.converged);
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.objective, fit->model.objective);
  // The initial gamma is all ones.
  for (double g : report.trace[0].gamma) EXPECT_DOUBLE_EQ(g, 1.0);
  for (size_t i = 1; i < report.trace.size(); ++i) {
    EXPECT_EQ(report.trace[i].iteration, i);
    EXPECT_GT(report.trace[i].em_iterations, 0u);
    EXPECT_TRUE(std::isfinite(report.trace[i].em_objective));
  }
}

TEST(EngineFitTest, ProgressObserverSeesEveryIteration) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 63);
  class CountingObserver : public ProgressObserver {
   public:
    explicit CountingObserver(size_t num_nodes) : num_nodes_(num_nodes) {}
    void OnOuterIteration(const OuterIterationRecord& record,
                          const Matrix& theta) override {
      ++calls;
      EXPECT_EQ(theta.rows(), num_nodes_);
      EXPECT_GE(record.iteration, 1u);
    }
    size_t calls = 0;

   private:
    size_t num_nodes_;
  };
  CountingObserver observer(fixture.dataset.network.num_nodes());
  FitOptions options = SmallOptions();
  options.config.outer_iterations = 3;
  options.config.outer_tolerance = 0.0;
  options.observer = &observer;
  auto fit = Engine::Fit(fixture.dataset, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(observer.calls, 3u);
}

TEST(EngineFitTest, CancellationStopsTraining) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 63);
  CancellationToken token;

  // Pre-cancelled: no outer iteration runs.
  token.RequestCancellation();
  FitOptions options = SmallOptions();
  options.cancellation = &token;
  auto fit = Engine::Fit(fixture.dataset, options);
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kCancelled);
}

TEST(EngineFitTest, CancellationFromObserverStopsAfterCurrentIteration) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 63);
  CancellationToken token;
  // Cancels from inside the progress stream — the supported way to stop a
  // run after inspecting an iteration.
  class CancellingObserver : public ProgressObserver {
   public:
    explicit CancellingObserver(CancellationToken* token) : token_(token) {}
    void OnOuterIteration(const OuterIterationRecord&,
                          const Matrix&) override {
      ++calls;
      token_->RequestCancellation();
    }
    size_t calls = 0;

   private:
    CancellationToken* token_;
  };
  CancellingObserver observer(&token);
  FitOptions options = SmallOptions();
  options.config.outer_iterations = 5;
  options.config.outer_tolerance = 0.0;
  options.observer = &observer;
  options.cancellation = &token;
  auto fit = Engine::Fit(fixture.dataset, options);
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(observer.calls, 1u);
}

TEST(EngineFitTest, FixedGammaAblationKeepsInitialStrengths) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 65);
  FitOptions options = SmallOptions();
  options.config.learn_strengths = false;
  auto fit = Engine::Fit(fixture.dataset, options);
  ASSERT_TRUE(fit.ok());
  for (double g : fit->model.gamma) EXPECT_DOUBLE_EQ(g, 1.0);
}

TEST(EngineFitTest, CustomInitialGammaRespected) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 67);
  FitOptions options = SmallOptions();
  options.config.learn_strengths = false;
  options.config.initial_gamma = {2.0, 0.5, 1.5};
  auto fit = Engine::Fit(fixture.dataset, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(fit->model.gamma[0], 2.0);
  EXPECT_DOUBLE_EQ(fit->model.gamma[1], 0.5);
  EXPECT_DOUBLE_EQ(fit->model.gamma[2], 1.5);
}

TEST(EngineFitTest, RejectsBadInputs) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 69);

  // Unknown attribute name.
  FitOptions options = SmallOptions();
  options.attributes = {"nope"};
  auto missing = Engine::Fit(fixture.dataset, options);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // num_clusters < 2.
  options = SmallOptions();
  options.config.num_clusters = 1;
  auto bad_k = Engine::Fit(fixture.dataset, options);
  EXPECT_FALSE(bad_k.ok());

  // initial_gamma with the wrong arity.
  options = SmallOptions();
  options.config.initial_gamma = {1.0};
  auto bad_gamma = Engine::Fit(fixture.dataset, options);
  EXPECT_FALSE(bad_gamma.ok());
}

TEST(EngineFitTest, PureLinkClusteringWithoutAttributes) {
  // No attribute specified: clustering driven purely by links. The two
  // communities are connected components (docs + their tag), so links
  // alone can separate them, though cluster identities are symmetric —
  // check NMI rather than exact labels.
  auto fixture = MakeTwoCommunityNetwork(8, 1.0, 71);
  FitOptions options = SmallOptions();
  options.attributes = {};
  auto fit = Engine::Fit(fixture.dataset, options);
  ASSERT_TRUE(fit.ok());
  const double nmi = NormalizedMutualInformation(
      fit->model.HardLabels(), fixture.dataset.labels.raw());
  // Link-only clustering of two disconnected communities can still settle
  // in a symmetric state; require it to be no worse than random and on the
  // simplex everywhere.
  EXPECT_GE(nmi, 0.0);
  for (size_t v = 0; v < fit->model.theta.rows(); ++v) {
    EXPECT_TRUE(IsOnSimplex(fit->model.theta.RowVector(v), 1e-9));
  }
}

TEST(EngineFitTest, MultithreadedMatchesSingleThreaded) {
  auto fixture = MakeTwoCommunityNetwork(6, 1.0, 73);
  FitOptions options = SmallOptions();
  options.config.num_threads = 1;
  auto serial = Engine::Fit(fixture.dataset, options);
  options.config.num_threads = 4;
  auto parallel = Engine::Fit(fixture.dataset, options);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_LT(Matrix::MaxAbsDiff(serial->model.theta, parallel->model.theta),
            1e-9);
}

TEST(EngineFitTest, HardLabelsMatchArgmax) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 75);
  auto fit = Engine::Fit(fixture.dataset, SmallOptions());
  ASSERT_TRUE(fit.ok());
  auto labels = fit->model.HardLabels();
  ASSERT_EQ(labels.size(), fit->model.theta.rows());
  for (size_t v = 0; v < labels.size(); ++v) {
    EXPECT_EQ(labels[v], ArgMax(fit->model.theta.RowVector(v)));
  }
}

TEST(EngineFitTest, LearnsHigherStrengthForInformativeRelation) {
  // doc_doc connects same-community docs only (high consistency);
  // doc_tag/tag_doc connect docs to their community tag, equally
  // consistent. All three should earn positive strengths; the intra-doc
  // relation should not collapse to zero.
  auto fixture = MakeTwoCommunityNetwork(8, 1.0, 77);
  FitOptions options = SmallOptions();
  options.config.outer_iterations = 6;
  auto fit = Engine::Fit(fixture.dataset, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->model.gamma[fixture.doc_doc], 0.0);
}

TEST(EngineFitTest, ModelCarriesSchemaAndAttributeMetadata) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 79);
  auto fit = Engine::Fit(fixture.dataset, SmallOptions());
  ASSERT_TRUE(fit.ok());
  const Model& model = fit->model;
  ASSERT_EQ(model.link_types.size(), 3u);
  const Schema& schema = fixture.dataset.network.schema();
  for (LinkTypeId r = 0; r < schema.num_link_types(); ++r) {
    EXPECT_EQ(model.link_types[r], schema.link_type(r).name);
  }
  ASSERT_EQ(model.attributes.size(), 1u);
  EXPECT_EQ(model.attributes[0].name, "text");
  EXPECT_EQ(model.attributes[0].kind, AttributeKind::kCategorical);
  EXPECT_EQ(model.attributes[0].vocab_size, 4u);
}

// --- RunGenClus compatibility shim ---

TEST(RunGenClusShimTest, MatchesEngineFit) {
  auto fixture = MakeTwoCommunityNetwork(6, 1.0, 81);
  GenClusConfig config = testing::PlantedFixtureConfig(123);
  auto legacy = RunGenClus(fixture.dataset, {"text"}, config);
  auto fit = Engine::Fit(fixture.dataset, SmallOptions());
  ASSERT_TRUE(legacy.ok() && fit.ok());
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(legacy->theta, fit->model.theta), 0.0);
  ASSERT_EQ(legacy->gamma.size(), fit->model.gamma.size());
  for (size_t r = 0; r < legacy->gamma.size(); ++r) {
    EXPECT_DOUBLE_EQ(legacy->gamma[r], fit->model.gamma[r]);
  }
  EXPECT_DOUBLE_EQ(legacy->objective, fit->model.objective);
}

TEST(RunGenClusShimTest, RejectsBadInputs) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 69);
  GenClusConfig config = testing::PlantedFixtureConfig(123);

  auto missing = RunGenClus(fixture.dataset, {"nope"}, config);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  config.num_clusters = 1;
  auto bad_k = RunGenClus(fixture.dataset, {"text"}, config);
  EXPECT_FALSE(bad_k.ok());
}

}  // namespace
}  // namespace genclus
