// End-to-end GenClus (Algorithm 1): recovery of planted structure,
// strength learning behaviour, determinism, tracing, and input validation.
#include "core/genclus.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/nmi.h"
#include "prob/simplex.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

GenClusConfig SmallConfig() { return testing::PlantedFixtureConfig(123); }

TEST(GenClusTest, RecoversPlantedCommunitiesWithFullText) {
  auto fixture = MakeTwoCommunityNetwork(8, 1.0, 51);
  auto result = RunGenClus(fixture.dataset, {"text"}, SmallConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const double nmi = NormalizedMutualInformation(
      result->HardLabels(), fixture.dataset.labels.raw());
  EXPECT_GT(nmi, 0.9);
}

TEST(GenClusTest, RecoversPlantedCommunitiesWithSparseText) {
  auto fixture = MakeTwoCommunityNetwork(10, 0.3, 53);
  auto result = RunGenClus(fixture.dataset, {"text"}, SmallConfig());
  ASSERT_TRUE(result.ok());
  const double nmi = NormalizedMutualInformation(
      result->HardLabels(), fixture.dataset.labels.raw());
  EXPECT_GT(nmi, 0.8);
}

TEST(GenClusTest, ThetaRowsOnSimplexAndGammaNonNegative) {
  auto fixture = MakeTwoCommunityNetwork(6, 0.8, 55);
  auto result = RunGenClus(fixture.dataset, {"text"}, SmallConfig());
  ASSERT_TRUE(result.ok());
  for (size_t v = 0; v < result->theta.rows(); ++v) {
    EXPECT_TRUE(IsOnSimplex(result->theta.RowVector(v), 1e-9));
  }
  ASSERT_EQ(result->gamma.size(), 3u);
  for (double g : result->gamma) EXPECT_GE(g, 0.0);
}

TEST(GenClusTest, DeterministicGivenSeed) {
  auto fixture = MakeTwoCommunityNetwork(5, 1.0, 57);
  auto a = RunGenClus(fixture.dataset, {"text"}, SmallConfig());
  auto b = RunGenClus(fixture.dataset, {"text"}, SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(a->theta, b->theta), 0.0);
  for (size_t r = 0; r < a->gamma.size(); ++r) {
    EXPECT_DOUBLE_EQ(a->gamma[r], b->gamma[r]);
  }
}

TEST(GenClusTest, DifferentSeedsBothRecover) {
  auto fixture = MakeTwoCommunityNetwork(8, 1.0, 59);
  for (uint64_t seed : {1ULL, 7ULL, 1234ULL}) {
    GenClusConfig config = SmallConfig();
    config.seed = seed;
    auto result = RunGenClus(fixture.dataset, {"text"}, config);
    ASSERT_TRUE(result.ok());
    const double nmi = NormalizedMutualInformation(
        result->HardLabels(), fixture.dataset.labels.raw());
    EXPECT_GT(nmi, 0.9) << "seed " << seed;
  }
}

TEST(GenClusTest, TraceRecordsEveryOuterIteration) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 61);
  GenClusConfig config = SmallConfig();
  config.outer_iterations = 4;
  config.outer_tolerance = 0.0;  // never early-stop
  auto result = RunGenClus(fixture.dataset, {"text"}, config);
  ASSERT_TRUE(result.ok());
  // Initial record + 4 iterations.
  EXPECT_EQ(result->trace.size(), 5u);
  EXPECT_EQ(result->trace[0].iteration, 0u);
  // The initial gamma is all ones.
  for (double g : result->trace[0].gamma) EXPECT_DOUBLE_EQ(g, 1.0);
  for (size_t i = 1; i < result->trace.size(); ++i) {
    EXPECT_EQ(result->trace[i].iteration, i);
    EXPECT_GT(result->trace[i].em_iterations, 0u);
    EXPECT_TRUE(std::isfinite(result->trace[i].em_objective));
  }
}

TEST(GenClusTest, IterationCallbackFires) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 63);
  GenClusConfig config = SmallConfig();
  config.outer_iterations = 3;
  config.outer_tolerance = 0.0;
  std::vector<const Attribute*> attrs = {&fixture.dataset.attributes[0]};
  GenClus algorithm(&fixture.dataset.network, attrs, config);
  size_t calls = 0;
  algorithm.SetIterationCallback(
      [&](const OuterIterationRecord& record, const Matrix& theta) {
        ++calls;
        EXPECT_EQ(theta.rows(), fixture.dataset.network.num_nodes());
        EXPECT_GE(record.iteration, 1u);
      });
  auto result = algorithm.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, 3u);
}

TEST(GenClusTest, FixedGammaAblationKeepsInitialStrengths) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 65);
  GenClusConfig config = SmallConfig();
  config.learn_strengths = false;
  auto result = RunGenClus(fixture.dataset, {"text"}, config);
  ASSERT_TRUE(result.ok());
  for (double g : result->gamma) EXPECT_DOUBLE_EQ(g, 1.0);
}

TEST(GenClusTest, CustomInitialGammaRespected) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 67);
  GenClusConfig config = SmallConfig();
  config.learn_strengths = false;
  config.initial_gamma = {2.0, 0.5, 1.5};
  auto result = RunGenClus(fixture.dataset, {"text"}, config);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->gamma[0], 2.0);
  EXPECT_DOUBLE_EQ(result->gamma[1], 0.5);
  EXPECT_DOUBLE_EQ(result->gamma[2], 1.5);
}

TEST(GenClusTest, RejectsBadInputs) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 69);
  GenClusConfig config = SmallConfig();

  // Unknown attribute name.
  auto missing = RunGenClus(fixture.dataset, {"nope"}, config);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // num_clusters < 2.
  config.num_clusters = 1;
  auto bad_k = RunGenClus(fixture.dataset, {"text"}, config);
  EXPECT_FALSE(bad_k.ok());

  // initial_gamma with the wrong arity.
  config = SmallConfig();
  config.initial_gamma = {1.0};
  auto bad_gamma = RunGenClus(fixture.dataset, {"text"}, config);
  EXPECT_FALSE(bad_gamma.ok());
}

TEST(GenClusTest, PureLinkClusteringWithoutAttributes) {
  // No attribute specified: clustering driven purely by links. The two
  // communities are connected components (docs + their tag), so links
  // alone can separate them, though cluster identities are symmetric —
  // check NMI rather than exact labels.
  auto fixture = MakeTwoCommunityNetwork(8, 1.0, 71);
  auto result = RunGenClus(fixture.dataset, {}, SmallConfig());
  ASSERT_TRUE(result.ok());
  const double nmi = NormalizedMutualInformation(
      result->HardLabels(), fixture.dataset.labels.raw());
  // Link-only clustering of two disconnected communities can still settle
  // in a symmetric state; require it to be no worse than random and on the
  // simplex everywhere.
  EXPECT_GE(nmi, 0.0);
  for (size_t v = 0; v < result->theta.rows(); ++v) {
    EXPECT_TRUE(IsOnSimplex(result->theta.RowVector(v), 1e-9));
  }
}

TEST(GenClusTest, MultithreadedMatchesSingleThreaded) {
  auto fixture = MakeTwoCommunityNetwork(6, 1.0, 73);
  GenClusConfig config = SmallConfig();
  config.num_threads = 1;
  auto serial = RunGenClus(fixture.dataset, {"text"}, config);
  config.num_threads = 4;
  auto parallel = RunGenClus(fixture.dataset, {"text"}, config);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_LT(Matrix::MaxAbsDiff(serial->theta, parallel->theta), 1e-9);
}

TEST(GenClusTest, HardLabelsMatchArgmax) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 75);
  auto result = RunGenClus(fixture.dataset, {"text"}, SmallConfig());
  ASSERT_TRUE(result.ok());
  auto labels = result->HardLabels();
  ASSERT_EQ(labels.size(), result->theta.rows());
  for (size_t v = 0; v < labels.size(); ++v) {
    EXPECT_EQ(labels[v], ArgMax(result->theta.RowVector(v)));
  }
}

TEST(GenClusTest, LearnsHigherStrengthForInformativeRelation) {
  // doc_doc connects same-community docs only (high consistency);
  // doc_tag/tag_doc connect docs to their community tag, equally
  // consistent. All three should earn positive strengths; the intra-doc
  // relation should not collapse to zero.
  auto fixture = MakeTwoCommunityNetwork(8, 1.0, 77);
  GenClusConfig config = SmallConfig();
  config.outer_iterations = 6;
  auto result = RunGenClus(fixture.dataset, {"text"}, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->gamma[fixture.doc_doc], 0.0);
}

}  // namespace
}  // namespace genclus
