// Verifies the three desiderata of §3.3 for the cross entropy-based
// feature function, plus the worked example of Fig. 4.
#include "core/feature.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

TEST(FeatureTest, Desideratum1IncreasesWithSimilarity) {
  std::vector<double> theta1 = {7.0 / 8, 1.0 / 16, 1.0 / 16};
  std::vector<double> similar = {5.0 / 6, 1.0 / 12, 1.0 / 12};
  std::vector<double> neutral = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  std::vector<double> opposite = {1.0 / 16, 1.0 / 16, 7.0 / 8};
  const double f_sim = LinkFeature(theta1, similar, 1.0, 1.0);
  const double f_neu = LinkFeature(theta1, neutral, 1.0, 1.0);
  const double f_opp = LinkFeature(theta1, opposite, 1.0, 1.0);
  EXPECT_GT(f_sim, f_neu);
  EXPECT_GT(f_neu, f_opp);
}

TEST(FeatureTest, Desideratum2DecreasesWithStrengthAndWeight) {
  std::vector<double> a = {0.8, 0.2};
  std::vector<double> b = {0.6, 0.4};
  // f is <= 0; scaling gamma or w(e) up makes it more negative.
  EXPECT_LT(LinkFeature(a, b, 2.0, 1.0), LinkFeature(a, b, 1.0, 1.0));
  EXPECT_LT(LinkFeature(a, b, 1.0, 3.0), LinkFeature(a, b, 1.0, 1.0));
}

TEST(FeatureTest, Desideratum3Asymmetric) {
  std::vector<double> expert = {5.0 / 6, 1.0 / 12, 1.0 / 12};
  std::vector<double> neutral = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  const double f_en = LinkFeature(expert, neutral, 1.0, 1.0);
  const double f_ne = LinkFeature(neutral, expert, 1.0, 1.0);
  EXPECT_NE(f_en, f_ne);
  // Paper: f(<1,4>) = -1.7174, f(<4,1>) = -1.0986 with gamma = w = 1;
  // the neutral-source direction scores lower.
  EXPECT_LT(f_en, f_ne);
  EXPECT_NEAR(f_en, -1.7174, 5e-4);
  EXPECT_NEAR(f_ne, -1.0986, 5e-4);
}

TEST(FeatureTest, NonPositiveEverywhere) {
  // f <= 0 for all simplex inputs (log of probabilities <= 0).
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    auto p = rng.SimplexUniform(4);
    auto q = rng.SimplexUniform(4);
    EXPECT_LE(LinkFeature(p, q, rng.Uniform(0.0, 5.0),
                          rng.Uniform(0.1, 2.0)),
              0.0);
  }
}

TEST(FeatureTest, MaximizedAtIdenticalConcentratedVectors) {
  // For fixed gamma, w: identical point masses give f = 0, the maximum.
  std::vector<double> point = {1.0, 0.0, 0.0};
  EXPECT_NEAR(LinkFeature(point, point, 2.0, 1.5), 0.0, 1e-9);
}

TEST(FeatureTest, ZeroGammaKillsTheTerm) {
  std::vector<double> a = {0.9, 0.1};
  std::vector<double> b = {0.1, 0.9};
  EXPECT_DOUBLE_EQ(LinkFeature(a, b, 0.0, 1.0), 0.0);
}

TEST(FeatureTest, FlooringKeepsValueFinite) {
  std::vector<double> source = {1.0, 0.0};  // exact zero component
  std::vector<double> target = {0.0, 1.0};  // weights the zero component
  const double f = LinkFeature(source, target, 1.0, 1.0);
  EXPECT_TRUE(std::isfinite(f));
  EXPECT_LT(f, -10.0);  // heavily penalized but finite
}

TEST(StructuralScoreTest, AgreesWithManualSum) {
  auto fixture = MakeTwoCommunityNetwork(3, 1.0, 1);
  const Network& net = fixture.dataset.network;
  const size_t n = net.num_nodes();
  Matrix theta(n, 2);
  Rng rng(5);
  for (size_t v = 0; v < n; ++v) theta.SetRow(v, rng.SimplexUniform(2));
  std::vector<double> gamma = {1.5, 0.5, 2.0};

  double manual = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    for (const LinkEntry& e : net.OutLinks(v)) {
      manual += LinkFeature({theta.Row(v), 2}, {theta.Row(e.neighbor), 2},
                            gamma[e.type], e.weight);
    }
  }
  EXPECT_NEAR(StructuralScore(net, theta, gamma), manual, 1e-9);
}

TEST(StructuralScoreTest, DecomposesByRelation) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 2);
  const Network& net = fixture.dataset.network;
  Matrix theta(net.num_nodes(), 2);
  Rng rng(7);
  for (size_t v = 0; v < net.num_nodes(); ++v) {
    theta.SetRow(v, rng.SimplexUniform(2));
  }
  std::vector<double> gamma = {0.7, 1.3, 0.2};
  double composed = 0.0;
  for (LinkTypeId r = 0; r < 3; ++r) {
    composed += gamma[r] * PerRelationScore(net, theta, r);
  }
  EXPECT_NEAR(StructuralScore(net, theta, gamma), composed, 1e-9);
}

TEST(StructuralScoreTest, ConsistentThetaScoresHigher) {
  auto fixture = MakeTwoCommunityNetwork(5, 1.0, 3);
  const Network& net = fixture.dataset.network;
  std::vector<uint32_t> labels(net.num_nodes());
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    labels[v] = fixture.dataset.labels.Get(v);
  }
  Matrix aligned = testing::ConcentratedTheta(labels, 2, 0.05);
  // Anti-aligned: swap the two communities' labels for half the docs only,
  // which breaks intra-community consistency.
  std::vector<uint32_t> scrambled = labels;
  for (size_t i = 0; i < scrambled.size(); i += 2) {
    scrambled[i] = 1 - scrambled[i];
  }
  Matrix misaligned = testing::ConcentratedTheta(scrambled, 2, 0.05);
  std::vector<double> gamma = {1.0, 1.0, 1.0};
  EXPECT_GT(StructuralScore(net, aligned, gamma),
            StructuralScore(net, misaligned, gamma));
}

}  // namespace
}  // namespace genclus
