// Fold-in inference must reproduce the training E-step update for the
// same evidence. Regression focus: a categorical observation whose term
// has zero mass in every cluster (possible with zero smoothing) — training
// falls back to uniform responsibilities and still adds the observation's
// count mass, and the serve path must do exactly the same.
#include "core/inference.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/em.h"
#include "core/engine.h"
#include "core/model.h"
#include "hin/network.h"

namespace genclus {
namespace {

// One doc node (node 0) the evidence points at, one trained node (node 1)
// carrying exactly the same evidence as the fold-in query: a unit-weight
// dd-link to node 0 plus 3 counts of term 2, which has zero probability
// under every cluster.
class ZeroMassTermFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema;
    doc_ = schema.AddObjectType("doc").value();
    dd_ = schema.AddLinkType("dd", doc_, doc_).value();

    NetworkBuilder builder(schema);
    target_ = builder.AddNode(doc_, "target").value();
    trained_ = builder.AddNode(doc_, "trained").value();
    ASSERT_TRUE(builder.AddLink(trained_, target_, dd_, 1.0).ok());
    network_ = std::move(builder).Build().value();

    text_ = Attribute::Categorical("text", 3, network_.num_nodes());
    ASSERT_TRUE(text_.AddTermCount(trained_, kZeroMassTerm, 3.0).ok());

    theta_ = Matrix(network_.num_nodes(), 2);
    theta_.SetRow(target_, {0.8, 0.2});
    theta_.SetRow(trained_, {0.6, 0.4});

    components_.push_back(AttributeComponents::CategoricalUniform(2, 3));
    Matrix* beta = components_[0].mutable_beta();
    *beta = Matrix{{0.7, 0.3, 0.0},   // term 2 carries zero mass in
                   {0.2, 0.8, 0.0}};  // both clusters

    config_.num_clusters = 2;
    config_.beta_smoothing = 0.0;  // keep the zero column zero

    model_.theta = theta_;
    model_.gamma = {1.0};
    model_.components = components_;
  }

  static constexpr uint32_t kZeroMassTerm = 2;

  ObjectTypeId doc_;
  LinkTypeId dd_;
  NodeId target_, trained_;
  Network network_;
  Attribute text_ = Attribute::Categorical("empty", 1, 0);
  Matrix theta_;
  std::vector<AttributeComponents> components_;
  GenClusConfig config_;
  Model model_;
};

TEST_F(ZeroMassTermFixture, ZeroMassTermStillContributesCountMass) {
  // Expected mix, as the training E-step computes it: the link part
  // gamma * w * theta_target plus uniform responsibilities times the
  // count: {0.8 + 1.5, 0.2 + 1.5} -> normalized {0.575, 0.425}.
  auto result = InferMembership(
      network_, model_, {{target_, dd_, 1.0}},
      {NewObjectObservation::Categorical(0, kZeroMassTerm, /*count=*/3.0)});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_NEAR((*result)[0], 0.575, 1e-12);
  EXPECT_NEAR((*result)[1], 0.425, 1e-12);
}

TEST_F(ZeroMassTermFixture, FoldInMatchesTrainingEStep) {
  // Training side: one EM sweep updates the trained node from the same
  // old theta/beta the fold-in model holds.
  EmOptimizer optimizer(&network_, {&text_}, &config_, nullptr);
  Matrix theta = theta_;
  std::vector<AttributeComponents> components = components_;
  optimizer.Step(model_.gamma, &theta, &components);

  // Serve side: fold in a new object with identical evidence.
  auto folded = InferMembership(
      network_, model_, {{target_, dd_, 1.0}},
      {NewObjectObservation::Categorical(0, kZeroMassTerm, /*count=*/3.0)});
  ASSERT_TRUE(folded.ok());
  const double* trained_row = theta.Row(trained_);
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR((*folded)[k], trained_row[k], 1e-12) << "cluster " << k;
  }
}

TEST_F(ZeroMassTermFixture, PositiveMassTermUnaffected) {
  // Sanity: ordinary terms still weight clusters by theta * beta.
  auto result = InferMembership(network_, model_, {{target_, dd_, 1.0}},
                                {NewObjectObservation::Categorical(
                                    0, /*term=*/0, /*count=*/1.0)});
  ASSERT_TRUE(result.ok());
  // Cluster 0 explains term 0 far better (0.7 vs 0.2), so it must gain.
  EXPECT_GT((*result)[0], 0.6);
}

}  // namespace
}  // namespace genclus
