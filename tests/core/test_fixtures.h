// Shared fixtures for the core-algorithm tests: tiny deterministic networks
// with planted cluster structure.
#pragma once

#include <vector>

#include "common/random.h"
#include "core/config.h"
#include "hin/dataset.h"
#include "linalg/matrix.h"

namespace genclus::testing {

/// Handles into a two-community test network.
struct TwoCommunityNetwork {
  Dataset dataset;
  ObjectTypeId doc_type;
  ObjectTypeId tag_type;
  LinkTypeId doc_doc;   // strong intra-community relation
  LinkTypeId doc_tag;   // doc -> tag
  LinkTypeId tag_doc;   // tag -> doc
  std::vector<NodeId> docs;  // docs_per_side * 2, first half community 0
  std::vector<NodeId> tags;  // one tag per community
};

/// Builds a network with two planted communities of `docs_per_side`
/// document nodes each. Documents link densely within their community
/// (doc_doc), every document links to its community's tag node (doc_tag,
/// tag_doc back). Documents carry a 4-term text attribute: community 0
/// uses terms {0,1}, community 1 uses terms {2,3}. `text_fraction` controls
/// incompleteness: only that fraction of documents receives text. Tags
/// never carry text.
TwoCommunityNetwork MakeTwoCommunityNetwork(size_t docs_per_side,
                                            double text_fraction,
                                            uint64_t seed);

/// The canonical small configuration for end-to-end runs on the planted
/// fixtures: K=2, 5 outer iterations, 60 EM iterations, 3 init seeds. The
/// genclus and regression tests share this so a GenClusConfig field change
/// only needs one update.
GenClusConfig PlantedFixtureConfig(uint64_t seed);

/// A membership matrix where each node's row concentrates (1 - eps) on
/// `labels[v]`.
Matrix ConcentratedTheta(const std::vector<uint32_t>& labels,
                         size_t num_clusters, double eps);

}  // namespace genclus::testing
