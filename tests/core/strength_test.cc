// Strength-learning step: analytic gradient/Hessian (Eqs. 16-17) against
// finite differences, concavity, projection, and qualitative behaviour
// (consistent relations earn higher strengths).
#include "core/strength.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/feature.h"
#include "linalg/solve.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::ConcentratedTheta;
using testing::MakeTwoCommunityNetwork;

class StrengthFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = MakeTwoCommunityNetwork(4, 1.0, 11);
    const Network& net = fixture_.dataset.network;
    labels_.resize(net.num_nodes());
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      labels_[v] = fixture_.dataset.labels.Get(v);
    }
    theta_ = ConcentratedTheta(labels_, 2, 0.1);
    config_.num_clusters = 2;
    config_.gamma_prior_sigma = 0.5;
  }

  testing::TwoCommunityNetwork fixture_;
  std::vector<uint32_t> labels_;
  Matrix theta_;
  GenClusConfig config_;
};

TEST_F(StrengthFixture, GradientMatchesFiniteDifference) {
  StrengthLearner learner(&fixture_.dataset.network, &theta_, &config_);
  const std::vector<double> gamma = {1.0, 0.7, 1.3};
  const std::vector<double> grad = learner.Gradient(gamma);
  const double h = 1e-6;
  for (size_t r = 0; r < gamma.size(); ++r) {
    std::vector<double> up = gamma;
    std::vector<double> down = gamma;
    up[r] += h;
    down[r] -= h;
    const double numeric =
        (learner.Objective(up) - learner.Objective(down)) / (2.0 * h);
    EXPECT_NEAR(grad[r], numeric, 1e-4 * (1.0 + std::fabs(numeric)))
        << "relation " << r;
  }
}

TEST_F(StrengthFixture, HessianMatchesFiniteDifference) {
  StrengthLearner learner(&fixture_.dataset.network, &theta_, &config_);
  const std::vector<double> gamma = {0.8, 1.2, 0.5};
  const Matrix hess = learner.Hessian(gamma);
  const double h = 1e-5;
  for (size_t r1 = 0; r1 < gamma.size(); ++r1) {
    for (size_t r2 = 0; r2 < gamma.size(); ++r2) {
      std::vector<double> up = gamma;
      std::vector<double> down = gamma;
      up[r2] += h;
      down[r2] -= h;
      const double numeric =
          (learner.Gradient(up)[r1] - learner.Gradient(down)[r1]) / (2.0 * h);
      EXPECT_NEAR(hess(r1, r2), numeric,
                  1e-3 * (1.0 + std::fabs(numeric)))
          << "entry (" << r1 << "," << r2 << ")";
    }
  }
}

TEST_F(StrengthFixture, HessianSymmetricNegativeDefinite) {
  StrengthLearner learner(&fixture_.dataset.network, &theta_, &config_);
  const std::vector<double> gamma = {1.0, 1.0, 1.0};
  Matrix hess = learner.Hessian(gamma);
  for (size_t i = 0; i < hess.rows(); ++i) {
    for (size_t j = 0; j < hess.cols(); ++j) {
      EXPECT_NEAR(hess(i, j), hess(j, i), 1e-9);
    }
  }
  // -H must be SPD (Appendix B concavity proof).
  Matrix neg = hess;
  neg.Scale(-1.0);
  EXPECT_TRUE(CholeskyFactorization::Compute(neg).ok());
}

TEST_F(StrengthFixture, ObjectiveConcaveAlongRandomSegments) {
  StrengthLearner learner(&fixture_.dataset.network, &theta_, &config_);
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> a(3), b(3);
    for (size_t r = 0; r < 3; ++r) {
      a[r] = rng.Uniform(0.0, 3.0);
      b[r] = rng.Uniform(0.0, 3.0);
    }
    std::vector<double> mid(3);
    for (size_t r = 0; r < 3; ++r) mid[r] = 0.5 * (a[r] + b[r]);
    // Concavity: f(mid) >= (f(a) + f(b)) / 2.
    EXPECT_GE(learner.Objective(mid) + 1e-9,
              0.5 * (learner.Objective(a) + learner.Objective(b)));
  }
}

TEST_F(StrengthFixture, LearnImprovesObjectiveAndStaysNonNegative) {
  StrengthLearner learner(&fixture_.dataset.network, &theta_, &config_);
  const std::vector<double> start = {1.0, 1.0, 1.0};
  StrengthStats stats;
  std::vector<double> learned = learner.Learn(start, &stats);
  EXPECT_GE(learner.Objective(learned), learner.Objective(start) - 1e-9);
  for (double g : learned) EXPECT_GE(g, 0.0);
  EXPECT_GT(stats.iterations, 0u);
}

TEST_F(StrengthFixture, LearnedOptimumHasNonPositiveProjectedGradient) {
  // At the constrained maximum: grad <= 0 where gamma = 0 and grad ~ 0
  // where gamma > 0.
  StrengthLearner learner(&fixture_.dataset.network, &theta_, &config_);
  config_.newton_iterations = 200;
  std::vector<double> learned = learner.Learn({1.0, 1.0, 1.0}, nullptr);
  std::vector<double> grad = learner.Gradient(learned);
  for (size_t r = 0; r < learned.size(); ++r) {
    if (learned[r] > 1e-8) {
      EXPECT_NEAR(grad[r], 0.0, 1e-3) << "interior relation " << r;
    } else {
      EXPECT_LE(grad[r], 1e-6) << "boundary relation " << r;
    }
  }
}

TEST_F(StrengthFixture, ConsistentRelationBeatsInconsistentOne) {
  // Rebuild theta so that doc_doc links connect identical vectors (fully
  // consistent) while doc_tag links connect dissimilar ones: the learner
  // must assign doc_doc a higher strength than doc_tag.
  const Network& net = fixture_.dataset.network;
  Matrix theta(net.num_nodes(), 2);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (net.node_type(v) == fixture_.doc_type) {
      const uint32_t side = fixture_.dataset.labels.Get(v);
      theta.SetRow(v, side == 0 ? Vector{0.95, 0.05} : Vector{0.05, 0.95});
    } else {
      theta.SetRow(v, {0.5, 0.5});  // tags neutral => doc_tag inconsistent
    }
  }
  StrengthLearner learner(&net, &theta, &config_);
  std::vector<double> learned = learner.Learn({1.0, 1.0, 1.0}, nullptr);
  EXPECT_GT(learned[fixture_.doc_doc], learned[fixture_.doc_tag]);
}

TEST_F(StrengthFixture, PriorShrinksWithSmallSigma) {
  StrengthLearner learner(&fixture_.dataset.network, &theta_, &config_);
  std::vector<double> loose = learner.Learn({1.0, 1.0, 1.0}, nullptr);

  GenClusConfig tight_config = config_;
  tight_config.gamma_prior_sigma = 0.01;  // much stronger prior toward 0
  StrengthLearner tight_learner(&fixture_.dataset.network, &theta_,
                                &tight_config);
  std::vector<double> tight = tight_learner.Learn({1.0, 1.0, 1.0}, nullptr);
  double loose_norm = 0.0;
  double tight_norm = 0.0;
  for (size_t r = 0; r < 3; ++r) {
    loose_norm += loose[r] * loose[r];
    tight_norm += tight[r] * tight[r];
  }
  EXPECT_LT(tight_norm, loose_norm);
}

TEST_F(StrengthFixture, AllZeroGammaIsValidInput) {
  StrengthLearner learner(&fixture_.dataset.network, &theta_, &config_);
  const std::vector<double> zeros = {0.0, 0.0, 0.0};
  EXPECT_TRUE(std::isfinite(learner.Objective(zeros)));
  std::vector<double> learned = learner.Learn(zeros, nullptr);
  for (double g : learned) EXPECT_GE(g, 0.0);
}

TEST_F(StrengthFixture, FusedEvalMatchesSerialReference) {
  // The fused EvalAll traversal shares alpha/digamma/trigamma evaluations
  // and reduces blocked partials; it must agree with the serial reference
  // passes to well below solver tolerance.
  StrengthLearner learner(&fixture_.dataset.network, &theta_, &config_);
  const std::vector<double> gamma = {1.1, 0.4, 2.0};
  const StrengthLearner::Evaluation eval = learner.EvalAll(gamma);
  EXPECT_NEAR(eval.objective, learner.Objective(gamma),
              1e-12 * (1.0 + std::fabs(eval.objective)));
  const std::vector<double> grad = learner.Gradient(gamma);
  ASSERT_EQ(eval.gradient.size(), grad.size());
  for (size_t r = 0; r < grad.size(); ++r) {
    EXPECT_NEAR(eval.gradient[r], grad[r],
                1e-12 * (1.0 + std::fabs(grad[r])));
  }
  const Matrix hess = learner.Hessian(gamma);
  for (size_t r1 = 0; r1 < grad.size(); ++r1) {
    for (size_t r2 = 0; r2 < grad.size(); ++r2) {
      EXPECT_NEAR(eval.hessian(r1, r2), hess(r1, r2),
                  1e-12 * (1.0 + std::fabs(hess(r1, r2))));
    }
  }
}

TEST_F(StrengthFixture, FusedEvalBitwiseInvariantToThreadCount) {
  // Shard partials are reduced in fixed block order, so the evaluation is
  // bitwise identical for any pool size (and without a pool).
  StrengthLearner serial(&fixture_.dataset.network, &theta_, &config_);
  const std::vector<double> gamma = {1.0, 0.6, 1.7};
  const StrengthLearner::Evaluation reference = serial.EvalAll(gamma);
  for (size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    StrengthLearner learner(&fixture_.dataset.network, &theta_, &config_,
                            &pool);
    const StrengthLearner::Evaluation eval = learner.EvalAll(gamma);
    EXPECT_EQ(eval.objective, reference.objective) << threads << " threads";
    for (size_t r = 0; r < gamma.size(); ++r) {
      EXPECT_EQ(eval.gradient[r], reference.gradient[r])
          << threads << " threads, relation " << r;
    }
    for (size_t r1 = 0; r1 < gamma.size(); ++r1) {
      for (size_t r2 = 0; r2 < gamma.size(); ++r2) {
        EXPECT_EQ(eval.hessian(r1, r2), reference.hessian(r1, r2))
            << threads << " threads, entry (" << r1 << "," << r2 << ")";
      }
    }
  }
}

TEST_F(StrengthFixture, LearnedGammaInvariantToThreadCount) {
  StrengthLearner serial(&fixture_.dataset.network, &theta_, &config_);
  StrengthStats serial_stats;
  const std::vector<double> reference =
      serial.Learn({1.0, 1.0, 1.0}, &serial_stats);
  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    StrengthLearner learner(&fixture_.dataset.network, &theta_, &config_,
                            &pool);
    StrengthStats stats;
    const std::vector<double> learned = learner.Learn({1.0, 1.0, 1.0},
                                                      &stats);
    ASSERT_EQ(learned.size(), reference.size());
    for (size_t r = 0; r < learned.size(); ++r) {
      EXPECT_EQ(learned[r], reference[r]) << threads << " threads";
    }
    EXPECT_EQ(stats.iterations, serial_stats.iterations);
    EXPECT_EQ(stats.objective, serial_stats.objective);
  }
}

TEST_F(StrengthFixture, DeterministicAcrossCalls) {
  StrengthLearner learner(&fixture_.dataset.network, &theta_, &config_);
  auto first = learner.Learn({1.0, 1.0, 1.0}, nullptr);
  auto second = learner.Learn({1.0, 1.0, 1.0}, nullptr);
  ASSERT_EQ(first.size(), second.size());
  for (size_t r = 0; r < first.size(); ++r) {
    EXPECT_DOUBLE_EQ(first[r], second[r]);
  }
}

}  // namespace
}  // namespace genclus
