// Deadline-aware serving (core/server.h): shedding, admission control,
// graceful degradation and fault injection. Pins the robustness
// contracts on top of the micro-batching tier:
//   * a deadline that expires while the request is queued sheds at
//     dequeue — the future resolves with kDeadlineExceeded, no work done;
//   * a tight deadline caps its micro-batch's coalescing linger, so the
//     request is answered within budget instead of lingering past it;
//   * cost-based rejection: once queue-wait/exec EWMAs predict a miss,
//     Submit rejects immediately (kDeadlineExceeded) without queueing;
//   * graceful degradation: sustained overload steps the sweep count
//     down to the floor (answers flagged degraded), recovery steps it
//     back up — with hysteresis between the two thresholds;
//   * a worker catching an exception from Execute fails that batch's
//     futures with kInternal and keeps serving (the "server.execute"
//     failpoint drives this deterministically);
//   * accounting: every admitted request resolves with a definite
//     status, and the counters reconcile exactly at quiescence.
// The failpoint-driven tests skip (GTEST_SKIP) in builds without
// GENCLUS_FAILPOINTS; the rest run in every lane, including TSan.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/failpoint.h"
#include "core/engine.h"
#include "core/server.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using testing::MakeTwoCommunityNetwork;

// Shared trained state: fitting once per suite keeps the file fast.
class ServerDeadlineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new testing::TwoCommunityNetwork(
        MakeTwoCommunityNetwork(8, 1.0, 601));
    FitOptions options;
    options.attributes = {"text"};
    options.config = testing::PlantedFixtureConfig(602);
    auto fit = Engine::Fit(fixture_->dataset, options);
    ASSERT_TRUE(fit.ok()) << fit.status().ToString();
    model_ = new Model(std::move(fit).value().model);
  }

  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete fixture_;
    fixture_ = nullptr;
  }

  void TearDown() override { Failpoints::DisarmAll(); }

  static std::unique_ptr<Server> MakeServer(ServerOptions options) {
    auto server =
        Server::Create(&fixture_->dataset.network, model_, options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).value();
  }

  static NewObjectQuery MakeQuery(size_t i = 0) {
    NewObjectQuery q;
    q.links.push_back({fixture_->docs[i % fixture_->docs.size()],
                       fixture_->doc_doc, 1.0});
    q.observations.push_back(NewObjectObservation::Categorical(
        0, static_cast<uint32_t>(i % 4)));
    return q;
  }

  static testing::TwoCommunityNetwork* fixture_;
  static Model* model_;
};

testing::TwoCommunityNetwork* ServerDeadlineTest::fixture_ = nullptr;
Model* ServerDeadlineTest::model_ = nullptr;

TEST_F(ServerDeadlineTest, ValidateRejectsBadRobustnessOptions) {
  ServerOptions options;
  options.min_inference_iterations = options.inference_iterations + 1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options = ServerOptions{};
  options.default_timeout_us = -1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options = ServerOptions{};
  options.degrade_queue_wait_us = 1000;
  options.recover_queue_wait_us = 1000;  // no hysteresis gap
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.recover_queue_wait_us = 250;
  EXPECT_TRUE(options.Validate().ok());
}

TEST_F(ServerDeadlineTest, AlreadyExpiredDeadlineIsRejectedAtSubmit) {
  auto server = MakeServer({});
  const Deadline expired =
      Deadline::At(Deadline::Clock::now() - milliseconds(1));
  auto submitted = server->Submit(MakeQuery(), expired);
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kDeadlineExceeded);
  const ServerStats stats = server->Stats();
  EXPECT_EQ(stats.deadline_rejected, 1u);
  EXPECT_EQ(stats.accepted, 0u);
}

TEST_F(ServerDeadlineTest, InfiniteAndGenerousDeadlinesServeNormally) {
  ServerOptions options;
  options.default_timeout_us = 5'000'000;  // generous default
  auto server = MakeServer(options);
  auto no_deadline = server->Submit(MakeQuery(0));
  ASSERT_TRUE(no_deadline.ok());
  auto explicit_deadline =
      server->Submit(MakeQuery(1), Deadline::AfterMicros(5'000'000));
  ASSERT_TRUE(explicit_deadline.ok());
  QueryResult a = no_deadline->get();
  QueryResult b = explicit_deadline->get();
  EXPECT_TRUE(a.ok()) << a.status.ToString();
  EXPECT_TRUE(b.ok()) << b.status.ToString();
  EXPECT_FALSE(a.degraded);
  const ServerStats stats = server->Stats();
  EXPECT_EQ(stats.deadline_shed, 0u);
  EXPECT_EQ(stats.deadline_rejected, 0u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST_F(ServerDeadlineTest, ExpiredInQueueIsShedAtDequeue) {
  // One worker wedged on a deliberately expensive query: a tiny-deadline
  // request admitted behind it expires while queued and must be shed at
  // dequeue — future resolves with kDeadlineExceeded, nothing executed.
  ServerOptions options;
  options.num_workers = 1;
  options.max_batch = 1;  // the wedge must not coalesce its victim
  options.max_wait_us = 0;
  options.cost_based_rejection = false;  // force it PAST admission
  auto server = MakeServer(options);

  NewObjectQuery slow = MakeQuery();
  for (int i = 0; i < 200000; ++i) {
    slow.observations.push_back(NewObjectObservation::Categorical(
        0, static_cast<uint32_t>(i % 4)));
  }
  auto wedge = server->Submit(slow);
  ASSERT_TRUE(wedge.ok());

  auto doomed = server->Submit(MakeQuery(), Deadline::AfterMicros(100));
  ASSERT_TRUE(doomed.ok()) << doomed.status().ToString();
  const QueryResult result = doomed->get();
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(result.membership.empty());
  EXPECT_GT(result.queue_seconds, 0.0);
  EXPECT_TRUE(wedge->get().ok());

  const ServerStats stats = server->Stats();
  EXPECT_EQ(stats.deadline_shed, 1u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 1u);
  // The invariant the bench gates at scale: every admitted request
  // resolved one way.
  EXPECT_EQ(stats.accepted,
            stats.completed + stats.cancelled + stats.deadline_shed);
}

TEST_F(ServerDeadlineTest, TightDeadlineCapsTheBatchLinger) {
  // A half-second linger would shed a 60ms-deadline request if the
  // worker waited it out. The deadline must cap the linger instead: the
  // request executes early and completes within budget.
  ServerOptions options;
  options.num_workers = 1;
  options.max_batch = 64;
  options.max_wait_us = 500'000;  // pathological linger
  auto server = MakeServer(options);

  const auto start = std::chrono::steady_clock::now();
  auto submitted = server->Submit(MakeQuery(), Deadline::AfterMicros(60'000));
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  const QueryResult result = submitted->get();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_LT(elapsed, milliseconds(400));  // nowhere near the full linger
  EXPECT_EQ(server->Stats().deadline_shed, 0u);
}

TEST_F(ServerDeadlineTest, SubmitBatchAppliesOneDeadlineToEverySlot) {
  auto server = MakeServer({});
  std::vector<NewObjectQuery> queries;
  for (size_t i = 0; i < 4; ++i) queries.push_back(MakeQuery(i));
  // Expired batch deadline: every slot fails at admission, the batch
  // future still resolves.
  const Deadline expired =
      Deadline::At(Deadline::Clock::now() - milliseconds(1));
  InferenceResult rejected =
      server->SubmitBatch(queries, expired).get();
  ASSERT_EQ(rejected.size(), queries.size());
  for (size_t i = 0; i < rejected.size(); ++i) {
    EXPECT_EQ(rejected.statuses[i].code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(server->Stats().deadline_rejected, queries.size());
  // Generous batch deadline: all served.
  InferenceResult served =
      server->SubmitBatch(queries, Deadline::AfterMicros(5'000'000)).get();
  ASSERT_EQ(served.size(), queries.size());
  for (size_t i = 0; i < served.size(); ++i) {
    EXPECT_TRUE(served.statuses[i].ok()) << served.statuses[i].ToString();
  }
}

TEST_F(ServerDeadlineTest, CostBasedRejectionKicksInUnderWedgedWorker) {
  if (!Failpoints::kEnabled) {
    GTEST_SKIP() << "needs a GENCLUS_FAILPOINTS build";
  }
  // Every micro-batch stalls 50ms at the "server.worker_batch" site, so
  // queue waits (which include the stall) feed a ~50ms EWMA. After the
  // pipeline has drained once, a 1ms-budget request must be rejected at
  // Submit — before ever occupying a queue slot.
  ServerOptions options;
  options.num_workers = 1;
  options.max_batch = 1;
  options.max_wait_us = 0;
  auto server = MakeServer(options);
  Failpoints::Arm("server.worker_batch", {.delay_us = 50'000, .fail = false});

  std::vector<std::future<QueryResult>> warmup;
  for (size_t i = 0; i < 3; ++i) {
    auto submitted = server->Submit(MakeQuery(i));  // no deadline
    ASSERT_TRUE(submitted.ok());
    warmup.push_back(std::move(submitted).value());
  }
  for (std::future<QueryResult>& f : warmup) EXPECT_TRUE(f.get().ok());
  ASSERT_GE(server->Stats().predicted_queue_wait_us, 10'000.0);

  auto hopeless = server->Submit(MakeQuery(), Deadline::AfterMicros(1000));
  ASSERT_FALSE(hopeless.ok());
  EXPECT_EQ(hopeless.status().code(), StatusCode::kDeadlineExceeded);
  Failpoints::Disarm("server.worker_batch");

  const ServerStats stats = server->Stats();
  EXPECT_GE(stats.deadline_rejected, 1u);
  // A budget comfortably above the prediction is still admitted.
  auto feasible =
      server->Submit(MakeQuery(), Deadline::AfterMicros(10'000'000));
  ASSERT_TRUE(feasible.ok()) << feasible.status().ToString();
  EXPECT_TRUE(feasible->get().ok());
}

TEST_F(ServerDeadlineTest, DegradedModeEntersAtFloorAndRecovers) {
  if (!Failpoints::kEnabled) {
    GTEST_SKIP() << "needs a GENCLUS_FAILPOINTS build";
  }
  // Entry: with every batch stalled 20ms, the queue-wait EWMA jumps far
  // above degrade_queue_wait_us and each batch steps the sweep count
  // down until the floor. Recovery: disarm the stall and keep serving —
  // the EWMA decays below recover_queue_wait_us and the count steps back
  // up to normal. Degraded answers must be flagged, recovered ones not.
  ServerOptions options;
  options.num_workers = 1;
  options.max_batch = 1;
  options.max_wait_us = 0;
  options.cost_based_rejection = false;
  options.degrade_queue_wait_us = 5000;
  options.recover_queue_wait_us = 1000;
  options.min_inference_iterations = 2;
  auto server = MakeServer(options);
  const size_t normal = options.inference_iterations;

  Failpoints::Arm("server.worker_batch", {.delay_us = 20'000, .fail = false});
  bool saw_degraded_answer = false;
  // One batch per submission (sequential): each folds a ~20ms queue wait
  // into the EWMA and steps iterations down by one until the floor.
  for (size_t i = 0; i < normal + 4; ++i) {
    auto submitted = server->Submit(MakeQuery(i));
    ASSERT_TRUE(submitted.ok());
    const QueryResult result = submitted->get();
    ASSERT_TRUE(result.ok()) << result.status.ToString();
    saw_degraded_answer |= result.degraded;
  }
  ServerStats stats = server->Stats();
  EXPECT_EQ(stats.current_inference_iterations,
            options.min_inference_iterations);
  EXPECT_TRUE(saw_degraded_answer);
  EXPECT_GE(stats.degraded, 1u);
  Failpoints::Disarm("server.worker_batch");

  // Recovery: fast batches decay the EWMA below the exit threshold, then
  // each batch steps one sweep back. Give the decay + ramp enough
  // sequential batches; the hysteresis band means no flapping on the way.
  QueryResult last;
  for (size_t i = 0; i < 80; ++i) {
    auto submitted = server->Submit(MakeQuery(i));
    ASSERT_TRUE(submitted.ok());
    last = submitted->get();
    ASSERT_TRUE(last.ok()) << last.status.ToString();
    if (server->Stats().current_inference_iterations == normal) break;
  }
  stats = server->Stats();
  EXPECT_EQ(stats.current_inference_iterations, normal);

  // Fully recovered: a fresh answer is not degraded and matches the
  // full-sweep reference bitwise (zero drift on non-degraded answers).
  auto recovered = server->Submit(MakeQuery(3));
  ASSERT_TRUE(recovered.ok());
  const QueryResult answer = recovered->get();
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer.degraded);
  const NewObjectQuery reference_query = MakeQuery(3);
  auto reference =
      InferMembership(fixture_->dataset.network, *model_,
                      reference_query.links, reference_query.observations);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(answer.membership.size(), reference.value().size());
  for (size_t k = 0; k < answer.membership.size(); ++k) {
    EXPECT_EQ(answer.membership[k], reference.value()[k]) << "k=" << k;
  }
}

TEST_F(ServerDeadlineTest, ExecuteExceptionFailsBatchAndWorkerSurvives) {
  if (!Failpoints::kEnabled) {
    GTEST_SKIP() << "needs a GENCLUS_FAILPOINTS build";
  }
  // "server.execute" throws inside the worker's try block. The batch's
  // futures must resolve with kInternal — counted as completed, nothing
  // hangs — and the same worker must serve the next request normally.
  ServerOptions options;
  options.num_workers = 1;
  auto server = MakeServer(options);
  Failpoints::Arm("server.execute", {.max_fires = 1});

  auto poisoned = server->Submit(MakeQuery());
  ASSERT_TRUE(poisoned.ok());
  const QueryResult failed = poisoned->get();
  EXPECT_EQ(failed.status.code(), StatusCode::kInternal);
  EXPECT_TRUE(failed.membership.empty());

  auto healthy = server->Submit(MakeQuery());
  ASSERT_TRUE(healthy.ok());
  EXPECT_TRUE(healthy->get().ok());

  const ServerStats stats = server->Stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 2u);  // kInternal still resolves/accounts
  EXPECT_EQ(stats.accepted,
            stats.completed + stats.cancelled + stats.deadline_shed);
}

TEST_F(ServerDeadlineTest, MixedDeadlineTrafficReconcilesExactly) {
  // Concurrent producers with a mix of absent, generous and hopeless
  // deadlines: at quiescence every submission is accounted for exactly
  // once across accepted/rejected/deadline_rejected, and every admitted
  // request across completed/cancelled/deadline_shed.
  ServerOptions options;
  options.num_workers = 2;
  options.max_batch = 8;
  options.queue_capacity = 64;
  auto server = MakeServer(options);

  constexpr size_t kProducers = 3;
  constexpr size_t kPerProducer = 40;
  std::atomic<size_t> submissions{0};
  std::atomic<size_t> admitted{0};
  std::atomic<size_t> rejected_seen{0};
  std::vector<std::vector<std::future<QueryResult>>> futures(kProducers);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = 0; i < kPerProducer; ++i) {
        Deadline deadline;  // infinite
        if (i % 3 == 1) deadline = Deadline::AfterMicros(2'000'000);
        if (i % 3 == 2) deadline = Deadline::AfterMicros(50 + 20 * (i % 7));
        submissions.fetch_add(1);
        auto submitted = server->Submit(MakeQuery(p + i), deadline);
        if (submitted.ok()) {
          admitted.fetch_add(1);
          futures[p].push_back(std::move(submitted).value());
        } else {
          rejected_seen.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  size_t completed_ok = 0;
  size_t shed = 0;
  for (std::vector<std::future<QueryResult>>& produced : futures) {
    for (std::future<QueryResult>& future : produced) {
      const QueryResult result = future.get();  // every future resolves
      if (result.ok()) {
        ++completed_ok;
      } else {
        ASSERT_EQ(result.status.code(), StatusCode::kDeadlineExceeded)
            << result.status.ToString();
        ++shed;
      }
    }
  }
  const ServerStats stats = server->Stats();
  EXPECT_EQ(stats.accepted, admitted.load());
  EXPECT_EQ(stats.rejected + stats.deadline_rejected, rejected_seen.load());
  EXPECT_EQ(submissions.load(),
            stats.accepted + stats.rejected + stats.deadline_rejected);
  EXPECT_EQ(stats.completed, completed_ok);
  EXPECT_EQ(stats.deadline_shed, shed);
  EXPECT_EQ(stats.accepted,
            stats.completed + stats.cancelled + stats.deadline_shed);
}

}  // namespace
}  // namespace genclus
