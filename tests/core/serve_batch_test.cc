// Batch-planned serving (BatchPlanner + InferSession behind
// Engine::Plan/Execute): edge cases — empty batch, all-invalid
// batch, duplicate links, links-only / observations-only queries — plus
// the two load-bearing contracts: every batch result is bitwise identical
// to the per-query InferMembership reference, and bitwise invariant to
// the engine's pool size (1/2/8). Numerical coverage runs on a weather
// fixture so the shared GaussianEvalTable path is exercised too.
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <span>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/inference.h"
#include "core/server.h"
#include "datagen/weather_generator.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

// Shared trained state: fitting once per suite keeps the file fast.
class ServeBatchFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new testing::TwoCommunityNetwork(
        MakeTwoCommunityNetwork(8, 1.0, 401));
    FitOptions options;
    options.attributes = {"text"};
    options.config = testing::PlantedFixtureConfig(402);
    auto fit = Engine::Fit(fixture_->dataset, options);
    ASSERT_TRUE(fit.ok()) << fit.status().ToString();
    model_ = new Model(std::move(fit).value().model);
  }

  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete fixture_;
    fixture_ = nullptr;
  }

  static Engine MakeEngine(size_t num_threads) {
    EngineOptions options;
    options.num_threads = num_threads;
    auto engine =
        Engine::Create(&fixture_->dataset.network, *model_, options);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return std::move(engine).value();
  }

  static std::vector<double> Reference(const NewObjectQuery& query) {
    auto direct = InferMembership(fixture_->dataset.network, *model_,
                                  query.links, query.observations);
    EXPECT_TRUE(direct.ok()) << direct.status().ToString();
    return *direct;
  }

  static testing::TwoCommunityNetwork* fixture_;
  static Model* model_;
};

testing::TwoCommunityNetwork* ServeBatchFixture::fixture_ = nullptr;
Model* ServeBatchFixture::model_ = nullptr;

TEST_F(ServeBatchFixture, EmptyBatch) {
  Engine engine = MakeEngine(2);
  const InferPlan plan = engine.Plan({});
  EXPECT_EQ(plan.num_queries(), 0u);
  EXPECT_EQ(plan.num_rows(), 0u);
  const InferenceResult result = engine.Execute(plan);
  EXPECT_EQ(result.size(), 0u);
  EXPECT_EQ(result.report.batch_size, 0u);
  EXPECT_EQ(result.report.exec_blocks, 0u);
  EXPECT_TRUE(engine.InferBatch({}).empty());
}

TEST_F(ServeBatchFixture, AllInvalidBatchExecutesToStatusesOnly) {
  Engine engine = MakeEngine(2);
  std::vector<NewObjectQuery> queries(3);
  queries[0].links.push_back({static_cast<NodeId>(999999),
                              fixture_->doc_doc, 1.0});
  queries[1].links.push_back({fixture_->docs[0], 99, 1.0});
  queries[2].observations.push_back(
      NewObjectObservation::Categorical(0, /*term=*/77));

  const InferPlan plan = engine.Plan(queries);
  EXPECT_EQ(plan.num_queries(), 3u);
  EXPECT_EQ(plan.num_rows(), 0u);
  const InferenceResult result = engine.Execute(plan);
  ASSERT_EQ(result.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(result.ok(i)) << "query " << i;
    EXPECT_EQ(result.statuses[i].code(), StatusCode::kInvalidArgument);
    for (double value : result.membership(i)) EXPECT_EQ(value, 0.0);
    EXPECT_EQ(result.hard_labels[i], kNoHardLabel);
    // The planner's fused validation must report exactly the status the
    // reference path reports for the same query.
    auto reference =
        InferMembership(fixture_->dataset.network, *model_,
                        queries[i].links, queries[i].observations);
    EXPECT_EQ(result.statuses[i], reference.status()) << "query " << i;
  }
  EXPECT_EQ(result.report.valid_queries, 0u);
}

TEST_F(ServeBatchFixture, DuplicateLinksToSameTargetSumTheirWeights) {
  Engine engine = MakeEngine(1);
  NewObjectQuery split;  // two links to the same target
  split.links.push_back({fixture_->docs[0], fixture_->doc_doc, 0.75});
  split.links.push_back({fixture_->docs[0], fixture_->doc_doc, 1.25});
  NewObjectQuery merged;  // one link carrying the summed weight
  merged.links.push_back({fixture_->docs[0], fixture_->doc_doc, 2.0});

  // Bitwise against the reference, which also keeps the links separate.
  auto batch = engine.InferBatch(std::span(&split, 1));
  ASSERT_TRUE(batch[0].ok());
  EXPECT_EQ(*batch[0], Reference(split));
  // And numerically the weights sum — an overwrite would drop 0.75.
  auto merged_batch = engine.InferBatch(std::span(&merged, 1));
  ASSERT_TRUE(merged_batch[0].ok());
  for (size_t k = 0; k < batch[0]->size(); ++k) {
    EXPECT_NEAR((*batch[0])[k], (*merged_batch[0])[k], 1e-12);
  }
}

TEST_F(ServeBatchFixture, LinksOnlyAndObservationsOnlyQueries) {
  Engine engine = MakeEngine(2);
  std::vector<NewObjectQuery> queries(3);
  for (int i = 0; i < 3; ++i) {
    queries[0].links.push_back({fixture_->docs[i], fixture_->doc_doc, 1.0});
  }
  queries[1].observations.push_back(
      NewObjectObservation::Categorical(0, /*term=*/2, /*count=*/3.0));
  // queries[2] carries no evidence at all: uniform membership.
  const auto batch = engine.InferBatch(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << "query " << i;
    EXPECT_EQ(*batch[i], Reference(queries[i])) << "query " << i;
  }
  const size_t k = batch[2]->size();
  for (size_t c = 0; c < k; ++c) {
    EXPECT_NEAR((*batch[2])[c], 1.0 / static_cast<double>(k), 1e-12);
  }
}

TEST_F(ServeBatchFixture, BatchBitwiseEqualsReferenceAcrossPoolSizes) {
  // A batch wider than one execution block, with invalid queries
  // interleaved so CSR rows and query slots diverge.
  std::vector<NewObjectQuery> queries;
  for (size_t i = 0; i < 41; ++i) {
    NewObjectQuery q;
    const size_t doc = i % fixture_->docs.size();
    if (i % 3 != 1) {
      q.links.push_back({fixture_->docs[doc], fixture_->doc_doc,
                         1.0 + 0.125 * static_cast<double>(i % 5)});
      q.links.push_back({fixture_->tags[i % 2], fixture_->doc_tag, 0.5});
    }
    if (i % 3 != 2) {
      q.observations.push_back(NewObjectObservation::Categorical(
          0, static_cast<uint32_t>(i % 4), 1.0 + static_cast<double>(i % 3)));
    }
    if (i % 10 == 7) {
      q.links.push_back({static_cast<NodeId>(999999), fixture_->doc_doc,
                         1.0});  // poison this slot only
    }
    queries.push_back(std::move(q));
  }

  std::vector<InferenceResult> results;
  for (size_t threads : {1u, 2u, 8u}) {
    Engine engine = MakeEngine(threads);
    const InferPlan plan = engine.Plan(queries);
    results.push_back(engine.Execute(plan));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i % 10 == 7) {
      EXPECT_FALSE(results[0].ok(i));
      continue;
    }
    ASSERT_TRUE(results[0].ok(i)) << "query " << i;
    const std::vector<double> reference = Reference(queries[i]);
    for (size_t r = 0; r < results.size(); ++r) {
      // Bitwise: EXPECT_EQ on the double vectors, no tolerance.
      EXPECT_EQ(results[r].memberships.RowVector(i), reference)
          << "query " << i << " pool variant " << r;
      EXPECT_EQ(results[r].hard_labels[i], results[0].hard_labels[i]);
      EXPECT_EQ(results[r].statuses[i], results[0].statuses[i]);
    }
  }
}

TEST_F(ServeBatchFixture, PlanMapsRowsPastInvalidQueriesAndFoldsGamma) {
  Engine engine = MakeEngine(1);
  std::vector<NewObjectQuery> queries(4);
  queries[0].links.push_back({fixture_->docs[0], fixture_->doc_doc, 2.0});
  queries[1].links.push_back({fixture_->docs[0], 99, 1.0});  // invalid
  queries[2].observations.push_back(NewObjectObservation::Categorical(0, 1));
  queries[3].links.push_back({fixture_->docs[1], fixture_->doc_tag, 1.0});
  queries[3].links.push_back({fixture_->docs[2], fixture_->doc_doc, 3.0});

  const InferPlan plan = engine.Plan(queries);
  ASSERT_EQ(plan.num_queries(), 4u);
  ASSERT_EQ(plan.num_rows(), 3u);
  EXPECT_EQ(plan.row_to_query, (std::vector<size_t>{0, 2, 3}));
  ASSERT_EQ(plan.row_offsets, (std::vector<size_t>{0, 1, 1, 3}));
  EXPECT_EQ(plan.link_cols,
            (std::vector<uint32_t>{fixture_->docs[0], fixture_->docs[1],
                                   fixture_->docs[2]}));
  // Values carry gamma(type) * weight; each row's non-zeros are
  // stable-sorted by target column (these targets already ascend).
  const std::vector<double>& gamma = engine.model().gamma;
  EXPECT_EQ(plan.link_values[0], gamma[fixture_->doc_doc] * 2.0);
  EXPECT_EQ(plan.link_values[1], gamma[fixture_->doc_tag] * 1.0);
  EXPECT_EQ(plan.link_values[2], gamma[fixture_->doc_doc] * 3.0);
  EXPECT_EQ(plan.observation_offsets, (std::vector<size_t>{0, 0, 1, 1}));
  EXPECT_EQ(plan.total_links, 3u);
  EXPECT_EQ(plan.total_observations, 1u);
}

TEST_F(ServeBatchFixture, PlanStableSortsEachRowByTargetColumn) {
  Engine engine = MakeEngine(1);
  NewObjectQuery query;
  // Descending targets plus a duplicate: the plan must stable-sort the
  // row by target column (ties keep submission order) with each value
  // staying paired to its link.
  query.links.push_back({fixture_->docs[3], fixture_->doc_doc, 5.0});
  query.links.push_back({fixture_->docs[1], fixture_->doc_doc, 1.0});
  query.links.push_back({fixture_->docs[3], fixture_->doc_doc, 7.0});
  query.links.push_back({fixture_->docs[0], fixture_->doc_doc, 2.0});
  const InferPlan plan = engine.Plan(std::span(&query, 1));
  ASSERT_EQ(plan.num_rows(), 1u);
  EXPECT_EQ(plan.link_cols,
            (std::vector<uint32_t>{fixture_->docs[0], fixture_->docs[1],
                                   fixture_->docs[3], fixture_->docs[3]}));
  const double gamma_dd = engine.model().gamma[fixture_->doc_doc];
  EXPECT_EQ(plan.link_values,
            (std::vector<double>{gamma_dd * 2.0, gamma_dd * 1.0,
                                 gamma_dd * 5.0, gamma_dd * 7.0}));
}

TEST_F(ServeBatchFixture, ExecutionIsBitwiseInvariantToThetaShardCount) {
  // The same batch served through 1, 2 and 4 Θ column shards (and a
  // sharded planner over an auto-stamped model) must produce bitwise
  // identical memberships — the per-shard link terms merge in ascending
  // shard order, replaying the monolithic accumulation chain.
  std::vector<NewObjectQuery> queries(9);
  for (size_t i = 0; i < queries.size(); ++i) {
    NewObjectQuery& q = queries[i];
    q.links.push_back({fixture_->docs[(i * 3) % 16], fixture_->doc_doc,
                       1.0 + 0.25 * static_cast<double>(i)});
    q.links.push_back({fixture_->docs[15 - i % 16], fixture_->doc_doc, 2.0});
    q.links.push_back({fixture_->tags[i % 2], fixture_->doc_tag, 1.5});
    if (i % 2 == 0) {
      q.observations.push_back(
          NewObjectObservation::Categorical(0, i % 4, 1.0 + i));
    }
  }
  Matrix baseline;
  for (size_t shards : {1, 2, 4}) {
    EngineOptions options;
    options.num_threads = 2;
    options.theta_shards = shards;
    auto engine =
        Engine::Create(&fixture_->dataset.network, *model_, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    const InferenceResult result = engine->Execute(engine->Plan(queries));
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(result.ok(i)) << "shards " << shards << " query " << i;
    }
    if (shards == 1) {
      baseline = result.memberships;
      continue;
    }
    EXPECT_EQ(result.memberships.data(), baseline.data())
        << "shards " << shards;
  }
}

TEST_F(ServeBatchFixture, ExecuteReportsBatchStatsAndBlocks) {
  Engine engine = MakeEngine(2);
  std::vector<NewObjectQuery> queries(ServeDefaults::kBatchBlockGrain + 3);
  for (auto& q : queries) {
    q.links.push_back({fixture_->docs[0], fixture_->doc_doc, 1.0});
  }
  const InferenceResult result = engine.Execute(engine.Plan(queries));
  EXPECT_EQ(result.report.batch_size, queries.size());
  EXPECT_EQ(result.report.valid_queries, queries.size());
  EXPECT_EQ(result.report.total_links, queries.size());
  EXPECT_EQ(result.report.total_observations, 0u);
  EXPECT_EQ(result.report.exec_blocks, 2u);
  EXPECT_GE(result.report.exec_seconds, 0.0);
}

TEST_F(ServeBatchFixture, ServerSubmitBatchMatchesSynchronousExecution) {
  Engine engine = MakeEngine(2);
  std::vector<NewObjectQuery> queries(3);
  queries[0].links.push_back({fixture_->docs[0], fixture_->doc_doc, 1.0});
  queries[1].observations.push_back(
      NewObjectObservation::Categorical(0, 2, 2.0));
  queries[2].links.push_back({fixture_->docs[0], 99, 1.0});  // invalid

  ServerOptions server_options;
  server_options.num_workers = 2;
  auto server =
      Server::Create(&fixture_->dataset.network, model_, server_options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  std::future<InferenceResult> future =
      (*server)->SubmitBatch(queries);
  const InferenceResult async_result = future.get();
  const InferenceResult sync_result = engine.Execute(engine.Plan(queries));
  ASSERT_EQ(async_result.size(), sync_result.size());
  EXPECT_EQ(async_result.memberships.data(), sync_result.memberships.data());
  for (size_t i = 0; i < sync_result.size(); ++i) {
    EXPECT_EQ(async_result.statuses[i], sync_result.statuses[i]);
    EXPECT_EQ(async_result.hard_labels[i], sync_result.hard_labels[i]);
  }
}

TEST_F(ServeBatchFixture, ObservationFactoriesValidateKindAtPlanTime) {
  Engine engine = MakeEngine(1);
  // Attribute 0 is categorical text; a factory-built numerical
  // observation must be rejected at plan time with a precise message.
  NewObjectQuery wrong_kind;
  wrong_kind.observations.push_back(
      NewObjectObservation::Numerical(0, 1.5));
  const InferPlan plan = engine.Plan(std::span(&wrong_kind, 1));
  ASSERT_FALSE(plan.statuses[0].ok());
  EXPECT_EQ(plan.statuses[0].code(), StatusCode::kInvalidArgument);
  EXPECT_NE(plan.statuses[0].message().find("numerical observation"),
            std::string::npos);
  EXPECT_NE(plan.statuses[0].message().find("text"), std::string::npos);

  // Non-finite values and negative counts are rejected too.
  NewObjectQuery bad_count;
  bad_count.observations.push_back(
      NewObjectObservation::Categorical(0, 1, -2.0));
  EXPECT_FALSE(engine.Plan(std::span(&bad_count, 1)).statuses[0].ok());

  // Legacy aggregate-initialized observations (kUnspecified) keep being
  // interpreted by the model's kind.
  NewObjectQuery legacy;
  legacy.observations.push_back({0, /*term=*/1, /*count=*/2.0, 0.0});
  EXPECT_TRUE(engine.Plan(std::span(&legacy, 1)).statuses[0].ok());
}

TEST_F(ServeBatchFixture, ReferencePathRejectsKindMismatchesToo) {
  // The shared validation keeps the reference path and the planner in
  // lockstep: InferMembership rejects the same factory-built mismatch.
  auto result =
      InferMembership(fixture_->dataset.network, *model_, {},
                      {NewObjectObservation::Numerical(0, 1.5)});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// Numerical attributes: the batch path shares one GaussianEvalTable per
// attribute across the whole batch and hoists log theta per sweep; both
// must leave results bitwise equal to the per-query reference.
TEST(ServeBatchWeatherTest, NumericalBatchBitwiseEqualsReference) {
  WeatherConfig config;
  config.num_temperature_sensors = 60;
  config.num_precipitation_sensors = 30;
  config.observations_per_sensor = 3;
  config.seed = 17;
  auto data = GenerateWeatherNetwork(config);
  ASSERT_TRUE(data.ok()) << data.status().ToString();

  FitOptions fit_options;
  fit_options.attributes = {"temperature", "precipitation"};
  fit_options.config.num_clusters = data->true_membership.cols();
  fit_options.config.outer_iterations = 2;
  fit_options.config.em_iterations = 15;
  fit_options.config.seed = 5;
  auto fit = Engine::Fit(data->dataset, fit_options);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  const Model model = std::move(fit).value().model;

  // New sensors: a few links of each relation plus numerical readings of
  // both model attributes (0 = temperature, 1 = precipitation).
  std::vector<NewObjectQuery> queries;
  const size_t num_nodes = data->dataset.network.num_nodes();
  for (size_t i = 0; i < 23; ++i) {
    NewObjectQuery q;
    for (size_t j = 0; j < 4; ++j) {
      q.links.push_back(
          {static_cast<NodeId>((i * 7 + j * 13) % num_nodes),
           j % 2 == 0 ? data->tt_link : data->tp_link, 1.0});
    }
    q.observations.push_back(NewObjectObservation::Numerical(
        0, 1.0 + 0.2 * static_cast<double>(i % 8)));
    q.observations.push_back(NewObjectObservation::Numerical(
        1, 2.0 - 0.15 * static_cast<double>(i % 5)));
    queries.push_back(std::move(q));
  }

  std::vector<std::vector<Result<std::vector<double>>>> per_pool;
  for (size_t threads : {1u, 2u, 8u}) {
    EngineOptions options;
    options.num_threads = threads;
    auto engine = Engine::Create(&data->dataset.network, model, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    per_pool.push_back(engine->InferBatch(queries));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    auto reference = InferMembership(data->dataset.network, model,
                                     queries[i].links,
                                     queries[i].observations);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (size_t p = 0; p < per_pool.size(); ++p) {
      ASSERT_TRUE(per_pool[p][i].ok()) << "query " << i << " pool " << p;
      EXPECT_EQ(*per_pool[p][i], *reference)
          << "query " << i << " pool variant " << p;
    }
  }
}

}  // namespace
}  // namespace genclus
