// Deterministic regression pins for training on the planted two-community
// fixture: accuracy must stay at NMI >= 0.9 and a fixed seed must reproduce
// bit-identical hard labels run-to-run. These guard the tier-1 verify gate
// against silent quality or determinism regressions in the EM/strength
// loop. They run through Engine::Fit; the RunGenClus shim is pinned to the
// same trajectory in genclus_test.cc (RunGenClusShimTest.MatchesEngineFit).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "eval/nmi.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

constexpr uint64_t kFixtureSeed = 91;
constexpr uint64_t kRunSeed = 2012;  // VLDB year, pinned forever

FitOptions PinnedOptions() {
  FitOptions options;
  options.attributes = {"text"};
  options.config = testing::PlantedFixtureConfig(kRunSeed);
  return options;
}

TEST(GenClusRegressionTest, PlantedTwoCommunityNmiAtLeastPointNine) {
  auto fixture = MakeTwoCommunityNetwork(8, 1.0, kFixtureSeed);
  auto fit = Engine::Fit(fixture.dataset, PinnedOptions());
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  const double nmi = NormalizedMutualInformation(
      fit->model.HardLabels(), fixture.dataset.labels.raw());
  EXPECT_GE(nmi, 0.9) << "accuracy regression: NMI dropped below the pin";
}

TEST(GenClusRegressionTest, SameSeedYieldsIdenticalHardLabels) {
  auto fixture = MakeTwoCommunityNetwork(8, 1.0, kFixtureSeed);
  auto first = Engine::Fit(fixture.dataset, PinnedOptions());
  auto second = Engine::Fit(fixture.dataset, PinnedOptions());
  ASSERT_TRUE(first.ok() && second.ok());
  const std::vector<uint32_t> a = first->model.HardLabels();
  const std::vector<uint32_t> b = second->model.HardLabels();
  ASSERT_EQ(a.size(), b.size());
  for (size_t v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a[v], b[v]) << "node " << v << " flipped between runs";
  }
}

TEST(GenClusRegressionTest, ReproducibleUnderSparseText) {
  // Incomplete attributes (the paper's headline setting) must not break
  // determinism: 30% text coverage, same seed, identical labels.
  auto fixture = MakeTwoCommunityNetwork(10, 0.3, kFixtureSeed);
  auto first = Engine::Fit(fixture.dataset, PinnedOptions());
  auto second = Engine::Fit(fixture.dataset, PinnedOptions());
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->model.HardLabels(), second->model.HardLabels());
}

}  // namespace
}  // namespace genclus
