// Deterministic regression pins for RunGenClus on the planted two-community
// fixture: accuracy must stay at NMI >= 0.9 and a fixed seed must reproduce
// bit-identical hard labels run-to-run. These guard the tier-1 verify gate
// against silent quality or determinism regressions in the EM/strength loop.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/genclus.h"
#include "eval/nmi.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

constexpr uint64_t kFixtureSeed = 91;
constexpr uint64_t kRunSeed = 2012;  // VLDB year, pinned forever

GenClusConfig PinnedConfig() {
  return testing::PlantedFixtureConfig(kRunSeed);
}

TEST(GenClusRegressionTest, PlantedTwoCommunityNmiAtLeastPointNine) {
  auto fixture = MakeTwoCommunityNetwork(8, 1.0, kFixtureSeed);
  auto result = RunGenClus(fixture.dataset, {"text"}, PinnedConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const double nmi = NormalizedMutualInformation(
      result->HardLabels(), fixture.dataset.labels.raw());
  EXPECT_GE(nmi, 0.9) << "accuracy regression: NMI dropped below the pin";
}

TEST(GenClusRegressionTest, SameSeedYieldsIdenticalHardLabels) {
  auto fixture = MakeTwoCommunityNetwork(8, 1.0, kFixtureSeed);
  auto first = RunGenClus(fixture.dataset, {"text"}, PinnedConfig());
  auto second = RunGenClus(fixture.dataset, {"text"}, PinnedConfig());
  ASSERT_TRUE(first.ok() && second.ok());
  const std::vector<uint32_t> a = first->HardLabels();
  const std::vector<uint32_t> b = second->HardLabels();
  ASSERT_EQ(a.size(), b.size());
  for (size_t v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a[v], b[v]) << "node " << v << " flipped between runs";
  }
}

TEST(GenClusRegressionTest, ReproducibleUnderSparseText) {
  // Incomplete attributes (the paper's headline setting) must not break
  // determinism: 30% text coverage, same seed, identical labels.
  auto fixture = MakeTwoCommunityNetwork(10, 0.3, kFixtureSeed);
  auto first = RunGenClus(fixture.dataset, {"text"}, PinnedConfig());
  auto second = RunGenClus(fixture.dataset, {"text"}, PinnedConfig());
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->HardLabels(), second->HardLabels());
}

}  // namespace
}  // namespace genclus
